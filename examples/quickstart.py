#!/usr/bin/env python
"""Quickstart: diagnose the failing scan cells of one stuck-at fault.

Builds the full-scan s953 benchmark, injects a single stuck-at fault, runs
a two-step partitioned scan-BIST diagnosis (one interval partition followed
by random-selection partitions) and prints the candidate failing cells.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    EmbeddedCore,
    LinearCompactor,
    ScanConfig,
    TwoStepPartitioner,
    diagnose,
    get_circuit,
)
from repro.core.superposition import apply_superposition


def main():
    # 1. A full-scan circuit with one internal scan chain.
    circuit = get_circuit("s953")
    core = EmbeddedCore(circuit, num_patterns=128)
    print(f"circuit: {circuit!r}")

    # 2. Inject a sampled single stuck-at fault and capture its per-pattern
    #    error matrix (which scan cells capture wrong values, and when).
    rng = np.random.default_rng(2003)
    response = core.sample_fault_responses(1, rng)[0]
    print(f"injected fault     : {response.fault}")
    print(f"failing scan cells : {response.failing_cells}")

    # 3. The BIST-side configuration: scan chain, partitions, compactor.
    scan = ScanConfig.single_chain(core.num_cells)
    partitions = TwoStepPartitioner(core.num_cells, num_groups=8).partitions(6)
    compactor = LinearCompactor(width=24, num_inputs=1)

    # 4. Diagnose: one signature per (group, partition) session, failing
    #    groups intersected across partitions.
    result = diagnose(response, scan, partitions, compactor)
    print(f"candidates (intersection pruning) : {sorted(result.candidate_cells)}")
    print(f"candidate count per partition     : {result.candidate_history}")

    # 5. Superposition post-processing ([7]) sharpens the answer for free.
    pruned = apply_superposition(result, scan)
    print(f"candidates (superposition pruning): {sorted(pruned.candidate_cells)}")
    assert pruned.actual_cells <= pruned.candidate_cells, "diagnosis must be sound"
    print("all truly failing cells are in the candidate set — diagnosis sound")


if __name__ == "__main__":
    main()
