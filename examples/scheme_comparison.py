#!/usr/bin/env python
"""Compare all four partitioning schemes across a partition-count sweep.

For a population of injected stuck-at faults on one circuit, plots (as a
text chart) the diagnostic resolution of interval-based, random-selection,
deterministic fixed-interval and two-step partitioning as the number of
partitions grows — the trade-off at the heart of the paper: interval wins
early, random wins late, two-step takes both.

Run:  python examples/scheme_comparison.py [circuit] [faults]
"""

import sys

import numpy as np

from repro import LinearCompactor, EmbeddedCore, ScanConfig, diagnose, get_circuit
from repro.core.diagnosis import dr_by_partition_count
from repro.core.two_step import make_partitioner

SCHEMES = ("interval", "random", "deterministic", "two-step")
MAX_PARTITIONS = 10
NUM_GROUPS = 8


def text_chart(sweeps, width=48):
    top = max(max(v) for v in sweeps.values()) or 1.0
    lines = []
    for scheme, sweep in sweeps.items():
        lines.append(f"{scheme:>14}:")
        for k, dr in enumerate(sweep, start=1):
            bar = "#" * max(1, round(dr / top * width)) if dr > 0 else ""
            lines.append(f"  {k:2d} partitions |{bar:<{width}}| DR={dr:.2f}")
    return "\n".join(lines)


def main():
    circuit_name = sys.argv[1] if len(sys.argv) > 1 else "s5378"
    num_faults = int(sys.argv[2]) if len(sys.argv) > 2 else 80

    core = EmbeddedCore(get_circuit(circuit_name), num_patterns=128)
    scan = ScanConfig.single_chain(core.num_cells)
    compactor = LinearCompactor(24, 1)
    responses = core.sample_fault_responses(
        num_faults, np.random.default_rng(7)
    )
    print(f"{circuit_name}: {core.num_cells} scan cells, "
          f"{len(responses)} detected faults, {NUM_GROUPS} groups/partition")
    print()

    sweeps = {}
    for scheme in SCHEMES:
        partitions = make_partitioner(
            scheme, core.num_cells, NUM_GROUPS
        ).partitions(MAX_PARTITIONS)
        results = [diagnose(r, scan, partitions, compactor) for r in responses]
        sweeps[scheme] = dr_by_partition_count(results, MAX_PARTITIONS)

    print(text_chart(sweeps))
    print()
    best_final = min(sweeps, key=lambda s: sweeps[s][-1])
    print(f"best DR after {MAX_PARTITIONS} partitions: {best_final} "
          f"(DR={sweeps[best_final][-1]:.2f})")


if __name__ == "__main__":
    main()
