#!/usr/bin/env python
"""SOC fault diagnosis over a TestRail, as in the paper's Section 5.

Builds the d695-variant SOC (eight full-scan ISCAS-89 cores daisy-chained
on an 8-bit TAM with balanced meta scan chains), assumes one core is
faulty, and compares random-selection vs two-step partitioning for
localizing the failing scan cells — including mapping the candidates back
to (core, local cell) coordinates, which is what failure analysis needs.

Run:  python examples/soc_diagnosis.py          (scaled-down cores, fast)
      REPRO_FULL=1 python examples/soc_diagnosis.py   (published core sizes)
"""

import os
from collections import Counter

import numpy as np

from repro import LinearCompactor, build_d695_soc, diagnose
from repro.core.two_step import make_partitioner

FAULTY_CORE = "s9234"
NUM_PARTITIONS = 8
NUM_GROUPS = 8


def main():
    scale = None if os.environ.get("REPRO_FULL") else 0.25
    soc = build_d695_soc(num_patterns=128, scale=scale)
    print(soc.describe())
    print()

    core_index = [c.name for c in soc.cores].index(FAULTY_CORE)
    core = soc.cores[core_index]
    rng = np.random.default_rng(42)
    local_response = core.sample_fault_responses(1, rng)[0]
    response = soc.lift_response(core_index, local_response)
    print(f"faulty core    : {FAULTY_CORE} ({core.num_cells} scan cells)")
    print(f"injected fault : {response.fault}")
    print(f"failing cells  : {len(response.failing_cells)} on the meta chains")
    print()

    compactor = LinearCompactor(width=24, num_inputs=soc.scan_config.num_chains)
    for scheme in ("random", "two-step"):
        partitions = make_partitioner(
            scheme, soc.scan_config.max_length, NUM_GROUPS
        ).partitions(NUM_PARTITIONS)
        result = diagnose(response, soc.scan_config, partitions, compactor)
        by_core = Counter(
            soc.cores[soc.owner(cell).core_index].name
            for cell in result.candidate_cells
        )
        located = by_core.get(FAULTY_CORE, 0)
        print(f"{scheme:>9}: {len(result.candidate_cells):4d} candidate cells "
              f"({located} in the faulty core; by core: {dict(by_core)})")
        assert result.sound

    print()
    print("Two-step confines the candidates to the faulty core's segment of")
    print("the TestRail, which is exactly the paper's SOC argument.")


if __name__ == "__main__":
    main()
