#!/usr/bin/env python
"""The literal tester flow: golden vs observed MISR signatures.

Everything the experiment harness does with fast linear algebra, done here
the way the silicon and the ATE do it: serialize every captured response
through the scan chain, mask by the session's selected cells, clock the
real 16-bit MISR, and compare the observed signature against the golden
one.  Finishes by verifying the fast path agrees bit-for-bit.

Run:  python examples/tester_view.py
"""

import numpy as np

from repro import EmbeddedCore, LinearCompactor, ScanConfig, get_circuit
from repro.bist.golden import good_captured_matrix, run_tester_partition
from repro.bist.session import collect_error_events, run_partition_sessions
from repro.core.two_step import TwoStepPartitioner

NUM_GROUPS = 4
MISR_WIDTH = 16


def main():
    core = EmbeddedCore(get_circuit("s953"), num_patterns=32)
    scan = ScanConfig.single_chain(core.num_cells)
    response = core.sample_fault_responses(1, np.random.default_rng(9))[0]
    print(f"circuit: s953 ({core.num_cells} cells, 32 patterns)")
    print(f"fault:   {response.fault}")
    print(f"failing: {response.failing_cells}")
    print()

    partition = TwoStepPartitioner(core.num_cells, NUM_GROUPS).next_partition()
    captured = good_captured_matrix(core._good)  # the fault-free responses
    sessions = run_tester_partition(
        captured, response, scan, partition.group_of, NUM_GROUPS, MISR_WIDTH
    )
    print(f"interval partition, {NUM_GROUPS} sessions through the real MISR:")
    for group, session in enumerate(sessions):
        members = partition.members(group)
        span = f"{members[0]}-{members[-1]}" if members.size else "(empty)"
        verdict = "FAIL" if session.mismatch else "pass"
        print(f"  session {group} (cells {span:>7}): golden={session.golden:04x} "
              f"observed={session.observed:04x}  -> {verdict}")

    # The harness's shortcut: error signatures via the linear MISR model.
    events = collect_error_events(response, scan)
    outcome = run_partition_sessions(
        events, partition.group_of, NUM_GROUPS,
        scan.total_cycles(response.num_patterns),
        LinearCompactor(MISR_WIDTH, 1),
    )
    print()
    print("cross-check vs the linear error-signature model:")
    for group, session in enumerate(sessions):
        fast = outcome.signatures[group][0]
        slow = session.golden ^ session.observed
        status = "ok" if fast == slow else "MISMATCH"
        print(f"  session {group}: golden^observed={slow:04x} "
              f"linear={fast:04x}  {status}")
        assert fast == slow
    print()
    print("the fast path is exact, not an approximation.")


if __name__ == "__main__":
    main()
