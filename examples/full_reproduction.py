#!/usr/bin/env python
"""Full paper-scale reproduction: every table and figure, 500 faults each.

This is the configuration of the paper's protocol (Sections 4 and 5):
500 injected single stuck-at faults per circuit / per faulty core, 200
patterns for Table 1, 128 patterns elsewhere, a degree-16 LFSR creating
the partitions, 8 partitions for the comparisons.

Expect a long run (tens of minutes): the fault simulation of the 20k-gate
circuit classes dominates.  Pass ``--faults N`` to reduce the sample.

Run:  python examples/full_reproduction.py [--faults N] [--out FILE]
"""

import argparse
import sys
import time

from repro.experiments import (
    paper_config,
    run_aliasing_ablation,
    run_binary_search_ablation,
    run_clustering,
    run_deterministic_ablation,
    run_figure3,
    run_figure5,
    run_group_count_ablation,
    run_interval_count_ablation,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
)
from repro.experiments.atpg_topup import run_atpg_topup
from repro.experiments.error_model import run_error_model_ablation
from repro.experiments.patterns_ablation import run_pattern_count_ablation
from repro.experiments.extensions import (
    run_diagnosis_time,
    run_multi_core,
    run_scan_order_ablation,
    run_schedule_diagnosis,
    run_vector_diagnosis,
)

EXPERIMENTS = [
    ("Figure 3", lambda cfg: run_figure3(cfg)),
    ("Table 1", lambda cfg: run_table1(cfg)),
    ("Figure 2 evidence (clustering)", lambda cfg: run_clustering(config=cfg)),
    ("Table 2", lambda cfg: run_table2(cfg)),
    ("Table 3", lambda cfg: run_table3(cfg)),
    ("Table 4", lambda cfg: run_table4(cfg)),
    ("Figure 5", lambda cfg: run_figure5(cfg)),
    ("Ablation 1 (interval partitions)",
     lambda cfg: run_interval_count_ablation(config=cfg)),
    ("Ablation 2 (group count)", lambda cfg: run_group_count_ablation(config=cfg)),
    ("Ablation 3 (MISR aliasing)", lambda cfg: run_aliasing_ablation(config=cfg)),
    ("Ablation 4 (deterministic intervals)",
     lambda cfg: run_deterministic_ablation(config=cfg)),
    ("Ablation 5 (binary search)",
     lambda cfg: run_binary_search_ablation(config=cfg)),
    ("Ablation 6 (pattern count)",
     lambda cfg: run_pattern_count_ablation(config=cfg)),
    ("Ablation 7 (evaluation protocol)",
     lambda cfg: run_error_model_ablation(config=cfg)),
    ("Extension 1 (failing vectors)",
     lambda cfg: run_vector_diagnosis(config=cfg)),
    ("Extension 2 (scan-chain ordering)",
     lambda cfg: run_scan_order_ablation(config=cfg)),
    ("Extension 3 (two faulty cores)", lambda cfg: run_multi_core(config=cfg)),
    ("Extension 4 (diagnosis time)",
     lambda cfg: run_diagnosis_time(config=cfg)),
    ("Extension 5 (bypass schedule)",
     lambda cfg: run_schedule_diagnosis(config=cfg)),
    ("Extension 6 (PODEM top-up)", lambda cfg: run_atpg_topup(config=cfg)),
]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--faults", type=int, default=500,
                        help="faults per circuit/core (paper: 500)")
    parser.add_argument("--out", default=None,
                        help="also write the report to this file")
    args = parser.parse_args()

    config = paper_config(num_faults=args.faults, num_faults_large=args.faults)
    sink = open(args.out, "w") if args.out else None

    def emit(text=""):
        print(text)
        if sink:
            sink.write(text + "\n")
            sink.flush()

    emit(f"# Paper-scale reproduction ({args.faults} faults per circuit/core)")
    start = time.time()
    for title, runner in EXPERIMENTS:
        t0 = time.time()
        emit()
        emit(f"== {title} ==")
        result = runner(config)
        emit(result.render())
        emit(f"[{title}: {time.time() - t0:.1f}s]")
    emit()
    emit(f"total: {time.time() - start:.1f}s")
    if sink:
        sink.close()


if __name__ == "__main__":
    main()
