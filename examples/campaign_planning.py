#!/usr/bin/env python
"""Plan a diagnosis campaign analytically, then check it by simulation.

Workflow a test engineer would follow:

1. profile the fault population (fault coverage, error multiplicity) with
   a quick fault-simulation pass;
2. feed the typical multiplicity into the closed-form planner to get the
   cheapest (groups x partitions) random-selection campaign meeting a DR
   target — plus its tester-cycle price;
3. validate the plan by actually diagnosing the sampled faults, and show
   what the paper's two-step scheme buys on top of the plan.

Run:  python examples/campaign_planning.py [circuit] [target_dr]
"""

import sys

import numpy as np

from repro import EmbeddedCore, LinearCompactor, ScanConfig, diagnose, get_circuit
from repro.core.diagnosis import diagnostic_resolution
from repro.core.planner import (
    expected_population_dr,
    plan_campaign,
    plan_campaign_for_population,
)
from repro.core.time_model import TimeEstimate, campaign_cycles
from repro.core.two_step import make_partitioner
from repro.sim.coverage import coverage_report


def main():
    circuit_name = sys.argv[1] if len(sys.argv) > 1 else "s5378"
    target_dr = float(sys.argv[2]) if len(sys.argv) > 2 else 0.25

    core = EmbeddedCore(get_circuit(circuit_name), num_patterns=128)
    scan = ScanConfig.single_chain(core.num_cells)
    print(f"{circuit_name}: {core.num_cells} scan cells, 128 patterns/session")

    # 1. profile the fault population
    report = coverage_report(
        core.fault_simulator, max_faults=200, rng=np.random.default_rng(1)
    )
    p50, p90, _p99 = report.multiplicity_percentiles()
    print(f"fault coverage {report.fault_coverage:.2f}; failing cells per "
          f"detected fault: median {p50:.0f}, p90 {p90:.0f}")

    # 2. analytic plans: the naive single-multiplicity model vs the
    #    population mixture (DR is dominated by the heavy-tailed faults).
    multiplicities = [
        p.num_failing_cells for p in report.detected_profiles
    ]
    naive = plan_campaign(core.num_cells, int(max(1, p90)), target_dr)
    plan = plan_campaign_for_population(
        core.num_cells, multiplicities, target_dr
    )
    if naive is not None:
        print(f"naive plan (p90 multiplicity): {naive.num_groups} groups x "
              f"{naive.num_partitions} partitions — optimistic, see below")
    if plan is None:
        print("no feasible plan within the group/partition limits")
        return
    cycles = campaign_cycles(plan.num_partitions, plan.num_groups, scan, 128)
    print(f"population plan for DR <= {target_dr}: {plan.num_groups} groups x "
          f"{plan.num_partitions} partitions = {plan.num_sessions} sessions "
          f"(expected DR {plan.expected_dr:.3f}, {TimeEstimate(cycles)})")

    # 3. validate by simulation
    responses = core.sample_fault_responses(120, np.random.default_rng(7))
    compactor = LinearCompactor(24, 1)
    for scheme in ("random", "two-step"):
        partitions = make_partitioner(
            scheme, core.num_cells, plan.num_groups
        ).partitions(plan.num_partitions)
        results = [diagnose(r, scan, partitions, compactor) for r in responses]
        dr = diagnostic_resolution(results)
        print(f"  measured DR with {scheme:>8}: {dr:.3f} "
              f"({len(responses)} sampled faults)")
    print(f"  analytic mixture model (random stage): "
          f"{expected_population_dr(core.num_cells, multiplicities, plan.num_groups, plan.num_partitions):.3f}")
    print()
    print("The mixture model budgets the random stage; the two-step scheme")
    print("then beats it by spending its first partition on intervals —")
    print("the paper's contribution, for free.")


if __name__ == "__main__":
    main()
