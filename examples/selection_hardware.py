#!/usr/bin/env python
"""Drive the Fig. 1 selection hardware cycle by cycle.

Loads the real ISCAS-89 s27 netlist from its .bench source, wraps it in a
scan-BIST flow, and steps the register-level model of the scan-cell
selection logic (LFSR + IVR + the two-step counters) through the sessions
of an interval partition and a random-selection partition, printing the
mask stream each session applies — then cross-checks the masks against the
functional partitioners.

Run:  python examples/selection_hardware.py
"""

import numpy as np

from repro import get_circuit
from repro.circuit.bench import write_bench
from repro.core.interval import IntervalPartitioner
from repro.core.random_selection import RandomSelectionPartitioner
from repro.core.selection_hw import SelectionHardware

CHAIN_LENGTH = 16
NUM_GROUPS = 4


def show_masks(title, masks):
    print(title)
    for g, mask in enumerate(masks):
        cells = "".join("#" if m else "." for m in mask)
        print(f"  session {g}: {cells}  ({int(mask.sum())} cells)")


def main():
    s27 = get_circuit("s27")
    print("the real s27 netlist, round-tripped through the .bench writer:")
    print(write_bench(s27))

    print(f"selection hardware over a {CHAIN_LENGTH}-cell chain, "
          f"{NUM_GROUPS} groups per partition")
    print()

    hw = SelectionHardware(CHAIN_LENGTH, NUM_GROUPS, mode="interval")
    masks = hw.run_partition()
    show_masks("interval mode (Shift Counter 2 + Test Counter 2 active):", masks)
    functional = IntervalPartitioner(CHAIN_LENGTH, NUM_GROUPS).next_partition()
    assert np.array_equal(
        hw.partition_from_masks(masks).group_of, functional.group_of
    )
    print("  == matches the functional interval partitioner\n")

    hw = SelectionHardware(CHAIN_LENGTH, NUM_GROUPS, mode="random", seed=0x5EED)
    masks = hw.run_partition()
    show_masks("random-selection mode (label compare per shift):", masks)
    functional = RandomSelectionPartitioner(
        CHAIN_LENGTH, NUM_GROUPS, seed=0x5EED
    ).next_partition()
    assert np.array_equal(
        hw.partition_from_masks(masks).group_of, functional.group_of
    )
    print("  == matches the functional random-selection partitioner")


if __name__ == "__main__":
    main()
