#!/usr/bin/env python
"""Performance-trajectory harness: times the pipeline's hot stages and
writes a machine-readable ``BENCH_PR10.json`` so future PRs can track the
perf trajectory.

Stages, per benchmark circuit:

* ``workload_build_cold_s`` — circuit generation + compile + golden sim +
  fault sampling, empty cache.
* ``workload_build_warm_s`` — same call with the process-wide cache warm.
* ``workload_build_disk_warm_s`` — same call with the memory cache empty
  but the persistent disk tier (``REPRO_DISK_CACHE``) populated.
* ``good_sim_soa_s`` vs ``good_sim_pergate_s`` — one full good-machine
  simulation through the level-group SoA kernel (PR 6) against the
  per-gate loop; ``soa_speedup`` is the ratio and the two value planes
  must match bit-for-bit (asserted).
* ``fault_sim_event_s`` — event-driven fault simulation
  (``REPRO_FAULT_BATCH=0``), the PR 1-3 kernel.
* ``fault_sim_batch_s`` — the fault-batched cone kernel (PR 4), which by
  default evaluates cones through the SoA schedule;
  ``fault_sim_batch_pergate_s`` times the same batches with
  ``REPRO_SOA=0`` and ``fault_soa_speedup`` is their ratio.
  ``fault_batch_speedup`` is the event/batch ratio; ``fault_sim_s``
  keeps tracking the *default* path so the trajectory key stays
  comparable across PRs.
* ``transport_bytes_packed`` vs ``transport_bytes_legacy_pickle`` — bytes
  the fork pool ships per fault-sim pass with the packed codec, against
  what pickling the same responses the pre-PR 4 way would have cost.
* ``serve_coldstart_cold_s`` / ``serve_coldstart_disk_warm_s`` — time for
  a fresh :class:`DiagnosisEngine` to resolve its first request, cold vs
  warm-from-disk.
* ``diagnose_batch_s`` vs ``diagnose_perfault_s`` — the population-fused
  diagnosis kernel (PR 9, one signature scatter for the whole fault
  population) against the per-fault oracle loop, both serial on a
  population pinned to ``DIAG_POPULATION`` faults in both bench modes;
  ``diagnose_speedup`` is the ratio and the two result sets must be
  bit-identical (asserted).
* ``evaluate_warm_s`` — end-to-end scheme evaluation (workload build +
  diagnose, cache warm) with the vectorized kernels.
* ``evaluate_profiled_s`` — the same warm evaluation with a private
  sampling profiler (PR 7) running at the default 97 Hz;
  ``profile_overhead_pct`` is the relative cost (budget: <=5%) and
  ``profile_samples`` the stacks collected while measuring it.
* ``seed_evaluate_s`` — the same evaluation through the *seed* code path:
  per-bit event extraction and the scalar per-event session loop, no
  cache.  ``end_to_end_speedup`` is the ratio; the two paths must agree on
  DR bit-for-bit (asserted).

A separate ``"cluster"`` section (PR 8) drives ``scripts/loadgen.py``
against a spawned single-process server and a 4-worker prefork cluster
(same circuit, same request mix, ``--verify`` on both so replies are
checked against the direct diagnosis path), then repeats the cluster run
with a mid-run ``kill -9`` of one worker.  It records each run's
throughput, ``cluster_speedup`` (multi/single), ``cpu_count`` (the
speedup is meaningless without it — a 4-worker cluster on one core
mostly measures scheduling overhead), and the chaos run's recovery.

A ``"serve_overhead"`` section (PR 10) measures what end-to-end request
tracing plus the always-on flight recorder cost on the serve path.
``serve_overhead_pct`` is the hot-path CPU tracing adds per request
(traced vs untraced tight loops mirroring the server handler, best of
five interleaved reps) over the per-request server CPU measured under
sustained load against one persistent prewarmed server — budget <=3%,
enforced by ``--check``.  A per-request CPU A/B of the two modes
(flight recorder flipped live via ``POST /debug/flightrec``) rides
along informationally; it is not gated because the few-µs effect sits
far inside shared-box phase noise.

All timing passes run with tracing **disabled** (the telemetry no-op
path).  A separate traced pass afterwards collects the span rollup and
metric totals that are embedded under ``"telemetry"`` — so the report
carries both the wall-clock trajectory and where the time went.

The previous trajectory file (``--prev``, default ``BENCH_PR9.json``) is
optional: when
present, per-circuit wall-clock and per-stage telemetry deltas are
recorded under ``"deltas_vs_prev"``; when absent the report simply omits
them.

``--check BENCH_PR10.json`` turns the harness into a CI gate: after the
run it compares this machine's ``fault_batch_speedup``, ``soa_speedup``
and ``diagnose_speedup`` per circuit against the committed report and
exits 1 if any regressed by more than ``--tolerance`` (default 0.25) on
any circuit, or if ``serve_overhead_pct`` blew its 3% budget.  Speedups
are machine-relative ratios, so the gate is robust to absolute-speed
differences between CI runners and the machine that produced the
committed report.

Run:  PYTHONPATH=src python scripts/bench.py [--circuits s953 s5378]
      [--faults N] [--partitions N] [--out BENCH_PR10.json]
      [--prev BENCH_PR9.json] [--quick]
      [--check BENCH_PR10.json --tolerance 0.25]
"""

import argparse
import json
import os
import pickle
import platform
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro import telemetry
from repro.bist.misr import LinearCompactor
from repro.bist.patterns import fast_pattern_matrices
from repro.bist.session import run_partition_sessions_scalar
from repro.core.diagnosis_batch import diagnose_population
from repro.experiments.cache import clear_caches
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    build_circuit_workload,
    evaluate_scheme,
    scheme_partitions,
)
from repro.sim.bitops import WORD_BITS
from repro.sim.faults import collapse_faults
from repro.sim.faultsim import FaultSimulator
from repro.soc.core_wrapper import EmbeddedCore, _name_seed
from repro.telemetry import METRICS, SamplingProfiler, log

NUM_GROUPS = 4
PR_NUMBER = 10

#: Fault-population size for the diagnose-kernel stage, identical in
#: --quick and full runs: ``diagnose_speedup`` grows with population
#: (the fused path amortizes), and CI gates a --quick run against the
#: committed full run, so both must measure the same computation.
DIAG_POPULATION = 30

#: Share of per-request serve CPU that tracing + the flight recorder
#: may add before ``--check`` fails the run.
SERVE_OVERHEAD_BUDGET_PCT = 3.0


def seed_collect_events(response, scan_config):
    """The seed's per-bit event-extraction loop (pre-vectorization)."""
    events = []
    for cell, vec in response.cell_errors.items():
        loc = scan_config.location(cell)
        for word_idx in range(len(vec)):
            word = int(vec[word_idx])
            while word:
                low = word & -word
                bit = low.bit_length() - 1
                pattern = word_idx * WORD_BITS + bit
                events.append(
                    (loc.position, loc.chain, scan_config.global_cycle(cell, pattern))
                )
                word ^= low
    return events


def seed_evaluate(workload, partitions, compactor):
    """End-to-end scheme evaluation through the seed code path: per-bit
    event extraction, scalar per-event sessions, Python mask loops."""
    num_channels = workload.scan_config.num_chains
    total_candidates = 0
    total_actual = 0
    for response in workload.responses:
        events = seed_collect_events(response, workload.scan_config)
        total_cycles = workload.scan_config.total_cycles(response.num_patterns)
        mask = workload.scan_config.presence_mask()
        for part in partitions:
            outcome = run_partition_sessions_scalar(
                events, part.group_of, part.num_groups, total_cycles,
                compactor, num_channels=num_channels,
            )
            failing = np.zeros((part.num_groups, num_channels), dtype=bool)
            for g, per_channel in enumerate(outcome.signatures):
                for w, sig in enumerate(per_channel):
                    if sig != 0:
                        failing[g, w] = True
            mask &= failing[part.group_of, :].T
        grid = workload.scan_config.cell_id_grid()
        candidates = {int(c) for c in grid[mask & (grid >= 0)]}
        actual = set(response.failing_cells)
        if actual:
            total_candidates += len(candidates)
            total_actual += len(actual)
    return (total_candidates - total_actual) / total_actual


def best_of(repeats, fn):
    """Minimum wall time over ``repeats`` calls, plus the last result.

    The timed regions here are tens of milliseconds; a single
    ``perf_counter`` sample swings tens of percent with scheduler noise,
    which would drown the <2% overhead budget this file polices.  The
    minimum is the standard noise-robust estimator for repeatable work.
    """
    best = None
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def bench_circuit(name, config, num_partitions, repeats=3, fault_cap=400):
    timings = {"circuit": name}

    clear_caches()
    t0 = time.perf_counter()
    workload = build_circuit_workload(name, config)
    timings["workload_build_cold_s"] = time.perf_counter() - t0

    timings["workload_build_warm_s"], _ = best_of(
        repeats, lambda: build_circuit_workload(name, config)
    )

    core = EmbeddedCore(_netlist(name, config), num_patterns=config.num_patterns)
    faults = collapse_faults(core.netlist)
    sample = faults[: min(len(faults), fault_cap)]
    sim = FaultSimulator(core.compiled, core._good)

    # Good-machine simulation: the level-group SoA kernel vs the per-gate
    # loop, same pattern matrices the core simulated at construction.
    # The schedule builds (or loads) before the timed region — it is a
    # once-per-circuit cost the cache tiers absorb in real runs.
    compiled = core.compiled
    pi, ff = fast_pattern_matrices(
        compiled.num_inputs, compiled.num_scan_cells, config.num_patterns,
        seed=0xACE1 ^ _name_seed(name),
    )
    compiled.soa_schedule()
    soa_s, soa_result = best_of(
        max(repeats, 3),
        lambda: compiled.simulate(pi, ff, config.num_patterns, soa=True),
    )
    pergate_s, pergate_result = best_of(
        max(repeats, 3),
        lambda: compiled.simulate(pi, ff, config.num_patterns, soa=False),
    )
    assert np.array_equal(soa_result.values, pergate_result.values), (
        f"SoA kernel drift on {name}: good-machine values differ"
    )
    timings["good_sim_soa_s"] = soa_s
    timings["good_sim_pergate_s"] = pergate_s
    timings["soa_speedup"] = pergate_s / soa_s if soa_s else None

    # Event-driven oracle vs the fault-batched cone kernel, both serial so
    # the ratio isolates the kernel (not the pool).  ``fault_sim_s`` keeps
    # naming the *default* path so the cross-PR trajectory key stays
    # meaningful.
    event_s, event_responses = best_of(
        repeats, lambda: sim.simulate_faults(sample, workers=0, batch=0)
    )
    batch_s, batch_responses = best_of(
        repeats, lambda: sim.simulate_faults(sample, workers=0)
    )
    for a, b in zip(event_responses, batch_responses):
        assert a.cell_errors.keys() == b.cell_errors.keys(), (
            f"batched kernel drift on {name}: {a.fault}"
        )
        for cell, vec in a.cell_errors.items():
            assert np.array_equal(vec, b.cell_errors[cell]), (
                f"batched kernel drift on {name}: {a.fault} cell {cell}"
            )
    # The same batches with the SoA cone kernel switched off isolates the
    # gate-axis win inside the batched path.
    saved_soa = os.environ.get("REPRO_SOA")
    os.environ["REPRO_SOA"] = "0"
    try:
        batch_pergate_s, _ = best_of(
            repeats, lambda: sim.simulate_faults(sample, workers=0)
        )
    finally:
        if saved_soa is None:
            os.environ.pop("REPRO_SOA", None)
        else:
            os.environ["REPRO_SOA"] = saved_soa
    timings["fault_sim_event_s"] = event_s
    timings["fault_sim_batch_s"] = batch_s
    timings["fault_sim_batch_pergate_s"] = batch_pergate_s
    timings["fault_soa_speedup"] = (
        batch_pergate_s / batch_s if batch_s else None
    )
    timings["fault_sim_s"] = batch_s
    timings["fault_batch_speedup"] = event_s / batch_s if batch_s else None
    timings["num_faults_simulated"] = len(sample)
    timings["faults_per_sec"] = len(sample) / batch_s if batch_s else None

    # Transport bytes across the fork pool: the packed codec's actual
    # shipped payload vs what pickling the same responses per-chunk (the
    # pre-PR 4 wire format) would have cost.
    before = METRICS.snapshot()
    sim.simulate_faults(sample, workers=2)
    shipped = METRICS.diff(before)["counters"].get("pool.transport_bytes", 0)
    timings["transport_bytes_packed"] = int(shipped)
    timings["transport_bytes_legacy_pickle"] = len(
        pickle.dumps(event_responses, protocol=5)
    )

    # The population-fused diagnosis kernel vs the per-fault oracle, both
    # serial so the ratio isolates the kernel (not the pool).  The
    # population is pinned to DIAG_POPULATION faults in *both* bench
    # modes: the speedup grows with population size (the batch path
    # amortizes), and CI gates a --quick run against the committed full
    # run, so the two must measure the same computation.  The partition
    # set and compactor are warmed outside the timed region — they are
    # once-per-scheme costs the caches absorb in real runs.
    diag_responses = workload.responses[:DIAG_POPULATION]
    partitions = scheme_partitions(
        "two-step", workload.scan_config.max_length, NUM_GROUPS,
        num_partitions, lfsr_degree=config.lfsr_degree,
    )
    compactor = LinearCompactor(
        config.misr_width, workload.scan_config.num_chains
    )
    diag_batch_s, batch_results = best_of(
        max(repeats, 3),
        lambda: diagnose_population(
            diag_responses, workload.scan_config, partitions, compactor,
            workers=0,
        ),
    )
    diag_perfault_s, perfault_results = best_of(
        max(repeats, 3),
        lambda: diagnose_population(
            diag_responses, workload.scan_config, partitions, compactor,
            workers=0, chunk=0,
        ),
    )
    for a, b in zip(perfault_results, batch_results):
        assert a.candidate_cells == b.candidate_cells, (
            f"fused diagnosis drift on {name}: candidates differ"
        )
        assert a.candidate_history == b.candidate_history, (
            f"fused diagnosis drift on {name}: histories differ"
        )
        assert a.actual_cells == b.actual_cells, (
            f"fused diagnosis drift on {name}: actual cells differ"
        )
    timings["diagnose_batch_s"] = diag_batch_s
    timings["diagnose_perfault_s"] = diag_perfault_s
    timings["diagnose_speedup"] = (
        diag_perfault_s / diag_batch_s if diag_batch_s else None
    )

    # End-to-end scheme evaluation, cache warm, vectorized kernels.  One
    # untimed call warms the shared stores (compactor impulse tables,
    # partition sets) the way any full experiment sweep would.
    evaluate_scheme(workload, "two-step", num_partitions, NUM_GROUPS, config)
    timings["evaluate_warm_s"], evaluation = best_of(
        3,
        lambda: evaluate_scheme(
            workload, "two-step", num_partitions, NUM_GROUPS, config
        ),
    )
    timings["dr"] = evaluation.dr

    # Sampling-profiler overhead: the identical warm evaluation with a
    # *private* sampler running at the default 97 Hz — private so the
    # process-wide PROFILER (and any manifest written later) never sees
    # these samples.  Budget: <=5% over the unprofiled pass; jitter can
    # make the min-over-repeats estimate mildly negative.
    profiler = SamplingProfiler(hz=97)
    profiler.start()
    try:
        timings["evaluate_profiled_s"], _ = best_of(
            3,
            lambda: evaluate_scheme(
                workload, "two-step", num_partitions, NUM_GROUPS, config
            ),
        )
    finally:
        profiler.stop()
    timings["profile_samples"] = profiler.data.total
    timings["profile_overhead_pct"] = (
        (timings["evaluate_profiled_s"] - timings["evaluate_warm_s"])
        / timings["evaluate_warm_s"] * 100.0
        if timings["evaluate_warm_s"] else None
    )

    # The same evaluation through the seed code path (no cache, scalar
    # kernels).  The compactor is built inside the timed region: the seed
    # constructed one per evaluation too.
    def seed_pass():
        clear_caches()
        seed_workload = build_circuit_workload(name, config)
        compactor = LinearCompactor(
            config.misr_width, seed_workload.scan_config.num_chains
        )
        return seed_evaluate(seed_workload, partitions, compactor)

    timings["seed_evaluate_s"], seed_dr = best_of(2, seed_pass)
    timings["seed_dr"] = seed_dr

    assert seed_dr == evaluation.dr, (
        f"DR drift on {name}: seed {seed_dr} != vectorized {evaluation.dr}"
    )
    # Warm end-to-end = (cached) build + diagnose; the seed always rebuilt.
    warm_total = timings["workload_build_warm_s"] + timings["evaluate_warm_s"]
    timings["end_to_end_warm_s"] = warm_total
    timings["end_to_end_speedup"] = timings["seed_evaluate_s"] / warm_total
    return timings


def _netlist(name, config):
    from repro.circuit.library import get_circuit

    return get_circuit(name, scale=config.scale)


def bench_disk_cache(name, config, num_partitions):
    """Persistent-cache stages, run inside a throwaway ``REPRO_DISK_CACHE``.

    Measures the workload rebuild with only the disk tier warm, plus the
    first-request latency of a fresh :class:`DiagnosisEngine` cold vs
    warm-from-disk — the ``repro serve`` cold-start the disk tier exists
    to kill.
    """
    from repro.service.engine import DiagnosisEngine
    from repro.service.protocol import DiagnoseRequest

    timings = {}
    request = DiagnoseRequest(
        circuit=name,
        num_partitions=num_partitions,
        num_groups=NUM_GROUPS,
        num_patterns=config.num_patterns,
        fault_count=config.num_faults,
        fault_index=0,
    )
    saved = os.environ.get("REPRO_DISK_CACHE")
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        os.environ["REPRO_DISK_CACHE"] = tmp
        try:
            # Cold serve: empty memory + empty disk; this pass also
            # populates the disk tier for the warm passes below.
            clear_caches()
            t0 = time.perf_counter()
            DiagnosisEngine(workers=0).prewarm(request)
            timings["serve_coldstart_cold_s"] = time.perf_counter() - t0

            clear_caches()
            engine = DiagnosisEngine(workers=0)
            t0 = time.perf_counter()
            engine.warm_from_disk()
            engine.prewarm(request)
            timings["serve_coldstart_disk_warm_s"] = time.perf_counter() - t0

            # Workload rebuild served straight off the disk tier.
            clear_caches()
            build_circuit_workload(name, config)  # populate disk entry
            clear_caches()
            t0 = time.perf_counter()
            build_circuit_workload(name, config)
            timings["workload_build_disk_warm_s"] = time.perf_counter() - t0
        finally:
            if saved is None:
                os.environ.pop("REPRO_DISK_CACHE", None)
            else:
                os.environ["REPRO_DISK_CACHE"] = saved
            clear_caches()
    timings["serve_disk_warm_speedup"] = (
        timings["serve_coldstart_cold_s"] / timings["serve_coldstart_disk_warm_s"]
        if timings["serve_coldstart_disk_warm_s"]
        else None
    )
    return timings


def bench_cluster(circuit, quick, cluster_workers=4):
    """Cluster scaling + chaos stage, driven through ``scripts/loadgen.py``.

    Three spawned runs against the same circuit and request mix, all with
    ``--verify`` (replies checked against the direct diagnosis path) and
    ``--fail-on-5xx``:

    1. one single-process server,
    2. a ``cluster_workers``-worker prefork cluster,
    3. the same cluster with one worker ``kill -9``'d mid-run.

    ``cluster_speedup`` is (2)/(1) throughput.  ``cpu_count`` is recorded
    because the ratio only means something relative to it: prefork scales
    with cores, so on a 1-core box the expected ratio is ~1.0 and the
    stage is really exercising correctness + failover, not speed.
    """
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    import loadgen

    requests = 60 if quick else 200
    concurrency = 16 if quick else 50

    def run(tag, extra, tmp):
        out = Path(tmp) / f"{tag}.json"
        argv = ["--spawn", "--requests", str(requests),
                "--concurrency", str(concurrency),
                "--circuit", circuit, "--fault-count", "20",
                "--verify", "--fail-on-5xx", "--out", str(out)] + extra
        log(f"cluster stage: loadgen {tag} ({' '.join(extra) or 'single'})")
        code = loadgen.main(argv)
        report = json.loads(out.read_text())
        service = report["service"]
        row = {
            "throughput_rps": service["throughput_rps"],
            "p95_ms": service["latency_ms"]["p95"],
            "ok": service["codes"].get("ok", 0),
            "dropped": service["dropped"],
            "deterministic": report.get("determinism", {}).get("ok"),
            "drain_clean": report.get("drain", {}).get("clean"),
            "exit_code": code,
        }
        if "chaos" in report:
            row["chaos"] = {
                key: report["chaos"].get(key)
                for key in ("recovered", "recovered_s", "killed_at_progress",
                            "skipped")
            }
        return row

    multi = ["--workers", str(cluster_workers)]
    with tempfile.TemporaryDirectory(prefix="repro-bench-cluster-") as tmp:
        single_run = run("single", [], tmp)
        cluster_run = run("cluster", multi, tmp)
        chaos_run = run("chaos", multi + ["--kill-one-at", "0.5"], tmp)

    single_rps = single_run["throughput_rps"]
    cluster_rps = cluster_run["throughput_rps"]
    return {
        "workers": cluster_workers,
        "cpu_count": os.cpu_count(),
        "requests": requests,
        "concurrency": concurrency,
        "circuit": circuit,
        "single_process": single_run,
        "cluster": cluster_run,
        "cluster_chaos": chaos_run,
        "cluster_speedup": (
            round(cluster_rps / single_rps, 2) if single_rps else None
        ),
    }


def _traced_path_delta_us(batch_size=8, iters=10000, reps=5):
    """Per-request CPU cost (µs) tracing *adds* to the serve hot path.

    Mirrors ``DiagnosisServer._handle_diagnose`` in both modes exactly:
    the traced path parses the client traceparent, installs the trace
    scope, appends the request record to a live 4096-slot flight
    recorder and amortizes the engine's per-batch span record over the
    batch; the untraced path mints its own trace id, installs the same
    scope and builds the same record, which a disabled recorder drops.
    The difference of the two tight loops (best of ``reps``,
    interleaved) is the gate's numerator.  An end-to-end throughput A/B
    of the same quantity was tried first and abandoned: the effect is a
    few µs per ~300 µs request, and phase-to-phase noise on a shared
    box (drift, frequency scaling, batching luck) is 10-30% — runs
    disagreed on the *sign*.  The hot-path delta is the quantity the
    budget actually constrains, and two tight loops resolve it to
    fractions of a µs.
    """
    from repro.telemetry.flightrec import (
        FlightRecorder, format_traceparent, make_record, new_span_id,
        new_trace_id, parse_traceparent, trace_scope,
    )

    rec_on = FlightRecorder(capacity=4096)
    rec_off = FlightRecorder(capacity=0)
    header = format_traceparent(new_trace_id(), new_span_id())
    key = "s953/partition"

    def request(rec, traced, seq):
        started = time.time()
        if traced:
            trace_id, client_span = parse_traceparent(header)
        else:
            trace_id, client_span = new_trace_id(), None
        server_span = new_span_id()
        with trace_scope(trace_id, server_span):
            pass
        rec.record(make_record(
            "service.request", trace_id, server_span,
            parent_id=client_span, kind="request", key=key,
            start=started, duration_ms=0.3 + (seq % 7) * 0.01,
            status="ok", queue_wait_ms=0.1, execute_ms=0.2,
            batch_size=batch_size,
        ))
        if traced and seq % batch_size == 0:
            # The engine records one batch span per coalesced batch;
            # charge this request its amortized share.
            batch_span = new_span_id()
            rec.record(make_record(
                "service.batch", trace_id, batch_span,
                parent_id=server_span, kind="batch", key="batch",
                start=started, duration_ms=2.0, batch_size=batch_size,
                links=[{"trace_id": trace_id, "span_id": server_span}
                       for _ in range(batch_size - 1)],
            ))

    def loop(rec, traced):
        t0 = time.perf_counter()
        for seq in range(iters):
            request(rec, traced, seq)
        return (time.perf_counter() - t0) / iters * 1e6

    on_us, off_us = [], []
    loop(rec_on, True), loop(rec_off, False)  # warm both paths
    for _ in range(reps):
        on_us.append(loop(rec_on, True))
        off_us.append(loop(rec_off, False))
    return min(on_us), min(off_us)


def bench_serve_overhead(circuit, quick):
    """PR 10: what tracing + the flight recorder cost on the serve path.

    Two measurements against *one* persistent prewarmed single-process
    server (two separately spawned processes differ by more than the
    effect, so both modes must share one; modes flip live via
    ``POST /debug/flightrec``):

    * The gated number.  ``traced_path_delta_us`` is the hot-path CPU
      tracing adds per request (see :func:`_traced_path_delta_us`);
      ``per_request_cpu_us`` is what one request costs the server
      process under sustained load (``/proc/<pid>/stat`` CPU over
      completed requests, cheaper mode of the two so the ratio is
      conservative).  ``serve_overhead_pct`` is their ratio and
      ``--check`` enforces the <=3% budget.
    * The informational A/B.  Per-request server CPU in each mode
      (flight recorder on + client trace ids vs recorder off + no
      headers) and its ``end_to_end_delta_pct`` — recorded so a gross
      regression (10%+) still shows up end-to-end, but not gated: on a
      noisy box the phase-to-phase spread is wider than the budget.
    """
    from repro.service.client import ServiceClient
    from repro.telemetry.flightrec import new_trace_id

    duration_s = 1.0 if quick else 2.0
    concurrency = 8

    def free_port():
        with socket.socket() as sock:
            sock.bind(("127.0.0.1", 0))
            return sock.getsockname()[1]

    def spawn_server(port):
        env = dict(os.environ, REPRO_LOG="quiet", REPRO_WORKERS="1")
        env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
        return subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--port", str(port), "--prewarm", circuit],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)

    clk = os.sysconf("SC_CLK_TCK")

    def server_cpu_s(pid):
        with open(f"/proc/{pid}/stat") as fh:
            fields = fh.read().rsplit(")", 1)[1].split()
        return (int(fields[11]) + int(fields[12])) / clk

    def load_phase(port, pid, traced, seconds):
        """Per-request server CPU (µs) under ``concurrency`` closed-loop
        clients; traced mode sends a fresh client trace id per request."""
        with ServiceClient(port=port) as client:
            client.debug_flightrec(capacity=4096 if traced else 0)
        import threading
        stop = time.monotonic() + seconds
        counts = [0] * concurrency

        def worker(slot):
            body = {"circuit": circuit, "fault_count": 20,
                    "num_patterns": 128}
            with ServiceClient(port=port) as client:
                while time.monotonic() < stop:
                    body["fault_index"] = counts[slot] % 20
                    client.diagnose(
                        body,
                        trace_id=new_trace_id() if traced else None)
                    counts[slot] += 1

        threads = [threading.Thread(target=worker, args=(slot,))
                   for slot in range(concurrency)]
        cpu0 = server_cpu_s(pid)
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        cpu_us = (server_cpu_s(pid) - cpu0) * 1e6
        done = sum(counts)
        return {
            "requests": done,
            "throughput_rps": round(done / seconds, 1),
            "per_request_cpu_us": round(cpu_us / done, 1) if done else None,
        }

    port = free_port()
    server = spawn_server(port)
    try:
        with ServiceClient(port=port) as client:
            client.wait_ready(timeout_s=120.0)
        log("serve-overhead stage: warmup + load phases")
        load_phase(port, server.pid, True, 0.5)     # discarded: cold caches
        load_phase(port, server.pid, False, 0.5)
        flight_on = load_phase(port, server.pid, True, duration_s)
        flight_off = load_phase(port, server.pid, False, duration_s)
    finally:
        server.terminate()
        try:
            server.wait(timeout=15)
        except subprocess.TimeoutExpired:
            server.kill()
            server.wait()
    log("serve-overhead stage: hot-path micro delta")
    on_us, off_us = _traced_path_delta_us(
        iters=5000 if quick else 10000)
    delta_us = max(0.0, on_us - off_us)
    candidates = [row["per_request_cpu_us"]
                  for row in (flight_on, flight_off)
                  if row["per_request_cpu_us"]]
    per_request_us = min(candidates) if candidates else None
    on_cpu = flight_on["per_request_cpu_us"]
    off_cpu = flight_off["per_request_cpu_us"]
    return {
        "duration_s": duration_s,
        "concurrency": concurrency,
        "circuit": circuit,
        "flight_on": flight_on,
        "flight_off": flight_off,
        "end_to_end_delta_pct": (
            round((on_cpu / off_cpu - 1.0) * 100.0, 2)
            if on_cpu and off_cpu else None
        ),
        "traced_path_on_us": round(on_us, 3),
        "traced_path_off_us": round(off_us, 3),
        "traced_path_delta_us": round(delta_us, 3),
        "per_request_cpu_us": per_request_us,
        "serve_overhead_pct": (
            round(delta_us / per_request_us * 100.0, 2)
            if per_request_us else None
        ),
        "budget_pct": SERVE_OVERHEAD_BUDGET_PCT,
    }


#: Machine-relative ratios the ``--check`` gate holds against the
#: committed report; a metric absent from either side is skipped, so old
#: reports keep gating what they actually recorded.
GATED_SPEEDUPS = ("fault_batch_speedup", "soa_speedup", "diagnose_speedup")


def check_against(report, committed, tolerance):
    """CI gate: fail when any :data:`GATED_SPEEDUPS` ratio regressed vs
    the committed report by more than ``tolerance`` on any circuit, or
    when the serve path's tracing overhead blew its budget.

    Compares machine-relative ratios, never absolute wall clocks, so a
    slower CI runner alone cannot trip the gate.  The serve-overhead
    budget is itself a same-machine ratio (traced vs untraced run on
    this runner), so it needs no committed baseline.
    """
    failures = []
    overhead = (report.get("serve_overhead") or {}).get("serve_overhead_pct")
    if overhead is not None:
        budget = (report.get("serve_overhead") or {}).get(
            "budget_pct", SERVE_OVERHEAD_BUDGET_PCT)
        status = "ok" if overhead <= budget else "OVER BUDGET"
        print(f"check: serve tracing overhead {overhead:+.2f}% "
              f"(budget {budget:.0f}%) {status}")
        if overhead > budget:
            failures.append("serve:overhead")
    if committed is None:
        print("check: no committed report; skipping speedup gate")
        if failures:
            print(f"check: FAIL — {', '.join(failures)}")
            return 1
        return 0
    baseline = {c["circuit"]: c for c in committed.get("circuits", [])}
    for timing in report["circuits"]:
        before = baseline.get(timing["circuit"], {})
        for metric in GATED_SPEEDUPS:
            expected = before.get(metric)
            got = timing.get(metric)
            if not expected or not got:
                continue
            floor = expected * (1.0 - tolerance)
            status = "ok" if got >= floor else "REGRESSED"
            print(
                f"check: {timing['circuit']} {metric} "
                f"{got:.2f}x vs committed {expected:.2f}x "
                f"(floor {floor:.2f}x) {status}"
            )
            if got < floor:
                failures.append(f"{timing['circuit']}:{metric}")
    if failures:
        print(f"check: FAIL — regressions: {', '.join(failures)} "
              f"(speedup tolerance {tolerance:.0%})")
        return 1
    print("check: PASS")
    return 0


def traced_rollup(circuits, config, num_partitions):
    """One traced end-to-end pass (cache warm) to embed where time goes.

    Runs after the timing passes so trace overhead never touches the
    recorded wall clocks.
    """
    telemetry.TRACER.reset()
    was_enabled = telemetry.trace_enabled()
    telemetry.enable_tracing()
    try:
        for name in circuits:
            workload = build_circuit_workload(name, config)
            evaluate_scheme(workload, "two-step", num_partitions, NUM_GROUPS, config)
    finally:
        if not was_enabled:
            telemetry.disable_tracing()
    return {
        "span_rollup": telemetry.span_rollup(),
        "metrics": telemetry.METRICS.snapshot(),
    }


def load_prev(path):
    """The previous trajectory report, or None when it does not exist or
    cannot be parsed (first run, fresh clone, renamed artifacts)."""
    path = Path(path)
    if not path.exists():
        log(f"no previous trajectory at {path}; skipping deltas")
        return None
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        log(f"cannot read previous trajectory {path}: {exc}; skipping deltas")
        return None


def deltas_vs_prev(report, prev):
    """Wall-clock and telemetry-rollup deltas against the previous report."""
    if not prev:
        return None
    deltas = {"prev_pr": prev.get("pr"), "circuits": {}, "stages": {}}
    prev_circuits = {c.get("circuit"): c for c in prev.get("circuits", [])}
    for timing in report["circuits"]:
        before = prev_circuits.get(timing["circuit"])
        if not before:
            continue
        per = {}
        for key in ("workload_build_cold_s", "fault_sim_s", "good_sim_soa_s",
                    "diagnose_batch_s", "evaluate_warm_s", "end_to_end_warm_s",
                    "seed_evaluate_s"):
            now, old = timing.get(key), before.get(key)
            if now is not None and old:
                per[key] = {"now": now, "prev": old, "ratio": now / old}
        deltas["circuits"][timing["circuit"]] = per
    prev_rollup = {
        row["name"]: row
        for row in (prev.get("telemetry") or {}).get("span_rollup", [])
    }
    for row in report["telemetry"]["span_rollup"]:
        before = prev_rollup.get(row["name"])
        deltas["stages"][row["name"]] = {
            "wall_s": row["wall_s"],
            "prev_wall_s": before["wall_s"] if before else None,
        }
    return deltas


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--circuits", nargs="+", default=None)
    parser.add_argument("--faults", type=int, default=None)
    parser.add_argument("--patterns", type=int, default=128)
    parser.add_argument("--partitions", type=int, default=8)
    parser.add_argument("--out", default=f"BENCH_PR{PR_NUMBER}.json")
    parser.add_argument("--prev", default="BENCH_PR9.json",
                        help="previous trajectory file for deltas "
                        "(missing is fine)")
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized run: one circuit, fewer faults and "
                        "repeats (skews absolute times, not ratios)")
    parser.add_argument("--check", metavar="REPORT", default=None,
                        help="compare fault_batch_speedup against a "
                        "committed report; exit 1 on regression")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional speedup regression for "
                        "--check (default 0.25)")
    args = parser.parse_args()

    if args.circuits is None:
        args.circuits = ["s953"] if args.quick else ["s953", "s5378"]
    if args.faults is None:
        args.faults = 30 if args.quick else 60
    repeats = 1 if args.quick else 3
    fault_cap = 200 if args.quick else 400

    # Read the gate's baseline up front so `--out` and `--check` may name
    # the same file without the fresh report clobbering the baseline.
    committed = load_prev(args.check) if args.check else None

    config = ExperimentConfig(
        num_faults=args.faults, num_faults_large=args.faults,
        num_patterns=args.patterns,
    )
    report = {
        "pr": PR_NUMBER,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "quick": args.quick,
        "config": {
            "faults": args.faults,
            "patterns": args.patterns,
            "partitions": args.partitions,
            "groups": NUM_GROUPS,
        },
        "circuits": [],
    }
    for name in args.circuits:
        log(f"benchmarking {name} ...")
        timings = bench_circuit(
            name, config, args.partitions, repeats=repeats, fault_cap=fault_cap
        )
        timings.update(bench_disk_cache(name, config, args.partitions))
        report["circuits"].append(timings)
        log(
            f"  build cold {timings['workload_build_cold_s']:.3f}s"
            f" | warm {timings['workload_build_warm_s'] * 1000:.2f}ms"
            f" | disk-warm {timings['workload_build_disk_warm_s'] * 1000:.2f}ms"
            f" | {timings['faults_per_sec']:.0f} faults/s"
            f" | soa speedup {timings['soa_speedup']:.1f}x"
            f" | batch speedup {timings['fault_batch_speedup']:.1f}x"
            f" | diagnose speedup {timings['diagnose_speedup']:.1f}x"
            f" | serve cold {timings['serve_coldstart_cold_s']:.3f}s"
            f" vs disk-warm {timings['serve_coldstart_disk_warm_s']:.3f}s"
            f" | end-to-end speedup {timings['end_to_end_speedup']:.1f}x"
            f" | profile overhead {timings['profile_overhead_pct']:+.1f}%"
            f" ({timings['profile_samples']} samples)"
        )
    log("benchmarking cluster scaling ...")
    report["cluster"] = bench_cluster(args.circuits[0], args.quick)
    cluster = report["cluster"]
    log(
        f"  cluster x{cluster['workers']} on {cluster['cpu_count']} cpu(s): "
        f"{cluster['single_process']['throughput_rps']:.1f} -> "
        f"{cluster['cluster']['throughput_rps']:.1f} rps "
        f"({cluster['cluster_speedup']}x) | chaos recovered="
        f"{cluster['cluster_chaos'].get('chaos', {}).get('recovered')}"
    )
    log("benchmarking serve tracing overhead ...")
    report["serve_overhead"] = bench_serve_overhead(args.circuits[0], args.quick)
    overhead = report["serve_overhead"]
    log(
        f"  serve overhead {overhead['serve_overhead_pct']:+.2f}% "
        f"(budget {overhead['budget_pct']:.0f}%): "
        f"+{overhead['traced_path_delta_us']:.2f} us traced hot path on "
        f"{overhead['per_request_cpu_us']:.0f} us/request; end-to-end "
        f"{overhead['end_to_end_delta_pct']:+.2f}% cpu/request"
    )
    log("collecting traced rollup ...")
    report["telemetry"] = traced_rollup(args.circuits, config, args.partitions)
    deltas = deltas_vs_prev(report, load_prev(args.prev))
    if deltas is not None:
        report["deltas_vs_prev"] = deltas
    out = Path(args.out)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")
    if args.check:
        return check_against(report, committed, args.tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main())
