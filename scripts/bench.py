#!/usr/bin/env python
"""Performance-trajectory harness: times the pipeline's hot stages and
writes a machine-readable ``BENCH_PR2.json`` so future PRs can track the
perf trajectory.

Stages, per benchmark circuit:

* ``workload_build_cold_s`` — circuit generation + compile + golden sim +
  fault sampling, empty cache.
* ``workload_build_warm_s`` — same call with the process-wide cache warm.
* ``fault_sim_s`` / ``faults_per_sec`` — raw fault-simulation throughput
  over a fixed fault sample.
* ``evaluate_warm_s`` — end-to-end scheme evaluation (workload build +
  diagnose, cache warm) with the vectorized kernels.
* ``seed_evaluate_s`` — the same evaluation through the *seed* code path:
  per-bit event extraction and the scalar per-event session loop, no
  cache.  ``end_to_end_speedup`` is the ratio; the two paths must agree on
  DR bit-for-bit (asserted).

All timing passes run with tracing **disabled** (the telemetry no-op
path).  A separate traced pass afterwards collects the span rollup and
metric totals that are embedded under ``"telemetry"`` — so the report
carries both the wall-clock trajectory and where the time went.

The previous trajectory file (``--prev``, default ``BENCH_PR1.json``) is
optional: when present, per-circuit wall-clock and per-stage telemetry
deltas are recorded under ``"deltas_vs_prev"``; when absent the report
simply omits them.

Run:  PYTHONPATH=src python scripts/bench.py [--circuits s953 s5378]
      [--faults N] [--partitions N] [--out BENCH_PR2.json]
      [--prev BENCH_PR1.json]
"""

import argparse
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro import telemetry
from repro.bist.misr import LinearCompactor
from repro.bist.session import run_partition_sessions_scalar
from repro.experiments.cache import clear_caches
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    build_circuit_workload,
    evaluate_scheme,
    scheme_partitions,
)
from repro.sim.bitops import WORD_BITS
from repro.sim.faults import collapse_faults
from repro.sim.faultsim import FaultSimulator
from repro.soc.core_wrapper import EmbeddedCore
from repro.telemetry import log

NUM_GROUPS = 4
PR_NUMBER = 2


def seed_collect_events(response, scan_config):
    """The seed's per-bit event-extraction loop (pre-vectorization)."""
    events = []
    for cell, vec in response.cell_errors.items():
        loc = scan_config.location(cell)
        for word_idx in range(len(vec)):
            word = int(vec[word_idx])
            while word:
                low = word & -word
                bit = low.bit_length() - 1
                pattern = word_idx * WORD_BITS + bit
                events.append(
                    (loc.position, loc.chain, scan_config.global_cycle(cell, pattern))
                )
                word ^= low
    return events


def seed_evaluate(workload, partitions, compactor):
    """End-to-end scheme evaluation through the seed code path: per-bit
    event extraction, scalar per-event sessions, Python mask loops."""
    num_channels = workload.scan_config.num_chains
    total_candidates = 0
    total_actual = 0
    for response in workload.responses:
        events = seed_collect_events(response, workload.scan_config)
        total_cycles = workload.scan_config.total_cycles(response.num_patterns)
        mask = workload.scan_config.presence_mask()
        for part in partitions:
            outcome = run_partition_sessions_scalar(
                events, part.group_of, part.num_groups, total_cycles,
                compactor, num_channels=num_channels,
            )
            failing = np.zeros((part.num_groups, num_channels), dtype=bool)
            for g, per_channel in enumerate(outcome.signatures):
                for w, sig in enumerate(per_channel):
                    if sig != 0:
                        failing[g, w] = True
            mask &= failing[part.group_of, :].T
        grid = workload.scan_config.cell_id_grid()
        candidates = {int(c) for c in grid[mask & (grid >= 0)]}
        actual = set(response.failing_cells)
        if actual:
            total_candidates += len(candidates)
            total_actual += len(actual)
    return (total_candidates - total_actual) / total_actual


def best_of(repeats, fn):
    """Minimum wall time over ``repeats`` calls, plus the last result.

    The timed regions here are tens of milliseconds; a single
    ``perf_counter`` sample swings tens of percent with scheduler noise,
    which would drown the <2% overhead budget this file polices.  The
    minimum is the standard noise-robust estimator for repeatable work.
    """
    best = None
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def bench_circuit(name, config, num_partitions):
    timings = {"circuit": name}

    clear_caches()
    t0 = time.perf_counter()
    workload = build_circuit_workload(name, config)
    timings["workload_build_cold_s"] = time.perf_counter() - t0

    timings["workload_build_warm_s"], _ = best_of(
        3, lambda: build_circuit_workload(name, config)
    )

    core = EmbeddedCore(_netlist(name, config), num_patterns=config.num_patterns)
    faults = collapse_faults(core.netlist)
    sample = faults[: min(len(faults), 400)]
    sim = FaultSimulator(core.compiled, core._good)
    fault_sim_s, _ = best_of(3, lambda: sim.simulate_faults(sample))
    timings["fault_sim_s"] = fault_sim_s
    timings["num_faults_simulated"] = len(sample)
    timings["faults_per_sec"] = len(sample) / fault_sim_s if fault_sim_s else None

    # End-to-end scheme evaluation, cache warm, vectorized kernels.  One
    # untimed call warms the shared stores (compactor impulse tables,
    # partition sets) the way any full experiment sweep would.
    evaluate_scheme(workload, "two-step", num_partitions, NUM_GROUPS, config)
    timings["evaluate_warm_s"], evaluation = best_of(
        3,
        lambda: evaluate_scheme(
            workload, "two-step", num_partitions, NUM_GROUPS, config
        ),
    )
    timings["dr"] = evaluation.dr

    # The same evaluation through the seed code path (no cache, scalar
    # kernels).  The compactor is built inside the timed region: the seed
    # constructed one per evaluation too.
    partitions = scheme_partitions(
        "two-step", workload.scan_config.max_length, NUM_GROUPS,
        num_partitions, lfsr_degree=config.lfsr_degree,
    )

    def seed_pass():
        clear_caches()
        seed_workload = build_circuit_workload(name, config)
        compactor = LinearCompactor(
            config.misr_width, seed_workload.scan_config.num_chains
        )
        return seed_evaluate(seed_workload, partitions, compactor)

    timings["seed_evaluate_s"], seed_dr = best_of(2, seed_pass)
    timings["seed_dr"] = seed_dr

    assert seed_dr == evaluation.dr, (
        f"DR drift on {name}: seed {seed_dr} != vectorized {evaluation.dr}"
    )
    # Warm end-to-end = (cached) build + diagnose; the seed always rebuilt.
    warm_total = timings["workload_build_warm_s"] + timings["evaluate_warm_s"]
    timings["end_to_end_warm_s"] = warm_total
    timings["end_to_end_speedup"] = timings["seed_evaluate_s"] / warm_total
    return timings


def _netlist(name, config):
    from repro.circuit.library import get_circuit

    return get_circuit(name, scale=config.scale)


def traced_rollup(circuits, config, num_partitions):
    """One traced end-to-end pass (cache warm) to embed where time goes.

    Runs after the timing passes so trace overhead never touches the
    recorded wall clocks.
    """
    telemetry.TRACER.reset()
    was_enabled = telemetry.trace_enabled()
    telemetry.enable_tracing()
    try:
        for name in circuits:
            workload = build_circuit_workload(name, config)
            evaluate_scheme(workload, "two-step", num_partitions, NUM_GROUPS, config)
    finally:
        if not was_enabled:
            telemetry.disable_tracing()
    return {
        "span_rollup": telemetry.span_rollup(),
        "metrics": telemetry.METRICS.snapshot(),
    }


def load_prev(path):
    """The previous trajectory report, or None when it does not exist or
    cannot be parsed (first run, fresh clone, renamed artifacts)."""
    path = Path(path)
    if not path.exists():
        log(f"no previous trajectory at {path}; skipping deltas")
        return None
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        log(f"cannot read previous trajectory {path}: {exc}; skipping deltas")
        return None


def deltas_vs_prev(report, prev):
    """Wall-clock and telemetry-rollup deltas against the previous report."""
    if not prev:
        return None
    deltas = {"prev_pr": prev.get("pr"), "circuits": {}, "stages": {}}
    prev_circuits = {c.get("circuit"): c for c in prev.get("circuits", [])}
    for timing in report["circuits"]:
        before = prev_circuits.get(timing["circuit"])
        if not before:
            continue
        per = {}
        for key in ("workload_build_cold_s", "evaluate_warm_s",
                    "end_to_end_warm_s", "seed_evaluate_s"):
            now, old = timing.get(key), before.get(key)
            if now is not None and old:
                per[key] = {"now": now, "prev": old, "ratio": now / old}
        deltas["circuits"][timing["circuit"]] = per
    prev_rollup = {
        row["name"]: row
        for row in (prev.get("telemetry") or {}).get("span_rollup", [])
    }
    for row in report["telemetry"]["span_rollup"]:
        before = prev_rollup.get(row["name"])
        deltas["stages"][row["name"]] = {
            "wall_s": row["wall_s"],
            "prev_wall_s": before["wall_s"] if before else None,
        }
    return deltas


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--circuits", nargs="+", default=["s953", "s5378"])
    parser.add_argument("--faults", type=int, default=60)
    parser.add_argument("--patterns", type=int, default=128)
    parser.add_argument("--partitions", type=int, default=8)
    parser.add_argument("--out", default=f"BENCH_PR{PR_NUMBER}.json")
    parser.add_argument("--prev", default=f"BENCH_PR{PR_NUMBER - 1}.json",
                        help="previous trajectory file for deltas "
                        "(missing is fine)")
    args = parser.parse_args()

    config = ExperimentConfig(
        num_faults=args.faults, num_faults_large=args.faults,
        num_patterns=args.patterns,
    )
    report = {
        "pr": PR_NUMBER,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "config": {
            "faults": args.faults,
            "patterns": args.patterns,
            "partitions": args.partitions,
            "groups": NUM_GROUPS,
        },
        "circuits": [],
    }
    for name in args.circuits:
        log(f"benchmarking {name} ...")
        timings = bench_circuit(name, config, args.partitions)
        report["circuits"].append(timings)
        log(
            f"  build cold {timings['workload_build_cold_s']:.3f}s"
            f" | warm {timings['workload_build_warm_s'] * 1000:.2f}ms"
            f" | {timings['faults_per_sec']:.0f} faults/s"
            f" | evaluate {timings['evaluate_warm_s']:.3f}s"
            f" | seed path {timings['seed_evaluate_s']:.3f}s"
            f" | end-to-end speedup {timings['end_to_end_speedup']:.1f}x"
        )
    log("collecting traced rollup ...")
    report["telemetry"] = traced_rollup(args.circuits, config, args.partitions)
    deltas = deltas_vs_prev(report, load_prev(args.prev))
    if deltas is not None:
        report["deltas_vs_prev"] = deltas
    out = Path(args.out)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
