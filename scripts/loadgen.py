#!/usr/bin/env python
"""Open-loop load generator for the diagnosis service.

Drives ``POST /diagnose`` with a configurable request rate (``--rps``;
0 = closed-loop, as fast as ``--concurrency`` in-flight requests allow),
collects exact client-side latencies, and writes a machine-readable
report (default ``BENCH_PR3.json``) with throughput, p50/p95/p99 latency,
per-code outcome counts and — when ``--baseline N`` is given — the
measured speedup over ``N`` sequential one-shot CLI invocations (each of
which re-pays interpreter start-up, netlist compile and golden
simulation; the service pays them once).

``--spawn`` makes the run self-contained: start a server subprocess, wait
for ``/healthz``, apply the load, validate ``/metrics`` (well-formed JSON
with queue/batching/latency sections), then SIGTERM it and record whether
it drained and exited cleanly — exactly the sequence the CI smoke job
runs.  ``--verify`` additionally checks determinism: every reply for a
given fault index must be bit-identical across the run *and* equal to the
direct in-process ``core.diagnosis`` result.

Run:  PYTHONPATH=src python scripts/loadgen.py --requests 200
          [--rps 0] [--concurrency 200] [--circuit s953]
          [--spawn] [--baseline 5] [--verify] [--fail-on-5xx]
          [--out BENCH_PR3.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path
from queue import Empty, Queue
from typing import Any, Dict, List, Optional

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.service.client import ServiceClient, TransportError  # noqa: E402
from repro.service.protocol import ServiceError  # noqa: E402


def parse_args(argv: Optional[List[str]] = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=None,
                        help="server port (default REPRO_SERVE_PORT or 8953; "
                        "--spawn picks a free port automatically)")
    parser.add_argument("--requests", type=int, default=200)
    parser.add_argument("--rps", type=float, default=0.0,
                        help="open-loop arrival rate; 0 = closed loop")
    parser.add_argument("--concurrency", type=int, default=200,
                        help="max in-flight requests (worker threads)")
    parser.add_argument("--circuit", default="s953")
    parser.add_argument("--scheme", default="two-step")
    parser.add_argument("--fault-count", type=int, default=20)
    parser.add_argument("--patterns", type=int, default=128)
    parser.add_argument("--timeout-ms", type=float, default=30000.0)
    parser.add_argument("--baseline", type=int, default=0, metavar="N",
                        help="also time N sequential one-shot CLI runs")
    parser.add_argument("--spawn", action="store_true",
                        help="start/SIGTERM a server subprocess around the run")
    parser.add_argument("--verify", action="store_true",
                        help="check replies are deterministic and match the "
                        "direct core.diagnosis path")
    parser.add_argument("--fail-on-5xx", action="store_true",
                        help="exit 1 on any 5xx / dropped response")
    parser.add_argument("--batch-max", type=int, default=None)
    parser.add_argument("--batch-wait-ms", type=float, default=None)
    parser.add_argument("--queue-depth", type=int, default=None)
    parser.add_argument("--out", default="BENCH_PR3.json")
    return parser.parse_args(argv)


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def spawn_server(args: argparse.Namespace) -> subprocess.Popen:
    cmd = [sys.executable, "-m", "repro.cli", "serve",
           "--host", args.host, "--port", str(args.port),
           "--prewarm", args.circuit]
    if args.batch_max is not None:
        cmd += ["--batch-max", str(args.batch_max)]
    if args.batch_wait_ms is not None:
        cmd += ["--batch-wait-ms", str(args.batch_wait_ms)]
    if args.queue_depth is not None:
        cmd += ["--queue-depth", str(args.queue_depth)]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    return subprocess.Popen(cmd, env=env)


class Outcome:
    __slots__ = ("code", "latency_s", "fault_index", "candidates")

    def __init__(self, code: str, latency_s: float, fault_index: int,
                 candidates: Optional[tuple] = None):
        self.code = code
        self.latency_s = latency_s
        self.fault_index = fault_index
        self.candidates = candidates


def run_load(args: argparse.Namespace) -> List[Outcome]:
    """Fire ``--requests`` diagnoses and collect every outcome."""
    schedule: "Queue[int]" = Queue()
    for k in range(args.requests):
        schedule.put(k)
    outcomes: List[Outcome] = []
    lock = threading.Lock()
    t0 = time.monotonic()

    def worker() -> None:
        client = ServiceClient(args.host, args.port,
                               timeout_s=args.timeout_ms / 1000 + 30)
        try:
            while True:
                try:
                    k = schedule.get_nowait()
                except Empty:
                    return
                if args.rps > 0:
                    # Open loop: request k is *scheduled* at t0 + k/rps,
                    # regardless of how earlier requests are doing.
                    delay = t0 + k / args.rps - time.monotonic()
                    if delay > 0:
                        time.sleep(delay)
                fault_index = k % args.fault_count
                payload = {
                    "circuit": args.circuit,
                    "scheme": args.scheme,
                    "fault_index": fault_index,
                    "fault_count": args.fault_count,
                    "num_patterns": args.patterns,
                    "timeout_ms": args.timeout_ms,
                    "request_id": str(k),
                }
                started = time.monotonic()
                try:
                    reply = client.diagnose(payload)
                    outcome = Outcome("ok", time.monotonic() - started,
                                      fault_index,
                                      tuple(reply.candidate_cells))
                except ServiceError as exc:
                    outcome = Outcome(exc.code, time.monotonic() - started,
                                      fault_index)
                except TransportError:
                    outcome = Outcome("transport_error",
                                      time.monotonic() - started, fault_index)
                with lock:
                    outcomes.append(outcome)
        finally:
            client.close()

    threads = [threading.Thread(target=worker, daemon=True)
               for _ in range(min(args.concurrency, args.requests))]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return outcomes


def quantile_ms(samples: List[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return round(ordered[rank] * 1000, 3)


def summarize(outcomes: List[Outcome], wall_s: float) -> Dict[str, Any]:
    codes: Dict[str, int] = {}
    for o in outcomes:
        codes[o.code] = codes.get(o.code, 0) + 1
    ok_latencies = [o.latency_s for o in outcomes if o.code == "ok"]
    return {
        "requests": len(outcomes),
        "ok": codes.get("ok", 0),
        "codes": dict(sorted(codes.items())),
        "wall_s": round(wall_s, 3),
        "throughput_rps": round(codes.get("ok", 0) / wall_s, 2) if wall_s else 0.0,
        "latency_ms": {
            "mean": round(sum(ok_latencies) / len(ok_latencies) * 1000, 3)
            if ok_latencies else 0.0,
            "p50": quantile_ms(ok_latencies, 0.50),
            "p95": quantile_ms(ok_latencies, 0.95),
            "p99": quantile_ms(ok_latencies, 0.99),
            "max": quantile_ms(ok_latencies, 1.0),
        },
    }


def run_baseline(args: argparse.Namespace) -> Dict[str, Any]:
    """Sequential one-shot CLI invocations: the cost the service amortizes."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    cmd = [sys.executable, "-m", "repro.cli", "diagnose", args.circuit,
           "--faults", "1", "--patterns", str(args.patterns),
           "--scheme", args.scheme]
    runs = []
    for _ in range(args.baseline):
        started = time.monotonic()
        subprocess.run(cmd, env=env, check=True, stdout=subprocess.DEVNULL,
                       stderr=subprocess.DEVNULL)
        runs.append(time.monotonic() - started)
    mean_s = sum(runs) / len(runs)
    return {
        "runs": len(runs),
        "mean_s": round(mean_s, 3),
        "rps": round(1.0 / mean_s, 3),
    }


def verify_determinism(args: argparse.Namespace,
                       outcomes: List[Outcome]) -> Dict[str, Any]:
    """Replies must agree per fault index and match core.diagnosis."""
    from repro.service.engine import DiagnosisEngine
    from repro.service.protocol import DiagnoseRequest

    by_index: Dict[int, set] = {}
    for o in outcomes:
        if o.code == "ok" and o.candidates is not None:
            by_index.setdefault(o.fault_index, set()).add(o.candidates)
    unstable = sorted(i for i, seen in by_index.items() if len(seen) > 1)
    engine = DiagnosisEngine(workers=0)
    mismatched = []
    for index, seen in sorted(by_index.items()):
        request = DiagnoseRequest.from_payload({
            "circuit": args.circuit, "scheme": args.scheme,
            "fault_index": index, "fault_count": args.fault_count,
            "num_patterns": args.patterns,
        })
        direct = engine.execute_batch([request])[0]
        if tuple(direct.candidate_cells) not in seen:
            mismatched.append(index)
    return {
        "indices_checked": len(by_index),
        "unstable_indices": unstable,
        "direct_mismatches": mismatched,
        "ok": not unstable and not mismatched,
    }


def check_metrics(client: ServiceClient) -> Dict[str, Any]:
    payload = client.metrics()
    problems = []
    for key in ("queue", "batching", "latency", "requests", "registry"):
        if key not in payload:
            problems.append(f"missing {key!r}")
    latency = payload.get("latency", {}).get("total", {})
    if not latency.get("count"):
        problems.append("latency.total.count is 0 after load")
    batching = payload.get("batching", {})
    if not batching.get("batches"):
        problems.append("batching.batches is 0 after load")
    return {
        "well_formed": not problems,
        "problems": problems,
        "queue": payload.get("queue"),
        "batching": {k: batching.get(k) for k in
                     ("batch_max", "batch_wait_ms", "batches", "batch_size")},
        "latency": payload.get("latency"),
        "rejected": payload.get("rejected"),
        "timeouts": payload.get("timeouts"),
        "degraded": payload.get("degraded"),
        "cache": payload.get("cache"),
    }


def main(argv: Optional[List[str]] = None) -> int:
    args = parse_args(argv)
    if args.port is None:
        args.port = free_port() if args.spawn else int(
            os.environ.get("REPRO_SERVE_PORT", "8953"))
    report: Dict[str, Any] = {
        "schema": "repro-loadgen-report",
        "version": 1,
        "python": platform.python_version(),
        "config": {
            "requests": args.requests, "rps": args.rps,
            "concurrency": args.concurrency, "circuit": args.circuit,
            "scheme": args.scheme, "fault_count": args.fault_count,
            "patterns": args.patterns, "timeout_ms": args.timeout_ms,
        },
    }
    proc: Optional[subprocess.Popen] = None
    failed = False
    try:
        if args.spawn:
            proc = spawn_server(args)
        client = ServiceClient(args.host, args.port)
        client.wait_ready(timeout_s=120)

        started = time.monotonic()
        outcomes = run_load(args)
        wall_s = time.monotonic() - started
        report["service"] = summarize(outcomes, wall_s)

        report["metrics_after"] = check_metrics(client)
        if args.verify:
            report["determinism"] = verify_determinism(args, outcomes)
            if not report["determinism"]["ok"]:
                failed = True
        client.close()

        if args.baseline:
            report["baseline_oneshot"] = run_baseline(args)
            base_rps = report["baseline_oneshot"]["rps"]
            if base_rps:
                report["speedup_vs_oneshot"] = round(
                    report["service"]["throughput_rps"] / base_rps, 2)

        dropped = report["service"]["requests"] - sum(
            report["service"]["codes"].get(code, 0)
            for code in ("ok", "queue_full", "deadline_exceeded"))
        report["service"]["dropped"] = dropped
        any_5xx = any(code in ("internal_error", "shutting_down",
                               "transport_error")
                      for code in report["service"]["codes"])
        if args.fail_on_5xx and (any_5xx or dropped):
            failed = True
        if not report["metrics_after"]["well_formed"]:
            failed = True
    finally:
        if proc is not None:
            proc.send_signal(signal.SIGTERM)
            try:
                exit_code = proc.wait(timeout=60)
            except subprocess.TimeoutExpired:
                proc.kill()
                exit_code = proc.wait()
            report["drain"] = {
                "signal": "SIGTERM",
                "exit_code": exit_code,
                "clean": exit_code == 0,
            }
            if exit_code != 0:
                failed = True

    out = Path(args.out)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps({k: v for k, v in report.items() if k != "metrics_after"},
                     indent=2))
    print(f"wrote {out}", file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
