#!/usr/bin/env python
"""Open-loop load generator for the diagnosis service.

Drives ``POST /diagnose`` with a configurable request rate (``--rps``;
0 = closed-loop, as fast as ``--concurrency`` in-flight requests allow),
collects exact client-side latencies, and writes a machine-readable
report (default ``loadgen.json``) with throughput, p50/p95/p99 latency,
per-code outcome counts and — when ``--baseline N`` is given — the
measured speedup over ``N`` sequential one-shot CLI invocations (each of
which re-pays interpreter start-up, netlist compile and golden
simulation; the service pays them once).  ``--duration S`` switches from
a fixed request count to a fixed wall-clock window.

``--spawn`` makes the run self-contained: start a server subprocess, wait
for ``/healthz``, apply the load, validate ``/metrics`` (well-formed JSON
with queue/batching/latency sections), then SIGTERM it and record whether
it drained and exited cleanly — exactly the sequence the CI smoke job
runs.  ``--workers N`` spawns the prefork cluster instead of a single
process, and ``--kill-one-at F`` injects chaos: at fraction F of the run
one worker is ``kill -9``'d and the report records whether the supervisor
respawned it (requests ride out the kill via transport retries).
``--verify`` additionally checks determinism: every reply for a given
fault index must be bit-identical across the run *and* equal to the
direct in-process ``core.diagnosis`` result.

Run:  PYTHONPATH=src python scripts/loadgen.py --requests 200
          [--duration S] [--rps 0] [--concurrency 200] [--circuit s953]
          [--spawn] [--workers 4] [--kill-one-at 0.4]
          [--baseline 5] [--verify] [--fail-on-5xx] [--out loadgen.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path
from queue import Empty, Queue
from typing import Any, Dict, List, Optional

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.service.client import ServiceClient, TransportError  # noqa: E402
from repro.service.protocol import ServiceError  # noqa: E402
from repro.telemetry import new_trace_id  # noqa: E402


def parse_args(argv: Optional[List[str]] = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=None,
                        help="server port (default REPRO_SERVE_PORT or 8953; "
                        "--spawn picks a free port automatically)")
    parser.add_argument("--requests", type=int, default=200)
    parser.add_argument("--duration", type=float, default=None, metavar="S",
                        help="run for S seconds of wall clock instead of a "
                        "fixed --requests count")
    parser.add_argument("--rps", type=float, default=0.0,
                        help="open-loop arrival rate; 0 = closed loop")
    parser.add_argument("--concurrency", type=int, default=200,
                        help="max in-flight requests (worker threads)")
    parser.add_argument("--circuit", default="s953")
    parser.add_argument("--scheme", default="two-step")
    parser.add_argument("--fault-count", type=int, default=20)
    parser.add_argument("--patterns", type=int, default=128)
    parser.add_argument("--timeout-ms", type=float, default=30000.0)
    parser.add_argument("--baseline", type=int, default=0, metavar="N",
                        help="also time N sequential one-shot CLI runs")
    parser.add_argument("--spawn", action="store_true",
                        help="start/SIGTERM a server subprocess around the run")
    parser.add_argument("--verify", action="store_true",
                        help="check replies are deterministic and match the "
                        "direct core.diagnosis path")
    parser.add_argument("--fail-on-5xx", action="store_true",
                        help="exit 1 on any 5xx / dropped response")
    parser.add_argument("--batch-max", type=int, default=None)
    parser.add_argument("--batch-wait-ms", type=float, default=None)
    parser.add_argument("--queue-depth", type=int, default=None)
    parser.add_argument("--workers", type=int, default=1,
                        help="with --spawn: server processes; >1 spawns the "
                        "prefork cluster (serve --workers N)")
    parser.add_argument("--heartbeat-s", type=float, default=0.25,
                        help="cluster worker heartbeat interval (default "
                        "0.25 for fast failure detection in smoke runs)")
    parser.add_argument("--kill-one-at", type=float, default=None,
                        metavar="FRAC",
                        help="chaos: kill -9 one cluster worker once FRAC of "
                        "the run has completed (0..1); requires --spawn and "
                        "--workers > 1")
    parser.add_argument("--retries", type=int, default=None,
                        help="client retries per request on transport errors "
                        "(default 2 under --kill-one-at, else 0)")
    parser.add_argument("--trace", action="store_true",
                        help="mint a client trace id per request (sent as a "
                        "traceparent header) and record the ids in the "
                        "report — feed them to GET /debug/trace/<id>")
    parser.add_argument("--out", default="loadgen.json")
    args = parser.parse_args(argv)
    if args.kill_one_at is not None and (not args.spawn or args.workers < 2):
        parser.error("--kill-one-at requires --spawn and --workers > 1")
    if args.retries is None:
        args.retries = 2 if args.kill_one_at is not None else 0
    return args


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def spawn_server(args: argparse.Namespace) -> subprocess.Popen:
    cmd = [sys.executable, "-m", "repro.cli", "serve",
           "--host", args.host, "--port", str(args.port),
           "--prewarm", args.circuit]
    if args.workers > 1:
        cmd += ["--workers", str(args.workers),
                "--control-port", str(args.control_port),
                "--heartbeat-s", str(args.heartbeat_s)]
    if args.batch_max is not None:
        cmd += ["--batch-max", str(args.batch_max)]
    if args.batch_wait_ms is not None:
        cmd += ["--batch-wait-ms", str(args.batch_wait_ms)]
    if args.queue_depth is not None:
        cmd += ["--queue-depth", str(args.queue_depth)]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    return subprocess.Popen(cmd, env=env)


def control_get(args: argparse.Namespace, path: str) -> Dict[str, Any]:
    """GET a JSON payload from the cluster supervisor's control port."""
    import http.client

    conn = http.client.HTTPConnection(args.host, args.control_port, timeout=10)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return json.loads(response.read().decode("utf-8"))
    finally:
        conn.close()


def control_get_text(args: argparse.Namespace, path: str) -> str:
    """GET a text payload (e.g. folded profile stacks) from the control port."""
    import http.client

    conn = http.client.HTTPConnection(args.host, args.control_port,
                                      timeout=30)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        body = response.read().decode("utf-8", "replace")
        if response.status >= 400:
            raise TransportError(f"GET {path} -> {response.status}: "
                                 f"{body[:200]}")
        return body
    finally:
        conn.close()


def check_debug_plane(args: argparse.Namespace, client: ServiceClient,
                      trace_ids: List[str]) -> Dict[str, Any]:
    """Exercise the debug plane after a traced run.

    Fetches the assembled span tree for sampled trace ids — via the
    supervisor control port on a cluster (fleet-merged), the service
    port otherwise — plus a 1-second profile burst, and records what
    came back.  The CI observability job asserts on these fields.
    """
    result: Dict[str, Any] = {"trace": None, "profile_stacks": 0}
    tree: Optional[Dict[str, Any]] = None
    for trace_id in trace_ids[:5]:
        if args.workers > 1:
            candidate = control_get(args, f"/debug/trace/{trace_id}")
        else:
            candidate = client.debug_trace(trace_id)
        if candidate.get("span_count"):
            tree = candidate
            if len(candidate.get("pids") or ()) >= 2:
                break
    if tree is not None:
        result["trace"] = {
            "trace_id": tree.get("trace_id"),
            "span_count": tree.get("span_count"),
            "pids": tree.get("pids"),
            "roots": len(tree.get("roots") or ()),
            "span_names": sorted({r.get("name", "?")
                                  for r in tree.get("records") or ()}),
        }
    if args.workers > 1:
        folded = control_get_text(args, "/debug/profile?seconds=1")
    else:
        folded = client.debug_profile(seconds=1.0)
    result["profile_stacks"] = sum(
        1 for line in folded.splitlines() if line.strip())
    return result


def wait_cluster_ready(args: argparse.Namespace,
                       timeout_s: float = 240.0) -> None:
    """Block until every cluster worker reports ready on the control port.

    Workers accept traffic while still prewarming; the supervisor counts
    them live only after the ``ready`` handshake (post-prewarm).  Gating
    the clock on full liveness keeps throughput numbers from charging the
    cluster for its siblings' cold compiles.
    """
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        try:
            workers = control_get(args, "/healthz").get("workers", {})
            if workers.get("live") == workers.get("configured"):
                return
        except (OSError, ValueError):
            pass
        time.sleep(0.1)
    raise RuntimeError(
        f"cluster: not all workers ready within {timeout_s:.0f}s")


def chaos_kill_one(args: argparse.Namespace, progress,
                   stop: threading.Event) -> Dict[str, Any]:
    """Kill -9 one cluster worker at ``--kill-one-at`` of the run and wait
    for the supervisor to respawn it (runs on its own thread)."""
    result: Dict[str, Any] = {"requested_at": args.kill_one_at,
                              "killed_pid": None, "recovered": False}
    while progress() < args.kill_one_at and not stop.is_set():
        time.sleep(0.02)
    if stop.is_set():  # run finished before the trigger point
        result["skipped"] = "run completed before kill point"
        return result
    try:
        health = control_get(args, "/healthz")
        live = [w for w in health.get("worker_table", [])
                if w.get("state") == "ready" and w.get("pid")]
        if not live:
            result["error"] = "no live worker to kill"
            return result
        victim = live[0]["pid"]
        result["killed_pid"] = victim
        result["killed_at_progress"] = round(progress(), 3)
        os.kill(victim, signal.SIGKILL)
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            health = control_get(args, "/healthz")
            pids = [w.get("pid") for w in health.get("worker_table", [])
                    if w.get("state") == "ready"]
            if len(pids) >= args.workers and victim not in pids:
                result["recovered"] = True
                result["recovered_s"] = round(
                    time.monotonic() - (deadline - 30), 3)
                break
            time.sleep(0.1)
    except Exception as exc:  # noqa: BLE001 - chaos must not crash the run
        result["error"] = repr(exc)
    return result


class Outcome:
    __slots__ = ("code", "latency_s", "fault_index", "candidates",
                 "trace_id", "trace_echoed")

    def __init__(self, code: str, latency_s: float, fault_index: int,
                 candidates: Optional[tuple] = None,
                 trace_id: Optional[str] = None,
                 trace_echoed: Optional[bool] = None):
        self.code = code
        self.latency_s = latency_s
        self.fault_index = fault_index
        self.candidates = candidates
        self.trace_id = trace_id
        self.trace_echoed = trace_echoed


def run_load(args: argparse.Namespace,
             outcomes: Optional[List[Outcome]] = None) -> List[Outcome]:
    """Fire diagnoses (``--requests`` of them, or for ``--duration``
    seconds) and collect every outcome.

    ``outcomes`` may be passed in so observers (the chaos thread) can
    watch progress live.
    """
    outcomes = [] if outcomes is None else outcomes
    lock = threading.Lock()
    t0 = time.monotonic()
    deadline = t0 + args.duration if args.duration else None
    schedule: "Queue[int]" = Queue()
    counter = {"next": 0}
    if deadline is None:
        for k in range(args.requests):
            schedule.put(k)

    def next_index() -> Optional[int]:
        if deadline is None:
            try:
                return schedule.get_nowait()
            except Empty:
                return None
        if time.monotonic() >= deadline:
            return None
        with lock:
            k = counter["next"]
            counter["next"] = k + 1
        return k

    def worker() -> None:
        client = ServiceClient(args.host, args.port,
                               timeout_s=args.timeout_ms / 1000 + 30)
        try:
            while True:
                k = next_index()
                if k is None:
                    return
                if args.rps > 0:
                    # Open loop: request k is *scheduled* at t0 + k/rps,
                    # regardless of how earlier requests are doing.
                    delay = t0 + k / args.rps - time.monotonic()
                    if delay > 0:
                        time.sleep(delay)
                fault_index = k % args.fault_count
                payload = {
                    "circuit": args.circuit,
                    "scheme": args.scheme,
                    "fault_index": fault_index,
                    "fault_count": args.fault_count,
                    "num_patterns": args.patterns,
                    "timeout_ms": args.timeout_ms,
                    "request_id": str(k),
                }
                trace_id = new_trace_id() if args.trace else None
                started = time.monotonic()
                outcome: Optional[Outcome] = None
                for attempt in range(args.retries + 1):
                    try:
                        reply = client.diagnose(payload, trace_id=trace_id)
                        outcome = Outcome("ok", time.monotonic() - started,
                                          fault_index,
                                          tuple(reply.candidate_cells),
                                          trace_id=trace_id,
                                          trace_echoed=(
                                              reply.trace_id == trace_id
                                              if trace_id else None))
                        break
                    except ServiceError as exc:
                        outcome = Outcome(exc.code,
                                          time.monotonic() - started,
                                          fault_index, trace_id=trace_id)
                        break
                    except TransportError:
                        # A kill -9'd worker drops its connections; with a
                        # shared listen port a fresh connect lands on a
                        # live sibling, so retrying is safe and expected
                        # under --kill-one-at.
                        outcome = Outcome("transport_error",
                                          time.monotonic() - started,
                                          fault_index)
                        if attempt < args.retries:
                            time.sleep(0.05 * (attempt + 1))
                with lock:
                    outcomes.append(outcome)
        finally:
            client.close()

    limit = args.concurrency if deadline is not None else min(
        args.concurrency, args.requests)
    threads = [threading.Thread(target=worker, daemon=True)
               for _ in range(limit)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return outcomes


def quantile_ms(samples: List[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return round(ordered[rank] * 1000, 3)


def summarize(outcomes: List[Outcome], wall_s: float) -> Dict[str, Any]:
    codes: Dict[str, int] = {}
    for o in outcomes:
        codes[o.code] = codes.get(o.code, 0) + 1
    ok_latencies = [o.latency_s for o in outcomes if o.code == "ok"]
    return {
        "requests": len(outcomes),
        "ok": codes.get("ok", 0),
        "codes": dict(sorted(codes.items())),
        "wall_s": round(wall_s, 3),
        "throughput_rps": round(codes.get("ok", 0) / wall_s, 2) if wall_s else 0.0,
        "latency_ms": {
            "mean": round(sum(ok_latencies) / len(ok_latencies) * 1000, 3)
            if ok_latencies else 0.0,
            "p50": quantile_ms(ok_latencies, 0.50),
            "p95": quantile_ms(ok_latencies, 0.95),
            "p99": quantile_ms(ok_latencies, 0.99),
            "max": quantile_ms(ok_latencies, 1.0),
        },
    }


def run_baseline(args: argparse.Namespace) -> Dict[str, Any]:
    """Sequential one-shot CLI invocations: the cost the service amortizes."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    cmd = [sys.executable, "-m", "repro.cli", "diagnose", args.circuit,
           "--faults", "1", "--patterns", str(args.patterns),
           "--scheme", args.scheme]
    runs = []
    for _ in range(args.baseline):
        started = time.monotonic()
        subprocess.run(cmd, env=env, check=True, stdout=subprocess.DEVNULL,
                       stderr=subprocess.DEVNULL)
        runs.append(time.monotonic() - started)
    mean_s = sum(runs) / len(runs)
    return {
        "runs": len(runs),
        "mean_s": round(mean_s, 3),
        "rps": round(1.0 / mean_s, 3),
    }


def verify_determinism(args: argparse.Namespace,
                       outcomes: List[Outcome]) -> Dict[str, Any]:
    """Replies must agree per fault index and match core.diagnosis."""
    from repro.service.engine import DiagnosisEngine
    from repro.service.protocol import DiagnoseRequest

    by_index: Dict[int, set] = {}
    for o in outcomes:
        if o.code == "ok" and o.candidates is not None:
            by_index.setdefault(o.fault_index, set()).add(o.candidates)
    unstable = sorted(i for i, seen in by_index.items() if len(seen) > 1)
    engine = DiagnosisEngine(workers=0)
    mismatched = []
    for index, seen in sorted(by_index.items()):
        request = DiagnoseRequest.from_payload({
            "circuit": args.circuit, "scheme": args.scheme,
            "fault_index": index, "fault_count": args.fault_count,
            "num_patterns": args.patterns,
        })
        direct = engine.execute_batch([request])[0]
        if tuple(direct.candidate_cells) not in seen:
            mismatched.append(index)
    return {
        "indices_checked": len(by_index),
        "unstable_indices": unstable,
        "direct_mismatches": mismatched,
        "ok": not unstable and not mismatched,
    }


def check_metrics(client: ServiceClient) -> Dict[str, Any]:
    payload = client.metrics()
    problems = []
    for key in ("queue", "batching", "latency", "requests", "registry"):
        if key not in payload:
            problems.append(f"missing {key!r}")
    latency = payload.get("latency", {}).get("total", {})
    if not latency.get("count"):
        problems.append("latency.total.count is 0 after load")
    batching = payload.get("batching", {})
    if not batching.get("batches"):
        problems.append("batching.batches is 0 after load")
    return {
        "well_formed": not problems,
        "problems": problems,
        "queue": payload.get("queue"),
        "batching": {k: batching.get(k) for k in
                     ("batch_max", "batch_wait_ms", "batches", "batch_size")},
        "latency": payload.get("latency"),
        "rejected": payload.get("rejected"),
        "timeouts": payload.get("timeouts"),
        "degraded": payload.get("degraded"),
        "cache": payload.get("cache"),
    }


def check_cluster_metrics(args: argparse.Namespace) -> Dict[str, Any]:
    """Validate the supervisor's aggregated control-port ``/metrics``."""
    payload = control_get(args, "/metrics")
    problems = []
    for key in ("workers", "worker_table", "requests", "fleet_latency",
                "registry"):
        if key not in payload:
            problems.append(f"missing {key!r}")
    workers = payload.get("workers", {})
    if workers.get("live", 0) < workers.get("quorum", 1):
        problems.append(
            f"live workers {workers.get('live')} below quorum "
            f"{workers.get('quorum')}")
    if not payload.get("requests", {}).get("ok"):
        problems.append("fleet requests.ok is 0 after load")
    total = payload.get("fleet_latency", {}).get("total", {})
    if not total.get("count"):
        problems.append("fleet_latency.total.count is 0 after load")
    return {
        "well_formed": not problems,
        "problems": problems,
        "workers": workers,
        "worker_table": payload.get("worker_table"),
        "requests": payload.get("requests"),
        "fleet_latency": payload.get("fleet_latency"),
    }


def main(argv: Optional[List[str]] = None) -> int:
    args = parse_args(argv)
    if args.port is None:
        args.port = free_port() if args.spawn else int(
            os.environ.get("REPRO_SERVE_PORT", "8953"))
    args.control_port = free_port() if args.workers > 1 else None
    report: Dict[str, Any] = {
        "schema": "repro-loadgen-report",
        "version": 2,
        "python": platform.python_version(),
        "config": {
            "requests": args.requests, "duration_s": args.duration,
            "rps": args.rps,
            "concurrency": args.concurrency, "circuit": args.circuit,
            "scheme": args.scheme, "fault_count": args.fault_count,
            "patterns": args.patterns, "timeout_ms": args.timeout_ms,
            "workers": args.workers, "retries": args.retries,
        },
    }
    proc: Optional[subprocess.Popen] = None
    failed = False
    try:
        if args.spawn:
            proc = spawn_server(args)
        client = ServiceClient(args.host, args.port)
        client.wait_ready(timeout_s=120)
        if args.spawn and args.workers > 1:
            wait_cluster_ready(args)

        outcomes: List[Outcome] = []
        chaos_thread: Optional[threading.Thread] = None
        chaos_result: Dict[str, Any] = {}
        chaos_stop = threading.Event()
        if args.kill_one_at is not None:
            expected = args.requests

            def progress() -> float:
                if args.duration:
                    return min(1.0, (time.monotonic() - started) / args.duration)
                return len(outcomes) / expected if expected else 1.0

            def chaos_runner() -> None:
                chaos_result.update(chaos_kill_one(args, progress, chaos_stop))

            chaos_thread = threading.Thread(target=chaos_runner, daemon=True)

        started = time.monotonic()
        if chaos_thread is not None:
            chaos_thread.start()
        run_load(args, outcomes)
        wall_s = time.monotonic() - started
        if chaos_thread is not None:
            chaos_stop.set()
            chaos_thread.join(timeout=60)
            report["chaos"] = chaos_result
            if not chaos_result.get("recovered") and \
                    not chaos_result.get("skipped"):
                failed = True
        report["service"] = summarize(outcomes, wall_s)
        if args.trace:
            ok_traced = [o for o in outcomes
                         if o.code == "ok" and o.trace_id]
            report["tracing"] = {
                "sent": sum(1 for o in outcomes if o.trace_id),
                "ok": len(ok_traced),
                "echoed": sum(1 for o in ok_traced if o.trace_echoed),
                # Late outcomes sit past warmup, when coalesced batches
                # are big enough to fan out to fork workers — their
                # trees are the interesting ones for /debug/trace.
                "sample_trace_ids": [o.trace_id for o in ok_traced[-20:]],
            }

        if args.workers > 1:
            report["metrics_after"] = check_cluster_metrics(args)
        else:
            report["metrics_after"] = check_metrics(client)
        if args.trace and report["tracing"]["sample_trace_ids"]:
            try:
                report["tracing"]["debug"] = check_debug_plane(
                    args, client, report["tracing"]["sample_trace_ids"])
            except (ServiceError, TransportError, OSError, ValueError) as exc:
                report["tracing"]["debug"] = {"error": str(exc)}
        if args.verify:
            report["determinism"] = verify_determinism(args, outcomes)
            if not report["determinism"]["ok"]:
                failed = True
        client.close()

        if args.baseline:
            report["baseline_oneshot"] = run_baseline(args)
            base_rps = report["baseline_oneshot"]["rps"]
            if base_rps:
                report["speedup_vs_oneshot"] = round(
                    report["service"]["throughput_rps"] / base_rps, 2)

        dropped = report["service"]["requests"] - sum(
            report["service"]["codes"].get(code, 0)
            for code in ("ok", "queue_full", "deadline_exceeded"))
        report["service"]["dropped"] = dropped
        any_5xx = any(code in ("internal_error", "shutting_down",
                               "transport_error")
                      for code in report["service"]["codes"])
        if args.fail_on_5xx and (any_5xx or dropped):
            failed = True
        if not report["metrics_after"]["well_formed"]:
            failed = True
    finally:
        if proc is not None:
            proc.send_signal(signal.SIGTERM)
            try:
                exit_code = proc.wait(timeout=60)
            except subprocess.TimeoutExpired:
                proc.kill()
                exit_code = proc.wait()
            report["drain"] = {
                "signal": "SIGTERM",
                "exit_code": exit_code,
                "clean": exit_code == 0,
            }
            if exit_code != 0:
                failed = True

    out = Path(args.out)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps({k: v for k, v in report.items() if k != "metrics_after"},
                     indent=2))
    print(f"wrote {out}", file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
