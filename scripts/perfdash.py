#!/usr/bin/env python
"""Perf observatory over the committed ``BENCH_PR*.json`` trajectory.

``scripts/bench.py`` answers "is this PR faster than the last one?";
this script answers "how has every tracked number moved across the whole
PR sequence, and did any speedup quietly rot?".  It ingests all bench
reports in the repo root, folds them into per-(circuit, metric) time
series, and renders an ASCII trend table with sparklines.

Two outputs:

* ``perf_history.json`` — the folded series as a machine-readable
  artifact (CI uploads it; dashboards and future gates consume it);
* ``--check-trend`` — a regression gate over the **speedup** metrics
  (machine-relative ratios, so they survive hardware changes between CI
  runners): exit 2 when any tracked speedup in the *latest* report falls
  more than ``--tolerance`` below its best historical value.  Absolute
  seconds are displayed but never gated — they track the machine, not
  the code.

Reports whose schema has no ``circuits`` list (e.g. the PR 3 service
bench) are skipped with a note, never silently.

Usage::

    python scripts/perfdash.py [--dir REPO] [--out perf_history.json]
                               [--check-trend] [--tolerance 0.4]
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Sparkline glyph ramp (eight levels, min..max of the series).
SPARK_CHARS = "▁▂▃▄▅▆▇█"

#: Bench reports follow this name; the capture is the PR/order number.
REPORT_PATTERN = re.compile(r"BENCH_PR(\d+)\.json$")

#: Speedup metrics: machine-relative ratios where *higher is better*
#: (rendered with a best-vs-latest column).
SPEEDUP_SUFFIX = "_speedup"

#: The gated subset: compute-kernel ratios whose history the trend gate
#: defends.  ``serve_disk_warm_speedup`` is deliberately absent — it is
#: dominated by disk I/O timing on shared runners (its real history
#: already swings 3x run-to-run), so gating it would only teach people
#: to ignore the gate.
TRACKED_SPEEDUPS = (
    "fault_batch_speedup",
    "soa_speedup",
    "fault_soa_speedup",
    "diagnose_speedup",
    "end_to_end_speedup",
)

#: Default slack against the best historical value before --check-trend
#: fails.  Wide on purpose: single-digit-percent jitter on shared CI
#: runners is normal; a real regression (kernel fell back to a slow
#: path, cache stopped hitting) moves these ratios by 2x or more.
DEFAULT_TOLERANCE = 0.4


def discover_reports(root: Path) -> List[Tuple[int, Path, Dict[str, Any]]]:
    """All parseable ``BENCH_PR<n>.json`` under ``root``, ordered by PR.

    Returns ``(pr, path, data)`` triples; unreadable files and reports
    without a ``circuits`` list are reported to stderr and skipped.
    """
    reports: List[Tuple[int, Path, Dict[str, Any]]] = []
    for path in sorted(root.glob("BENCH_PR*.json")):
        match = REPORT_PATTERN.search(path.name)
        if not match:
            continue
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"perfdash: skipping {path.name}: {exc}", file=sys.stderr)
            continue
        if not isinstance(data, dict) or not isinstance(
            data.get("circuits"), list
        ):
            print(
                f"perfdash: skipping {path.name}: no 'circuits' section "
                "(different bench schema)",
                file=sys.stderr,
            )
            continue
        pr = int(data.get("pr") or match.group(1))
        reports.append((pr, path, data))
    reports.sort(key=lambda triple: triple[0])
    return reports


def load_series(
    reports: Sequence[Tuple[int, Path, Dict[str, Any]]],
) -> Dict[Tuple[str, str], List[Tuple[int, float]]]:
    """Fold reports into ``(circuit, metric) -> [(pr, value), ...]``.

    Only numeric scalar metrics are tracked; a metric absent from a given
    report simply has a gap in its series (kernels land mid-sequence).
    The PR 10 ``serve_overhead`` section contributes its
    ``serve_overhead_pct`` under the pseudo-circuit ``serve`` — a
    lower-is-better percentage, displayed but never trend-gated here
    (bench.py's ``--check`` enforces its absolute 3% budget per run).
    """
    series: Dict[Tuple[str, str], List[Tuple[int, float]]] = {}
    for pr, _path, data in reports:
        overhead = data.get("serve_overhead")
        if isinstance(overhead, dict) and isinstance(
            overhead.get("serve_overhead_pct"), (int, float)
        ):
            series.setdefault(("serve", "serve_overhead_pct"), []).append(
                (pr, float(overhead["serve_overhead_pct"]))
            )
        for entry in data["circuits"]:
            if not isinstance(entry, dict):
                continue
            circuit = str(entry.get("circuit", "?"))
            for metric, value in entry.items():
                if metric == "circuit":
                    continue
                if isinstance(value, bool) or not isinstance(
                    value, (int, float)
                ):
                    continue
                series.setdefault((circuit, metric), []).append(
                    (pr, float(value))
                )
    return series


def sparkline(values: Sequence[float]) -> str:
    """Eight-level unicode sparkline of a series (empty-safe)."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi <= lo:
        return SPARK_CHARS[3] * len(values)
    scale = (len(SPARK_CHARS) - 1) / (hi - lo)
    return "".join(SPARK_CHARS[int((v - lo) * scale)] for v in values)


def _fmt(value: float) -> str:
    if value >= 1000:
        return f"{value:.0f}"
    if value >= 1:
        return f"{value:.2f}"
    return f"{value:.4f}"


def render_trend(
    series: Dict[Tuple[str, str], List[Tuple[int, float]]],
    only_gated: bool = False,
) -> str:
    """ASCII trend table: one row per (circuit, metric) series."""
    headers = ["circuit", "metric", "first", "best", "last", "trend", "vs best"]
    rows: List[List[str]] = []
    for (circuit, metric), points in sorted(series.items()):
        speedup = metric.endswith(SPEEDUP_SUFFIX)
        gated = metric in TRACKED_SPEEDUPS
        if only_gated and not gated:
            continue
        values = [v for _, v in points]
        best = max(values) if speedup else min(values)
        last = values[-1]
        ratio = last / best if best else float("nan")
        rows.append([
            circuit,
            metric + ("*" if gated else ""),
            _fmt(values[0]),
            _fmt(best),
            _fmt(last),
            sparkline(values),
            f"{ratio:+.1%}".replace("+", "") if speedup else "-",
        ])
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
    lines.append("")
    lines.append("* tracked speedup (gated by --check-trend); 'vs best' is "
                 "the latest value over the best historical one")
    return "\n".join(lines)


def check_trend(
    series: Dict[Tuple[str, str], List[Tuple[int, float]]],
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[str]:
    """Regression messages for every gated speedup whose latest value
    fell below ``best * (1 - tolerance)``; empty list = healthy.

    A metric must appear in the **latest PR present in its own series**
    and have at least two points — a metric that was added in the final
    report has no history to regress against.
    """
    failures: List[str] = []
    for (circuit, metric), points in sorted(series.items()):
        if metric not in TRACKED_SPEEDUPS or len(points) < 2:
            continue
        best_pr, best = max(points, key=lambda p: p[1])
        last_pr, last = points[-1]
        floor = best * (1.0 - tolerance)
        if last < floor:
            failures.append(
                f"{circuit}.{metric}: {last:.2f}x (PR{last_pr}) fell below "
                f"{floor:.2f}x — best was {best:.2f}x (PR{best_pr}), "
                f"tolerance {tolerance:.0%}"
            )
    return failures


def build_history(
    reports: Sequence[Tuple[int, Path, Dict[str, Any]]],
    series: Dict[Tuple[str, str], List[Tuple[int, float]]],
) -> Dict[str, Any]:
    """The ``perf_history.json`` artifact body."""
    out_series: Dict[str, Any] = {}
    for (circuit, metric), points in sorted(series.items()):
        speedup = metric.endswith(SPEEDUP_SUFFIX)
        values = [v for _, v in points]
        out_series[f"{circuit}/{metric}"] = {
            "circuit": circuit,
            "metric": metric,
            "gated": metric in TRACKED_SPEEDUPS,
            "prs": [pr for pr, _ in points],
            "values": values,
            "best": max(values) if speedup else min(values),
            "latest": values[-1],
        }
    return {
        "schema": "repro-perf-history",
        "version": 1,
        "reports": [
            {"pr": pr, "file": path.name} for pr, path, _ in reports
        ],
        "series": out_series,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="perfdash",
        description="Trend table + regression gate over BENCH_PR*.json.",
    )
    parser.add_argument("--dir", default=None, metavar="REPO",
                        help="directory holding BENCH_PR*.json "
                        "(default: the repo root above this script)")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the folded series as JSON (artifact)")
    parser.add_argument("--check-trend", action="store_true",
                        help="exit 2 when any speedup regresses beyond "
                        "--tolerance vs its best historical value")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help=f"allowed fraction below the best value "
                        f"(default {DEFAULT_TOLERANCE})")
    parser.add_argument("--gated-only", action="store_true",
                        help="table shows only the gated speedup series")
    args = parser.parse_args(argv)

    root = Path(args.dir) if args.dir else Path(__file__).resolve().parents[1]
    if not root.is_dir():
        print(f"perfdash: no such directory: {root}", file=sys.stderr)
        return 1
    reports = discover_reports(root)
    if not reports:
        print(f"perfdash: no usable BENCH_PR*.json under {root}",
              file=sys.stderr)
        return 1
    series = load_series(reports)
    print(f"perf trajectory: {len(reports)} reports "
          f"(PR{reports[0][0]}..PR{reports[-1][0]}), "
          f"{len(series)} series")
    print()
    print(render_trend(series, only_gated=args.gated_only))

    if args.out:
        out_path = Path(args.out)
        out_path.write_text(
            json.dumps(build_history(reports, series), indent=2) + "\n")
        print(f"\nwrote {out_path}")

    if args.check_trend:
        failures = check_trend(series, tolerance=args.tolerance)
        if failures:
            print("\nTREND REGRESSIONS:", file=sys.stderr)
            for failure in failures:
                print(f"  - {failure}", file=sys.stderr)
            return 2
        print(f"\ntrend gate passed ({args.tolerance:.0%} tolerance)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
