#!/usr/bin/env python
"""Validate a run manifest against the shipped schema.

Used by the CI smoke job: after ``repro-experiment table1 --trace`` this
asserts the emitted ``manifest.json`` is schema-valid, covers enough
pipeline stages, and recorded cache activity.

Exit codes: 0 valid, 1 invalid, 2 unreadable/missing file.

Run:  PYTHONPATH=src python scripts/check_manifest.py manifest.json
      [--min-stages N] [--require-metric NAME ...]
"""

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.telemetry import validate_manifest


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("path", help="manifest.json to validate")
    parser.add_argument("--min-stages", type=int, default=0,
                        help="require at least N distinct span names in the "
                        "rollup")
    parser.add_argument("--require-metric", action="append", default=[],
                        metavar="NAME",
                        help="require a counter with this name (label-"
                        "insensitive prefix match); repeatable")
    parser.add_argument("--require-profile", action="store_true",
                        help="require an enabled profile record with at "
                        "least one sample (profiled smoke runs)")
    args = parser.parse_args(argv)

    path = Path(args.path)
    try:
        manifest = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"{path}: cannot read manifest: {exc}", file=sys.stderr)
        return 2

    errors = validate_manifest(manifest)
    stages = {row.get("name") for row in manifest.get("span_rollup", [])
              if isinstance(row, dict)}
    if args.min_stages and len(stages) < args.min_stages:
        errors.append(
            f"span_rollup: {len(stages)} distinct stages, need "
            f">= {args.min_stages} (got: {sorted(stages)})"
        )
    counters = manifest.get("metrics", {}).get("counters", {})
    if isinstance(counters, dict):
        for name in args.require_metric:
            if not any(k == name or k.startswith(name + "{") for k in counters):
                errors.append(f"metrics.counters: missing {name!r}")
    # Kernel selection must always be recorded: without it a traced run's
    # numbers cannot be attributed to the code path that produced them.
    kernels = manifest.get("kernels")
    if not isinstance(kernels, dict):
        errors.append("kernels: kernel-selection record missing")
        kernels = {}
    else:
        for field in ("gate_eval", "fault_sim"):
            value = kernels.get(field)
            if not isinstance(value, str) or not value:
                errors.append(f"kernels.{field}: missing or empty")
    if args.require_profile:
        profile = manifest.get("profile")
        if not isinstance(profile, dict) or not profile.get("enabled"):
            errors.append("profile: run was not profiled "
                          "(--require-profile)")
        elif not profile.get("samples"):
            errors.append("profile: profiler ran but collected 0 samples")
    if errors:
        print(f"{path}: INVALID", file=sys.stderr)
        for error in errors:
            print(f"  - {error}", file=sys.stderr)
        return 1
    selected = " ".join(f"{k}={kernels[k]}" for k in sorted(kernels))
    print(f"{path}: valid {manifest['schema']} "
          f"v{manifest['schema_version']} ({len(stages)} stages, "
          f"{len(counters)} counters; {selected})")
    print(_profile_summary(manifest.get("profile")))
    return 0


def _profile_summary(profile):
    """One line about the v3 ``profile`` record (tolerates v2 manifests)."""
    if not isinstance(profile, dict):
        return "profile: none (schema v2 manifest)"
    if not profile.get("enabled"):
        return "profile: disabled"
    spans = profile.get("spans") or []
    hottest = ""
    if spans and spans[0].get("functions"):
        top = spans[0]
        hottest = (f"; hottest {top['span']}: "
                   f"{top['functions'][0]['function']} "
                   f"({top['functions'][0]['self']} self samples)")
    return (f"profile: {profile.get('samples', 0)} samples "
            f"@ {profile.get('hz', '?')} Hz ({profile.get('mode', '?')} "
            f"mode, {profile.get('dropped', 0)} dropped, "
            f"{len(spans)} spans{hottest})")


if __name__ == "__main__":
    raise SystemExit(main())
