#!/usr/bin/env python
"""Validate a run manifest against the shipped schema.

Used by the CI smoke job: after ``repro-experiment table1 --trace`` this
asserts the emitted ``manifest.json`` is schema-valid, covers enough
pipeline stages, and recorded cache activity.

Exit codes: 0 valid, 1 invalid, 2 unreadable/missing file.

Run:  PYTHONPATH=src python scripts/check_manifest.py manifest.json
      [--min-stages N] [--require-metric NAME ...]
"""

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.telemetry import validate_manifest


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("path", help="manifest.json to validate")
    parser.add_argument("--min-stages", type=int, default=0,
                        help="require at least N distinct span names in the "
                        "rollup")
    parser.add_argument("--require-metric", action="append", default=[],
                        metavar="NAME",
                        help="require a counter with this name (label-"
                        "insensitive prefix match); repeatable")
    parser.add_argument("--require-profile", action="store_true",
                        help="require an enabled profile record with at "
                        "least one sample (profiled smoke runs)")
    parser.add_argument("--require-trace", action="store_true",
                        help="require every span to carry a valid trace "
                        "context (32-hex trace id, unique 16-hex span id, "
                        "acyclic parentage)")
    args = parser.parse_args(argv)

    path = Path(args.path)
    try:
        manifest = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"{path}: cannot read manifest: {exc}", file=sys.stderr)
        return 2

    errors = validate_manifest(manifest)
    stages = {row.get("name") for row in manifest.get("span_rollup", [])
              if isinstance(row, dict)}
    if args.min_stages and len(stages) < args.min_stages:
        errors.append(
            f"span_rollup: {len(stages)} distinct stages, need "
            f">= {args.min_stages} (got: {sorted(stages)})"
        )
    counters = manifest.get("metrics", {}).get("counters", {})
    if isinstance(counters, dict):
        for name in args.require_metric:
            if not any(k == name or k.startswith(name + "{") for k in counters):
                errors.append(f"metrics.counters: missing {name!r}")
    # Kernel selection must always be recorded: without it a traced run's
    # numbers cannot be attributed to the code path that produced them.
    kernels = manifest.get("kernels")
    if not isinstance(kernels, dict):
        errors.append("kernels: kernel-selection record missing")
        kernels = {}
    else:
        for field in ("gate_eval", "fault_sim"):
            value = kernels.get(field)
            if not isinstance(value, str) or not value:
                errors.append(f"kernels.{field}: missing or empty")
    trace_summary = None
    if args.require_trace:
        trace_errors, trace_summary = _check_trace(_load_spans(manifest, path))
        errors.extend(trace_errors)
    if args.require_profile:
        profile = manifest.get("profile")
        if not isinstance(profile, dict) or not profile.get("enabled"):
            errors.append("profile: run was not profiled "
                          "(--require-profile)")
        elif not profile.get("samples"):
            errors.append("profile: profiler ran but collected 0 samples")
    if errors:
        print(f"{path}: INVALID", file=sys.stderr)
        for error in errors:
            print(f"  - {error}", file=sys.stderr)
        return 1
    selected = " ".join(f"{k}={kernels[k]}" for k in sorted(kernels))
    print(f"{path}: valid {manifest['schema']} "
          f"v{manifest['schema_version']} ({len(stages)} stages, "
          f"{len(counters)} counters; {selected})")
    print(_profile_summary(manifest.get("profile")))
    if trace_summary is not None:
        print(trace_summary)
    return 0


def _load_spans(manifest, manifest_path):
    """The manifest's span trees, inline or via its ``trace_file``.

    Manifests stay lean — they embed the aggregated ``span_rollup`` and
    point at the full tree through ``trace_file`` (one root span JSON
    object per line, children nested).  Accept inline ``spans`` too so
    hand-built manifests can be checked without a side file.  Relative
    ``trace_file`` paths resolve against the manifest's directory first
    (the CLI writes both files side by side), then the cwd.
    """
    inline = manifest.get("spans")
    if isinstance(inline, list) and inline:
        return inline
    trace_file = manifest.get("trace_file")
    if not isinstance(trace_file, str) or not trace_file:
        return []
    candidates = [manifest_path.parent / trace_file, Path(trace_file)]
    for candidate in candidates:
        try:
            lines = candidate.read_text().splitlines()
        except OSError:
            continue
        spans = []
        for line in lines:
            if not line.strip():
                continue
            try:
                spans.append(json.loads(line))
            except json.JSONDecodeError:
                return []
        return spans
    return []


def _hexid(value, width):
    if not isinstance(value, str) or len(value) != width:
        return False
    try:
        return int(value, 16) != 0
    except ValueError:
        return False


def _check_trace(spans):
    """Validate trace context across the manifest's span trees.

    Returns ``(errors, summary_line)``.  Every span must carry a non-zero
    32-hex ``trace_id`` and a unique non-zero 16-hex ``span_id``; following
    ``parent_id`` links must never revisit a span (dangling parents are
    fine — a client-side parent span lives outside the manifest).
    """
    errors = []
    flat = []

    def walk(node, depth=0):
        if not isinstance(node, dict) or depth > 64:
            return
        flat.append(node)
        for child in node.get("children") or []:
            walk(child, depth + 1)

    for root in spans if isinstance(spans, list) else []:
        walk(root)
    if not flat:
        return (["spans: no spans recorded (--require-trace)"],
                "trace: no spans")

    parents = {}
    for span in flat:
        name = span.get("name", "?")
        trace_id = span.get("trace_id")
        span_id = span.get("span_id")
        if not _hexid(trace_id, 32):
            errors.append(f"spans: {name!r} has invalid trace_id "
                          f"{trace_id!r}")
        if not _hexid(span_id, 16):
            errors.append(f"spans: {name!r} has invalid span_id {span_id!r}")
        elif span_id in parents:
            errors.append(f"spans: duplicate span_id {span_id!r} ({name!r})")
        else:
            parents[span_id] = span.get("parent_id")

    cycles = 0
    for span_id in parents:
        seen = set()
        cursor = span_id
        while cursor is not None and cursor in parents:
            if cursor in seen:
                errors.append(f"spans: parentage cycle through {cursor!r}")
                cycles += 1
                break
            seen.add(cursor)
            cursor = parents[cursor]

    traces = {s.get("trace_id") for s in flat}
    roots = sum(1 for s in flat
                if s.get("parent_id") is None
                or s.get("parent_id") not in parents)
    summary = (f"trace: {len(flat)} spans across {len(traces)} trace(s), "
               f"{roots} root(s), parentage "
               + ("acyclic" if not cycles else f"{cycles} cycle(s)"))
    return errors, summary


def _profile_summary(profile):
    """One line about the v3 ``profile`` record (tolerates v2 manifests)."""
    if not isinstance(profile, dict):
        return "profile: none (schema v2 manifest)"
    if not profile.get("enabled"):
        return "profile: disabled"
    spans = profile.get("spans") or []
    hottest = ""
    if spans and spans[0].get("functions"):
        top = spans[0]
        hottest = (f"; hottest {top['span']}: "
                   f"{top['functions'][0]['function']} "
                   f"({top['functions'][0]['self']} self samples)")
    return (f"profile: {profile.get('samples', 0)} samples "
            f"@ {profile.get('hz', '?')} Hz ({profile.get('mode', '?')} "
            f"mode, {profile.get('dropped', 0)} dropped, "
            f"{len(spans)} spans{hottest})")


if __name__ == "__main__":
    raise SystemExit(main())
