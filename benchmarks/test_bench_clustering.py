"""Bench: Figure 2 evidence — failing scan cells cluster into a small
segment of the scan chain (the structural premise behind interval-based
partitioning)."""

from repro.experiments.clustering import run_clustering
from repro.experiments.config import default_config

from .conftest import run_once


def test_clustering(benchmark):
    result = run_once(
        benchmark, run_clustering, ("s953", "s5378", "s9234"), default_config()
    )
    print()
    print(result.render())
    for row in result.rows:
        assert row.mean_relative_span < 0.5, (
            f"{row.circuit}: failing cells not clustered "
            f"(mean span/chain = {row.mean_relative_span:.2f})"
        )
