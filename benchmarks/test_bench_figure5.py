"""Bench: Figure 5 — number of partitions to reach DR = 0.5 per failing
core on SOC 1 (single meta scan chain), random vs two-step.

Expected shape (paper): the two-step approach requires a smaller (or equal)
number of partitions than random selection for every failing module, i.e.
shorter diagnosis time.
"""

from repro.experiments.config import default_config
from repro.experiments.figure5 import MAX_PARTITIONS, run_figure5

from .conftest import run_once


def test_figure5(benchmark):
    result = run_once(benchmark, run_figure5, default_config())
    print()
    print(result.render())
    better_or_equal = 0
    total = 0
    for by_scheme in result.partitions_needed.values():
        random_needed = by_scheme["random"] or MAX_PARTITIONS + 1
        two_step_needed = by_scheme["two-step"] or MAX_PARTITIONS + 1
        total += 1
        if two_step_needed <= random_needed:
            better_or_equal += 1
    assert better_or_equal >= total - 1
