"""Bench: extension experiments — failing-vector identification ([4]),
scan-chain ordering (the clustering premise made causal), and the
two-faulty-cores SOC scenario (paper Section 5 discussion)."""

from repro.experiments.config import default_config
from repro.experiments.extensions import (
    run_multi_core,
    run_scan_order_ablation,
    run_vector_diagnosis,
)

from .conftest import run_once


def test_extension_vector_diagnosis(benchmark):
    result = run_once(benchmark, run_vector_diagnosis, config=default_config())
    print()
    print(result.render())
    assert all(row[2] >= 0 for row in result.rows)


def test_extension_scan_order(benchmark):
    result = run_once(benchmark, run_scan_order_ablation, config=default_config())
    print()
    print(result.render())
    by_label = {row[0]: row for row in result.rows}
    # Shuffling the scan order must grow the failing-cell span...
    assert by_label["random"][1] > by_label["structural"][1]
    # ...and hurt the interval scheme more than it hurts random selection.
    interval_loss = by_label["random"][2] - by_label["structural"][2]
    random_loss = by_label["random"][3] - by_label["structural"][3]
    assert interval_loss > random_loss - 1e-9


def test_extension_multi_core(benchmark):
    result = run_once(benchmark, run_multi_core, config=default_config())
    print()
    print(result.render())
    by_scheme = {row[0]: row[1] for row in result.rows}
    assert by_scheme["two-step"] <= by_scheme["random"] + 1e-9


def test_extension_atpg_topup(benchmark):
    from repro.experiments.atpg_topup import run_atpg_topup

    result = run_once(benchmark, run_atpg_topup, config=default_config())
    print()
    print(result.render())
    for row in result.rows:
        assert row.combined_coverage >= row.random_coverage - 1e-12


def test_extension_diagnosis_time(benchmark):
    from repro.experiments.extensions import run_diagnosis_time

    result = run_once(benchmark, run_diagnosis_time, config=default_config())
    print()
    print(result.render())
    assert len(result.rows) == 6


def test_extension_schedule(benchmark):
    from repro.experiments.extensions import run_schedule_diagnosis

    result = run_once(benchmark, run_schedule_diagnosis, config=default_config())
    print()
    print(result.render())
    assert len(result.rows) == 8
