"""Bench: Table 2 — DR on the six largest ISCAS-89 circuits, random vs
two-step, without and with superposition pruning (128 patterns, degree-16
LFSR, equal partition counts).

Expected shape (paper): two-step provides greater diagnostic accuracy than
random selection for every circuit — by as much as ~80% on the larger ones
— and pruning improves both further.
"""

from repro.experiments.config import default_config
from repro.experiments.table2 import run_table2

from .conftest import run_once


def test_table2(benchmark):
    result = run_once(benchmark, run_table2, default_config())
    print()
    print(result.render())
    assert len(result.rows) == 6
    wins = sum(1 for r in result.rows if r.dr_two_step <= r.dr_random + 1e-9)
    # Two-step must win (or tie) on the clear majority of circuits; sampled
    # fault sets make an occasional tie-at-zero row uninformative.
    assert wins >= 5, f"two-step only won {wins}/6 circuits"
    for row in result.rows:
        assert row.dr_random_pruned <= row.dr_random + 1e-9
        assert row.dr_two_step_pruned <= row.dr_two_step + 1e-9
