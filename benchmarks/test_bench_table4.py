"""Bench: Table 4 — SOC 2 (d695 variant, 8 balanced meta scan chains on an
8-bit TAM), DR per failing core, 8 partitions x 8 groups.

Expected shape (paper): the two-step method outperforms random selection
for every failing core; pruning improves both.
"""

from repro.experiments.config import default_config
from repro.experiments.soc_tables import run_table4

from .conftest import run_once


def test_table4(benchmark):
    result = run_once(benchmark, run_table4, default_config())
    print()
    print(result.render())
    assert len(result.rows) == 8
    wins = sum(1 for r in result.rows if r.dr_two_step <= r.dr_random + 1e-9)
    assert wins >= 6, f"two-step only won {wins}/8 cores"
    for row in result.rows:
        assert row.dr_random_pruned <= row.dr_random + 1e-9
        assert row.dr_two_step_pruned <= row.dr_two_step + 1e-9
