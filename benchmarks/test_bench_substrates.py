"""Bench: raw substrate throughput — logic simulation, fault simulation,
partition generation and PODEM — the costs behind every experiment."""

import numpy as np

from repro.atpg.podem import atpg_campaign
from repro.bist.patterns import fast_pattern_matrices
from repro.circuit.library import get_circuit
from repro.core.two_step import make_partitioner
from repro.sim.faults import collapse_faults
from repro.sim.faultsim import FaultSimulator
from repro.sim.logicsim import CompiledCircuit

CIRCUIT = "s9234"
NUM_PATTERNS = 128


def test_logic_simulation_throughput(benchmark):
    netlist = get_circuit(CIRCUIT)
    compiled = CompiledCircuit(netlist)
    pi, ff = fast_pattern_matrices(
        compiled.num_inputs, compiled.num_scan_cells, NUM_PATTERNS, seed=1
    )
    result = benchmark(compiled.simulate, pi, ff, NUM_PATTERNS)
    assert result.captured.shape[0] == compiled.num_scan_cells


def test_fault_simulation_throughput(benchmark):
    netlist = get_circuit(CIRCUIT)
    compiled = CompiledCircuit(netlist)
    pi, ff = fast_pattern_matrices(
        compiled.num_inputs, compiled.num_scan_cells, NUM_PATTERNS, seed=1
    )
    good = compiled.simulate(pi, ff, NUM_PATTERNS)
    sim = FaultSimulator(compiled, good)
    faults = collapse_faults(netlist)
    rng = np.random.default_rng(0)
    sample = [faults[i] for i in rng.choice(len(faults), 50, replace=False)]

    def run():
        return sum(1 for f in sample if sim.simulate_fault(f).detected)

    detected = benchmark.pedantic(run, rounds=1, iterations=1)
    assert 0 < detected <= 50


def test_partition_generation_throughput(benchmark):
    def run():
        gen = make_partitioner("two-step", 6173, 32)
        return gen.partitions(8)

    parts = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(parts) == 8


def test_podem_throughput(benchmark):
    netlist = get_circuit("s953")
    faults = collapse_faults(netlist)
    rng = np.random.default_rng(2)
    sample = [faults[i] for i in rng.choice(len(faults), 25, replace=False)]

    def run():
        _cubes, stats = atpg_campaign(netlist, sample, backtrack_limit=80)
        return stats

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    assert stats.detected + stats.untestable == 25
