"""Bench: Table 1 — DR vs number of partitions on s953 (200 patterns).

Expected shape (paper): interval-based wins at few partitions, random
selection wins at many, two-step is best throughout with DR roughly half
of random selection's.
"""

from repro.experiments.config import default_config
from repro.experiments.table1 import SCHEMES, run_table1

from .conftest import run_once


def test_table1(benchmark):
    result = run_once(benchmark, run_table1, default_config())
    print()
    print(result.render())
    for scheme in SCHEMES:
        sweep = result.dr[scheme]
        assert len(sweep) == 8
        assert all(a >= b - 1e-9 for a, b in zip(sweep, sweep[1:]))
    # Headline claim: with all 8 partitions the two-step method resolves at
    # least as well as pure random selection.
    assert result.dr["two-step"][-1] <= result.dr["random"][-1] + 1e-9
