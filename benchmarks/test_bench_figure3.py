"""Bench: Figure 3 — single-partition worked example on s953: interval vs
random group contents and suspect counts for one injected fault.

Expected shape (paper): the interval partition keeps the clustered failing
cells in few groups, leaving fewer suspects than random selection, which
fragments the cluster.
"""

from repro.experiments.config import default_config
from repro.experiments.figure3 import run_figure3

from .conftest import run_once


def test_figure3(benchmark):
    result = run_once(benchmark, run_figure3, default_config())
    print()
    print(result.render())
    assert result.interval_suspects >= len(result.failing_cells)
    assert result.random_suspects >= len(result.failing_cells)
    # The suspect count can never exceed the chain.
    assert result.interval_suspects <= result.num_cells
    assert result.random_suspects <= result.num_cells
