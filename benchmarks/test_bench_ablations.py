"""Bench: ablation studies for the design choices DESIGN.md calls out.

1. Interval partitions in step one (paper: "one or two are usually adequate").
2. Groups per partition (paper: "more groups on the longer meta scan chains").
3. MISR width / aliasing vs exact comparison.
4. Deterministic fixed intervals [8] vs LFSR-drawn intervals.
5. Adaptive binary search [6] session cost vs two-step.
"""

from repro.experiments.ablations import (
    run_aliasing_ablation,
    run_binary_search_ablation,
    run_deterministic_ablation,
    run_group_count_ablation,
    run_interval_count_ablation,
)
from repro.experiments.config import default_config

from .conftest import run_once


def test_ablation_interval_count(benchmark):
    result = run_once(benchmark, run_interval_count_ablation, config=default_config())
    print()
    print(result.render())
    # Using at least one interval partition must beat none.
    assert result.dr_by_interval_count[1] <= result.dr_by_interval_count[0] + 1e-9


def test_ablation_group_count(benchmark):
    result = run_once(benchmark, run_group_count_ablation, config=default_config())
    print()
    print(result.render())
    # More groups (more sessions) never hurts resolution.
    drs = [row[3] for row in result.rows]
    assert all(a >= b - 1e-9 for a, b in zip(drs, drs[1:]))


def test_ablation_aliasing(benchmark):
    result = run_once(benchmark, run_aliasing_ablation, config=default_config())
    print()
    print(result.render())
    exact_row = result.rows[0]
    assert exact_row[0] == "exact" and exact_row[2] == 0


def test_ablation_deterministic(benchmark):
    result = run_once(benchmark, run_deterministic_ablation, config=default_config())
    print()
    print(result.render())
    assert len(result.rows) == 6


def test_ablation_binary_search(benchmark):
    result = run_once(benchmark, run_binary_search_ablation, config=default_config())
    print()
    print(result.render())
    # Binary search reaches (near-)exact resolution but is adaptive; the
    # partition approach spends a fixed pre-planned session budget.
    assert result.dr_binary <= result.dr_two_step + 1e-9


def test_ablation_pattern_count(benchmark):
    from repro.experiments.patterns_ablation import run_pattern_count_ablation

    result = run_once(benchmark, run_pattern_count_ablation, config=default_config())
    print()
    print(result.render())
    coverages = [row[1] for row in result.rows]
    assert all(a <= b + 1e-12 for a, b in zip(coverages, coverages[1:]))


def test_ablation_error_model(benchmark):
    from repro.experiments.error_model import run_error_model_ablation

    result = run_once(benchmark, run_error_model_ablation, config=default_config())
    print()
    print(result.render())
    by_protocol = {row[0]: row for row in result.rows}
    # The paper's Section 4 claim: real fault injection yields DR at least
    # as large as the random-error-injection protocol of prior work.
    assert (
        by_protocol["real-faults"][3] >= by_protocol["random-errors"][3] - 1e-9
    )
