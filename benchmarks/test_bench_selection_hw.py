"""Bench: Fig. 1 architecture — cost and equivalence of the cycle-accurate
selection hardware model against the functional partitioners, at SOC chain
length."""

import numpy as np

from repro.core.interval import IntervalPartitioner
from repro.core.random_selection import RandomSelectionPartitioner
from repro.core.selection_hw import SelectionHardware

CHAIN_LENGTH = 2048
NUM_GROUPS = 32


def run_equivalence(mode):
    hw = SelectionHardware(CHAIN_LENGTH, NUM_GROUPS, mode=mode, seed=None)
    if mode == "random":
        fn = RandomSelectionPartitioner(CHAIN_LENGTH, NUM_GROUPS, seed=hw.ivr.value)
    else:
        fn = IntervalPartitioner(CHAIN_LENGTH, NUM_GROUPS)
    mismatches = 0
    for _ in range(2):
        hw_part = hw.partition_from_masks(hw.run_partition())
        fn_part = fn.next_partition()
        if not np.array_equal(hw_part.group_of, fn_part.group_of):
            mismatches += 1
    return mismatches


def test_selection_hw_random(benchmark):
    mismatches = benchmark.pedantic(
        run_equivalence, args=("random",), rounds=1, iterations=1
    )
    assert mismatches == 0


def test_selection_hw_interval(benchmark):
    mismatches = benchmark.pedantic(
        run_equivalence, args=("interval",), rounds=1, iterations=1
    )
    assert mismatches == 0
