"""Benchmark configuration.

Each benchmark regenerates one table or figure of the paper.  Fault-sample
sizes honour ``REPRO_FAULTS`` / ``REPRO_FAULTS_LARGE`` (defaults 120 / 60;
the paper's protocol uses 500 — run ``examples/full_reproduction.py`` for
that).  Heavy experiments run a single round: the interesting output is the
table itself (printed; run pytest with ``-s`` to see it inline) plus the
wall-clock cost of a full diagnosis campaign.
"""

import os

import pytest

os.environ.setdefault("REPRO_LOG", "quiet")


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
