"""Bench: Table 3 — SOC 1 (six largest ISCAS-89 cores stitched on a single
meta scan chain), DR per failing core, 8 partitions x 32 groups.

Expected shape (paper): the two-step method outperforms random selection
for every failing core, in some cases by an order of magnitude; the
interval step is what captures the fact that all failing cells live in one
core's contiguous segment of the TestRail.
"""

from repro.experiments.config import default_config
from repro.experiments.soc_tables import run_table3

from .conftest import run_once


def test_table3(benchmark):
    result = run_once(benchmark, run_table3, default_config())
    print()
    print(result.render())
    assert len(result.rows) == 6
    wins = sum(1 for r in result.rows if r.dr_two_step <= r.dr_random + 1e-9)
    assert wins >= 5, f"two-step only won {wins}/6 cores"
    # At least one core should show a decisive (>=2x) improvement.
    decisive = any(
        r.dr_random > 0.2 and r.dr_two_step < r.dr_random / 2 for r in result.rows
    )
    assert decisive, "expected at least one large two-step win"
