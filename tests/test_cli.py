"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENT_RUNNERS, diagnose_main, experiment_main, main


class TestDiagnose:
    def test_basic_run(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "5")
        code = diagnose_main(["s953", "--faults", "5", "--partitions", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "s953" in out
        assert "DR =" in out
        assert "sound: 5/5" in out

    def test_prune_and_verbose(self, capsys):
        code = diagnose_main(
            ["s953", "--faults", "3", "--prune", "--verbose", "--scheme", "random"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "pruned" in out
        assert "candidates=" in out

    def test_unknown_circuit_raises(self):
        with pytest.raises(KeyError):
            diagnose_main(["nope", "--faults", "1"])

    def test_bad_scheme_rejected(self):
        with pytest.raises(SystemExit):
            diagnose_main(["s953", "--scheme", "magic"])


class TestExperiment:
    def test_figure3(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "6")
        monkeypatch.setenv("REPRO_FAULTS_LARGE", "3")
        monkeypatch.setenv("REPRO_SCALE", "0.1")
        code = experiment_main(["figure3"])
        assert code == 0
        assert "Figure 3" in capsys.readouterr().out

    def test_faults_override(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.1")
        code = experiment_main(["table1", "--faults", "5"])
        assert code == 0
        assert "Table 1" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            experiment_main(["table99"])

    def test_profiled_traced_run_exports_and_stats_renders(
        self, capsys, monkeypatch, tmp_path
    ):
        """--quick --profile --trace end to end: non-empty collapsed-stack
        file, schema-v3 manifest with an enabled profile record, and
        `repro stats` rendering the per-span hot-function tables."""
        import json

        from repro import telemetry
        from repro.cli import stats_main
        from repro.experiments.cache import clear_caches

        monkeypatch.setenv("REPRO_SCALE", "0.1")
        # A cache-warm --quick run spends too little CPU for the default
        # 97 Hz to land a sample reliably; cold caches + a high rate make
        # the sampler deterministic enough to assert on.
        monkeypatch.setenv("REPRO_PROFILE_HZ", "2000")
        clear_caches()
        monkeypatch.chdir(tmp_path)
        was_enabled = telemetry.TRACER.enabled
        telemetry.TRACER.reset()
        try:
            code = experiment_main(["table1", "--quick", "--profile",
                                    "--trace"])
        finally:
            telemetry.PROFILER.stop()
            telemetry.TRACER.enabled = was_enabled
            telemetry.TRACER.reset()
        assert code == 0
        folded = (tmp_path / "profile.folded").read_text()
        assert folded.strip(), "profiler collected no samples"
        assert all(
            line.rpartition(" ")[2].isdigit()
            for line in folded.strip().splitlines()
        )
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert telemetry.validate_manifest(manifest) == []
        assert manifest["schema_version"] == 3
        assert manifest["profile"]["enabled"] is True
        assert manifest["profile"]["samples"] > 0
        assert manifest["profile_file"] == "profile.folded"
        telemetry.PROFILER.data.clear()
        capsys.readouterr()
        assert stats_main([str(tmp_path / "manifest.json")]) == 0
        out = capsys.readouterr().out
        # Sample counts on a --quick run are tiny, so don't pin which span
        # got them — just that the per-span hot-function tables rendered.
        assert "Profile:" in out
        assert "self %" in out

    def test_all_runners_registered(self):
        expected = {
            "table1", "table2", "table3", "table4", "figure3", "figure5",
            "clustering", "ablation-intervals", "ablation-groups",
            "ablation-aliasing", "ablation-deterministic",
            "ablation-binary-search", "extension-vectors",
            "extension-scan-order", "extension-multi-core", "ablation-patterns",
            "extension-time", "extension-schedule", "extension-atpg",
            "ablation-error-model",
        }
        assert set(EXPERIMENT_RUNNERS) == expected


class TestMain:
    def test_dispatch_requires_command(self, capsys):
        assert main([]) == 2

    def test_dispatch_diagnose(self, capsys):
        assert main(["diagnose", "s953", "--faults", "2"]) == 0


class TestStatsRobustness:
    """`repro stats` must give a clear error, never a traceback, on the
    debris a crashed traced run leaves behind."""

    def test_missing_file(self, capsys, tmp_path):
        from repro.cli import stats_main

        assert stats_main([str(tmp_path / "gone.json")]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_empty_manifest(self, capsys, tmp_path):
        from repro.cli import stats_main

        empty = tmp_path / "manifest.json"
        empty.write_text("")
        assert stats_main([str(empty)]) == 2
        err = capsys.readouterr().err
        assert "empty" in err

    def test_truncated_manifest(self, capsys, tmp_path):
        from repro.cli import stats_main

        truncated = tmp_path / "manifest.json"
        truncated.write_text('{"schema": "repro-run-manifest", "metri')
        assert stats_main([str(truncated)]) == 2
        err = capsys.readouterr().err
        assert "truncated" in err

    def test_manifest_holding_wrong_type(self, capsys, tmp_path):
        from repro.cli import stats_main

        wrong = tmp_path / "manifest.json"
        wrong.write_text("[1, 2, 3]")
        assert stats_main([str(wrong)]) == 2
        assert "manifest object" in capsys.readouterr().err

    def test_truncated_trace_jsonl(self, capsys, tmp_path):
        from repro.cli import stats_main

        trace = tmp_path / "trace.jsonl"
        trace.write_text('{"name": "diagnose", "t0": 0.0, "t1"')
        assert stats_main([str(trace)]) == 2
        assert "span log" in capsys.readouterr().err

    def test_empty_trace_jsonl(self, capsys, tmp_path):
        from repro.cli import stats_main

        trace = tmp_path / "trace.jsonl"
        trace.write_text("")
        assert stats_main([str(trace)]) == 2
        assert "empty" in capsys.readouterr().err

    def test_manifest_with_spans_but_no_metrics(self, capsys, tmp_path):
        """A manifest recording spans without a metrics section is a
        partial export: clear exit-2 error, never a silent half-summary."""
        import json

        from repro import telemetry
        from repro.cli import stats_main

        telemetry.enable_tracing()
        with telemetry.span("experiment:test"):
            pass
        manifest = telemetry.build_manifest()
        telemetry.disable_tracing()
        telemetry.TRACER.reset()
        del manifest["metrics"]
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps(manifest, default=repr))
        assert stats_main([str(path)]) == 2
        err = capsys.readouterr().err
        assert "span(s) but no metrics section" in err
        assert "Traceback" not in err


class TestStatsDiskCache:
    """`repro stats --disk-cache` renders the persistent store and turns
    every unusable-directory case into a clear exit-2 error line."""

    def _populate(self, root, monkeypatch):
        from repro.experiments import cache_disk

        monkeypatch.setenv("REPRO_DISK_CACHE", str(root))
        cache_disk.store("workload", ("s27", 1.0, 64, 0, 5), {"x": 1})
        cache_disk.store("partitions", ("two-step", 9, 3, 4), [1, 2])

    def test_summary_renders_kinds(self, capsys, tmp_path, monkeypatch):
        from repro.cli import stats_main

        self._populate(tmp_path / "dc", monkeypatch)
        assert stats_main(["--disk-cache", str(tmp_path / "dc")]) == 0
        out = capsys.readouterr().out
        assert "Disk cache" in out
        assert "workload" in out and "partitions" in out
        assert "total" in out

    def test_env_dir_used_when_flag_bare(self, capsys, tmp_path, monkeypatch):
        from repro.cli import stats_main

        self._populate(tmp_path / "dc", monkeypatch)
        assert stats_main(["--disk-cache"]) == 0
        assert "workload" in capsys.readouterr().out

    def test_missing_dir_clear_error(self, capsys, tmp_path, monkeypatch):
        from repro.cli import stats_main

        monkeypatch.delenv("REPRO_DISK_CACHE", raising=False)
        assert stats_main(["--disk-cache", str(tmp_path / "absent")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "does not exist" in err

    def test_unconfigured_clear_error(self, capsys, monkeypatch):
        from repro.cli import stats_main

        monkeypatch.delenv("REPRO_DISK_CACHE", raising=False)
        assert stats_main(["--disk-cache"]) == 2
        assert "no disk cache configured" in capsys.readouterr().err

    def test_corrupt_entries_warned_not_fatal(self, capsys, tmp_path, monkeypatch):
        from repro.cli import stats_main

        root = tmp_path / "dc"
        self._populate(root, monkeypatch)
        (root / "workload-ffffffffff.rpdc").write_bytes(b"not an entry")
        assert stats_main(["--disk-cache", str(root)]) == 0
        captured = capsys.readouterr()
        assert "warning: 1 unreadable entry" in captured.err

    def test_no_arguments_at_all_rejected(self, capsys):
        from repro.cli import stats_main

        with pytest.raises(SystemExit):
            stats_main([])
