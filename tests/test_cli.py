"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENT_RUNNERS, diagnose_main, experiment_main, main


class TestDiagnose:
    def test_basic_run(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "5")
        code = diagnose_main(["s953", "--faults", "5", "--partitions", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "s953" in out
        assert "DR =" in out
        assert "sound: 5/5" in out

    def test_prune_and_verbose(self, capsys):
        code = diagnose_main(
            ["s953", "--faults", "3", "--prune", "--verbose", "--scheme", "random"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "pruned" in out
        assert "candidates=" in out

    def test_unknown_circuit_raises(self):
        with pytest.raises(KeyError):
            diagnose_main(["nope", "--faults", "1"])

    def test_bad_scheme_rejected(self):
        with pytest.raises(SystemExit):
            diagnose_main(["s953", "--scheme", "magic"])


class TestExperiment:
    def test_figure3(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "6")
        monkeypatch.setenv("REPRO_FAULTS_LARGE", "3")
        monkeypatch.setenv("REPRO_SCALE", "0.1")
        code = experiment_main(["figure3"])
        assert code == 0
        assert "Figure 3" in capsys.readouterr().out

    def test_faults_override(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.1")
        code = experiment_main(["table1", "--faults", "5"])
        assert code == 0
        assert "Table 1" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            experiment_main(["table99"])

    def test_all_runners_registered(self):
        expected = {
            "table1", "table2", "table3", "table4", "figure3", "figure5",
            "clustering", "ablation-intervals", "ablation-groups",
            "ablation-aliasing", "ablation-deterministic",
            "ablation-binary-search", "extension-vectors",
            "extension-scan-order", "extension-multi-core", "ablation-patterns",
            "extension-time", "extension-schedule", "extension-atpg",
            "ablation-error-model",
        }
        assert set(EXPERIMENT_RUNNERS) == expected


class TestMain:
    def test_dispatch_requires_command(self, capsys):
        assert main([]) == 2

    def test_dispatch_diagnose(self, capsys):
        assert main(["diagnose", "s953", "--faults", "2"]) == 0


class TestStatsRobustness:
    """`repro stats` must give a clear error, never a traceback, on the
    debris a crashed traced run leaves behind."""

    def test_missing_file(self, capsys, tmp_path):
        from repro.cli import stats_main

        assert stats_main([str(tmp_path / "gone.json")]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_empty_manifest(self, capsys, tmp_path):
        from repro.cli import stats_main

        empty = tmp_path / "manifest.json"
        empty.write_text("")
        assert stats_main([str(empty)]) == 2
        err = capsys.readouterr().err
        assert "empty" in err

    def test_truncated_manifest(self, capsys, tmp_path):
        from repro.cli import stats_main

        truncated = tmp_path / "manifest.json"
        truncated.write_text('{"schema": "repro-run-manifest", "metri')
        assert stats_main([str(truncated)]) == 2
        err = capsys.readouterr().err
        assert "truncated" in err

    def test_manifest_holding_wrong_type(self, capsys, tmp_path):
        from repro.cli import stats_main

        wrong = tmp_path / "manifest.json"
        wrong.write_text("[1, 2, 3]")
        assert stats_main([str(wrong)]) == 2
        assert "manifest object" in capsys.readouterr().err

    def test_truncated_trace_jsonl(self, capsys, tmp_path):
        from repro.cli import stats_main

        trace = tmp_path / "trace.jsonl"
        trace.write_text('{"name": "diagnose", "t0": 0.0, "t1"')
        assert stats_main([str(trace)]) == 2
        assert "span log" in capsys.readouterr().err

    def test_empty_trace_jsonl(self, capsys, tmp_path):
        from repro.cli import stats_main

        trace = tmp_path / "trace.jsonl"
        trace.write_text("")
        assert stats_main([str(trace)]) == 2
        assert "empty" in capsys.readouterr().err


class TestStatsDiskCache:
    """`repro stats --disk-cache` renders the persistent store and turns
    every unusable-directory case into a clear exit-2 error line."""

    def _populate(self, root, monkeypatch):
        from repro.experiments import cache_disk

        monkeypatch.setenv("REPRO_DISK_CACHE", str(root))
        cache_disk.store("workload", ("s27", 1.0, 64, 0, 5), {"x": 1})
        cache_disk.store("partitions", ("two-step", 9, 3, 4), [1, 2])

    def test_summary_renders_kinds(self, capsys, tmp_path, monkeypatch):
        from repro.cli import stats_main

        self._populate(tmp_path / "dc", monkeypatch)
        assert stats_main(["--disk-cache", str(tmp_path / "dc")]) == 0
        out = capsys.readouterr().out
        assert "Disk cache" in out
        assert "workload" in out and "partitions" in out
        assert "total" in out

    def test_env_dir_used_when_flag_bare(self, capsys, tmp_path, monkeypatch):
        from repro.cli import stats_main

        self._populate(tmp_path / "dc", monkeypatch)
        assert stats_main(["--disk-cache"]) == 0
        assert "workload" in capsys.readouterr().out

    def test_missing_dir_clear_error(self, capsys, tmp_path, monkeypatch):
        from repro.cli import stats_main

        monkeypatch.delenv("REPRO_DISK_CACHE", raising=False)
        assert stats_main(["--disk-cache", str(tmp_path / "absent")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "does not exist" in err

    def test_unconfigured_clear_error(self, capsys, monkeypatch):
        from repro.cli import stats_main

        monkeypatch.delenv("REPRO_DISK_CACHE", raising=False)
        assert stats_main(["--disk-cache"]) == 2
        assert "no disk cache configured" in capsys.readouterr().err

    def test_corrupt_entries_warned_not_fatal(self, capsys, tmp_path, monkeypatch):
        from repro.cli import stats_main

        root = tmp_path / "dc"
        self._populate(root, monkeypatch)
        (root / "workload-ffffffffff.rpdc").write_bytes(b"not an entry")
        assert stats_main(["--disk-cache", str(root)]) == 0
        captured = capsys.readouterr()
        assert "warning: 1 unreadable entry" in captured.err

    def test_no_arguments_at_all_rejected(self, capsys):
        from repro.cli import stats_main

        with pytest.raises(SystemExit):
            stats_main([])
