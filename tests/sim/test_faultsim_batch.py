"""Equivalence tests: fault-batched cone kernel vs the event-driven oracle.

The batched kernel must produce bit-identical error matrices to
``FaultSimulator.simulate_fault`` for randomized fault populations, on
multiple ISCAS circuits, serially and through the fork pool.
"""

import numpy as np
import pytest

from repro.circuit.library import get_circuit
from repro.parallel import fork_available
from repro.sim.faults import collapse_faults
from repro.sim.faultsim_batch import (
    DEFAULT_BATCH,
    plan_batches,
    resolve_batch_size,
    simulate_batch,
    simulate_faults_batched,
)
from repro.soc.core_wrapper import EmbeddedCore


def assert_identical(event, batched):
    assert len(event) == len(batched)
    for a, b in zip(event, batched):
        assert a.fault == b.fault
        assert a.num_patterns == b.num_patterns
        assert set(a.cell_errors) == set(b.cell_errors)
        for cell in a.cell_errors:
            assert np.array_equal(a.cell_errors[cell], b.cell_errors[cell])


def sampled_population(name, num_patterns, count, seed):
    core = EmbeddedCore(get_circuit(name), num_patterns=num_patterns)
    faults = collapse_faults(core.netlist)
    rng = np.random.default_rng(seed)
    idx = rng.choice(len(faults), size=min(count, len(faults)), replace=False)
    return core.fault_simulator, [faults[i] for i in idx]


class TestResolveBatchSize:
    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULT_BATCH", raising=False)
        assert resolve_batch_size() == DEFAULT_BATCH

    def test_zero_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_BATCH", "0")
        assert resolve_batch_size() == 0

    def test_explicit_size(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_BATCH", "17")
        assert resolve_batch_size() == 17

    def test_argument_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_BATCH", "17")
        assert resolve_batch_size(8) == 8
        assert resolve_batch_size(0) == 0

    def test_garbage_env_falls_back_to_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_BATCH", "banana")
        assert resolve_batch_size() == DEFAULT_BATCH

    def test_garbage_env_warns_once(self, monkeypatch, capsys):
        import importlib

        # repro.telemetry re-exports the log *function* under the submodule
        # name, so attribute-style imports resolve to the function — go
        # through importlib to reach the module that owns _WARNED_ENV.
        telemetry_log = importlib.import_module("repro.telemetry.log")

        monkeypatch.setenv("REPRO_LOG", "info")
        monkeypatch.setenv("REPRO_FAULT_BATCH", "banana")
        monkeypatch.setattr(telemetry_log, "_WARNED_ENV", set())
        assert resolve_batch_size() == DEFAULT_BATCH
        err = capsys.readouterr().err
        assert "REPRO_FAULT_BATCH" in err and "'banana'" in err
        # The warning names the bad value exactly once per process.
        assert resolve_batch_size() == DEFAULT_BATCH
        assert capsys.readouterr().err == ""

    def test_batch_of_one_rounds_up(self):
        # A 1-fault "batch" would be pure overhead; the kernel floor is 2.
        assert resolve_batch_size(1) == 2


class TestPlanBatches:
    def test_covers_every_fault_once(self):
        sim, faults = sampled_population("s27", 64, 30, seed=3)
        batches = plan_batches(sim, faults, 8)
        flat = sorted(i for batch in batches for i in batch)
        assert flat == list(range(len(faults)))
        assert all(len(batch) <= 8 for batch in batches)

    def test_deterministic(self):
        sim, faults = sampled_population("s27", 64, 30, seed=3)
        assert plan_batches(sim, faults, 8) == plan_batches(sim, faults, 8)

    def test_sorted_by_site_topology(self):
        sim, faults = sampled_population("s27", 64, 30, seed=3)
        net_index = sim.compiled.net_index
        order = [i for batch in plan_batches(sim, faults, 8) for i in batch]
        sites = [net_index[faults[i].site] for i in order]
        assert sites == sorted(sites)


class TestBatchedEquivalence:
    @pytest.mark.parametrize("name,patterns", [("s27", 100), ("s953", 128)])
    def test_bit_identical_to_event_driven(self, name, patterns):
        sim, faults = sampled_population(name, patterns, 120, seed=11)
        event = [sim.simulate_fault(f) for f in faults]
        for batch_size in (2, 7, 32):
            batched = simulate_faults_batched(sim, faults, batch_size, workers=0)
            assert_identical(event, batched)

    def test_single_batch_kernel(self):
        sim, faults = sampled_population("s27", 64, 12, seed=5)
        event = [sim.simulate_fault(f) for f in faults]
        batched = simulate_batch(sim, faults)
        assert_identical(event, batched)

    def test_non_word_multiple_patterns_tail_clean(self):
        # 100 patterns leaves 28 unused tail bits; no error vector may
        # ever set them.
        from repro.sim.bitops import pattern_mask

        sim, faults = sampled_population("s953", 100, 60, seed=23)
        mask = pattern_mask(100)
        for response in simulate_faults_batched(sim, faults, 16, workers=0):
            for vec in response.cell_errors.values():
                assert np.array_equal(vec & mask, vec)

    def test_simulate_faults_dispatches_to_batched(self, monkeypatch):
        from repro.telemetry import METRICS

        monkeypatch.delenv("REPRO_FAULT_BATCH", raising=False)
        sim, faults = sampled_population("s27", 64, 20, seed=9)
        before = METRICS.snapshot()
        via_dispatch = sim.simulate_faults(faults, workers=0)
        delta = METRICS.diff(before)
        assert delta["counters"].get("faultsim.batched_faults") == len(faults)
        event = [sim.simulate_fault(f) for f in faults]
        assert_identical(event, via_dispatch)

    def test_batch_disabled_env_uses_event_path(self, monkeypatch):
        from repro.telemetry import METRICS

        monkeypatch.setenv("REPRO_FAULT_BATCH", "0")
        sim, faults = sampled_population("s27", 64, 20, seed=9)
        before = METRICS.snapshot()
        responses = sim.simulate_faults(faults, workers=0)
        delta = METRICS.diff(before)
        assert "faultsim.batched_faults" not in delta["counters"]
        assert_identical([sim.simulate_fault(f) for f in faults], responses)


@pytest.mark.skipif(not fork_available(), reason="fork pool unavailable")
class TestBatchedForked:
    @pytest.mark.parametrize("name,patterns", [("s27", 100), ("s953", 128)])
    def test_forked_bit_identical(self, name, patterns):
        sim, faults = sampled_population(name, patterns, 120, seed=17)
        serial = simulate_faults_batched(sim, faults, 16, workers=0)
        forked = simulate_faults_batched(sim, faults, 16, workers=2)
        assert_identical(serial, forked)

    def test_env_workers_dispatch(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        monkeypatch.delenv("REPRO_FAULT_BATCH", raising=False)
        sim, faults = sampled_population("s953", 128, 100, seed=29)
        forked = sim.simulate_faults(faults)
        monkeypatch.setenv("REPRO_WORKERS", "0")
        monkeypatch.setenv("REPRO_FAULT_BATCH", "0")
        event = sim.simulate_faults(faults)
        assert_identical(event, forked)
