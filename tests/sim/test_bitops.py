"""Tests for packed-word helpers, including hypothesis round-trips."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.bitops import (
    WORD_BITS,
    any_bit,
    get_bit,
    num_words,
    pack_bits,
    pattern_mask,
    popcount,
    random_patterns,
    unpack_bits,
)


class TestNumWords:
    @pytest.mark.parametrize(
        "n,expected", [(0, 0), (1, 1), (63, 1), (64, 1), (65, 2), (128, 2), (129, 3)]
    )
    def test_values(self, n, expected):
        assert num_words(n) == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            num_words(-1)


class TestPatternMask:
    def test_partial_word(self):
        mask = pattern_mask(5)
        assert mask.tolist() == [0b11111]

    def test_full_word(self):
        mask = pattern_mask(64)
        assert mask.tolist() == [0xFFFFFFFFFFFFFFFF]

    def test_multi_word(self):
        mask = pattern_mask(70)
        assert mask[0] == np.uint64(0xFFFFFFFFFFFFFFFF)
        assert mask[1] == np.uint64(0b111111)

    def test_zero_patterns(self):
        assert pattern_mask(0).size == 0

    @pytest.mark.parametrize("n", [1, 63, 65, 100, 127, 129, 953])
    def test_non_word_multiple_tail(self, n):
        """The last word masks off exactly the unused tail bits."""
        mask = pattern_mask(n)
        assert mask.size == num_words(n)
        assert popcount(mask) == n
        tail_bits = n % WORD_BITS
        assert int(mask[-1]) == (1 << tail_bits) - 1

    @pytest.mark.parametrize("n", [100, 129, 953])
    def test_masking_clears_tail_only(self, n):
        """ANDing all-ones with the mask keeps every pattern bit and
        clears every tail bit — the invariant the simulators rely on."""
        ones = np.full(num_words(n), np.uint64(0xFFFFFFFFFFFFFFFF))
        masked = ones & pattern_mask(n)
        assert unpack_bits(masked, n) == [1] * n
        assert popcount(masked) == n  # nothing above bit n survives

    def test_pack_bits_never_sets_tail(self):
        vec = pack_bits([1] * 100)
        assert np.array_equal(vec, vec & pattern_mask(100))


@given(st.lists(st.integers(0, 1), min_size=0, max_size=200))
def test_pack_unpack_round_trip(bits):
    vec = pack_bits(bits)
    assert unpack_bits(vec, len(bits)) == bits


@given(st.lists(st.integers(0, 1), min_size=1, max_size=200))
def test_popcount_matches_sum(bits):
    assert popcount(pack_bits(bits)) == sum(bits)


@given(st.lists(st.integers(0, 1), min_size=1, max_size=200), st.data())
def test_get_bit(bits, data):
    idx = data.draw(st.integers(0, len(bits) - 1))
    assert get_bit(pack_bits(bits), idx) == bits[idx]


class TestAnyBit:
    def test_empty_vector(self):
        assert not any_bit(np.zeros(0, dtype=np.uint64))

    def test_zero(self):
        assert not any_bit(np.zeros(3, dtype=np.uint64))

    def test_nonzero(self):
        vec = np.zeros(3, dtype=np.uint64)
        vec[2] = np.uint64(1) << np.uint64(17)
        assert any_bit(vec)


class TestRandomPatterns:
    def test_shape_and_tail_cleared(self, rng):
        matrix = random_patterns(5, 70, rng)
        assert matrix.shape == (5, 2)
        tail_mask = ~pattern_mask(70)[1]
        assert all(int(row[1]) & int(tail_mask) == 0 for row in matrix)

    def test_deterministic_under_seed(self):
        a = random_patterns(3, 100, np.random.default_rng(9))
        b = random_patterns(3, 100, np.random.default_rng(9))
        assert np.array_equal(a, b)

    def test_nontrivial(self, rng):
        matrix = random_patterns(4, 256, rng)
        assert popcount(matrix[0]) > 0
