"""Tests for compiled bit-parallel logic simulation, validated against
exhaustive truth tables and a reference interpreter."""

import numpy as np
import pytest

from repro.circuit.bench import parse_bench
from repro.circuit.netlist import GateType
from repro.sim.bitops import pack_bits, unpack_bits
from repro.sim.logicsim import CompiledCircuit


def eval_reference(netlist, assignment):
    """Naive single-pattern interpreter used as ground truth."""
    values = dict(assignment)

    def value(net):
        if net in values:
            return values[net]
        gate = netlist.gates[net]
        ins = [value(f) for f in gate.fanins]
        if gate.gtype is GateType.AND:
            out = int(all(ins))
        elif gate.gtype is GateType.NAND:
            out = int(not all(ins))
        elif gate.gtype is GateType.OR:
            out = int(any(ins))
        elif gate.gtype is GateType.NOR:
            out = int(not any(ins))
        elif gate.gtype is GateType.XOR:
            out = sum(ins) & 1
        elif gate.gtype is GateType.XNOR:
            out = 1 - (sum(ins) & 1)
        elif gate.gtype in (GateType.BUF,):
            out = ins[0]
        elif gate.gtype is GateType.NOT:
            out = 1 - ins[0]
        else:
            raise AssertionError(gate.gtype)
        values[net] = out
        return out

    return value


GATE_BENCH = """
INPUT(A)
INPUT(B)
INPUT(C)
OUTPUT(X_AND)
OUTPUT(X_NAND)
OUTPUT(X_OR)
OUTPUT(X_NOR)
OUTPUT(X_XOR)
OUTPUT(X_XNOR)
OUTPUT(X_NOT)
OUTPUT(X_BUF)
X_AND = AND(A, B, C)
X_NAND = NAND(A, B)
X_OR = OR(A, B, C)
X_NOR = NOR(A, B)
X_XOR = XOR(A, B, C)
X_XNOR = XNOR(A, B)
X_NOT = NOT(A)
X_BUF = BUFF(B)
"""


class TestGateSemantics:
    def test_exhaustive_truth_tables(self):
        net = parse_bench(GATE_BENCH, name="gates")
        compiled = CompiledCircuit(net)
        # 8 patterns = all combinations of (A, B, C).
        combos = [(a, b, c) for a in (0, 1) for b in (0, 1) for c in (0, 1)]
        pi = np.vstack(
            [
                pack_bits([combo[i] for combo in combos])
                for i in range(3)
            ]
        )
        ff = np.zeros((0, 1), dtype=np.uint64)
        result = compiled.simulate(pi, ff, len(combos))
        for p, (a, b, c) in enumerate(combos):
            expect = {
                "X_AND": a & b & c,
                "X_NAND": 1 - (a & b),
                "X_OR": a | b | c,
                "X_NOR": 1 - (a | b),
                "X_XOR": a ^ b ^ c,
                "X_XNOR": 1 - (a ^ b),
                "X_NOT": 1 - a,
                "X_BUF": b,
            }
            for name, want in expect.items():
                got = unpack_bits(result.net(name), len(combos))[p]
                assert got == want, (name, (a, b, c))


class TestS27:
    def test_matches_reference_interpreter(self, s27_netlist, s27_compiled, rng):
        num_patterns = 100
        n_pi = len(s27_netlist.inputs)
        n_ff = s27_netlist.num_flip_flops
        bits_pi = rng.integers(0, 2, size=(n_pi, num_patterns))
        bits_ff = rng.integers(0, 2, size=(n_ff, num_patterns))
        pi = np.vstack([pack_bits(bits_pi[i]) for i in range(n_pi)])
        ff = np.vstack([pack_bits(bits_ff[i]) for i in range(n_ff)])
        result = s27_compiled.simulate(pi, ff, num_patterns)
        for p in range(num_patterns):
            assignment = {
                net: int(bits_pi[i][p]) for i, net in enumerate(s27_netlist.inputs)
            }
            for i, ff_gate in enumerate(s27_netlist.flip_flops):
                assignment[ff_gate.output] = int(bits_ff[i][p])
            ref = eval_reference(s27_netlist, assignment)
            for net in s27_netlist.gates:
                if s27_netlist.gates[net].gtype.is_combinational:
                    got = unpack_bits(result.net(net), num_patterns)[p]
                    assert got == ref(net), (net, p)

    def test_captured_rows_are_d_inputs(self, s27_netlist, s27_compiled, rng):
        num_patterns = 16
        pi = np.vstack(
            [pack_bits(rng.integers(0, 2, num_patterns)) for _ in range(4)]
        )
        ff = np.vstack(
            [pack_bits(rng.integers(0, 2, num_patterns)) for _ in range(3)]
        )
        result = s27_compiled.simulate(pi, ff, num_patterns)
        captured = result.captured
        for i, ff_gate in enumerate(s27_netlist.flip_flops):
            d_net = ff_gate.fanins[0]
            assert np.array_equal(captured[i], result.net(d_net))

    def test_po_values(self, s27_compiled, rng):
        num_patterns = 8
        pi = np.vstack([pack_bits(rng.integers(0, 2, 8)) for _ in range(4)])
        ff = np.vstack([pack_bits(rng.integers(0, 2, 8)) for _ in range(3)])
        result = s27_compiled.simulate(pi, ff, num_patterns)
        assert result.po_values.shape == (1, 1)


class TestShapes:
    def test_wrong_pi_shape(self, s27_compiled):
        with pytest.raises(ValueError, match="pi_values"):
            s27_compiled.simulate(
                np.zeros((2, 1), dtype=np.uint64),
                np.zeros((3, 1), dtype=np.uint64),
                10,
            )

    def test_wrong_ff_shape(self, s27_compiled):
        with pytest.raises(ValueError, match="ff_values"):
            s27_compiled.simulate(
                np.zeros((4, 1), dtype=np.uint64),
                np.zeros((5, 1), dtype=np.uint64),
                10,
            )

    def test_properties(self, s27_compiled):
        assert s27_compiled.num_inputs == 4
        assert s27_compiled.num_scan_cells == 3
        assert s27_compiled.num_nets == 17
        assert s27_compiled.scan_cells == ["G5", "G6", "G7"]
