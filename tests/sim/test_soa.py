"""SoA level-schedule kernel: env resolution, structure invariants, and
bit-identity against the per-gate oracle.

The schedule is a pure reshuffling of the compiled ops list, so every
test here pins the same contract: whatever the per-gate loop computes,
the grouped kernel must compute bit for bit — good-machine and
fault-batched, on real and randomly generated netlists.
"""

import numpy as np
import pytest

from repro.bist.patterns import fast_pattern_matrices
from repro.circuit.bench import parse_bench
from repro.circuit.generate import CircuitProfile, generate_circuit
from repro.circuit.library import get_circuit
from repro.circuit.netlist import GateType
from repro.experiments import cache_disk
from repro.experiments.cache import cache_stats, clear_caches
from repro.parallel import fork_available
from repro.sim import soa
import importlib

# repro.telemetry re-exports the log *function* under the submodule's
# name, so attribute-style imports resolve to the function, not the module.
telemetry_log = importlib.import_module("repro.telemetry.log")
from repro.sim.faults import collapse_faults
from repro.sim.faultsim_batch import simulate_batch, simulate_faults_batched
from repro.sim.logicsim import CompiledCircuit
from repro.sim.soa import build_schedule, schedule_for, soa_enabled, structural_digest
from repro.soc.core_wrapper import EmbeddedCore

from .test_logicsim import GATE_BENCH


def assert_kernels_identical(compiled, num_patterns, seed=11):
    """Both gate-eval kernels over the same patterns, full value plane."""
    pi, ff = fast_pattern_matrices(
        compiled.num_inputs, compiled.num_scan_cells, num_patterns, seed=seed
    )
    fast = compiled.simulate(pi, ff, num_patterns, soa=True)
    slow = compiled.simulate(pi, ff, num_patterns, soa=False)
    np.testing.assert_array_equal(fast.values, slow.values)
    return fast


def assert_responses_identical(oracle, candidate):
    assert len(oracle) == len(candidate)
    for a, b in zip(oracle, candidate):
        assert a.fault == b.fault
        assert set(a.cell_errors) == set(b.cell_errors)
        for cell in a.cell_errors:
            np.testing.assert_array_equal(a.cell_errors[cell], b.cell_errors[cell])


def assert_schedules_equal(a, b):
    assert a.digest == b.digest
    assert (a.num_nets, a.num_gates, a.num_levels) == (
        b.num_nets, b.num_gates, b.num_levels
    )
    assert a.total_fanin_slots == b.total_fanin_slots
    assert len(a.groups) == len(b.groups)
    for ga, gb in zip(a.groups, b.groups):
        assert (ga.level, ga.op, ga.arity) == (gb.level, gb.op, gb.arity)
        np.testing.assert_array_equal(ga.out_rows, gb.out_rows)
        np.testing.assert_array_equal(ga.fanins, gb.fanins)
        np.testing.assert_array_equal(ga.inv, gb.inv)
    np.testing.assert_array_equal(a.level_of, b.level_of)


def sampled_population(name, num_patterns, count, seed):
    core = EmbeddedCore(get_circuit(name), num_patterns=num_patterns)
    faults = collapse_faults(core.netlist)
    rng = np.random.default_rng(seed)
    idx = rng.choice(len(faults), size=min(count, len(faults)), replace=False)
    return core.fault_simulator, [faults[i] for i in idx]


class TestSoaEnabled:
    def test_default_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_SOA", raising=False)
        assert soa_enabled() is True

    def test_empty_means_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOA", "  ")
        assert soa_enabled() is True

    def test_zero_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOA", "0")
        assert soa_enabled() is False

    def test_nonzero_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOA", "2")
        assert soa_enabled() is True

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOA", "0")
        assert soa_enabled(True) is True
        monkeypatch.setenv("REPRO_SOA", "1")
        assert soa_enabled(False) is False

    def test_garbage_env_warns_once_and_keeps_default(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_LOG", "info")
        monkeypatch.setenv("REPRO_SOA", "of")
        monkeypatch.setattr(telemetry_log, "_WARNED_ENV", set())
        assert soa_enabled() is True
        err = capsys.readouterr().err
        assert "REPRO_SOA" in err and "'of'" in err
        # Second resolution of the same bad value stays silent.
        assert soa_enabled() is True
        assert capsys.readouterr().err == ""

    def test_quiet_log_suppresses_warning(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_LOG", "quiet")
        monkeypatch.setenv("REPRO_SOA", "yes")
        monkeypatch.setattr(telemetry_log, "_WARNED_ENV", set())
        assert soa_enabled() is True
        assert capsys.readouterr().err == ""


class TestScheduleStructure:
    def test_every_gate_scheduled_once(self, s27_compiled):
        schedule = build_schedule(s27_compiled)
        scheduled = sorted(
            int(r) for grp in schedule.groups for r in grp.out_rows
        )
        assert scheduled == sorted(op[0] for op in s27_compiled._ops)
        assert schedule.num_gates == len(s27_compiled._ops)

    def test_group_homogeneity(self, small_compiled):
        schedule = build_schedule(small_compiled)
        for grp in schedule.groups:
            n = grp.num_gates
            assert grp.out_rows.shape == (n,)
            assert grp.fanins.shape == (n, grp.arity)
            assert grp.inv.shape == (n,)
            assert set(np.unique(grp.inv)) <= {0, int(soa._ALL_ONES)}
            np.testing.assert_array_equal(
                schedule.level_of[grp.out_rows], grp.level
            )

    def test_fanins_at_strictly_lower_levels(self, small_compiled):
        schedule = build_schedule(small_compiled)
        for grp in schedule.groups:
            fanin_levels = schedule.level_of[grp.fanins]
            assert (fanin_levels < grp.level).all()

    def test_groups_sorted_by_level_op_arity(self, small_compiled):
        schedule = build_schedule(small_compiled)
        keys = [(g.level, g.op, g.arity) for g in schedule.groups]
        assert keys == sorted(keys)
        assert len(set(keys)) == len(keys)

    def test_total_fanin_slots(self, s27_compiled):
        schedule = build_schedule(s27_compiled)
        assert schedule.total_fanin_slots == sum(
            len(op[3]) for op in s27_compiled._ops
        )

    def test_deterministic_build_and_stable_digest(self, small_netlist):
        a = CompiledCircuit(small_netlist)
        b = CompiledCircuit(small_netlist)
        assert structural_digest(a) == structural_digest(b)
        assert_schedules_equal(build_schedule(a), build_schedule(b))

    def test_digest_distinguishes_circuits(self, s27_compiled, small_compiled):
        assert structural_digest(s27_compiled) != structural_digest(small_compiled)

    def test_instance_schedule_cached(self, s27_compiled):
        assert s27_compiled.soa_schedule() is s27_compiled.soa_schedule()


class TestGoodMachineIdentity:
    @pytest.mark.parametrize(
        "name,patterns", [("s27", 100), ("s953", 128), ("s5378", 96)]
    )
    def test_bit_identical_to_per_gate(self, name, patterns):
        compiled = CompiledCircuit(get_circuit(name))
        assert_kernels_identical(compiled, patterns)

    def test_truth_table_circuit(self):
        compiled = CompiledCircuit(parse_bench(GATE_BENCH, name="gates"))
        assert_kernels_identical(compiled, 64, seed=5)

    def test_tail_bits_stay_clean(self, small_compiled):
        # 100 patterns leaves 28 unused tail bits in the second word; the
        # masked scatter must never set them.
        from repro.sim.bitops import pattern_mask

        result = assert_kernels_identical(small_compiled, 100, seed=9)
        mask = pattern_mask(100)
        np.testing.assert_array_equal(result.values & mask, result.values)

    def test_env_knob_selects_kernel(self, small_compiled, monkeypatch):
        from repro.telemetry import METRICS

        pi, ff = fast_pattern_matrices(
            small_compiled.num_inputs, small_compiled.num_scan_cells, 48, seed=2
        )
        monkeypatch.setenv("REPRO_SOA", "0")
        before = METRICS.snapshot()
        off = small_compiled.simulate(pi, ff, 48)
        delta = METRICS.diff(before)
        assert delta["counters"].get("logicsim.sims{kernel=per-gate}") == 1
        monkeypatch.setenv("REPRO_SOA", "1")
        before = METRICS.snapshot()
        on = small_compiled.simulate(pi, ff, 48)
        delta = METRICS.diff(before)
        assert delta["counters"].get("logicsim.sims{kernel=soa}") == 1
        np.testing.assert_array_equal(off.values, on.values)


class TestGeneratedNetlists:
    """Property test: random netlists covering every gate type and mixed
    arities evaluate bit-identically under both kernels."""

    PROFILES = [
        CircuitProfile(name=f"soa-prop-{i}", num_inputs=ins, num_outputs=outs,
                       num_flip_flops=ffs, num_gates=gates, depth=depth)
        for i, (ins, outs, ffs, gates, depth) in enumerate(
            [(4, 3, 10, 80, 4), (8, 5, 30, 220, 7), (5, 4, 16, 140, 10)]
        )
    ]

    def test_all_gate_types_and_arities_covered(self):
        types = set()
        arities = set()
        for profile in self.PROFILES:
            for seed in (1, 2):
                netlist = generate_circuit(profile, seed=seed)
                for gate in netlist.gates.values():
                    if gate.gtype.is_combinational:
                        types.add(gate.gtype)
                        arities.add(len(gate.fanins))
        assert types == {
            GateType.AND, GateType.NAND, GateType.OR, GateType.NOR,
            GateType.XOR, GateType.XNOR, GateType.NOT, GateType.BUF,
        }
        assert {1, 2, 3}.issubset(arities)

    @pytest.mark.parametrize("profile", PROFILES, ids=lambda p: p.name)
    @pytest.mark.parametrize("seed", [1, 2])
    def test_random_netlist_bit_identical(self, profile, seed):
        compiled = CompiledCircuit(generate_circuit(profile, seed=seed))
        assert_kernels_identical(compiled, 77, seed=seed * 31)


class TestBatchedIdentity:
    @pytest.mark.parametrize(
        "name,patterns,count",
        [("s27", 100, 60), ("s953", 128, 80), ("s5378", 64, 40)],
    )
    def test_soa_cone_matches_event_oracle(self, name, patterns, count):
        sim, faults = sampled_population(name, patterns, count, seed=13)
        oracle = [sim.simulate_fault(f) for f in faults]
        batched = simulate_faults_batched(sim, faults, 16, workers=0, soa=True)
        assert_responses_identical(oracle, batched)

    def test_soa_batch_matches_per_gate_batch(self):
        sim, faults = sampled_population("s953", 128, 48, seed=19)
        per_gate = simulate_batch(sim, faults, soa=False)
        via_soa = simulate_batch(sim, faults, soa=True)
        assert_responses_identical(per_gate, via_soa)

    def test_env_disable_selects_per_gate_cone(self, monkeypatch):
        from repro.telemetry import METRICS

        sim, faults = sampled_population("s27", 64, 12, seed=7)
        monkeypatch.setenv("REPRO_SOA", "0")
        before = METRICS.snapshot()
        off = simulate_batch(sim, faults)
        assert "faultsim.soa_batches" not in METRICS.diff(before)["counters"]
        monkeypatch.setenv("REPRO_SOA", "1")
        before = METRICS.snapshot()
        on = simulate_batch(sim, faults)
        assert METRICS.diff(before)["counters"].get("faultsim.soa_batches") == 1
        assert_responses_identical(off, on)

    @pytest.mark.skipif(not fork_available(), reason="fork pool unavailable")
    def test_forked_soa_bit_identical(self):
        sim, faults = sampled_population("s953", 128, 80, seed=23)
        serial = simulate_faults_batched(sim, faults, 16, workers=0, soa=True)
        forked = simulate_faults_batched(sim, faults, 16, workers=2, soa=True)
        assert_responses_identical(serial, forked)


class TestScheduleCache:
    def setup_method(self):
        clear_caches()

    def teardown_method(self):
        clear_caches()

    def test_memoized_in_memory(self, s27_netlist):
        compiled = CompiledCircuit(s27_netlist)
        first = schedule_for(compiled)
        second = schedule_for(compiled)
        assert second is first
        stats = cache_stats()
        assert stats.misses.get("soa-schedule") == 1
        assert stats.hits.get("soa-schedule") == 1

    def test_disk_round_trip(self, s27_netlist, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_DISK_CACHE", str(tmp_path / "dc"))
        compiled = CompiledCircuit(s27_netlist)
        built = schedule_for(compiled)
        clear_caches()  # memory gone; the next lookup must come off disk
        before = cache_disk.stats()
        loaded = schedule_for(CompiledCircuit(s27_netlist))
        after = cache_disk.stats()
        assert after["hits"] >= before["hits"] + 1
        assert loaded is not built
        assert_schedules_equal(built, loaded)
