"""Tests for event-driven fault simulation, validated against a brute-force
reference that re-evaluates the whole circuit with the fault forced."""

import numpy as np
import pytest

from repro.circuit.bench import parse_bench
from repro.circuit.netlist import GateType
from repro.sim.bitops import pack_bits, unpack_bits
from repro.sim.faults import Fault, collapse_faults
from repro.sim.faultsim import FaultSimulator
from repro.sim.logicsim import CompiledCircuit


def faulty_reference(netlist, assignment, fault):
    """Single-pattern interpreter with the fault forced."""
    cache = {}

    def value(net):
        if net in cache:
            return cache[net]
        if net in assignment and not (fault.pin is None and fault.net == net):
            out = assignment[net]
            cache[net] = out
            return out
        if fault.pin is None and fault.net == net:
            cache[net] = fault.stuck_at
            return fault.stuck_at
        gate = netlist.gates[net]
        ins = []
        for pos, src in enumerate(gate.fanins):
            if fault.pin is not None and fault.pin == (net, pos):
                ins.append(fault.stuck_at)
            else:
                ins.append(value(src))
        out = _eval(gate.gtype, ins)
        cache[net] = out
        return out

    return value


def _eval(gtype, ins):
    if gtype is GateType.AND:
        return int(all(ins))
    if gtype is GateType.NAND:
        return int(not all(ins))
    if gtype is GateType.OR:
        return int(any(ins))
    if gtype is GateType.NOR:
        return int(not any(ins))
    if gtype is GateType.XOR:
        return sum(ins) & 1
    if gtype is GateType.XNOR:
        return 1 - (sum(ins) & 1)
    if gtype is GateType.BUF:
        return ins[0]
    if gtype is GateType.NOT:
        return 1 - ins[0]
    raise AssertionError(gtype)


CHAIN = """
INPUT(A)
INPUT(B)
OUTPUT(N3)
F0 = DFF(D0)
F1 = DFF(D1)
N1 = AND(A, F0)
N2 = OR(N1, B)
N3 = NOT(N2)
D0 = XOR(N2, F1)
D1 = NAND(N1, N3)
"""


class TestHandBuilt:
    def setup_method(self):
        self.net = parse_bench(CHAIN, name="chain")
        self.compiled = CompiledCircuit(self.net)

    def run_patterns(self, bits_pi, bits_ff):
        num_patterns = len(bits_pi[0])
        pi = np.vstack([pack_bits(b) for b in bits_pi])
        ff = np.vstack([pack_bits(b) for b in bits_ff])
        good = self.compiled.simulate(pi, ff, num_patterns)
        return FaultSimulator(self.compiled, good), num_patterns

    def test_stem_fault_detected_where_expected(self):
        # A=1, F0=1 makes N1=1; N1/sa0 flips N1, changing D0 and D1.
        sim, n = self.run_patterns([[1], [0]], [[1], [0]])
        response = sim.simulate_fault(Fault("N1", 0))
        assert response.detected
        # good: N1=1, N2=1, N3=0, D0=1^0=1, D1=not(1 and 0)=1
        # faulty: N1=0, N2=1 (B=0? N2=OR(0,0)=0!), N3=1, D0=0^0=0, D1=1
        # With B=0: N2 good = OR(1,0)=1 -> D0 good = 1.  Faulty N2=0 -> D0=0.
        # D1 good = NAND(1, 0) = 1; faulty D1 = NAND(0, 1) = 1 (no change).
        assert response.failing_cells == [0]

    def test_undetectable_when_stuck_equals_value(self):
        sim, n = self.run_patterns([[1], [0]], [[1], [0]])
        # N1 is already 1 under this pattern: sa1 produces no error.
        response = sim.simulate_fault(Fault("N1", 1))
        assert not response.detected

    def test_pin_fault_differs_from_stem_fault(self):
        # Stem fault N1/sa0: N1=0 -> N2=0 -> N3=1; D0 flips, but
        # D1 = NAND(N1=0, N3=1) = 1 stays correct -> only cell 0 fails.
        # Pin fault on N2's input from N1: N1 itself stays 1, so
        # D1 = NAND(N1=1, N3=1) = 0 flips too -> cells 0 and 1 fail.
        sim, n = self.run_patterns([[1], [0]], [[1], [0]])
        stem = sim.simulate_fault(Fault("N1", 0))
        pin = sim.simulate_fault(Fault("N1", 0, pin=("N2", 0)))
        assert stem.failing_cells == [0]
        assert pin.failing_cells == [0, 1]


class TestAgainstBruteForce:
    @pytest.mark.parametrize("source", ["s27", "generated"])
    def test_error_matrices_match_reference(
        self, source, s27_netlist, small_netlist, rng
    ):
        netlist = s27_netlist if source == "s27" else small_netlist
        compiled = CompiledCircuit(netlist)
        num_patterns = 24
        n_pi, n_ff = compiled.num_inputs, compiled.num_scan_cells
        bits_pi = rng.integers(0, 2, size=(n_pi, num_patterns))
        bits_ff = rng.integers(0, 2, size=(n_ff, num_patterns))
        pi = np.vstack([pack_bits(bits_pi[i]) for i in range(n_pi)])
        ff = np.vstack([pack_bits(bits_ff[i]) for i in range(n_ff)])
        good = compiled.simulate(pi, ff, num_patterns)
        sim = FaultSimulator(compiled, good)

        faults = collapse_faults(netlist)
        picks = rng.choice(len(faults), size=min(25, len(faults)), replace=False)
        for f_idx in picks:
            fault = faults[f_idx]
            response = sim.simulate_fault(fault)
            for p in range(num_patterns):
                assignment = {
                    net: int(bits_pi[i][p])
                    for i, net in enumerate(netlist.inputs)
                }
                for i, ff_gate in enumerate(netlist.flip_flops):
                    assignment[ff_gate.output] = int(bits_ff[i][p])
                ref = faulty_reference(netlist, assignment, fault)
                for cell, ff_gate in enumerate(netlist.flip_flops):
                    d_net = ff_gate.fanins[0]
                    good_bit = unpack_bits(good.values[compiled.net_index[d_net]],
                                           num_patterns)[p]
                    fault_bit = ref(d_net)
                    expect_error = good_bit != fault_bit
                    got_error = bool(
                        unpack_bits(response.errors_at(cell), num_patterns)[p]
                    )
                    assert got_error == expect_error, (str(fault), cell, p)


class TestFaultResponse:
    def test_error_count_and_errors_at(self, small_compiled, small_good, rng):
        sim = FaultSimulator(small_compiled, small_good)
        faults = collapse_faults(small_compiled.netlist)
        response = next(
            r
            for r in (sim.simulate_fault(f) for f in faults)
            if r.detected
        )
        assert response.error_count() > 0
        total = sum(
            sum(unpack_bits(response.errors_at(c), response.num_patterns))
            for c in response.failing_cells
        )
        assert total == response.error_count()
        missing = max(response.failing_cells) + 1
        if missing < small_compiled.num_scan_cells:
            assert not response.errors_at(
                small_compiled.num_scan_cells - 1
            ).any() or (small_compiled.num_scan_cells - 1) in response.failing_cells


class TestInsort:
    def test_inserts_keeping_sorted_tail(self):
        from repro.sim.faultsim import _insort

        schedule = [1, 3, 5, 9]
        _insort(schedule, 4, 0)
        assert schedule == [1, 3, 4, 5, 9]
        _insort(schedule, 7, 2)
        assert schedule == [1, 3, 4, 5, 7, 9]

    def test_respects_lo_bound(self):
        from repro.sim.faultsim import _insort

        # The visited prefix may be unsorted; only the tail from ``lo``
        # participates in the binary search.
        schedule = [9, 2, 4, 6]
        _insort(schedule, 5, 1)
        assert schedule == [9, 2, 4, 5, 6]

    def test_random_sequences_stay_sorted(self):
        import random

        from repro.sim.faultsim import _insort

        rand = random.Random(7)
        for _ in range(50):
            schedule = sorted(rand.sample(range(1000), 20))
            for value in rand.sample(range(1000), 30):
                if value not in schedule:
                    _insort(schedule, value, 0)
            assert schedule == sorted(schedule)

    def test_bisect_imported_at_module_scope(self):
        # The hot loop must not pay a per-call ``import bisect``.
        import inspect

        import repro.sim.faultsim as faultsim

        assert hasattr(faultsim, "bisect")
        assert "import bisect" not in inspect.getsource(faultsim._insort)
