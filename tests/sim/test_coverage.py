"""Tests for fault-coverage and detectability analysis."""

import numpy as np
import pytest

from repro.sim.bitops import pack_bits
from repro.sim.coverage import CoverageReport, coverage_report, profile_fault
from repro.sim.faults import Fault, collapse_faults
from repro.sim.faultsim import FaultResponse, FaultSimulator


def response(cells, num_patterns=16):
    return FaultResponse(
        Fault("X", 0),
        {c: pack_bits([1 if p in pats else 0 for p in range(num_patterns)])
         for c, pats in cells.items()},
        num_patterns,
    )


class TestProfileFault:
    def test_detected_fault(self):
        profile = profile_fault(response({3: [2, 5], 7: [5, 9]}))
        assert profile.detected
        assert profile.first_detecting_pattern == 2
        assert profile.num_detecting_patterns == 3  # patterns 2, 5, 9
        assert profile.num_failing_cells == 2
        assert profile.failing_span == 5
        assert profile.error_events == 4

    def test_undetected_fault(self):
        profile = profile_fault(response({}))
        assert not profile.detected
        assert profile.first_detecting_pattern is None
        assert profile.num_failing_cells == 0


class TestCoverageReport:
    def build(self, small_compiled, small_good, max_faults=60):
        sim = FaultSimulator(small_compiled, small_good)
        return coverage_report(sim, max_faults=max_faults,
                               rng=np.random.default_rng(1))

    def test_coverage_between_zero_and_one(self, small_compiled, small_good):
        report = self.build(small_compiled, small_good)
        assert 0.0 < report.fault_coverage <= 1.0
        assert report.num_faults == len(report.profiles) == 60

    def test_coverage_curve_monotone_and_ends_at_total(
        self, small_compiled, small_good
    ):
        report = self.build(small_compiled, small_good)
        curve = report.coverage_curve()
        assert len(curve) == report.num_patterns
        assert all(a <= b + 1e-12 for a, b in zip(curve, curve[1:]))
        assert curve[-1] == pytest.approx(report.fault_coverage)

    def test_multiplicity_percentiles_ordered(self, small_compiled, small_good):
        report = self.build(small_compiled, small_good)
        p50, p90, p99 = report.multiplicity_percentiles()
        assert p50 <= p90 <= p99

    def test_full_universe_when_no_cap(self, small_compiled, small_good):
        sim = FaultSimulator(small_compiled, small_good)
        universe = collapse_faults(small_compiled.netlist)
        report = coverage_report(sim)
        assert report.num_faults == len(universe)

    def test_explicit_fault_list(self, small_compiled, small_good):
        sim = FaultSimulator(small_compiled, small_good)
        subset = collapse_faults(small_compiled.netlist)[:5]
        report = coverage_report(sim, faults=subset)
        assert report.num_faults == 5
