"""Round-trip tests for the packed fault-response transport codec."""

import numpy as np
import pytest

import repro.sim.transport as transport
from repro.sim.faults import Fault
from repro.sim.faultsim import FaultResponse
from repro.sim.transport import (
    RESPONSE_CODEC,
    pack_response_chunk,
    payload_nbytes,
    shm_enabled,
    unpack_response_chunk,
)


def make_response(seed, num_patterns=100, num_cells=5, words=2):
    rng = np.random.default_rng(seed)
    cell_errors = {
        int(cell): rng.integers(0, 2**63, size=words, dtype=np.uint64)
        for cell in rng.choice(200, size=num_cells, replace=False)
    }
    fault = Fault(f"net{seed}", int(seed) % 2)
    return FaultResponse(fault, cell_errors, num_patterns)


def assert_responses_equal(a, b):
    assert a.fault == b.fault
    assert a.num_patterns == b.num_patterns
    assert list(a.cell_errors) == list(b.cell_errors)
    for cell in a.cell_errors:
        assert np.array_equal(a.cell_errors[cell], b.cell_errors[cell])


class TestRoundTrip:
    def test_bare_responses(self):
        items = [make_response(i) for i in range(7)]
        out = unpack_response_chunk(pack_response_chunk(items))
        assert len(out) == len(items)
        for a, b in zip(items, out):
            assert_responses_equal(a, b)

    def test_nested_lists(self):
        # The batched kernel returns one list per batch.
        items = [
            [make_response(1), make_response(2)],
            [make_response(3)],
            make_response(4),
            [],
        ]
        out = unpack_response_chunk(pack_response_chunk(items))
        assert isinstance(out[0], list) and len(out[0]) == 2
        assert isinstance(out[1], list) and len(out[1]) == 1
        assert isinstance(out[2], FaultResponse)
        assert out[3] == []
        flatten = lambda xs: [r for x in xs for r in (x if isinstance(x, list) else [x])]
        for a, b in zip(flatten(items), flatten(out)):
            assert_responses_equal(a, b)

    def test_undetected_response_empty_cells(self):
        items = [FaultResponse(Fault("g1", 0), {}, 64), make_response(9)]
        out = unpack_response_chunk(pack_response_chunk(items))
        assert out[0].cell_errors == {}
        assert out[0].num_patterns == 64
        assert_responses_equal(items[1], out[1])

    def test_empty_chunk(self):
        assert unpack_response_chunk(pack_response_chunk([])) == []

    def test_codec_fields(self):
        assert RESPONSE_CODEC.encode is pack_response_chunk
        assert RESPONSE_CODEC.decode is unpack_response_chunk
        assert RESPONSE_CODEC.nbytes is payload_nbytes


class TestPayloadNbytes:
    def test_counts_matrix_bytes(self):
        items = [make_response(i, num_cells=4, words=3) for i in range(5)]
        payload = pack_response_chunk(items)
        # 5 responses x 4 cells x 3 words x 8 bytes of matrix at minimum.
        assert payload_nbytes(payload) >= 5 * 4 * 3 * 8

    def test_counts_shm_matrix_as_transported(self, monkeypatch):
        monkeypatch.setattr(transport, "SHM_MIN_BYTES", 1)
        items = [make_response(i, num_cells=4, words=3) for i in range(5)]
        payload = pack_response_chunk(items)
        try:
            assert "shm" in payload
            assert payload_nbytes(payload) >= 5 * 4 * 3 * 8
        finally:
            transport._receive_matrix(payload)  # drain + unlink the segment


class TestSharedMemory:
    def test_shm_round_trip(self, monkeypatch):
        monkeypatch.setattr(transport, "SHM_MIN_BYTES", 1)
        items = [make_response(i) for i in range(6)]
        payload = pack_response_chunk(items)
        assert "shm" in payload and "matrix" not in payload
        out = unpack_response_chunk(payload)
        for a, b in zip(items, out):
            assert_responses_equal(a, b)
        # The parent drained and unlinked the segment; reattach must fail.
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=payload["shm"])

    def test_repro_shm_zero_disables(self, monkeypatch):
        monkeypatch.setattr(transport, "SHM_MIN_BYTES", 1)
        monkeypatch.setenv("REPRO_SHM", "0")
        assert not shm_enabled()
        payload = pack_response_chunk([make_response(1)])
        assert "matrix" in payload and "shm" not in payload

    def test_shm_enabled_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHM", raising=False)
        assert shm_enabled()
