"""Tests for the legacy random-error-injection protocol."""

import numpy as np
import pytest

from repro.sim.bitops import unpack_bits
from repro.sim.error_injection import inject_clustered_errors, inject_random_errors


class TestRandomErrors:
    def test_exact_error_count(self, rng):
        response = inject_random_errors(50, 32, 7, rng)
        assert response.error_count() == 7
        assert response.detected

    def test_max_cells_respected(self, rng):
        response = inject_random_errors(50, 32, 12, rng, max_cells=3)
        assert len(response.failing_cells) <= 3

    def test_errors_within_bounds(self, rng):
        response = inject_random_errors(20, 16, 10, rng)
        for cell, vec in response.cell_errors.items():
            assert 0 <= cell < 20
            bits = unpack_bits(vec, 16)
            assert len(bits) == 16

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            inject_random_errors(10, 8, 0, rng)
        with pytest.raises(ValueError):
            inject_random_errors(10, 8, 3, rng, max_cells=0)

    def test_uniform_spread_over_many_draws(self):
        rng = np.random.default_rng(0)
        hits = np.zeros(40)
        for _ in range(200):
            response = inject_random_errors(40, 8, 2, rng)
            for cell in response.failing_cells:
                hits[cell] += 1
        # No cell should dominate: uniform injection.
        assert hits.max() < hits.mean() * 4


class TestClusteredErrors:
    def test_errors_confined_to_window(self, rng):
        for _ in range(20):
            response = inject_clustered_errors(100, 16, 6, rng, window=10)
            cells = response.failing_cells
            assert max(cells) - min(cells) + 1 <= 10

    def test_window_validation(self, rng):
        with pytest.raises(ValueError):
            inject_clustered_errors(10, 8, 3, rng, window=0)
        with pytest.raises(ValueError):
            inject_clustered_errors(10, 8, 3, rng, window=11)

    def test_error_count(self, rng):
        response = inject_clustered_errors(100, 16, 6, rng, window=10)
        assert response.error_count() == 6


class TestErrorModelAblation:
    def test_real_faults_harder_than_random_errors(self):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.error_model import run_error_model_ablation

        # The effect needs a chain long enough that a handful of scattered
        # errors is easy to prune (s953's 29 cells are too noisy).
        result = run_error_model_ablation(
            "s5378", config=ExperimentConfig(num_faults=30),
        )
        by_protocol = {row[0]: row for row in result.rows}
        # The paper's Section 4 claim: real fault injection produces DR at
        # least as large as random error injection.
        assert (
            by_protocol["real-faults"][3]
            >= by_protocol["random-errors"][3] - 1e-9
        )
        assert "protocol" in result.render()
