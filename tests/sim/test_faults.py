"""Tests for the stuck-at fault universe and equivalence collapsing."""

import numpy as np
import pytest

from repro.circuit.bench import parse_bench
from repro.sim.faults import (
    Fault,
    collapse_faults,
    full_fault_list,
    sample_faults,
)

SIMPLE = """
INPUT(A)
INPUT(B)
OUTPUT(N2)
F0 = DFF(N1)
N1 = AND(A, B)
N2 = NOT(N1)
"""


class TestFault:
    def test_stuck_value_validated(self):
        with pytest.raises(ValueError):
            Fault("A", 2)

    def test_site_of_net_fault(self):
        assert Fault("A", 0).site == "A"

    def test_site_of_pin_fault(self):
        assert Fault("A", 0, pin=("N1", 0)).site == "N1"

    def test_str(self):
        assert str(Fault("A", 1)) == "A/sa1"
        assert "N1" in str(Fault("A", 0, pin=("N1", 0)))


class TestFullFaultList:
    def test_counts(self):
        net = parse_bench(SIMPLE, name="simple")
        faults = full_fault_list(net)
        # Net faults: A, B, N1, N2 (DFF F0 excluded) = 4 nets x 2.
        net_faults = [f for f in faults if f.pin is None]
        assert len(net_faults) == 8
        # Pin faults: AND has 2 pins, NOT has 1, DFF excluded = 3 x 2.
        pin_faults = [f for f in faults if f.pin is not None]
        assert len(pin_faults) == 6

    def test_dff_outputs_excluded(self):
        net = parse_bench(SIMPLE, name="simple")
        faults = full_fault_list(net)
        assert not any(f.net == "F0" and f.pin is None for f in faults)


class TestCollapse:
    def test_collapsed_is_subset(self):
        net = parse_bench(SIMPLE, name="simple")
        collapsed = set(collapse_faults(net))
        assert collapsed <= set(full_fault_list(net))

    def test_single_fanout_pins_collapsed(self):
        net = parse_bench(SIMPLE, name="simple")
        collapsed = collapse_faults(net)
        # A feeds only AND pin 0: the pin fault equals the stem fault.
        assert not any(f.pin == ("N1", 0) for f in collapsed)

    def test_controlling_value_collapse(self):
        multi = parse_bench(
            """
            INPUT(A)
            OUTPUT(N1)
            OUTPUT(N2)
            N1 = AND(A, A2)
            N2 = OR(A, A2)
            A2 = NOT(A)
            """,
            name="multi",
        )
        collapsed = collapse_faults(multi)
        # A has fanout 2 (AND and OR): pin faults survive except for the
        # controlling values (sa0 on AND pins, sa1 on OR pins).
        and_pins = [f for f in collapsed if f.pin == ("N1", 0)]
        or_pins = [f for f in collapsed if f.pin == ("N2", 0)]
        assert {f.stuck_at for f in and_pins} == {1}
        assert {f.stuck_at for f in or_pins} == {0}

    def test_inverter_pins_collapsed(self):
        net = parse_bench(SIMPLE, name="simple")
        collapsed = collapse_faults(net)
        assert not any(f.pin == ("N2", 0) for f in collapsed)

    def test_reduction_on_generated_circuit(self, small_netlist):
        full = full_fault_list(small_netlist)
        collapsed = collapse_faults(small_netlist)
        assert len(collapsed) < len(full)
        assert len(collapsed) >= small_netlist.num_combinational_gates * 2


class TestSample:
    def test_sample_smaller(self, small_netlist, rng):
        faults = collapse_faults(small_netlist)
        sample = sample_faults(faults, 10, rng)
        assert len(sample) == 10
        assert len(set(sample)) == 10
        assert set(sample) <= set(faults)

    def test_sample_all_when_count_large(self, small_netlist, rng):
        faults = collapse_faults(small_netlist)
        sample = sample_faults(faults, len(faults) + 5, rng)
        assert sample == faults
