"""Tests for multi-fault response superposition."""

import numpy as np
import pytest

from repro.sim.bitops import pack_bits, unpack_bits
from repro.sim.faults import Fault
from repro.sim.faultsim import FaultResponse, merge_responses


def response(cells, num_patterns=8):
    return FaultResponse(
        Fault("X", 0),
        {c: pack_bits([1 if p in pats else 0 for p in range(num_patterns)])
         for c, pats in cells.items()},
        num_patterns,
    )


class TestMerge:
    def test_disjoint_cells_union(self):
        merged = merge_responses([response({0: [1]}), response({3: [2]})])
        assert set(merged.cell_errors) == {0, 3}

    def test_overlapping_bits_cancel(self):
        a = response({0: [1, 2]})
        b = response({0: [2, 3]})
        merged = merge_responses([a, b])
        assert unpack_bits(merged.cell_errors[0], 8) == [0, 1, 0, 1, 0, 0, 0, 0]

    def test_fully_cancelling_cell_removed(self):
        a = response({0: [1], 4: [5]})
        b = response({0: [1]})
        merged = merge_responses([a, b])
        assert set(merged.cell_errors) == {4}

    def test_inputs_not_mutated(self):
        a = response({0: [1]})
        before = a.cell_errors[0].copy()
        merge_responses([a, response({0: [2]})])
        assert np.array_equal(a.cell_errors[0], before)

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            merge_responses([])

    def test_mismatched_pattern_counts_rejected(self):
        with pytest.raises(ValueError):
            merge_responses([response({0: [1]}, 8), response({0: [1]}, 16)])

    def test_multi_word_cancellation_with_tail(self):
        # 100 patterns span two words with a 36-bit tail; cancellation
        # must work across both words and never touch tail bits.
        a = response({0: [1, 64, 99], 1: [50]}, num_patterns=100)
        b = response({0: [64, 99]}, num_patterns=100)
        merged = merge_responses([a, b])
        assert unpack_bits(merged.cell_errors[0], 100) == [
            1 if p == 1 else 0 for p in range(100)
        ]
        assert set(merged.cell_errors) == {0, 1}

    def test_triple_merge_odd_parity_survives(self):
        # XOR superposition: a bit flipped by an odd number of faults stays.
        trio = [response({0: [2]}), response({0: [2]}), response({0: [2]})]
        merged = merge_responses(trio)
        assert unpack_bits(merged.cell_errors[0], 8)[2] == 1

    def test_all_cells_cancel_yields_undetected(self):
        a = response({0: [1], 3: [4]})
        merged = merge_responses([a, a])
        assert merged.cell_errors == {}
        assert not merged.detected

    def test_single_response_copy(self):
        a = response({2: [0]})
        merged = merge_responses([a])
        assert merged.failing_cells == [2]
        merged.cell_errors[2][0] = np.uint64(0)
        assert a.cell_errors[2][0] != np.uint64(0)
