"""Shared fixtures: small circuits, compiled simulators, fault workloads."""

from __future__ import annotations

import os

import numpy as np
import pytest

# Keep experiment scripts quiet under pytest: progress logging defaults to
# "info" on stderr but the suite wants clean output (REPRO_LOG=quiet).
os.environ.setdefault("REPRO_LOG", "quiet")

from repro.bist.patterns import fast_pattern_matrices
from repro.circuit.bench import parse_bench
from repro.circuit.generate import CircuitProfile, generate_circuit
from repro.circuit.library import S27_BENCH
from repro.sim.logicsim import CompiledCircuit

#: A tiny hand-written full-scan circuit used across unit tests:
#: 2 PIs, 3 scan cells, a few gates of different types.
TINY_BENCH = """
# tiny
INPUT(A)
INPUT(B)
OUTPUT(OUT)
F0 = DFF(D0)
F1 = DFF(D1)
F2 = DFF(D2)
N1 = AND(A, F0)
N2 = XOR(N1, F1)
N3 = NOT(B)
D0 = OR(N2, N3)
D1 = NAND(N1, F2)
D2 = NOR(A, N2)
OUT = BUFF(N2)
"""


@pytest.fixture(scope="session")
def tiny_netlist():
    return parse_bench(TINY_BENCH, name="tiny")


@pytest.fixture(scope="session")
def s27_netlist():
    return parse_bench(S27_BENCH, name="s27")


@pytest.fixture(scope="session")
def s27_compiled(s27_netlist):
    return CompiledCircuit(s27_netlist)


@pytest.fixture(scope="session")
def small_profile():
    """A generated circuit small enough for exhaustive checks but large
    enough to have interesting fault cones."""
    return CircuitProfile(
        name="unit-small",
        num_inputs=6,
        num_outputs=4,
        num_flip_flops=24,
        num_gates=160,
        depth=6,
    )


@pytest.fixture(scope="session")
def small_netlist(small_profile):
    return generate_circuit(small_profile, seed=7)


@pytest.fixture(scope="session")
def small_compiled(small_netlist):
    return CompiledCircuit(small_netlist)


@pytest.fixture(scope="session")
def small_good(small_compiled):
    num_patterns = 48
    pi, ff = fast_pattern_matrices(
        small_compiled.num_inputs, small_compiled.num_scan_cells, num_patterns, seed=3
    )
    return small_compiled.simulate(pi, ff, num_patterns)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)
