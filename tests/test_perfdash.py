"""Perf observatory (scripts/perfdash.py): series folding, sparklines,
history artifact, and the trend gate's exit codes."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]

spec = importlib.util.spec_from_file_location(
    "perfdash", REPO_ROOT / "scripts" / "perfdash.py"
)
perfdash = importlib.util.module_from_spec(spec)
spec.loader.exec_module(perfdash)


def write_report(root, pr, circuits, **extra):
    body = {"pr": pr, "circuits": circuits}
    body.update(extra)
    (root / f"BENCH_PR{pr}.json").write_text(json.dumps(body))


def healthy_history(root):
    write_report(root, 1, [
        {"circuit": "s953", "fault_batch_speedup": 8.0,
         "fault_sim_s": 0.10, "dr": 0.2},
    ])
    write_report(root, 2, [
        {"circuit": "s953", "fault_batch_speedup": 9.5,
         "soa_speedup": 2.0, "fault_sim_s": 0.08, "dr": 0.2},
    ])
    write_report(root, 3, [
        {"circuit": "s953", "fault_batch_speedup": 9.0,
         "soa_speedup": 1.9, "fault_sim_s": 0.07, "dr": 0.2},
    ])


class TestDiscovery:
    def test_orders_by_pr_and_skips_foreign_schema(self, tmp_path, capsys):
        healthy_history(tmp_path)
        # A service-bench report without a circuits list must be skipped
        # with a note, never silently and never a crash.
        (tmp_path / "BENCH_PR10.json").write_text(
            json.dumps({"schema": "service-bench", "service": {}})
        )
        (tmp_path / "BENCH_PR11.json").write_text("{corrupt")
        reports = perfdash.discover_reports(tmp_path)
        assert [pr for pr, _, _ in reports] == [1, 2, 3]
        err = capsys.readouterr().err
        assert "BENCH_PR10.json" in err and "circuits" in err
        assert "BENCH_PR11.json" in err

    def test_series_tolerate_gaps_and_non_numeric(self, tmp_path):
        healthy_history(tmp_path)
        series = perfdash.load_series(perfdash.discover_reports(tmp_path))
        # soa_speedup only exists from PR2 — a gap, not an error.
        assert series[("s953", "soa_speedup")] == [(2, 2.0), (3, 1.9)]
        assert series[("s953", "fault_batch_speedup")] == [
            (1, 8.0), (2, 9.5), (3, 9.0)
        ]
        assert ("s953", "circuit") not in series


class TestSparkline:
    def test_shape_and_extremes(self):
        line = perfdash.sparkline([1.0, 2.0, 3.0, 8.0])
        assert len(line) == 4
        assert line[0] == perfdash.SPARK_CHARS[0]
        assert line[-1] == perfdash.SPARK_CHARS[-1]

    def test_flat_and_empty_series(self):
        assert perfdash.sparkline([]) == ""
        flat = perfdash.sparkline([5.0, 5.0, 5.0])
        assert len(set(flat)) == 1 and len(flat) == 3


class TestTrendGate:
    def test_healthy_history_passes(self, tmp_path):
        healthy_history(tmp_path)
        series = perfdash.load_series(perfdash.discover_reports(tmp_path))
        assert perfdash.check_trend(series, tolerance=0.4) == []

    def test_regression_detected(self, tmp_path):
        healthy_history(tmp_path)
        write_report(tmp_path, 4, [
            {"circuit": "s953", "fault_batch_speedup": 3.0,
             "soa_speedup": 1.9},
        ])
        series = perfdash.load_series(perfdash.discover_reports(tmp_path))
        failures = perfdash.check_trend(series, tolerance=0.4)
        assert len(failures) == 1
        assert "s953.fault_batch_speedup" in failures[0]
        assert "9.50x" in failures[0]  # names the best value and PR
        assert "PR2" in failures[0]

    def test_untracked_speedups_never_gate(self, tmp_path):
        write_report(tmp_path, 1, [
            {"circuit": "s953", "serve_disk_warm_speedup": 20.0}])
        write_report(tmp_path, 2, [
            {"circuit": "s953", "serve_disk_warm_speedup": 1.0}])
        series = perfdash.load_series(perfdash.discover_reports(tmp_path))
        assert perfdash.check_trend(series, tolerance=0.4) == []

    def test_single_point_series_has_no_history_to_regress(self, tmp_path):
        write_report(tmp_path, 1, [
            {"circuit": "s953", "fault_batch_speedup": 8.0}])
        series = perfdash.load_series(perfdash.discover_reports(tmp_path))
        assert perfdash.check_trend(series) == []


class TestMain:
    def test_synthetic_regression_exits_2(self, tmp_path, capsys):
        healthy_history(tmp_path)
        write_report(tmp_path, 4, [
            {"circuit": "s953", "fault_batch_speedup": 2.0}])
        code = perfdash.main(["--dir", str(tmp_path), "--check-trend"])
        assert code == 2
        assert "TREND REGRESSIONS" in capsys.readouterr().err

    def test_healthy_run_exits_0_and_writes_history(self, tmp_path, capsys):
        healthy_history(tmp_path)
        out = tmp_path / "perf_history.json"
        code = perfdash.main([
            "--dir", str(tmp_path), "--check-trend", "--out", str(out)])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "trend gate passed" in stdout
        history = json.loads(out.read_text())
        assert history["schema"] == "repro-perf-history"
        entry = history["series"]["s953/fault_batch_speedup"]
        assert entry["gated"] is True
        assert entry["best"] == 9.5
        assert entry["latest"] == 9.0
        # Lower-is-better metric keeps min as best.
        assert history["series"]["s953/fault_sim_s"]["best"] == 0.07

    def test_no_reports_exits_1(self, tmp_path, capsys):
        assert perfdash.main(["--dir", str(tmp_path)]) == 1
        assert "no usable" in capsys.readouterr().err
        assert perfdash.main(["--dir", str(tmp_path / "absent")]) == 1

    @pytest.mark.skipif(
        not list(REPO_ROOT.glob("BENCH_PR*.json")),
        reason="no committed bench history",
    )
    def test_committed_history_passes_the_gate(self, capsys):
        """The acceptance contract: the gate must be green on the repo's
        own committed trajectory (else CI is red on merge)."""
        code = perfdash.main(["--dir", str(REPO_ROOT), "--check-trend"])
        assert code == 0, capsys.readouterr().err
