"""Request-level determinism: the service returns bit-identical candidate
sets to the direct ``core.diagnosis`` path, serial and forked.

This is the serving layer's contract with the reproduction: batching,
queueing, executor threads and the fork pool must be invisible in the
numbers.
"""

import threading

from repro.service.client import ServiceClient
from repro.service.engine import DiagnosisEngine

from .conftest import SMALL, small_request
from .test_engine import direct_results


def service_candidates(port, indices):
    """Submit all indices concurrently (so they actually coalesce)."""
    out = {}

    def fire(i):
        with ServiceClient(port=port, timeout_s=60) as client:
            out[i] = tuple(client.diagnose(
                dict(SMALL, fault_index=i, timeout_ms=60_000)).candidate_cells)

    threads = [threading.Thread(target=fire, args=(i,)) for i in indices]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return out


class TestServiceMatchesDirectPath:
    def test_serial_server_bit_identical(self, live_server):
        _, expected = direct_results()
        _, port = live_server(batch_wait_ms=50, batch_max=16,
                              engine=DiagnosisEngine(workers=0))
        ServiceClient(port=port).wait_ready()
        got = service_candidates(port, range(SMALL["fault_count"]))
        for i, direct in enumerate(expected):
            assert got[i] == tuple(sorted(direct.candidate_cells)), \
                f"fault {i} differs on the serial server"

    def test_forked_server_bit_identical(self, live_server, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        _, expected = direct_results()
        _, port = live_server(batch_wait_ms=100, batch_max=16)
        ServiceClient(port=port).wait_ready()
        got = service_candidates(port, range(SMALL["fault_count"]))
        for i, direct in enumerate(expected):
            assert got[i] == tuple(sorted(direct.candidate_cells)), \
                f"fault {i} differs with REPRO_WORKERS=2"

    def test_repeated_requests_are_stable(self, live_server):
        _, port = live_server(batch_wait_ms=1)
        ServiceClient(port=port).wait_ready()
        with ServiceClient(port=port) as client:
            first = client.diagnose(small_request(2))
            second = client.diagnose(small_request(2))
        assert first.candidate_cells == second.candidate_cells
        assert first.actual_cells == second.actual_cells
