"""Service-test fixtures: a tiny shared workload spec and live servers.

All service tests use the same small s953 workload (32 patterns, 6
faults) so the process-wide cache compiles it once for the whole suite.
"""

from __future__ import annotations

import pytest

from repro.service.protocol import DiagnoseRequest
from repro.service.server import ThreadedServer

#: The canonical tiny request knobs every service test shares.
SMALL = dict(circuit="s953", num_patterns=32, fault_count=6)


def small_request(fault_index=0, **overrides):
    payload = dict(SMALL, fault_index=fault_index)
    payload.update(overrides)
    return DiagnoseRequest.from_payload(payload)


@pytest.fixture
def live_server():
    """A running ThreadedServer on an ephemeral port; stops on teardown."""
    started = []

    def _start(**kwargs):
        kwargs.setdefault("port", 0)
        server = ThreadedServer(**kwargs)
        port = server.start()
        started.append(server)
        return server, port

    yield _start
    for server in started:
        server.stop(drain=False)
