"""Wire-format validation and the stable error taxonomy."""

import pytest

from repro.service.protocol import (
    ERROR_STATUS,
    DiagnoseReply,
    DiagnoseRequest,
    ServiceError,
)


class TestErrorTaxonomy:
    def test_codes_map_to_http_statuses(self):
        assert ERROR_STATUS["queue_full"] == 429
        assert ERROR_STATUS["deadline_exceeded"] == 504
        assert ERROR_STATUS["shutting_down"] == 503
        assert ERROR_STATUS["circuit_not_found"] == 404
        assert ERROR_STATUS["malformed_payload"] == 400

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            ServiceError("not_a_code", "boom")

    def test_retry_after_round_trips(self):
        err = ServiceError("queue_full", "full", retry_after_s=2.5)
        assert err.to_payload()["error"]["retry_after_s"] == 2.5
        assert err.status == 429


class TestRequestValidation:
    def test_minimal_fault_index_request(self):
        req = DiagnoseRequest.from_payload({"circuit": "s953", "fault_index": 3})
        assert req.circuit == "s953"
        assert req.fault_index == 3
        assert req.scheme == "two-step"

    def test_missing_circuit_is_malformed(self):
        with pytest.raises(ServiceError) as exc:
            DiagnoseRequest.from_payload({"fault_index": 0})
        assert exc.value.code == "malformed_payload"

    def test_non_object_body_is_malformed(self):
        with pytest.raises(ServiceError) as exc:
            DiagnoseRequest.from_payload([1, 2, 3])
        assert exc.value.code == "malformed_payload"

    def test_unknown_scheme_is_invalid_argument(self):
        with pytest.raises(ServiceError) as exc:
            DiagnoseRequest.from_payload(
                {"circuit": "s953", "fault_index": 0, "scheme": "magic"})
        assert exc.value.code == "invalid_argument"

    def test_both_modes_rejected(self):
        with pytest.raises(ServiceError) as exc:
            DiagnoseRequest.from_payload(
                {"circuit": "s953", "fault_index": 0,
                 "cell_errors": {"1": [0]}})
        assert exc.value.code == "malformed_payload"

    def test_neither_mode_rejected(self):
        with pytest.raises(ServiceError):
            DiagnoseRequest.from_payload({"circuit": "s953"})

    def test_negative_knob_rejected(self):
        with pytest.raises(ServiceError) as exc:
            DiagnoseRequest.from_payload(
                {"circuit": "s953", "fault_index": 0, "num_partitions": 0})
        assert exc.value.code == "invalid_argument"

    def test_cell_errors_validation(self):
        req = DiagnoseRequest.from_payload({
            "circuit": "s953", "num_patterns": 16,
            "cell_errors": {"4": [3, 1, 3], "2": [0]},
        })
        # Packed form is sorted and deduplicated -> canonical identity.
        assert req.cell_errors == ((2, (0,)), (4, (1, 3)))

    def test_cell_errors_pattern_out_of_range(self):
        with pytest.raises(ServiceError) as exc:
            DiagnoseRequest.from_payload({
                "circuit": "s953", "num_patterns": 8,
                "cell_errors": {"0": [9]},
            })
        assert exc.value.code == "invalid_argument"

    def test_cell_errors_non_integer_key(self):
        with pytest.raises(ServiceError) as exc:
            DiagnoseRequest.from_payload({
                "circuit": "s953", "cell_errors": {"x": [0]}})
        assert exc.value.code == "malformed_payload"


class TestWorkloadKey:
    def test_same_knobs_same_key(self):
        a = DiagnoseRequest.from_payload({"circuit": "s953", "fault_index": 0})
        b = DiagnoseRequest.from_payload({"circuit": "s953", "fault_index": 5})
        assert a.workload_key == b.workload_key

    def test_scheme_changes_key(self):
        a = DiagnoseRequest.from_payload({"circuit": "s953", "fault_index": 0})
        b = DiagnoseRequest.from_payload(
            {"circuit": "s953", "fault_index": 0, "scheme": "random"})
        assert a.workload_key != b.workload_key


class TestRoundTrip:
    def test_request_payload_round_trip(self):
        req = DiagnoseRequest.from_payload({
            "circuit": "s1423", "scheme": "random", "fault_index": 7,
            "num_patterns": 64, "timeout_ms": 250, "request_id": "r-7",
        })
        again = DiagnoseRequest.from_payload(req.to_payload())
        assert again == req

    def test_reply_payload_round_trip(self):
        reply = DiagnoseReply(
            request_id="r", circuit="s953", scheme="two-step",
            candidate_cells=[3, 5], actual_cells=[3], sound=True,
            num_sessions=48, candidate_history=[9, 5, 2],
            queue_wait_ms=1.5, execute_ms=4.0, batch_size=8,
        )
        again = DiagnoseReply.from_payload(reply.to_payload())
        assert again.candidate_cells == [3, 5]
        assert again.batch_size == 8
        assert again.sound
