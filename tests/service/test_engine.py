"""DiagnosisEngine: both request modes, error slots, degradation, LRU."""

import pytest

from repro.experiments import cache
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import build_circuit_workload, scheme_partitions
from repro.service import engine as engine_module
from repro.service.engine import DiagnosisEngine
from repro.service.protocol import DiagnoseRequest, ServiceError
from repro.sim.bitops import get_bit

from .conftest import SMALL, small_request


def direct_results():
    """The ground truth: the plain core.diagnosis path for SMALL."""
    from repro.bist.misr import LinearCompactor
    from repro.core.diagnosis import diagnose

    config = ExperimentConfig(
        num_patterns=SMALL["num_patterns"],
        num_faults=SMALL["fault_count"],
        num_faults_large=SMALL["fault_count"],
    )
    workload = build_circuit_workload(
        SMALL["circuit"], config, num_patterns=SMALL["num_patterns"])
    partitions = scheme_partitions(
        "two-step", workload.scan_config.max_length, 8, 6,
        lfsr_degree=config.lfsr_degree)
    compactor = LinearCompactor(24, workload.scan_config.num_chains)
    return workload, [
        diagnose(r, workload.scan_config, partitions, compactor)
        for r in workload.responses
    ]


class TestFaultIndexMode:
    def test_matches_direct_diagnosis(self):
        _, expected = direct_results()
        engine = DiagnosisEngine(workers=0)
        requests = [small_request(i) for i in range(SMALL["fault_count"])]
        replies = engine.execute_batch(requests)
        for reply, direct in zip(replies, expected):
            assert reply.candidate_cells == sorted(direct.candidate_cells)
            assert reply.actual_cells == sorted(direct.actual_cells)
            assert reply.sound == direct.sound

    def test_out_of_range_index_fails_only_that_slot(self):
        engine = DiagnosisEngine(workers=0)
        replies = engine.execute_batch(
            [small_request(0), small_request(99)])
        assert replies[0].candidate_cells  # healthy slot served
        assert isinstance(replies[1], ServiceError)
        assert replies[1].code == "invalid_argument"


class TestCellErrorsMode:
    def test_explicit_signature_matches_replay(self):
        workload, expected = direct_results()
        response = workload.responses[0]
        cell_errors = {
            str(cell): [p for p in range(response.num_patterns)
                        if get_bit(vec, p)]
            for cell, vec in response.cell_errors.items()
        }
        request = DiagnoseRequest.from_payload(dict(
            SMALL, cell_errors=cell_errors))
        engine = DiagnosisEngine(workers=0)
        reply = engine.execute_batch([request])[0]
        assert reply.candidate_cells == sorted(expected[0].candidate_cells)

    def test_cell_out_of_range_is_invalid_argument(self):
        request = DiagnoseRequest.from_payload(dict(
            SMALL, cell_errors={"100000": [0]}))
        engine = DiagnosisEngine(workers=0)
        reply = engine.execute_batch([request])[0]
        assert isinstance(reply, ServiceError)
        assert reply.code == "invalid_argument"


class TestWorkloadErrors:
    def test_unknown_circuit_fails_every_slot(self):
        engine = DiagnosisEngine(workers=0)
        requests = [
            DiagnoseRequest.from_payload({"circuit": "nope", "fault_index": i})
            for i in range(3)
        ]
        replies = engine.execute_batch(requests)
        assert all(isinstance(r, ServiceError) for r in replies)
        assert all(r.code == "circuit_not_found" for r in replies)

    def test_empty_batch(self):
        assert DiagnosisEngine().execute_batch([]) == []


class TestGracefulDegradation:
    def test_pool_death_falls_back_to_serial_and_latches(self, monkeypatch):
        from repro.core.diagnosis_batch import diagnose_population

        _, expected = direct_results()
        engine = DiagnosisEngine(workers=2)
        calls = {"n": 0}

        def dying_diagnose_population(responses, scan, partitions, compactor,
                                      workers=None, **kwargs):
            calls["n"] += 1
            if workers != 0:
                raise RuntimeError("pool died")
            return diagnose_population(
                responses, scan, partitions, compactor, workers=0, **kwargs
            )

        monkeypatch.setattr(
            engine_module, "diagnose_population", dying_diagnose_population
        )
        requests = [small_request(i) for i in range(SMALL["fault_count"])]
        replies = engine.execute_batch(requests)
        assert engine.degraded
        for reply, direct in zip(replies, expected):
            assert reply.candidate_cells == sorted(direct.candidate_cells)
        # Next batch goes straight to the serial path (workers=0).
        engine.execute_batch([small_request(0)])
        assert calls["n"] >= 2


class TestMemoryBounding:
    def test_lru_eviction_respects_budget(self):
        cache.clear()
        engine = DiagnosisEngine(workers=0, max_cache_bytes=1)
        engine.execute_batch([small_request(0)])
        first_key = next(iter(engine._lru))
        # A second, different workload must push the first one out.
        engine.execute_batch([small_request(0, num_patterns=16)])
        stats = cache.stats()
        assert stats.evictions >= 1
        assert ("workload", first_key) not in cache._STORE
        # The evicted workload simply rebuilds on the next request.
        reply = engine.execute_batch([small_request(0)])[0]
        assert reply.candidate_cells
        cache.clear()
