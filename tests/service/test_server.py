"""End-to-end HTTP tests against a live threaded server."""

import http.client
import json
import time

import pytest

from repro.service.client import ServiceClient, TransportError
from repro.service.engine import DiagnosisEngine
from repro.service.protocol import DiagnoseRequest, ServiceError

from .conftest import SMALL


def small_payload(fault_index=0, **overrides):
    payload = dict(SMALL, fault_index=fault_index)
    payload.update(overrides)
    return payload


class SlowEngine(DiagnosisEngine):
    """Holds every batch for a fixed time — lets tests fill the queue."""

    def __init__(self, delay_s: float):
        super().__init__(workers=0)
        self.delay_s = delay_s

    def execute_batch(self, requests, traces=None):
        time.sleep(self.delay_s)
        return super().execute_batch(requests, traces=traces)


class TestHappyPath:
    def test_health_diagnose_metrics(self, live_server):
        _, port = live_server(batch_wait_ms=1)
        with ServiceClient(port=port) as client:
            client.wait_ready()
            health = client.health()
            assert health["status"] == "ok"
            assert health["queue_depth"] == 0

            reply = client.diagnose(small_payload(0))
            assert reply.candidate_cells
            assert reply.batch_size >= 1

            metrics = client.metrics()
            assert metrics["queue"]["max_depth"] > 0
            assert metrics["batching"]["batches"] >= 1
            assert metrics["latency"]["total"]["count"] >= 1
            assert metrics["latency"]["total"]["p99_ms"] > 0
            assert metrics["requests"].get("ok", 0) >= 1
            assert metrics["cache"]["entries"] >= 1
            assert metrics["cache"]["bytes"] > 0
            # The full telemetry registry rides along for scrapers.
            assert "service.batch_size" in metrics["registry"]["histograms"]
            # Process gauges: uptime moves forward, RSS is a real size.
            assert metrics["uptime_seconds"] > 0
            assert metrics["process_rss_bytes"] is None or (
                metrics["process_rss_bytes"] > 1024 * 1024
            )

    def test_keep_alive_serves_many_requests(self, live_server):
        _, port = live_server(batch_wait_ms=1)
        with ServiceClient(port=port) as client:
            client.wait_ready()
            replies = [client.diagnose(small_payload(i % 3)) for i in range(6)]
        assert all(r.candidate_cells for r in replies)


class TestErrorTaxonomyOverHttp:
    def test_unknown_circuit_404(self, live_server):
        _, port = live_server()
        with ServiceClient(port=port) as client:
            client.wait_ready()
            with pytest.raises(ServiceError) as exc:
                client.diagnose({"circuit": "nope", "fault_index": 0})
            assert exc.value.code == "circuit_not_found"
            assert exc.value.status == 404

    def test_malformed_json_400(self, live_server):
        _, port = live_server()
        ServiceClient(port=port).wait_ready()
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
        conn.request("POST", "/diagnose", body=b"{not json",
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        payload = json.loads(response.read())
        conn.close()
        assert response.status == 400
        assert payload["error"]["code"] == "malformed_payload"

    def test_unknown_route_404_and_wrong_method_405(self, live_server):
        _, port = live_server()
        ServiceClient(port=port).wait_ready()
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
        conn.request("GET", "/nope")
        response = conn.getresponse()
        assert response.status == 404
        assert json.loads(response.read())["error"]["code"] == "no_such_route"
        conn.request("GET", "/diagnose")
        response = conn.getresponse()
        assert response.status == 405
        conn.close()


class TestAdmissionControl:
    def test_queue_full_gets_429_with_retry_after(self, live_server):
        import threading

        _, port = live_server(
            engine=SlowEngine(0.6), queue_depth=1, batch_max=1,
            batch_wait_ms=0)
        ServiceClient(port=port).wait_ready()
        results = {}

        def fire(name, delay):
            time.sleep(delay)
            with ServiceClient(port=port, timeout_s=30) as client:
                try:
                    results[name] = client.diagnose(small_payload(0))
                except ServiceError as exc:
                    results[name] = exc

        threads = [
            threading.Thread(target=fire, args=(name, delay))
            for name, delay in (("a", 0.0), ("b", 0.15), ("c", 0.3))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # a executes (0.6s), b waits in the depth-1 queue, c is rejected.
        codes = sorted(
            r.code for r in results.values() if isinstance(r, ServiceError))
        assert codes == ["queue_full"]
        rejected = next(r for r in results.values()
                        if isinstance(r, ServiceError))
        assert rejected.retry_after_s is not None

    def test_deadline_exceeded_504(self, live_server):
        _, port = live_server(engine=SlowEngine(0.8), batch_wait_ms=0)
        with ServiceClient(port=port) as client:
            client.wait_ready()
            with pytest.raises(ServiceError) as exc:
                client.diagnose(small_payload(0, timeout_ms=100))
            assert exc.value.code == "deadline_exceeded"
            assert exc.value.status == 504
            metrics = client.metrics()
            assert metrics["timeouts"] >= 1


class TestBatchingOverHttp:
    def test_concurrent_same_workload_requests_coalesce(self, live_server):
        import threading

        _, port = live_server(batch_wait_ms=150, batch_max=16)
        ServiceClient(port=port).wait_ready()
        # Warm the workload so the batch window dominates, not compile time.
        with ServiceClient(port=port) as warm:
            warm.diagnose(small_payload(0))
        replies = {}

        def fire(i):
            with ServiceClient(port=port, timeout_s=30) as client:
                replies[i] = client.diagnose(small_payload(i))

        threads = [threading.Thread(target=fire, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # At least one multi-request batch formed inside the 150 ms window.
        assert max(r.batch_size for r in replies.values()) >= 2


class TestPrometheusExposition:
    """GET /metrics content negotiation: JSON stays the default; the
    Prometheus text exposition is served for ``?format=prometheus`` or an
    ``Accept: text/plain`` scrape, and must parse as valid v0.0.4 text."""

    @staticmethod
    def _get(port, target, accept=None):
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
        headers = {"Accept": accept} if accept else {}
        conn.request("GET", target, headers=headers)
        response = conn.getresponse()
        body = response.read()
        conn.close()
        return response, body

    def _warmed_port(self, live_server):
        _, port = live_server(batch_wait_ms=1)
        with ServiceClient(port=port) as client:
            client.wait_ready()
            client.diagnose(small_payload(0))
        return port

    def test_format_param_serves_prometheus_text(self, live_server):
        from tests.telemetry.test_promexp import _parse

        port = self._warmed_port(live_server)
        response, body = self._get(port, "/metrics?format=prometheus")
        assert response.status == 200
        assert response.getheader("Content-Type").startswith(
            "text/plain; version=0.0.4"
        )
        families, samples = _parse(body.decode())
        values = {(name, tuple(sorted(labels.items()))): value
                  for name, labels, value in samples}
        # Counters carry the _total suffix and real request activity.
        assert families["repro_service_requests_total"] == "counter"
        assert any(name == "repro_service_requests_total"
                   for name, _, _ in samples)
        # Process gauges from this PR.
        assert families["repro_service_uptime_seconds"] == "gauge"
        assert float(values[("repro_service_uptime_seconds", ())]) > 0
        if ("repro_process_rss_bytes", ()) in values:
            assert float(values[("repro_process_rss_bytes", ())]) > 1 << 20
        # The latency board renders as a real histogram with cumulative
        # buckets closed by +Inf.
        assert families["repro_service_request_seconds"] == "histogram"
        total_buckets = [
            (labels["le"], int(value)) for name, labels, value in samples
            if name == "repro_service_request_seconds_bucket"
            and labels["stage"] == "total"
        ]
        assert total_buckets, "no latency buckets for stage=total"
        counts = [c for _, c in total_buckets]
        assert counts == sorted(counts)
        assert total_buckets[-1][0] == "+Inf"

    def test_accept_header_negotiates_text(self, live_server):
        port = self._warmed_port(live_server)
        response, body = self._get(port, "/metrics", accept="text/plain")
        assert response.getheader("Content-Type").startswith("text/plain")
        assert b"# TYPE" in body

    def test_json_stays_default(self, live_server):
        port = self._warmed_port(live_server)
        for target, accept in (
            ("/metrics", None),
            ("/metrics", "application/json, text/plain"),
            ("/metrics?format=weird", "text/plain"),
        ):
            response, body = self._get(port, target, accept=accept)
            assert response.status == 200
            assert response.getheader("Content-Type").startswith(
                "application/json"
            )
            payload = json.loads(body)
            assert "uptime_seconds" in payload


class TestGracefulShutdown:
    def test_drain_serves_queued_work_then_refuses(self, live_server):
        server, port = live_server(batch_wait_ms=1)
        with ServiceClient(port=port) as client:
            client.wait_ready()
            assert client.diagnose(small_payload(0)).candidate_cells
        server.stop(drain=True)
        with pytest.raises(TransportError):
            ServiceClient(port=port, timeout_s=2).health()
