"""Log-bucket latency histogram: quantiles within bucket resolution."""

from repro.service.latency import LatencyBoard, LatencyHistogram


class TestLatencyHistogram:
    def test_empty_quantile_is_none(self):
        hist = LatencyHistogram()
        assert hist.quantile(0.5) is None
        assert hist.summary()["count"] == 0

    def test_single_observation(self):
        hist = LatencyHistogram()
        hist.observe(0.010)
        # One sample: every quantile is that sample (within bucket width).
        for q in (0.5, 0.95, 0.99):
            assert abs(hist.quantile(q) - 0.010) / 0.010 < 0.10

    def test_quantiles_track_distribution(self):
        hist = LatencyHistogram()
        for ms in range(1, 101):  # 1..100 ms uniform
            hist.observe(ms / 1000.0)
        p50, p99 = hist.quantile(0.50), hist.quantile(0.99)
        assert 0.040 <= p50 <= 0.060
        assert 0.090 <= p99 <= 0.110
        assert p50 <= hist.quantile(0.95) <= p99

    def test_quantile_never_exceeds_max(self):
        hist = LatencyHistogram()
        hist.observe(0.005)
        hist.observe(0.005)
        assert hist.quantile(1.0) <= 0.005 * 1.0001

    def test_summary_units_are_ms(self):
        hist = LatencyHistogram()
        hist.observe(0.250)
        summary = hist.summary()
        assert summary["count"] == 1
        assert 240 <= summary["p50_ms"] <= 275
        assert summary["max_ms"] == 250.0

    def test_reset(self):
        hist = LatencyHistogram()
        hist.observe(1.0)
        hist.reset()
        assert hist.count == 0
        assert hist.quantile(0.5) is None


class TestLatencyBoard:
    def test_named_families(self):
        board = LatencyBoard()
        board["total"].observe(0.1)
        summary = board.summary()
        assert set(summary) == {"total", "queue_wait", "execute"}
        assert summary["total"]["count"] == 1
        assert summary["execute"]["count"] == 0
