"""Request tracing + debug plane, end to end over HTTP.

The acceptance test for the observability PR: a client-submitted trace
id must come back from ``GET /debug/trace/<id>`` as a single assembled
span tree containing spans from at least three tiers — server request,
engine batch, and fork chunk — with the chunk spans recorded in fork
*child* processes (>=2 pids in the tree).
"""

import threading

import pytest

from repro.service.client import ServiceClient
from repro.service.protocol import ServiceError
from repro.telemetry import FLIGHT, new_trace_id

from .conftest import SMALL


def small_payload(fault_index=0, **overrides):
    payload = dict(SMALL, fault_index=fault_index)
    payload.update(overrides)
    return payload


@pytest.fixture(autouse=True)
def reset_flight():
    FLIGHT.reset()
    yield
    FLIGHT.reset()


class TestTraceContext:
    def test_client_trace_id_echoed(self, live_server):
        _, port = live_server(batch_wait_ms=1)
        trace_id = new_trace_id()
        with ServiceClient(port=port) as client:
            client.wait_ready()
            reply = client.diagnose(small_payload(0), trace_id=trace_id)
        assert reply.trace_id == trace_id

    def test_server_mints_trace_id_when_client_sends_none(self, live_server):
        _, port = live_server(batch_wait_ms=1)
        with ServiceClient(port=port) as client:
            client.wait_ready()
            reply = client.diagnose(small_payload(0))
        assert reply.trace_id and len(reply.trace_id) == 32
        int(reply.trace_id, 16)  # well-formed hex

    def test_distinct_requests_get_distinct_traces(self, live_server):
        _, port = live_server(batch_wait_ms=1)
        with ServiceClient(port=port) as client:
            client.wait_ready()
            ids = {client.diagnose(small_payload(i % 3)).trace_id
                   for i in range(4)}
        assert len(ids) == 4


class TestThreeTierTraceTree:
    def test_trace_tree_spans_server_batch_and_fork_chunk(
            self, live_server, monkeypatch):
        """The acceptance criterion: one client trace id -> one tree with
        server, engine-batch and fork-chunk spans across >=2 processes."""
        monkeypatch.setenv("REPRO_WORKERS", "2")
        monkeypatch.setenv("REPRO_DIAGNOSIS_BATCH", "4")
        # A long coalescing window so all concurrent requests land in ONE
        # batch — big enough (>= 8 live members after the diagnosis-chunk
        # split) that the engine fans out over the fork pool.
        _, port = live_server(batch_wait_ms=500, batch_max=32)
        ids = [new_trace_id() for _ in range(12)]

        def fire(k):
            with ServiceClient(port=port) as client:
                client.diagnose(small_payload(k % SMALL["fault_count"]),
                                trace_id=ids[k])

        with ServiceClient(port=port) as client:
            client.wait_ready()
        threads = [threading.Thread(target=fire, args=(k,))
                   for k in range(len(ids))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        with ServiceClient(port=port) as client:
            for trace_id in (ids[0], ids[7]):  # head or member — same tree
                tree = client.debug_trace(trace_id)
                assert tree["trace_id"] == trace_id
                kinds = {r["kind"] for r in tree["records"]}
                assert {"request", "batch", "chunk"} <= kinds, (
                    f"missing tiers: {kinds}")
                assert tree["span_count"] >= 3
                assert len(tree["roots"]) == 1, "must assemble as ONE tree"
                assert len(tree["pids"]) >= 2, (
                    "chunk spans must come from fork children")
                root = tree["roots"][0]
                assert root["kind"] == "request"
                batch = next(c for c in root["children"]
                             if c["kind"] == "batch")
                assert any(c["kind"] == "chunk" for c in batch["children"])


class TestDebugEndpoints:
    def test_debug_requests_lists_recent_records(self, live_server):
        _, port = live_server(batch_wait_ms=1)
        trace_id = new_trace_id()
        with ServiceClient(port=port) as client:
            client.wait_ready()
            client.diagnose(small_payload(0), trace_id=trace_id)
            snap = client.debug_requests(limit=10)
        assert snap["capacity"] > 0 and snap["recorded"] >= 1
        assert "pid" in snap
        mine = [r for r in snap["recent"] if r["trace_id"] == trace_id]
        assert mine and mine[0]["kind"] == "request"
        assert mine[0]["status"] == "ok"
        # Slow reservoir buckets by workload key.
        key = f"{SMALL['circuit']}/two-step"
        assert any(r["trace_id"] == trace_id for r in snap["slow"][key])

    def test_debug_requests_records_errors(self, live_server):
        _, port = live_server(batch_wait_ms=1)
        with ServiceClient(port=port) as client:
            client.wait_ready()
            with pytest.raises(ServiceError):
                client.diagnose({"circuit": "nope", "fault_index": 0})
            snap = client.debug_requests()
        errors = [r for records in snap["errors"].values() for r in records]
        assert any(r["status"] == "circuit_not_found" for r in errors)

    def test_debug_flightrec_resizes_recorder_live(self, live_server):
        _, port = live_server(batch_wait_ms=1)
        with ServiceClient(port=port) as client:
            client.wait_ready()
            state = client.debug_flightrec()
            assert state["enabled"] and state["capacity"] > 0
            # Disable live: subsequent requests leave no records.
            assert client.debug_flightrec(capacity=0)["enabled"] is False
            trace_id = new_trace_id()
            client.diagnose(small_payload(0), trace_id=trace_id)
            snap = client.debug_requests()
            assert not any(r["trace_id"] == trace_id
                           for r in snap["recent"])
            # Re-enable live: recording resumes in the same process.
            assert client.debug_flightrec(capacity=64)["capacity"] == 64
            trace_id = new_trace_id()
            client.diagnose(small_payload(1), trace_id=trace_id)
            snap = client.debug_requests()
            assert any(r["trace_id"] == trace_id for r in snap["recent"])

    def test_debug_flightrec_rejects_bad_capacity(self, live_server):
        _, port = live_server()
        with ServiceClient(port=port) as client:
            client.wait_ready()
            with pytest.raises(ServiceError) as excinfo:
                client.debug_flightrec(capacity=-1)
            assert excinfo.value.code == "invalid_argument"

    def test_debug_trace_rejects_malformed_id(self, live_server):
        _, port = live_server()
        with ServiceClient(port=port) as client:
            client.wait_ready()
            with pytest.raises(ServiceError) as exc:
                client.debug_trace("   ")
            assert exc.value.code == "invalid_argument"

    def test_debug_trace_unknown_id_is_empty_tree(self, live_server):
        _, port = live_server()
        trace_id = new_trace_id()
        with ServiceClient(port=port) as client:
            client.wait_ready()
            tree = client.debug_trace(trace_id)
        assert tree["trace_id"] == trace_id
        assert tree["span_count"] == 0 and tree["roots"] == []

    def test_debug_profile_returns_folded_stacks(self, live_server):
        _, port = live_server()
        with ServiceClient(port=port) as client:
            client.wait_ready()
            folded = client.debug_profile(seconds=0.3)
        lines = [line for line in folded.splitlines() if line.strip()]
        assert lines, "an idle server still has sampleable threads"
        for line in lines:
            stack, _, count = line.rpartition(" ")
            assert stack and int(count) >= 1

    def test_concurrent_profile_bursts_get_429(self, live_server):
        _, port = live_server()
        outcomes = []

        def burst():
            with ServiceClient(port=port) as client:
                try:
                    outcomes.append(("ok", client.debug_profile(seconds=1.0)))
                except ServiceError as exc:
                    outcomes.append(("err", exc))

        with ServiceClient(port=port) as client:
            client.wait_ready()
        threads = [threading.Thread(target=burst) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        codes = sorted(kind for kind, _ in outcomes)
        assert codes == ["err", "ok"], outcomes
        error = next(v for kind, v in outcomes if kind == "err")
        assert error.code == "queue_full"
        assert error.retry_after_s


class TestOutcomeLabels:
    def test_saturated_queue_shows_rejected_outcome(self, live_server):
        """429s from admission control must land in the error taxonomy
        with a distinct outcome label, not blend into generic errors."""
        from .test_server import SlowEngine

        _, port = live_server(engine=SlowEngine(0.5), queue_depth=1,
                              batch_max=1, batch_wait_ms=1)

        rejected = []

        def fire(k):
            with ServiceClient(port=port) as client:
                try:
                    client.diagnose(small_payload(0, request_id=str(k)))
                except ServiceError as exc:
                    rejected.append(exc.code)

        with ServiceClient(port=port) as client:
            client.wait_ready()
        threads = [threading.Thread(target=fire, args=(k,)) for k in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert "queue_full" in rejected

        with ServiceClient(port=port) as client:
            counters = client.metrics()["registry"]["counters"]
        key = "service.requests{code=queue_full,outcome=rejected}"
        assert counters.get(key, 0) >= 1, sorted(
            k for k in counters if k.startswith("service.requests"))
        assert counters.get("service.requests{code=ok,outcome=ok}", 0) >= 1
