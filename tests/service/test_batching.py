"""BatchQueue: admission control, coalescing, deadlines, close."""

import asyncio
import time

import pytest

from repro.service.batching import BatchQueue, PendingRequest
from repro.service.protocol import ServiceError

from .conftest import small_request


def entry(loop, fault_index=0, deadline=None, **overrides) -> PendingRequest:
    return PendingRequest(
        request=small_request(fault_index, **overrides),
        future=loop.create_future(),
        deadline=deadline,
    )


def run(coro):
    return asyncio.run(coro)


class TestAdmission:
    def test_offer_rejects_beyond_depth(self):
        async def scenario():
            loop = asyncio.get_event_loop()
            queue = BatchQueue(max_depth=2, batch_max=8)
            queue.offer(entry(loop, 0))
            queue.offer(entry(loop, 1))
            with pytest.raises(ServiceError) as exc:
                queue.offer(entry(loop, 2))
            assert exc.value.code == "queue_full"
            assert exc.value.retry_after_s >= 1.0
            assert queue.depth == 2

        run(scenario())

    def test_offer_after_close_is_shutting_down(self):
        async def scenario():
            loop = asyncio.get_event_loop()
            queue = BatchQueue()
            await queue.close()
            with pytest.raises(ServiceError) as exc:
                queue.offer(entry(loop))
            assert exc.value.code == "shutting_down"

        run(scenario())


class TestCoalescing:
    def test_same_key_coalesces_up_to_batch_max(self):
        async def scenario():
            loop = asyncio.get_event_loop()
            queue = BatchQueue(max_depth=16, batch_max=3, batch_wait_s=0.0)
            for i in range(5):
                queue.offer(entry(loop, i))
            batch = await queue.next_batch()
            assert [e.request.fault_index for e in batch] == [0, 1, 2]
            batch = await queue.next_batch()
            assert [e.request.fault_index for e in batch] == [3, 4]

        run(scenario())

    def test_other_keys_stay_queued_fifo(self):
        async def scenario():
            loop = asyncio.get_event_loop()
            queue = BatchQueue(max_depth=16, batch_max=8, batch_wait_s=0.0)
            queue.offer(entry(loop, 0))
            queue.offer(entry(loop, 0, scheme="random"))
            queue.offer(entry(loop, 1))
            first = await queue.next_batch()
            assert [e.request.fault_index for e in first] == [0, 1]
            assert all(e.request.scheme == "two-step" for e in first)
            second = await queue.next_batch()
            assert len(second) == 1
            assert second[0].request.scheme == "random"

        run(scenario())

    def test_batch_waits_for_late_same_key_arrivals(self):
        async def scenario():
            loop = asyncio.get_event_loop()
            queue = BatchQueue(max_depth=16, batch_max=4, batch_wait_s=0.25)
            queue.offer(entry(loop, 0))

            async def late_arrival():
                await asyncio.sleep(0.02)
                queue.offer(entry(loop, 1))
                await queue.announce()

            task = asyncio.ensure_future(late_arrival())
            batch = await queue.next_batch()
            await task
            assert [e.request.fault_index for e in batch] == [0, 1]

        run(scenario())


class TestDeadlines:
    def test_expired_entry_resolves_deadline_exceeded(self):
        async def scenario():
            loop = asyncio.get_event_loop()
            queue = BatchQueue(batch_wait_s=0.0)
            expired = entry(loop, 0, deadline=time.monotonic() - 1)
            live = entry(loop, 1)
            queue.offer(expired)
            queue.offer(live)
            batch = await queue.next_batch()
            assert [e.request.fault_index for e in batch] == [1]
            with pytest.raises(ServiceError) as exc:
                expired.future.result()
            assert exc.value.code == "deadline_exceeded"

        run(scenario())

    def test_abandoned_entry_is_dropped_silently(self):
        async def scenario():
            loop = asyncio.get_event_loop()
            queue = BatchQueue(batch_wait_s=0.0)
            gone = entry(loop, 0)
            gone.future.cancel()
            queue.offer(gone)
            queue.offer(entry(loop, 1))
            batch = await queue.next_batch()
            assert [e.request.fault_index for e in batch] == [1]

        run(scenario())


class TestClose:
    def test_close_drains_then_returns_empty(self):
        async def scenario():
            loop = asyncio.get_event_loop()
            queue = BatchQueue(batch_wait_s=0.0)
            queue.offer(entry(loop, 0))
            await queue.close()
            batch = await queue.next_batch()
            assert len(batch) == 1  # queued work still served
            assert await queue.next_batch() == []  # then clean exit

        run(scenario())
