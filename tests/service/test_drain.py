"""Drain-path coverage: in-flight work completes, new work is refused,
and a SIGTERM'd ``repro serve`` process exits 0.

The in-process tests drive ThreadedServer directly; the subprocess test
exercises the real signal handler wired up by ``serve_main``.
"""

import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.service.client import ServiceClient, TransportError
from repro.service.protocol import ServiceError

from .conftest import SMALL

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))


class TestInProcessDrain:
    def test_inflight_batch_completes_then_new_work_refused(self, live_server):
        # A long batch window holds the admitted request in the queue,
        # giving the drain something genuinely in-flight to finish.
        server, port = live_server(batch_wait_ms=60.0)
        client = ServiceClient(port=port)
        client.wait_ready(timeout_s=60)
        outcome = {}

        def admitted():
            try:
                outcome["reply"] = client.diagnose(dict(SMALL, fault_index=0))
            except Exception as exc:  # noqa: BLE001 - asserted below
                outcome["error"] = exc

        worker = threading.Thread(target=admitted)
        worker.start()
        time.sleep(0.02)  # let the request reach the batch queue
        server.stop(drain=True)
        worker.join(30)
        assert not worker.is_alive()
        assert "error" not in outcome, outcome
        assert outcome["reply"].candidate_cells

        # Post-drain the socket is gone (or answers shutting_down if the
        # request sneaks in during the draining window).
        late = ServiceClient(port=port)
        with pytest.raises((TransportError, ServiceError)) as excinfo:
            late.diagnose(dict(SMALL, fault_index=1))
        if isinstance(excinfo.value, ServiceError):
            assert excinfo.value.code == "shutting_down"
        late.close()
        client.close()

    def test_healthz_reports_draining(self, live_server):
        server, port = live_server(batch_wait_ms=1.0)
        client = ServiceClient(port=port)
        client.wait_ready(timeout_s=60)
        assert client.health()["status"] == "ok"
        client.close()
        server.stop(drain=True)


class TestSigtermDrain:
    @pytest.mark.skipif(not hasattr(signal, "SIGTERM"), reason="needs SIGTERM")
    def test_sigterm_drains_inflight_and_exits_zero(self):
        env = dict(os.environ, PYTHONPATH=os.path.join(REPO_ROOT, "src"))
        env.pop("REPRO_DISK_CACHE", None)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--port", "0", "--batch-wait-ms", "25", "--no-disk-warm"],
            stderr=subprocess.PIPE, env=env, cwd=REPO_ROOT,
        )
        port = None
        try:
            for line in proc.stderr:
                text = line.decode("utf-8", "replace")
                if "serving on http://" in text:
                    port = int(text.rsplit(":", 1)[1])
                    break
            assert port, "server never printed its listen banner"
            # The banner pipe must keep draining or the server can block
            # on a full stderr buffer mid-shutdown.
            drainer = threading.Thread(
                target=lambda: [None for _ in proc.stderr], daemon=True)
            drainer.start()

            client = ServiceClient(port=port)
            client.wait_ready(timeout_s=60)
            client.diagnose(dict(SMALL, fault_index=0))  # warm the workload

            # Launch a wave of requests, SIGTERM while they are in flight,
            # and require every outcome to be ok or an orderly refusal.
            outcomes = []
            lock = threading.Lock()

            def fire(i):
                c = ServiceClient(port=port)
                try:
                    c.diagnose(dict(SMALL, fault_index=i % SMALL["fault_count"]))
                    verdict = "ok"
                except ServiceError as exc:
                    verdict = exc.code
                except TransportError:
                    verdict = "transport"
                finally:
                    c.close()
                with lock:
                    outcomes.append(verdict)

            threads = [threading.Thread(target=fire, args=(i,))
                       for i in range(16)]
            for t in threads:
                t.start()
            time.sleep(0.03)  # most requests now queued in the batch window
            proc.send_signal(signal.SIGTERM)
            for t in threads:
                t.join(60)
            client.close()

            assert outcomes, "no request outcomes recorded"
            assert set(outcomes) <= {"ok", "shutting_down", "transport"}, outcomes
            assert "ok" in outcomes, outcomes

            # Once drained, the port refuses new connections...
            deadline = time.monotonic() + 30
            refused = False
            while time.monotonic() < deadline:
                try:
                    socket.create_connection(("127.0.0.1", port),
                                             timeout=1).close()
                    time.sleep(0.05)
                except OSError:
                    refused = True
                    break
            assert refused, "drained server still accepts connections"
            # ...and the process exits cleanly.
            assert proc.wait(30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(10)
