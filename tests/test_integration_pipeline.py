"""Whole-pipeline integration: ITC'02-style description -> wrapper chain
assignment -> TestRail -> bypass schedule -> fault injection -> per-phase
two-step diagnosis -> candidates mapped back to cores.

This is the full SOC story of the paper's Section 5, every substrate in
one flow, checked for soundness and core-level localization.
"""

import numpy as np
import pytest

from repro.sim.bitops import pattern_mask
from repro.sim.faultsim import FaultResponse
from repro.soc.schedule import TestSchedule as Schedule
from repro.soc.schedule import diagnose_schedule
from repro.soc.socfile import build_testrail_from_description, parse_soc

SOC_TEXT = """
SocName pipeline
TotalModules 3
Module 0 s838
  Inputs 34
  Outputs 1
  ScanChains 2 : 16 16
  TestPatterns 48
Module 1 s953
  Inputs 16
  Outputs 23
  ScanChains 2 : 15 14
  TestPatterns 64
Module 2 s1423
  Inputs 17
  Outputs 5
  ScanChains 3 : 25 25 24
  TestPatterns 32
"""


@pytest.fixture(scope="module")
def pipeline():
    desc = parse_soc(SOC_TEXT)
    rail, budgets = build_testrail_from_description(desc, tam_width=2)
    schedule = Schedule(rail, budgets)
    return desc, rail, schedule


class TestPipeline:
    def test_description_drives_construction(self, pipeline):
        desc, rail, schedule = pipeline
        assert rail.num_cells == sum(c.num_cells for c in rail.cores)
        assert rail.scan_config.num_chains == 2
        # Budgets: 48/64/32 -> phases at 0..31, 32..47, 48..63.
        assert [p.num_patterns for p in schedule.phases] == [32, 16, 16]
        assert schedule.phases[1].active_cores == (0, 1)
        assert schedule.phases[2].active_cores == (1,)

    def test_whole_flow_sound_and_localized(self, pipeline):
        desc, rail, schedule = pipeline
        rng = np.random.default_rng(77)
        for core_index, core in enumerate(rail.cores):
            budget = schedule.budgets[core_index]
            responses = core.sample_fault_responses(3, rng)
            for response in responses:
                lifted = rail.lift_response(core_index, response)
                clipped = _clip(lifted, budget)
                if not clipped.detected:
                    continue
                result = diagnose_schedule(
                    clipped, schedule, num_partitions=6, num_groups=4
                )
                assert result.sound, (core.name, str(response.fault))
                # Two-step localization: most candidates should sit in the
                # faulty core (intervals capture its contiguous segment).
                in_core = sum(
                    1
                    for cell in result.candidate_cells
                    if rail.owner(cell).core_index == core_index
                )
                assert in_core >= len(result.actual_cells)

    def test_roundtrip_description_rebuilds_same_soc(self, pipeline):
        from repro.soc.socfile import write_soc

        desc, rail, schedule = pipeline
        desc2 = parse_soc(write_soc(desc))
        rail2, budgets2 = build_testrail_from_description(desc2, tam_width=2)
        assert [len(c) for c in rail2.scan_config.chains] == [
            len(c) for c in rail.scan_config.chains
        ]
        assert budgets2 == desc.pattern_budgets()


def _clip(response, budget):
    mask = pattern_mask(min(budget, response.num_patterns))
    clipped = {}
    for cell, vec in response.cell_errors.items():
        new_vec = vec.copy()
        new_vec[: len(mask)] &= mask
        new_vec[len(mask):] = 0
        if new_vec.any():
            clipped[cell] = new_vec
    return FaultResponse(response.fault, clipped, response.num_patterns)
