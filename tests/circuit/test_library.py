"""Tests for the benchmark registry."""

import pytest

from repro.circuit.library import (
    D695_MODULES,
    PROFILES,
    SIX_LARGEST,
    clear_cache,
    get_circuit,
)


class TestRegistry:
    def test_six_largest_are_registered(self):
        for name in SIX_LARGEST:
            assert name in PROFILES

    def test_d695_modules_are_registered(self):
        for name in D695_MODULES:
            assert name in PROFILES

    def test_six_largest_are_actually_the_largest(self):
        largest = sorted(
            PROFILES.values(), key=lambda p: p.num_gates, reverse=True
        )[:6]
        assert {p.name for p in largest} == set(SIX_LARGEST)

    @pytest.mark.parametrize(
        "name,ff", [("s953", 29), ("s838", 32), ("s5378", 179), ("s9234", 211)]
    )
    def test_published_flip_flop_counts(self, name, ff):
        assert PROFILES[name].num_flip_flops == ff


class TestGetCircuit:
    def test_s27_is_the_real_netlist(self):
        s27 = get_circuit("s27")
        assert s27.stats() == {
            "inputs": 4,
            "outputs": 1,
            "flip_flops": 3,
            "gates": 10,
        }

    def test_s27_cannot_be_scaled(self):
        with pytest.raises(ValueError):
            get_circuit("s27", scale=0.5)

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            get_circuit("s99999")

    def test_memoization_returns_same_object(self):
        a = get_circuit("s953")
        b = get_circuit("s953")
        assert a is b

    def test_clear_cache(self):
        a = get_circuit("s953", scale=0.3)
        clear_cache()
        b = get_circuit("s953", scale=0.3)
        assert a is not b
        assert a.stats() == b.stats()

    def test_scaled_circuit_smaller(self):
        full = get_circuit("s953")
        small = get_circuit("s953", scale=0.3)
        assert small.num_flip_flops < full.num_flip_flops

    def test_seed_changes_circuit(self):
        a = get_circuit("s953", seed=0)
        b = get_circuit("s953", seed=1)
        assert any(
            a.gates[n].fanins != b.gates[n].fanins for n in a.gates if n in b.gates
        )
