"""Unit tests for the netlist model."""

import pytest

from repro.circuit.netlist import (
    Gate,
    GateType,
    Netlist,
    NetlistError,
    merge_disjoint,
)


class TestGate:
    def test_input_gate_has_no_fanins(self):
        gate = Gate("A", GateType.INPUT)
        assert gate.fanins == ()

    def test_input_gate_rejects_fanins(self):
        with pytest.raises(NetlistError):
            Gate("A", GateType.INPUT, ("B",))

    @pytest.mark.parametrize("gtype", [GateType.NOT, GateType.BUF, GateType.DFF])
    def test_unary_gates_require_exactly_one_fanin(self, gtype):
        Gate("X", gtype, ("A",))
        with pytest.raises(NetlistError):
            Gate("X", gtype, ("A", "B"))
        with pytest.raises(NetlistError):
            Gate("X", gtype, ())

    @pytest.mark.parametrize(
        "gtype",
        [GateType.AND, GateType.NAND, GateType.OR, GateType.NOR, GateType.XOR,
         GateType.XNOR],
    )
    def test_nary_gates_require_at_least_one_fanin(self, gtype):
        Gate("X", gtype, ("A",))
        Gate("X", gtype, ("A", "B", "C", "D"))
        with pytest.raises(NetlistError):
            Gate("X", gtype, ())

    def test_is_combinational(self):
        assert GateType.AND.is_combinational
        assert GateType.NOT.is_combinational
        assert not GateType.INPUT.is_combinational
        assert not GateType.DFF.is_combinational


class TestNetlist:
    def build_minimal(self):
        net = Netlist("minimal")
        net.add_input("A")
        net.add_input("B")
        net.add_gate("N1", GateType.AND, ["A", "B"])
        net.add_dff("F0", "N1")
        net.add_gate("N2", GateType.NOT, ["F0"])
        net.add_output("N2")
        return net

    def test_valid_netlist_passes_validation(self):
        self.build_minimal().validate()

    def test_duplicate_driver_rejected(self):
        net = self.build_minimal()
        with pytest.raises(NetlistError, match="multiple drivers"):
            net.add_gate("N1", GateType.OR, ["A", "B"])

    def test_duplicate_output_rejected(self):
        net = self.build_minimal()
        with pytest.raises(NetlistError, match="duplicate output"):
            net.add_output("N2")

    def test_dangling_fanin_detected(self):
        net = self.build_minimal()
        net.add_gate("N3", GateType.AND, ["A", "GHOST"])
        with pytest.raises(NetlistError, match="GHOST"):
            net.validate()

    def test_undriven_output_detected(self):
        net = self.build_minimal()
        net.add_output("MISSING")
        with pytest.raises(NetlistError, match="MISSING"):
            net.validate()

    def test_combinational_loop_detected(self):
        net = Netlist("loop")
        net.add_input("A")
        net.add_gate("X", GateType.AND, ["A", "Y"])
        net.add_gate("Y", GateType.OR, ["X", "A"])
        net.add_output("Y")
        with pytest.raises(NetlistError, match="loop"):
            net.validate()

    def test_sequential_loop_through_dff_is_legal(self):
        net = Netlist("seqloop")
        net.add_input("A")
        net.add_gate("N1", GateType.AND, ["A", "F0"])
        net.add_dff("F0", "N1")
        net.add_output("N1")
        net.validate()

    def test_flip_flops_in_insertion_order(self):
        net = self.build_minimal()
        net.add_dff("F9", "N1")
        assert [g.output for g in net.flip_flops] == ["F0", "F9"]

    def test_stats(self):
        stats = self.build_minimal().stats()
        assert stats == {"inputs": 2, "outputs": 1, "flip_flops": 1, "gates": 2}

    def test_fanout_map(self):
        net = self.build_minimal()
        fanout = net.fanout_map()
        assert set(fanout["A"]) == {"N1"}
        assert set(fanout["N1"]) == {"F0"}
        assert fanout["N2"] == []

    def test_nets_includes_everything(self):
        net = self.build_minimal()
        assert net.nets() == {"A", "B", "N1", "F0", "N2"}


class TestMergeDisjoint:
    def test_merge_prefixes_and_preserves_structure(self):
        a = Netlist("a")
        a.add_input("X")
        a.add_gate("G", GateType.NOT, ["X"])
        a.add_output("G")
        b = Netlist("b")
        b.add_input("X")
        b.add_gate("G", GateType.BUF, ["X"])
        b.add_output("G")
        merged = merge_disjoint("ab", [a, b])
        merged.validate()
        assert merged.inputs == ["a/X", "b/X"]
        assert merged.outputs == ["a/G", "b/G"]
        assert merged.gates["a/G"].gtype is GateType.NOT
        assert merged.gates["b/G"].gtype is GateType.BUF

    def test_merged_parts_stay_disjoint(self, tiny_netlist, s27_netlist):
        merged = merge_disjoint("soc", [tiny_netlist, s27_netlist])
        merged.validate()
        assert merged.num_flip_flops == (
            tiny_netlist.num_flip_flops + s27_netlist.num_flip_flops
        )
        fanout = merged.fanout_map()
        for net, sinks in fanout.items():
            prefix = net.split("/", 1)[0]
            assert all(s.split("/", 1)[0] == prefix for s in sinks)
