"""Tests for structural statistics."""

import numpy as np
import pytest

from repro.circuit.stats import compare_stats, structural_stats


class TestStructuralStats:
    def test_counts_match_netlist(self, s27_netlist):
        stats = structural_stats(s27_netlist)
        assert stats.counts == s27_netlist.stats()
        assert sum(stats.gate_mix.values()) == s27_netlist.num_combinational_gates
        assert sum(stats.fanin_histogram.values()) == (
            s27_netlist.num_combinational_gates
        )

    def test_s27_known_values(self, s27_netlist):
        stats = structural_stats(s27_netlist)
        assert stats.gate_mix["NOR"] == 4
        assert stats.gate_mix["NOT"] == 2
        assert stats.max_level >= 3
        assert stats.max_fanout >= 2

    def test_cone_sampling(self, small_netlist):
        stats = structural_stats(
            small_netlist, sample_cones=30, rng=np.random.default_rng(0)
        )
        assert stats.mean_cone_size is not None
        assert stats.mean_cone_size >= 1.0
        assert 0.0 <= stats.unobservable_fraction <= 1.0
        assert "sampled cones" in stats.render()

    def test_no_sampling_leaves_cone_fields_none(self, s27_netlist):
        stats = structural_stats(s27_netlist)
        assert stats.mean_cone_size is None
        assert "sampled cones" not in stats.render()

    def test_render_mentions_counts(self, s27_netlist):
        text = structural_stats(s27_netlist).render()
        assert "FF=3" in text
        assert "fanout" in text

    def test_compare_table(self, s27_netlist, small_netlist):
        stats = [
            structural_stats(s27_netlist, sample_cones=5),
            structural_stats(small_netlist, sample_cones=5),
        ]
        table = compare_stats(stats)
        assert "s27" in table
        assert small_netlist.name in table


class TestLargeProfiles:
    @pytest.mark.parametrize("name", ["s35932", "s38417", "s38584"])
    def test_large_stand_ins_have_published_counts(self, name):
        from repro.circuit.library import PROFILES, get_circuit

        net = get_circuit(name)
        profile = PROFILES[name]
        stats = structural_stats(net)
        assert stats.counts["flip_flops"] == profile.num_flip_flops
        assert stats.counts["inputs"] == profile.num_inputs
        assert stats.counts["outputs"] == profile.num_outputs
        assert profile.num_gates <= stats.counts["gates"] <= (
            profile.num_gates + profile.num_outputs
        )
        assert stats.max_level <= profile.depth + 1
