"""Unit tests for the .bench reader/writer."""

import pytest

from repro.circuit.bench import (
    BenchFormatError,
    parse_bench,
    write_bench,
    load_bench,
    save_bench,
)
from repro.circuit.library import S27_BENCH
from repro.circuit.netlist import GateType


class TestParse:
    def test_parse_s27_counts(self):
        net = parse_bench(S27_BENCH, name="s27")
        assert net.stats() == {
            "inputs": 4,
            "outputs": 1,
            "flip_flops": 3,
            "gates": 10,
        }

    def test_parse_s27_structure(self):
        net = parse_bench(S27_BENCH)
        assert net.gates["G10"].gtype is GateType.NOR
        assert net.gates["G10"].fanins == ("G14", "G11")
        assert net.gates["G5"].gtype is GateType.DFF
        assert net.gates["G5"].fanins == ("G10",)

    def test_comments_and_blank_lines_ignored(self):
        net = parse_bench("# hi\n\nINPUT(A)\nX = NOT(A)  # inline\nOUTPUT(X)\n")
        assert net.inputs == ["A"]
        assert net.gates["X"].gtype is GateType.NOT

    @pytest.mark.parametrize(
        "alias,expected",
        [("BUFF", GateType.BUF), ("BUF", GateType.BUF), ("INV", GateType.NOT),
         ("not", GateType.NOT), ("nand", GateType.NAND)],
    )
    def test_type_aliases(self, alias, expected):
        net = parse_bench(f"INPUT(A)\nX = {alias}(A)\nOUTPUT(X)\n")
        assert net.gates["X"].gtype is expected

    def test_unknown_gate_type_raises_with_line_number(self):
        with pytest.raises(BenchFormatError, match="line 2"):
            parse_bench("INPUT(A)\nX = FROB(A)\nOUTPUT(X)\n")

    def test_garbage_line_raises(self):
        with pytest.raises(BenchFormatError, match="cannot parse"):
            parse_bench("INPUT(A)\nthis is not bench\n")

    def test_empty_fanin_list_raises(self):
        with pytest.raises(BenchFormatError, match="no fanins"):
            parse_bench("INPUT(A)\nX = AND()\nOUTPUT(X)\n")

    def test_validation_runs_on_parse(self):
        with pytest.raises(Exception):
            parse_bench("INPUT(A)\nOUTPUT(MISSING)\nX = NOT(A)\n")


class TestRoundTrip:
    def test_s27_round_trips(self):
        original = parse_bench(S27_BENCH, name="s27")
        text = write_bench(original)
        reparsed = parse_bench(text, name="s27")
        assert reparsed.inputs == original.inputs
        assert reparsed.outputs == original.outputs
        assert set(reparsed.gates) == set(original.gates)
        for name, gate in original.gates.items():
            assert reparsed.gates[name].gtype is gate.gtype
            assert reparsed.gates[name].fanins == gate.fanins

    def test_file_round_trip(self, tmp_path, s27_netlist):
        path = tmp_path / "s27.bench"
        save_bench(s27_netlist, path)
        loaded = load_bench(path)
        assert loaded.name == "s27"
        assert loaded.stats() == s27_netlist.stats()

    def test_generated_circuit_round_trips(self, small_netlist):
        text = write_bench(small_netlist)
        reparsed = parse_bench(text, name=small_netlist.name)
        assert reparsed.stats() == small_netlist.stats()
        assert [g.output for g in reparsed.flip_flops] == [
            g.output for g in small_netlist.flip_flops
        ]
