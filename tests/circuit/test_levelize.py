"""Unit tests for topological ordering, levelization and cone analysis."""

import pytest

from repro.circuit.bench import parse_bench
from repro.circuit.levelize import (
    cone_gate_schedule,
    cone_span,
    fanout_cone,
    levelize,
    observing_cells,
    topological_order,
)
from repro.circuit.netlist import GateType, Netlist


class TestTopologicalOrder:
    def test_every_gate_follows_its_fanins(self, s27_netlist):
        order = topological_order(s27_netlist)
        index = {net: i for i, net in enumerate(order)}
        for net, gate in s27_netlist.gates.items():
            if gate.gtype.is_combinational:
                assert all(index[f] < index[net] for f in gate.fanins)

    def test_sources_first(self, s27_netlist):
        order = topological_order(s27_netlist)
        num_sources = len(s27_netlist.inputs) + s27_netlist.num_flip_flops
        for net in order[:num_sources]:
            assert not s27_netlist.gates[net].gtype.is_combinational

    def test_generated_circuit(self, small_netlist):
        order = topological_order(small_netlist)
        assert len(order) == len(small_netlist.gates)
        index = {net: i for i, net in enumerate(order)}
        for net, gate in small_netlist.gates.items():
            if gate.gtype.is_combinational:
                assert all(index[f] < index[net] for f in gate.fanins)

    def test_loop_raises(self):
        net = Netlist("loop")
        net.add_input("A")
        net.add_gate("X", GateType.AND, ["A", "Y"])
        net.add_gate("Y", GateType.OR, ["X"])
        net.add_output("Y")
        with pytest.raises(ValueError):
            topological_order(net)


class TestLevelize:
    def test_sources_level_zero(self, s27_netlist):
        levels = levelize(s27_netlist)
        for net in s27_netlist.inputs:
            assert levels[net] == 0
        for ff in s27_netlist.flip_flops:
            assert levels[ff.output] == 0

    def test_level_is_one_plus_max_fanin(self, s27_netlist):
        levels = levelize(s27_netlist)
        for net, gate in s27_netlist.gates.items():
            if gate.gtype.is_combinational:
                assert levels[net] == 1 + max(levels[f] for f in gate.fanins)

    def test_generated_depth_bounded(self, small_netlist, small_profile):
        levels = levelize(small_netlist)
        assert max(levels.values()) <= small_profile.depth + 1


class TestFanoutCone:
    CONE_BENCH = """
    INPUT(A)
    INPUT(B)
    OUTPUT(N3)
    F0 = DFF(N2)
    F1 = DFF(N3)
    F2 = DFF(B)
    N1 = AND(A, B)
    N2 = OR(N1, F0)
    N3 = NOT(N1)
    """

    def cone_net(self):
        return parse_bench(self.CONE_BENCH, name="cone")

    def test_cone_contents(self):
        net = self.cone_net()
        assert fanout_cone(net, "N1") == {"N1", "N2", "N3"}
        assert fanout_cone(net, "A") == {"A", "N1", "N2", "N3"}

    def test_cone_stops_at_dff(self):
        net = self.cone_net()
        # N2 feeds only F0's D input: the cone ends there.
        assert fanout_cone(net, "N2") == {"N2"}

    def test_observing_cells(self):
        net = self.cone_net()
        scan = [g.output for g in net.flip_flops]  # F0, F1, F2
        assert observing_cells(net, "N1", scan) == [0, 1]
        assert observing_cells(net, "B", scan) == [0, 1, 2]
        assert observing_cells(net, "N3", scan) == [1]

    def test_cone_gate_schedule_is_topological(self, small_netlist):
        topo = topological_order(small_netlist)
        some_gate = next(
            n for n in topo if small_netlist.gates[n].gtype.is_combinational
        )
        schedule = cone_gate_schedule(small_netlist, some_gate, topo)
        index = {net: i for i, net in enumerate(topo)}
        assert schedule == sorted(schedule, key=index.__getitem__)
        cone = fanout_cone(small_netlist, some_gate)
        assert set(schedule) <= cone


class TestConeSpan:
    def test_empty(self):
        assert cone_span([]) == 0

    def test_single(self):
        assert cone_span([5]) == 1

    def test_spread(self):
        assert cone_span([3, 9, 5]) == 7
