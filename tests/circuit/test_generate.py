"""Tests for the synthetic ISCAS-89-like circuit generator, including the
clustering property the paper's experiments depend on."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.generate import CircuitProfile, generate_circuit
from repro.circuit.levelize import levelize, observing_cells


def profile(**overrides):
    base = dict(
        name="gen-test",
        num_inputs=5,
        num_outputs=3,
        num_flip_flops=20,
        num_gates=120,
        depth=6,
    )
    base.update(overrides)
    return CircuitProfile(**base)


class TestCounts:
    def test_published_counts_honoured(self):
        net = generate_circuit(profile(), seed=1)
        stats = net.stats()
        assert stats["inputs"] == 5
        assert stats["outputs"] == 3
        assert stats["flip_flops"] == 20
        # Duplicate-PO buffers may add a handful of gates on top.
        assert 120 <= stats["gates"] <= 120 + 3

    def test_depth_bounded(self):
        net = generate_circuit(profile(depth=4), seed=2)
        assert max(levelize(net).values()) <= 4

    @pytest.mark.parametrize("seed", [0, 1, 99])
    def test_validates_for_many_seeds(self, seed):
        generate_circuit(profile(), seed=seed).validate()


class TestDeterminism:
    def test_same_seed_same_circuit(self):
        a = generate_circuit(profile(), seed=5)
        b = generate_circuit(profile(), seed=5)
        assert list(a.gates) == list(b.gates)
        for name in a.gates:
            assert a.gates[name].fanins == b.gates[name].fanins
            assert a.gates[name].gtype == b.gates[name].gtype

    def test_different_seed_different_circuit(self):
        a = generate_circuit(profile(), seed=5)
        b = generate_circuit(profile(), seed=6)
        differs = any(
            a.gates[n].fanins != b.gates[n].fanins
            for n in a.gates
            if n in b.gates
        )
        assert differs

    def test_name_influences_structure(self):
        a = generate_circuit(profile(name="alpha"), seed=5)
        b = generate_circuit(profile(name="beta"), seed=5)
        assert any(
            a.gates[n].fanins != b.gates[n].fanins
            for n in a.gates
            if n in b.gates
        )


class TestScaled:
    def test_scaled_preserves_minimums(self):
        tiny = profile().scaled(0.01)
        assert tiny.num_flip_flops >= 3
        assert tiny.num_gates >= 8
        generate_circuit(tiny, seed=0).validate()

    def test_scaled_half(self):
        half = profile(num_gates=200).scaled(0.5)
        assert half.num_gates == 100
        assert half.num_flip_flops == 10


class TestClustering:
    """The load-bearing property: fault cones observe clustered scan cells."""

    def test_cones_are_localized(self):
        prof = profile(num_flip_flops=60, num_gates=600, num_inputs=10, depth=8)
        net = generate_circuit(prof, seed=3)
        scan = [g.output for g in net.flip_flops]
        rng = np.random.default_rng(0)
        gate_nets = [n for n, g in net.gates.items() if g.gtype.is_combinational]
        relative_spans = []
        for idx in rng.choice(len(gate_nets), 40, replace=False):
            cells = observing_cells(net, gate_nets[idx], scan)
            if len(cells) >= 2:
                relative_spans.append((max(cells) - min(cells) + 1) / len(scan))
        assert relative_spans, "expected some multi-cell cones"
        # Clustered: the typical cone covers a small fraction of the chain.
        assert np.median(relative_spans) < 0.5
        assert np.mean(relative_spans) < 0.6

    def test_most_gates_observable(self):
        prof = profile(num_flip_flops=40, num_gates=400, depth=8)
        net = generate_circuit(prof, seed=4)
        scan = [g.output for g in net.flip_flops]
        gate_nets = [n for n, g in net.gates.items() if g.gtype.is_combinational]
        observable = sum(
            1 for n in gate_nets if observing_cells(net, n, scan)
        )
        # POs also observe some logic; require a solid majority to reach the
        # scan chain.
        assert observable / len(gate_nets) > 0.5

    def test_scan_order_follows_locality_axis(self):
        net = generate_circuit(profile(), seed=1)
        names = [g.output for g in net.flip_flops]
        assert names == [f"FF{i}" for i in range(20)]


@settings(max_examples=15, deadline=None)
@given(
    n_pi=st.integers(2, 8),
    n_po=st.integers(1, 6),
    n_ff=st.integers(3, 30),
    n_gates=st.integers(10, 150),
    seed=st.integers(0, 2**16),
)
def test_generator_always_produces_valid_netlists(n_pi, n_po, n_ff, n_gates, seed):
    prof = CircuitProfile("hyp", n_pi, n_po, n_ff, n_gates, depth=5)
    net = generate_circuit(prof, seed=seed)
    net.validate()
    assert net.num_flip_flops == n_ff
    assert len(net.inputs) == n_pi
    assert len(net.outputs) == n_po
