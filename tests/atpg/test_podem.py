"""Tests for PODEM test generation, verified by fault simulation: every
generated cube must actually detect its target fault."""

import numpy as np
import pytest

from repro.atpg.podem import PodemEngine, atpg_campaign, cube_to_pattern
from repro.circuit.bench import parse_bench
from repro.sim.bitops import pack_bits, unpack_bits
from repro.sim.faults import Fault, collapse_faults
from repro.sim.faultsim import FaultSimulator
from repro.sim.logicsim import CompiledCircuit


def verify_cube(netlist, cube, fault, rng=None):
    """Simulate the filled cube against the fault simulator: the fault must
    produce at least one error at an observation point (scan cell or PO)."""
    compiled = CompiledCircuit(netlist)
    pi, ff = cube_to_pattern(cube, netlist, rng=rng)
    pi_mat = np.vstack([pack_bits([pi[n]]) for n in netlist.inputs]) if netlist.inputs \
        else np.zeros((0, 1), dtype=np.uint64)
    ff_mat = (
        np.vstack([pack_bits([ff[g.output]]) for g in netlist.flip_flops])
        if netlist.flip_flops
        else np.zeros((0, 1), dtype=np.uint64)
    )
    good = compiled.simulate(pi_mat, ff_mat, 1)
    sim = FaultSimulator(compiled, good)
    response = sim.simulate_fault(fault)
    if response.detected:
        return True
    # The fault may only be observable at a primary output: re-simulate the
    # faulty values by brute force and compare POs.
    from tests.sim.test_faultsim import faulty_reference

    assignment = {n: pi[n] for n in netlist.inputs}
    assignment.update({g.output: ff[g.output] for g in netlist.flip_flops})
    ref = faulty_reference(netlist, assignment, fault)
    for po in netlist.outputs:
        good_bit = unpack_bits(good.net(po), 1)[0]
        if ref(po) != good_bit:
            return True
    return False


SMALL = """
INPUT(A)
INPUT(B)
INPUT(C)
OUTPUT(Y)
F0 = DFF(D0)
N1 = AND(A, B)
N2 = OR(N1, C)
N3 = NOT(N2)
D0 = XOR(N1, N3)
Y = BUFF(N2)
"""


class TestSmallCircuit:
    def setup_method(self):
        self.net = parse_bench(SMALL, name="small")
        self.engine = PodemEngine(self.net)

    def test_generates_and_detects_easy_fault(self):
        fault = Fault("N1", 0)
        cube = self.engine.generate(fault)
        assert cube is not None
        assert verify_cube(self.net, cube, fault)

    def test_detects_input_fault(self):
        fault = Fault("A", 1)
        cube = self.engine.generate(fault)
        assert cube is not None
        assert verify_cube(self.net, cube, fault)

    def test_pin_fault(self):
        fault = Fault("N1", 1, pin=("N2", 0))
        cube = self.engine.generate(fault)
        assert cube is not None
        assert verify_cube(self.net, cube, fault)

    def test_untestable_fault_returns_none(self):
        # Redundant logic: Y = OR(A, NOT(A)) is constant 1; sa1 on it is
        # untestable.
        redundant = parse_bench(
            """
            INPUT(A)
            OUTPUT(Y)
            NA = NOT(A)
            Y = OR(A, NA)
            """,
            name="red",
        )
        engine = PodemEngine(redundant)
        assert engine.generate(Fault("Y", 1)) is None
        # The complementary fault is testable.
        cube = engine.generate(Fault("Y", 0))
        assert cube is None or verify_cube(redundant, cube, Fault("Y", 0))
        # sa0 on a constant-1 net IS testable (any input works).
        assert engine.generate(Fault("Y", 0)) is not None


class TestS27:
    def test_full_campaign_on_s27(self, s27_netlist):
        faults = collapse_faults(s27_netlist)
        cubes, stats = atpg_campaign(s27_netlist, faults, backtrack_limit=100)
        # s27 is fully testable: the vast majority of faults get cubes.
        assert stats.detected >= int(0.9 * len(faults))
        rng = np.random.default_rng(0)
        for cube in cubes:
            assert verify_cube(s27_netlist, cube, cube.fault, rng=rng), str(
                cube.fault
            )


class TestGeneratedCircuit:
    def test_campaign_on_generated_circuit(self, small_netlist):
        faults = collapse_faults(small_netlist)
        rng = np.random.default_rng(4)
        picks = rng.choice(len(faults), size=25, replace=False)
        subset = [faults[i] for i in picks]
        cubes, stats = atpg_campaign(small_netlist, subset, backtrack_limit=150)
        assert stats.detected + stats.untestable == len(subset)
        assert stats.detected > 0
        for cube in cubes[:10]:
            assert verify_cube(small_netlist, cube, cube.fault, rng=rng), str(
                cube.fault
            )

    def test_atpg_beats_short_random_sessions(self, small_netlist):
        """PODEM should find tests for faults that 8 random patterns miss."""
        from repro.bist.patterns import fast_pattern_matrices

        compiled = CompiledCircuit(small_netlist)
        pi, ff = fast_pattern_matrices(
            compiled.num_inputs, compiled.num_scan_cells, 8, seed=1
        )
        good = compiled.simulate(pi, ff, 8)
        sim = FaultSimulator(compiled, good)
        faults = collapse_faults(small_netlist)
        missed = [f for f in faults if not sim.simulate_fault(f).detected][:10]
        assert missed, "expected some random-pattern misses"
        cubes, stats = atpg_campaign(small_netlist, missed, backtrack_limit=300)
        # Some of the missed faults are genuinely testable and PODEM finds
        # them (scan-cell-unobservable ones may legitimately fail).
        assert stats.detected >= 1
