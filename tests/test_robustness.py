"""Robustness and edge-case tests across subsystem boundaries."""

import numpy as np
import pytest

from repro.bist.golden import run_tester_session
from repro.bist.misr import LinearCompactor
from repro.bist.scan import ScanConfig
from repro.bist.session import collect_error_events
from repro.cli import diagnose_main
from repro.core.diagnosis import diagnose
from repro.core.selection_hw import SelectionHardware
from repro.core.two_step import make_partitioner
from repro.sim.bitops import pack_bits
from repro.sim.faults import Fault
from repro.sim.faultsim import FaultResponse


def make_response(cell_patterns, num_patterns=8):
    return FaultResponse(
        Fault("X", 0),
        {c: pack_bits([1 if p in pats else 0 for p in range(num_patterns)])
         for c, pats in cell_patterns.items()},
        num_patterns,
    )


class TestRaggedChains:
    """Chains of unequal length stress every position/cycle mapping."""

    def config(self):
        return ScanConfig([[0, 1, 2, 3, 4], [5, 6], [7, 8, 9]])

    def test_diagnosis_on_ragged_config(self):
        config = self.config()
        response = make_response({6: [1], 9: [3]})
        parts = make_partitioner("two-step", config.max_length, 2).partitions(3)
        result = diagnose(response, config, parts, LinearCompactor(24, 3))
        assert result.sound

    def test_events_respect_short_chains(self):
        config = self.config()
        response = make_response({6: [0]})
        events = collect_error_events(response, config)
        assert events == [(1, 1, 1)]  # chain 1, position 1, cycle 1

    def test_golden_flow_on_ragged_config(self):
        config = self.config()
        captured = np.vstack([pack_bits([1, 0, 1, 0]) for _ in range(10)])
        response = make_response({3: [2]}, num_patterns=4)
        mask = np.ones(config.max_length, dtype=bool)
        session = run_tester_session(captured, response, config, mask, 16)
        compactor = LinearCompactor(16, 3)
        events = collect_error_events(response, config)
        error_sig = compactor.error_signature(
            [(ch, cyc) for _p, ch, cyc in events], config.total_cycles(4)
        )
        assert (session.golden ^ session.observed) == error_sig


class TestDegenerateSizes:
    def test_single_cell_chain(self):
        config = ScanConfig.single_chain(1)
        response = make_response({0: [0]})
        parts = make_partitioner("deterministic", 1, 1).partitions(2)
        result = diagnose(response, config, parts, compactor=None)
        assert result.candidate_cells == {0}

    def test_two_cell_interval_partitions(self):
        parts = make_partitioner("interval", 2, 2).partitions(2)
        for part in parts:
            assert sum(part.group_sizes()) == 2

    def test_selection_hw_tiny_chain(self):
        hw = SelectionHardware(3, 2, mode="random")
        masks = hw.run_partition()
        stacked = np.vstack(masks)
        assert (stacked.sum(axis=0) == 1).all()

    def test_more_groups_than_cells_interval(self):
        parts = make_partitioner("interval", 3, 8).partitions(1)
        assert sum(parts[0].group_sizes()) == 3


class TestSelectionHardwareState:
    def test_interval_ivr_advances_between_partitions(self):
        hw = SelectionHardware(64, 8, mode="interval")
        first_seed = hw.ivr.value
        hw.run_partition()
        assert hw.ivr.value != first_seed

    def test_random_partitions_differ_across_runs(self):
        hw = SelectionHardware(64, 4, mode="random")
        a = hw.partition_from_masks(hw.run_partition())
        b = hw.partition_from_masks(hw.run_partition())
        assert not np.array_equal(a.group_of, b.group_of)


class TestCliMapFlag:
    def test_map_output(self, capsys):
        code = diagnose_main(["s953", "--faults", "2", "--map",
                              "--partitions", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "chain 0" in out
        assert "exonerated" in out  # legend printed
