"""Tests for the four partitioning schemes (random-selection, interval,
deterministic, two-step) and the scheme factory."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bist.lfsr import LFSR
from repro.core.deterministic import DeterministicPartitioner, fixed_interval_partition
from repro.core.interval import (
    IntervalPartitioner,
    default_length_bits,
    draw_interval_lengths,
    find_seed,
    intervals_to_partition,
    lengths_cover,
    lengths_cover_exactly,
)
from repro.core.partitions import PartitionError
from repro.core.random_selection import RandomSelectionPartitioner
from repro.core.two_step import TwoStepPartitioner, make_partitioner


class TestRandomSelection:
    def test_partition_covers_chain(self):
        part = RandomSelectionPartitioner(100, 8).next_partition()
        assert part.length == 100
        assert sum(part.group_sizes()) == 100

    def test_group_count_must_be_power_of_two(self):
        with pytest.raises(PartitionError):
            RandomSelectionPartitioner(10, 6)

    def test_successive_partitions_differ(self):
        gen = RandomSelectionPartitioner(200, 4)
        a, b = gen.partitions(2)
        assert not np.array_equal(a.group_of, b.group_of)

    def test_deterministic_given_seed(self):
        a = RandomSelectionPartitioner(50, 4, seed=99).next_partition()
        b = RandomSelectionPartitioner(50, 4, seed=99).next_partition()
        assert np.array_equal(a.group_of, b.group_of)

    def test_labels_reasonably_balanced(self):
        part = RandomSelectionPartitioner(4096, 4).next_partition()
        sizes = part.group_sizes()
        assert min(sizes) > 4096 // 4 * 0.7
        assert max(sizes) < 4096 // 4 * 1.3

    def test_more_label_bits_than_lfsr_rejected(self):
        with pytest.raises(PartitionError):
            RandomSelectionPartitioner(10, 256, lfsr_degree=4)

    def test_scheme_tag(self):
        part = RandomSelectionPartitioner(10, 2).next_partition()
        assert part.scheme == "random-selection"


class TestIntervalLengths:
    def test_default_length_bits_covers_in_expectation(self):
        for length, groups in [(29, 4), (211, 16), (6173, 32)]:
            bits = default_length_bits(length, groups)
            assert groups * (1 << (bits - 1)) >= length / 2

    def test_default_length_bits_validation(self):
        with pytest.raises(PartitionError):
            default_length_bits(0, 4)

    def test_draw_steps_once_per_interval(self):
        lfsr = LFSR(16, seed=0xB77)
        reference = LFSR(16, seed=0xB77)
        positions = reference.spread_stage_positions(4)
        lengths = draw_interval_lengths(lfsr, 5, 4)
        for expected in lengths:
            value = reference.peek_stages(positions)
            assert expected == (value if value else 16)
            reference.step()

    def test_zero_maps_to_max(self):
        # Stages 0, 4, 8, 12 all zero: the field reads 0 -> max length 16.
        lfsr = LFSR(16, seed=0b10)
        lengths = draw_interval_lengths(lfsr, 1, 4)
        assert lengths[0] == 16

    def test_cover_predicates(self):
        assert lengths_cover([5, 5], 10)
        assert not lengths_cover([4, 5], 10)
        assert lengths_cover_exactly([5, 6], 10)
        assert not lengths_cover_exactly([10, 6], 10)  # second group unused
        assert not lengths_cover_exactly([4, 5], 10)


class TestFindSeed:
    def test_found_seed_covers_exactly(self):
        seed = find_seed(97, 8)
        lfsr = LFSR(16, seed)
        lengths = draw_interval_lengths(lfsr, 8, default_length_bits(97, 8))
        assert lengths_cover_exactly(lengths, 97)

    def test_start_seed_respected(self):
        first = find_seed(97, 8)
        second = find_seed(97, 8, start_seed=first + 1)
        assert second > first

    def test_exhaustion_raises(self):
        with pytest.raises(PartitionError):
            # 1 group of at most 2 cells can never cover 1000 cells.
            find_seed(1000, 1, lfsr_degree=8, length_bits=1, max_tries=50)


class TestIntervalsToPartition:
    def test_truncates_last_interval(self):
        part = intervals_to_partition([4, 10], 8, 2)
        assert part.group_of.tolist() == [0, 0, 0, 0, 1, 1, 1, 1]

    def test_trailing_groups_empty(self):
        part = intervals_to_partition([5, 5], 8, 4)
        assert part.group_sizes() == [5, 3, 0, 0]

    def test_non_covering_raises(self):
        with pytest.raises(PartitionError):
            intervals_to_partition([2, 2], 8, 2)


class TestIntervalPartitioner:
    def test_partitions_are_intervals(self):
        gen = IntervalPartitioner(211, 16)
        for part in gen.partitions(3):
            assert part.is_interval_partition()
            assert sum(part.group_sizes()) == 211

    def test_successive_partitions_use_new_seeds(self):
        gen = IntervalPartitioner(100, 8)
        gen.partitions(3)
        assert len(set(gen.used_seeds)) == 3

    def test_group_indices_monotone_along_chain(self):
        part = IntervalPartitioner(150, 8).next_partition()
        diffs = np.diff(part.group_of)
        assert (diffs >= 0).all()


class TestDeterministic:
    def test_fixed_intervals_equal_sizes(self):
        part = fixed_interval_partition(16, 4)
        assert part.group_sizes() == [4, 4, 4, 4]
        assert part.is_interval_partition()

    def test_boundary_group_short(self):
        part = fixed_interval_partition(10, 4)
        assert sum(part.group_sizes()) == 10
        assert max(part.group_sizes()) == 3

    def test_rotation_moves_boundaries(self):
        gen = DeterministicPartitioner(16, 4)
        a, b = gen.partitions(2)
        assert not np.array_equal(a.group_of, b.group_of)

    def test_invalid_args(self):
        with pytest.raises(PartitionError):
            fixed_interval_partition(0, 4)


class TestTwoStep:
    def test_first_partition_interval_then_random(self):
        gen = TwoStepPartitioner(100, 8, num_interval_partitions=1)
        parts = gen.partitions(4)
        assert parts[0].scheme == "interval"
        assert parts[0].is_interval_partition()
        for part in parts[1:]:
            assert part.scheme == "random-selection"

    def test_multiple_interval_partitions(self):
        gen = TwoStepPartitioner(100, 8, num_interval_partitions=3)
        parts = gen.partitions(5)
        assert [p.scheme for p in parts[:3]] == ["interval"] * 3
        assert [p.scheme for p in parts[3:]] == ["random-selection"] * 2

    def test_zero_interval_partitions_degenerates_to_random(self):
        gen = TwoStepPartitioner(100, 8, num_interval_partitions=0)
        assert gen.next_partition().scheme == "random-selection"

    def test_negative_rejected(self):
        with pytest.raises(PartitionError):
            TwoStepPartitioner(100, 8, num_interval_partitions=-1)


class TestFactory:
    @pytest.mark.parametrize(
        "scheme,expected_type",
        [
            ("interval", IntervalPartitioner),
            ("random", RandomSelectionPartitioner),
            ("two-step", TwoStepPartitioner),
            ("deterministic", DeterministicPartitioner),
        ],
    )
    def test_schemes(self, scheme, expected_type):
        gen = make_partitioner(scheme, 64, 8)
        assert isinstance(gen, expected_type)
        part = gen.next_partition()
        assert part.length == 64

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            make_partitioner("magic", 64, 8)


@settings(max_examples=20, deadline=None)
@given(
    length=st.integers(8, 400),
    groups_exp=st.integers(1, 5),
    scheme=st.sampled_from(["interval", "random", "two-step", "deterministic"]),
)
def test_all_schemes_produce_valid_covers(length, groups_exp, scheme):
    num_groups = 1 << groups_exp
    gen = make_partitioner(scheme, length, num_groups)
    for part in gen.partitions(2):
        assert part.length == length
        assert sum(part.group_sizes()) == length
