"""Equivalence tests for the population-fused diagnosis kernel (PR 9).

The fused kernel is a pure optimization: for any chunk size, worker
count, compactor and channel-resolution setting it must return
bit-identical :class:`DiagnosisResult` objects to the per-fault
:func:`repro.core.diagnosis.diagnose` oracle.
"""

import numpy as np
import pytest

from repro.bist.misr import LinearCompactor
from repro.bist.scan import ScanConfig
from repro.bist.session import collect_error_event_arrays, collect_population_events
from repro.core.diagnosis import diagnose, diagnostic_resolution
from repro.core.diagnosis_batch import (
    DEFAULT_CHUNK,
    diagnose_population,
    resolve_diagnosis_chunk,
)
from repro.core.two_step import make_partitioner
from repro.core.vector_diagnosis import (
    diagnose_vectors,
    diagnose_vectors_population,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import build_circuit_workload, scheme_partitions
from repro.sim.bitops import pack_bits
from repro.sim.faults import Fault
from repro.sim.faultsim import FaultResponse

#: s27 is a real netlist (cannot be scaled); the synthetic benchmarks run
#: shrunk so the three-circuit sweep stays fast.
CONFIGS = {
    "s27": ExperimentConfig(num_faults=12, num_faults_large=6),
    "s953": ExperimentConfig(num_faults=16, num_faults_large=8, scale=0.3),
    "s5378": ExperimentConfig(num_faults=12, num_faults_large=6, scale=0.15),
}
CIRCUITS = tuple(CONFIGS)


def circuit_population(circuit):
    config = CONFIGS[circuit]
    workload = build_circuit_workload(circuit, config)
    partitions = scheme_partitions(
        "two-step", workload.scan_config.max_length, 4, 5,
        lfsr_degree=config.lfsr_degree,
    )
    return workload, partitions, config


def make_compactor(kind, config, num_chains):
    return None if kind == "exact" else LinearCompactor(
        config.misr_width, num_chains
    )


def assert_results_identical(oracle, fused):
    assert len(oracle) == len(fused)
    for a, b in zip(oracle, fused):
        assert a.actual_cells == b.actual_cells
        assert a.candidate_cells == b.candidate_cells
        assert a.candidate_history == b.candidate_history
        np.testing.assert_array_equal(a.position_mask, b.position_mask)
        assert len(a.outcomes) == len(b.outcomes)
        for oa, ob in zip(a.outcomes, b.outcomes):
            assert oa.signatures == ob.signatures


def random_response(rng, num_cells, num_patterns, max_cells=5):
    n_cells = int(rng.integers(1, max_cells + 1))
    cells = rng.choice(num_cells, n_cells, replace=False)
    cell_errors = {}
    for cell in cells:
        n_pats = int(rng.integers(1, min(num_patterns, 8)))
        pats = {int(p) for p in rng.choice(num_patterns, n_pats, replace=False)}
        cell_errors[int(cell)] = pack_bits(
            [1 if p in pats else 0 for p in range(num_patterns)]
        )
    return FaultResponse(Fault("X", 0), cell_errors, num_patterns)


class TestPopulationEvents:
    """The one-nonzero extractor must slice back to per-fault events."""

    @pytest.mark.parametrize("circuit", CIRCUITS)
    def test_per_fault_slices_match_single_extraction(self, circuit):
        workload, _, _ = circuit_population(circuit)
        population = collect_population_events(
            workload.responses, workload.scan_config
        )
        assert population.num_faults == len(workload.responses)
        for f, response in enumerate(workload.responses):
            single = collect_error_event_arrays(response, workload.scan_config)
            sliced = population.fault_events(f)
            np.testing.assert_array_equal(sliced.positions, single.positions)
            np.testing.assert_array_equal(sliced.channels, single.channels)
            np.testing.assert_array_equal(sliced.cycles, single.cycles)

    def test_empty_population(self):
        config = ScanConfig.single_chain(6)
        population = collect_population_events([], config)
        assert population.num_faults == 0
        assert len(population.events) == 0


class TestFusedEquivalence:
    @pytest.mark.parametrize("compactor_kind", ["exact", "misr"])
    @pytest.mark.parametrize("circuit", CIRCUITS)
    def test_matches_per_fault_oracle(self, circuit, compactor_kind):
        workload, partitions, config = circuit_population(circuit)
        compactor = make_compactor(
            compactor_kind, config, workload.scan_config.num_chains
        )
        oracle = [
            diagnose(r, workload.scan_config, partitions, compactor)
            for r in workload.responses
        ]
        fused = diagnose_population(
            workload.responses, workload.scan_config, partitions, compactor,
            workers=0,
        )
        assert_results_identical(oracle, fused)
        assert diagnostic_resolution(oracle) == diagnostic_resolution(fused)

    @pytest.mark.parametrize("compactor_kind", ["exact", "misr"])
    def test_channel_resolution_off(self, rng, compactor_kind):
        config = ScanConfig.balanced(36, 3)
        responses = [random_response(rng, 36, 16) for _ in range(8)]
        partitions = make_partitioner("two-step", config.max_length, 4).partitions(4)
        compactor = make_compactor(
            compactor_kind, ExperimentConfig(), config.num_chains
        )
        oracle = [
            diagnose(r, config, partitions, compactor, channel_resolution=False)
            for r in responses
        ]
        fused = diagnose_population(
            responses, config, partitions, compactor,
            channel_resolution=False, workers=0,
        )
        assert_results_identical(oracle, fused)

    def test_chunked_matches_unchunked(self):
        workload, partitions, config = circuit_population("s953")
        compactor = make_compactor("misr", config, workload.scan_config.num_chains)
        whole = diagnose_population(
            workload.responses, workload.scan_config, partitions, compactor,
            chunk=1000, workers=0,
        )
        for chunk in (1, 3, 7):
            chunked = diagnose_population(
                workload.responses, workload.scan_config, partitions, compactor,
                chunk=chunk, workers=0,
            )
            assert_results_identical(whole, chunked)

    def test_forked_matches_serial(self):
        workload, partitions, config = circuit_population("s953")
        compactor = make_compactor("misr", config, workload.scan_config.num_chains)
        serial = diagnose_population(
            workload.responses, workload.scan_config, partitions, compactor,
            chunk=3, workers=0,
        )
        forked = diagnose_population(
            workload.responses, workload.scan_config, partitions, compactor,
            chunk=3, workers=2,
        )
        assert_results_identical(serial, forked)

    def test_empty_population(self):
        workload, partitions, _ = circuit_population("s27")
        assert diagnose_population(
            [], workload.scan_config, partitions, None
        ) == []

    def test_undetected_fault_in_population(self):
        workload, partitions, config = circuit_population("s27")
        compactor = make_compactor("misr", config, workload.scan_config.num_chains)
        silent = FaultResponse(Fault("silent", 0), {}, workload.num_patterns)
        population = [silent] + list(workload.responses) + [silent]
        oracle = [
            diagnose(r, workload.scan_config, partitions, compactor)
            for r in population
        ]
        fused = diagnose_population(
            population, workload.scan_config, partitions, compactor, workers=0
        )
        assert_results_identical(oracle, fused)
        assert not fused[0].detected
        assert fused[0].candidate_history[-1] == 0

    def test_scalar_only_compactor_falls_back(self):
        workload, partitions, config = circuit_population("s27")
        inner = LinearCompactor(config.misr_width, workload.scan_config.num_chains)

        class ScalarOnly:
            def compact(self, *args, **kwargs):
                return inner.compact(*args, **kwargs)

            def impulse_response(self, channel, steps):
                return inner.impulse_response(channel, steps)

        fused = diagnose_population(
            workload.responses, workload.scan_config, partitions, ScalarOnly(),
            workers=0,
        )
        oracle = [
            diagnose(r, workload.scan_config, partitions, inner)
            for r in workload.responses
        ]
        for a, b in zip(oracle, fused):
            assert a.candidate_cells == b.candidate_cells
            assert a.candidate_history == b.candidate_history

    def test_mixed_pattern_counts_fall_back(self, rng):
        config = ScanConfig.single_chain(20)
        partitions = make_partitioner("two-step", config.max_length, 4).partitions(3)
        responses = [
            random_response(rng, 20, 16),
            random_response(rng, 20, 32),
        ]
        fused = diagnose_population(responses, config, partitions, None, workers=0)
        oracle = [diagnose(r, config, partitions, None) for r in responses]
        assert_results_identical(oracle, fused)

    def test_env_zero_selects_per_fault_path(self, monkeypatch):
        workload, partitions, _ = circuit_population("s27")
        monkeypatch.setenv("REPRO_DIAGNOSIS_BATCH", "0")
        via_env = diagnose_population(
            workload.responses, workload.scan_config, partitions, None, workers=0
        )
        monkeypatch.delenv("REPRO_DIAGNOSIS_BATCH")
        fused = diagnose_population(
            workload.responses, workload.scan_config, partitions, None, workers=0
        )
        assert_results_identical(via_env, fused)


class TestFusedVectorDiagnosis:
    def vector_setup(self, rng, num_patterns=24):
        config = ScanConfig.balanced(30, 2)
        responses = [random_response(rng, 30, num_patterns) for _ in range(9)]
        partitions = make_partitioner("two-step", num_patterns, 4).partitions(4)
        return config, responses, partitions

    @pytest.mark.parametrize("compactor_kind", ["exact", "misr"])
    def test_matches_per_fault_loop(self, rng, compactor_kind):
        config, responses, partitions = self.vector_setup(rng)
        compactor = make_compactor(
            compactor_kind, ExperimentConfig(), config.num_chains
        )
        oracle = [
            diagnose_vectors(r, config, partitions, compactor) for r in responses
        ]
        for chunk in (None, 2, 1000):
            fused = diagnose_vectors_population(
                responses, config, partitions, compactor, chunk=chunk
            )
            for a, b in zip(oracle, fused):
                assert a.actual_vectors == b.actual_vectors
                assert a.candidate_vectors == b.candidate_vectors
                assert a.candidate_history == b.candidate_history

    def test_undetected_fault(self, rng):
        config, responses, partitions = self.vector_setup(rng)
        silent = FaultResponse(Fault("silent", 0), {}, responses[0].num_patterns)
        fused = diagnose_vectors_population(
            [silent] + responses, config, partitions, None
        )
        assert not fused[0].detected
        assert fused[0].candidate_vectors == set()

    def test_empty_population(self, rng):
        config, _, partitions = self.vector_setup(rng)
        assert diagnose_vectors_population([], config, partitions, None) == []


class TestResolveDiagnosisChunk:
    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_DIAGNOSIS_BATCH", raising=False)
        assert resolve_diagnosis_chunk() == DEFAULT_CHUNK

    def test_zero_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_DIAGNOSIS_BATCH", "0")
        assert resolve_diagnosis_chunk() == 0

    def test_negative_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_DIAGNOSIS_BATCH", "-4")
        assert resolve_diagnosis_chunk() == 0

    def test_explicit_size(self, monkeypatch):
        monkeypatch.setenv("REPRO_DIAGNOSIS_BATCH", "17")
        assert resolve_diagnosis_chunk() == 17

    def test_argument_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_DIAGNOSIS_BATCH", "17")
        assert resolve_diagnosis_chunk(8) == 8
        assert resolve_diagnosis_chunk(0) == 0

    def test_garbage_env_falls_back_to_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_DIAGNOSIS_BATCH", "banana")
        assert resolve_diagnosis_chunk() == DEFAULT_CHUNK

    def test_garbage_env_warns_once(self, monkeypatch, capsys):
        import importlib

        # repro.telemetry re-exports the log *function* under the submodule
        # name, so attribute-style imports resolve to the function — go
        # through importlib to reach the module that owns _WARNED_ENV.
        telemetry_log = importlib.import_module("repro.telemetry.log")

        monkeypatch.setenv("REPRO_LOG", "info")
        monkeypatch.setenv("REPRO_DIAGNOSIS_BATCH", "banana")
        monkeypatch.setattr(telemetry_log, "_WARNED_ENV", set())
        assert resolve_diagnosis_chunk() == DEFAULT_CHUNK
        err = capsys.readouterr().err
        assert "REPRO_DIAGNOSIS_BATCH" in err and "'banana'" in err
        # The warning names the bad value exactly once per process.
        assert resolve_diagnosis_chunk() == DEFAULT_CHUNK
        assert capsys.readouterr().err == ""
