"""Tests for superposition-based pruning."""

import numpy as np
import pytest

from repro.bist.misr import LinearCompactor
from repro.bist.scan import ScanConfig
from repro.core.diagnosis import diagnose
from repro.core.superposition import apply_superposition, superposition_prune
from repro.core.two_step import make_partitioner
from repro.sim.bitops import pack_bits
from repro.sim.faults import Fault
from repro.sim.faultsim import FaultResponse


def make_response(cell_patterns, num_patterns=8):
    cell_errors = {
        cell: pack_bits([1 if p in pats else 0 for p in range(num_patterns)])
        for cell, pats in cell_patterns.items()
    }
    return FaultResponse(Fault("X", 0), cell_errors, num_patterns)


def run(response, config, scheme="random", groups=4, count=3, width=24):
    parts = make_partitioner(scheme, config.max_length, groups).partitions(count)
    compactor = LinearCompactor(width, config.num_chains)
    return diagnose(response, config, parts, compactor)


class TestPruning:
    def test_prunes_hitchhiker_cells(self, rng):
        """A cell that happens to share a failing group with the true
        failing cell in every partition survives intersection but is
        eliminated by a derived zero signature."""
        config = ScanConfig.single_chain(64)
        response = make_response({10: [0, 2], 40: [1, 5]})
        result = run(response, config, count=2)
        pruned = apply_superposition(result, config)
        assert pruned.candidate_cells <= result.candidate_cells
        assert pruned.sound

    def test_never_grows_candidates(self, rng):
        config = ScanConfig.single_chain(80)
        for seed in range(5):
            local = np.random.default_rng(seed)
            response = make_response(
                {int(c): [int(local.integers(0, 8))]
                 for c in local.choice(80, 4, replace=False)}
            )
            result = run(response, config, scheme="two-step", count=3)
            pruned = apply_superposition(result, config)
            assert pruned.candidate_cells <= result.candidate_cells

    def test_sound_at_width_24(self, rng):
        config = ScanConfig.single_chain(100)
        for seed in range(8):
            local = np.random.default_rng(100 + seed)
            response = make_response(
                {int(c): [int(p) for p in local.choice(8, 2, replace=False)]
                 for c in local.choice(100, 6, replace=False)}
            )
            result = run(response, config, scheme="two-step", groups=8, count=4)
            pruned = apply_superposition(result, config)
            assert pruned.sound

    def test_multi_chain_pruning_stays_per_channel(self, rng):
        config = ScanConfig.balanced(40, 4)
        response = make_response({5: [0], 25: [3]})
        result = run(response, config, scheme="two-step", count=3)
        pruned = apply_superposition(result, config)
        assert pruned.sound
        assert pruned.candidate_cells <= result.candidate_cells


class TestHandCrafted:
    def test_identical_failing_groups_prune_difference(self):
        """Two failing sessions observing the same single failing cell have
        equal signatures; everything in their symmetric difference must be
        pruned."""
        config = ScanConfig.single_chain(8)
        response = make_response({3: [0]})
        from repro.core.partitions import Partition

        p1 = Partition(np.array([0, 0, 0, 0, 1, 1, 1, 1]), 2)
        p2 = Partition(np.array([1, 1, 0, 0, 0, 0, 1, 1]), 2)
        compactor = LinearCompactor(16, 1)
        result = diagnose(response, config, [p1, p2], compactor)
        # Intersection keeps positions {2, 3} (both failing groups).
        assert result.candidate_cells == {2, 3}
        pruned = apply_superposition(result, config)
        # Derived signature of {0,1} ∪ {4,5} is zero -> already outside the
        # mask; the informative pair is (group0 of p1, group0 of p2) whose
        # difference {0,1,4,5} is error-free.  Cell 2 is in neither failing
        # group's difference, so it can only be removed if some failing
        # pair separates 2 from 3 — here none does.
        assert pruned.candidate_cells == {2, 3}

    def test_separating_pair_removes_cell(self):
        config = ScanConfig.single_chain(8)
        response = make_response({3: [0]})
        from repro.core.partitions import Partition

        p1 = Partition(np.array([0, 0, 0, 0, 1, 1, 1, 1]), 2)
        p2 = Partition(np.array([1, 1, 0, 0, 0, 0, 1, 1]), 2)
        p3 = Partition(np.array([0, 1, 0, 1, 0, 1, 0, 1]), 2)
        compactor = LinearCompactor(16, 1)
        result = diagnose(response, config, [p1, p2, p3], compactor)
        assert result.candidate_cells == {3}

    def test_exact_mode_rejected(self):
        config = ScanConfig.single_chain(16)
        response = make_response({3: [0]})
        parts = make_partitioner("random", 16, 4).partitions(2)
        result = diagnose(response, config, parts, compactor=None)
        with pytest.raises(ValueError, match="MISR signatures"):
            apply_superposition(result, config)

    def test_missing_mask_rejected(self):
        from repro.core.diagnosis import DiagnosisResult

        result = DiagnosisResult(set(), set(), [], [], position_mask=None)
        with pytest.raises(ValueError, match="position mask"):
            apply_superposition(result, ScanConfig.single_chain(4))
