"""Tests for failing test-vector identification (extension after [4])."""

import numpy as np
import pytest

from repro.bist.misr import LinearCompactor
from repro.bist.scan import ScanConfig
from repro.core.two_step import make_partitioner
from repro.core.vector_diagnosis import (
    diagnose_vectors,
    failing_vectors,
    vector_diagnostic_resolution,
)
from repro.sim.bitops import pack_bits
from repro.sim.faults import Fault
from repro.sim.faultsim import FaultResponse

NUM_PATTERNS = 32


def make_response(cell_patterns):
    cell_errors = {
        cell: pack_bits([1 if p in pats else 0 for p in range(NUM_PATTERNS)])
        for cell, pats in cell_patterns.items()
    }
    return FaultResponse(Fault("X", 0), cell_errors, NUM_PATTERNS)


class TestFailingVectors:
    def test_union_over_cells(self):
        response = make_response({0: [1, 5], 3: [5, 9]})
        assert failing_vectors(response) == {1, 5, 9}

    def test_empty(self):
        assert failing_vectors(make_response({})) == set()


class TestDiagnoseVectors:
    def vector_partitions(self, scheme="random", groups=4, count=3):
        return make_partitioner(scheme, NUM_PATTERNS, groups).partitions(count)

    def test_soundness_exact(self, rng):
        config = ScanConfig.single_chain(20)
        for seed in range(6):
            local = np.random.default_rng(seed)
            response = make_response(
                {int(c): [int(p) for p in local.choice(NUM_PATTERNS, 3,
                                                       replace=False)]
                 for c in local.choice(20, 3, replace=False)}
            )
            result = diagnose_vectors(
                response, config, self.vector_partitions(), compactor=None
            )
            assert result.sound
            assert result.detected

    def test_candidates_shrink_with_partitions(self):
        config = ScanConfig.single_chain(10)
        response = make_response({2: [7], 5: [7, 20]})
        result = diagnose_vectors(
            response, config, self.vector_partitions(count=5), compactor=None
        )
        history = result.candidate_history
        assert all(a >= b for a, b in zip(history, history[1:]))
        assert result.candidate_vectors >= {7, 20}

    def test_compactor_agrees_with_exact(self, rng):
        config = ScanConfig.single_chain(16)
        response = make_response(
            {int(c): [int(rng.integers(0, NUM_PATTERNS))]
             for c in rng.choice(16, 4, replace=False)}
        )
        parts = self.vector_partitions("two-step", count=4)
        exact = diagnose_vectors(response, config, parts, None)
        real = diagnose_vectors(response, config, parts, LinearCompactor(24, 1))
        assert exact.candidate_vectors == real.candidate_vectors

    def test_partition_length_mismatch(self):
        config = ScanConfig.single_chain(10)
        bad_parts = make_partitioner("random", 16, 4).partitions(1)
        with pytest.raises(ValueError, match="number of patterns"):
            diagnose_vectors(make_response({1: [0]}), config, bad_parts)

    def test_multi_chain_events_aggregate(self):
        config = ScanConfig.balanced(12, 3)
        response = make_response({1: [4], 10: [4]})
        result = diagnose_vectors(
            response, config, self.vector_partitions(count=4), compactor=None
        )
        assert result.actual_vectors == {4}
        assert 4 in result.candidate_vectors


class TestVectorDR:
    def test_formula(self):
        from repro.core.vector_diagnosis import VectorDiagnosisResult

        results = [
            VectorDiagnosisResult({1}, {1, 2}),
            VectorDiagnosisResult({3, 4}, {3, 4}),
        ]
        assert vector_diagnostic_resolution(results) == pytest.approx(1 / 3)

    def test_all_undetected_raises(self):
        from repro.core.vector_diagnosis import VectorDiagnosisResult

        with pytest.raises(ValueError):
            vector_diagnostic_resolution([VectorDiagnosisResult(set(), set())])
