"""Tests for the chain-map visualization."""

from repro.bist.scan import ScanConfig
from repro.core.chainmap import chain_map, legend
from repro.core.diagnosis import DiagnosisResult


def make_result(actual, candidates):
    return DiagnosisResult(
        actual_cells=set(actual),
        candidate_cells=set(candidates),
        outcomes=[],
        partitions=[],
    )


class TestChainMap:
    def test_glyph_semantics(self):
        config = ScanConfig.single_chain(4)
        result = make_result({0, 1}, {1, 2})
        text = chain_map(result, config)
        # cell0 failing+pruned '!', cell1 failing+candidate '#',
        # cell2 false candidate '+', cell3 exonerated '.'
        assert "|!#+.|" in text
        assert "UNSOUND" in text

    def test_sound_summary(self):
        config = ScanConfig.single_chain(3)
        text = chain_map(make_result({1}, {1, 2}), config)
        assert "sound" in text and "UNSOUND" not in text

    def test_multi_chain_rows(self):
        config = ScanConfig([[0, 1], [2, 3]])
        text = chain_map(make_result({3}, {3}), config)
        assert "chain 0" in text and "chain 1" in text

    def test_wrapping(self):
        config = ScanConfig.single_chain(100)
        text = chain_map(make_result(set(), set()), config, width=40)
        body_lines = [l for l in text.splitlines() if "|" in l]
        assert len(body_lines) == 3  # 40 + 40 + 20

    def test_legend_mentions_glyphs(self):
        text = legend()
        for glyph in "#!+.":
            assert glyph in text
