"""Tests for the partition abstraction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partitions import (
    Partition,
    PartitionError,
    candidate_positions,
    validate_partition_set,
)


class TestValidation:
    def test_valid(self):
        part = Partition(np.array([0, 1, 0, 2]), 3)
        assert part.length == 4
        assert part.num_groups == 3

    def test_empty_rejected(self):
        with pytest.raises(PartitionError):
            Partition(np.array([], dtype=np.int32), 1)

    def test_out_of_range_group(self):
        with pytest.raises(PartitionError):
            Partition(np.array([0, 3]), 3)

    def test_negative_group(self):
        with pytest.raises(PartitionError):
            Partition(np.array([0, -1]), 2)

    def test_zero_groups(self):
        with pytest.raises(PartitionError):
            Partition(np.array([0]), 0)

    def test_2d_rejected(self):
        with pytest.raises(PartitionError):
            Partition(np.zeros((2, 2)), 1)


class TestQueries:
    def test_members(self):
        part = Partition(np.array([0, 1, 0, 2, 1]), 3)
        assert part.members(0).tolist() == [0, 2]
        assert part.members(1).tolist() == [1, 4]
        assert part.members(2).tolist() == [3]

    def test_group_sizes_with_empty_group(self):
        part = Partition(np.array([0, 0, 2]), 4)
        assert part.group_sizes() == [2, 0, 1, 0]

    def test_is_interval_partition(self):
        assert Partition(np.array([0, 0, 1, 2, 2]), 3).is_interval_partition()
        assert not Partition(np.array([0, 1, 0]), 2).is_interval_partition()
        # Empty trailing groups are still intervals.
        assert Partition(np.array([0, 0, 1]), 5).is_interval_partition()

    def test_as_intervals(self):
        part = Partition(np.array([0, 0, 1, 1, 1, 3]), 4)
        assert part.as_intervals() == [(0, 0, 2), (1, 2, 5), (3, 5, 6)]


class TestPartitionSet:
    def test_lengths_must_match(self):
        a = Partition(np.array([0, 1]), 2)
        b = Partition(np.array([0, 1, 0]), 2)
        with pytest.raises(PartitionError):
            validate_partition_set([a, b])

    def test_empty_set_rejected(self):
        with pytest.raises(PartitionError):
            validate_partition_set([])


class TestCandidatePositions:
    def test_intersection(self):
        p1 = Partition(np.array([0, 0, 1, 1]), 2)
        p2 = Partition(np.array([0, 1, 0, 1]), 2)
        mask = candidate_positions([p1, p2], [[0], [1]])
        # Survives: group 0 of p1 (positions 0,1) AND group 1 of p2 (1,3).
        assert mask.tolist() == [False, True, False, False]

    def test_no_failing_groups_empties_candidates(self):
        p1 = Partition(np.array([0, 1]), 2)
        mask = candidate_positions([p1], [[]])
        assert not mask.any()

    def test_misaligned_failing_groups(self):
        p1 = Partition(np.array([0, 1]), 2)
        with pytest.raises(PartitionError):
            candidate_positions([p1], [[0], [1]])


@settings(max_examples=30, deadline=None)
@given(
    length=st.integers(1, 80),
    num_groups=st.integers(1, 8),
    seed=st.integers(0, 2**16),
)
def test_groups_partition_the_positions(length, num_groups, seed):
    group_of = np.random.default_rng(seed).integers(0, num_groups, length)
    part = Partition(group_of, num_groups)
    union = np.concatenate([part.members(g) for g in range(num_groups)])
    assert sorted(union.tolist()) == list(range(length))
    assert sum(part.group_sizes()) == length
