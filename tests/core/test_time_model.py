"""Tests for the diagnosis-time model."""

import pytest

from repro.bist.scan import ScanConfig
from repro.core.diagnosis import DiagnosisResult
from repro.core.time_model import (
    TimeEstimate,
    adaptive_cycles,
    campaign_cycles,
    cycles_to_reach_dr,
    session_cycles,
)


def result_with_history(history, actual=1):
    return DiagnosisResult(
        actual_cells=set(range(actual)),
        candidate_cells=set(range(history[-1])),
        outcomes=[],
        partitions=[],
        candidate_history=list(history),
    )


class TestCycleCounts:
    def test_session_cycles(self):
        config = ScanConfig.single_chain(10)
        # (patterns + 1) * L + patterns = 5*10 + 4
        assert session_cycles(config, 4) == 54

    def test_session_cycles_multi_chain_uses_longest(self):
        config = ScanConfig([[0, 1, 2], [3]])
        assert session_cycles(config, 4) == 5 * 3 + 4

    def test_campaign_scales_linearly(self):
        config = ScanConfig.single_chain(10)
        one = campaign_cycles(1, 1, config, 4)
        assert campaign_cycles(3, 8, config, 4) == 24 * one

    def test_adaptive_includes_resync(self):
        config = ScanConfig.single_chain(10)
        base = session_cycles(config, 4)
        assert adaptive_cycles(5, config, 4, resync_cycles=100) == 5 * (base + 100)


class TestTimeEstimate:
    def test_seconds(self):
        est = TimeEstimate(cycles=50_000_000, clock_hz=50e6)
        assert est.seconds == pytest.approx(1.0)


class TestCyclesToReachDr:
    def test_reached(self):
        config = ScanConfig.single_chain(10)
        results = [result_with_history([5, 3, 1])]
        cycles = cycles_to_reach_dr(results, 2.0, 4, config, 8, 3)
        assert cycles == campaign_cycles(2, 4, config, 8)

    def test_not_reached(self):
        config = ScanConfig.single_chain(10)
        results = [result_with_history([5, 5, 5])]
        assert cycles_to_reach_dr(results, 0.5, 4, config, 8, 3) is None
