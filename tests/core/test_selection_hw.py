"""Cycle-accurate selection hardware vs the functional partitioners.

This is the Fig. 1 equivalence check: the mask stream produced by the
register-level model must select exactly the cells the functional
partitioner assigns to each group, for every session of every partition.
"""

import numpy as np
import pytest

from repro.core.interval import IntervalPartitioner
from repro.core.partitions import PartitionError
from repro.core.random_selection import RandomSelectionPartitioner
from repro.core.selection_hw import SelectionHardware


class TestRandomMode:
    @pytest.mark.parametrize("length,groups", [(29, 4), (97, 8), (211, 16)])
    def test_matches_functional_partitioner(self, length, groups):
        hw = SelectionHardware(length, groups, mode="random", seed=0x5EED)
        fn = RandomSelectionPartitioner(length, groups, seed=0x5EED)
        for _ in range(4):
            masks = hw.run_partition()
            assert np.array_equal(
                hw.partition_from_masks(masks).group_of,
                fn.next_partition().group_of,
            )

    def test_masks_are_disjoint_cover(self):
        hw = SelectionHardware(64, 8, mode="random")
        masks = hw.run_partition()
        stacked = np.vstack(masks)
        assert (stacked.sum(axis=0) == 1).all()

    def test_session_mask_repeatable_within_partition(self):
        # The LFSR reloads from the IVR at each unload: the same session
        # must select the same cells for every pattern.
        hw = SelectionHardware(50, 4, mode="random")
        first = hw.unload_mask(2)
        second = hw.unload_mask(2)
        assert np.array_equal(first, second)

    def test_power_of_two_groups_required(self):
        with pytest.raises(PartitionError):
            SelectionHardware(10, 6, mode="random")


class TestIntervalMode:
    @pytest.mark.parametrize("length,groups", [(29, 4), (97, 8), (211, 16)])
    def test_matches_functional_partitioner(self, length, groups):
        hw = SelectionHardware(length, groups, mode="interval")
        fn = IntervalPartitioner(length, groups)
        for _ in range(3):
            masks = hw.run_partition()
            assert np.array_equal(
                hw.partition_from_masks(masks).group_of,
                fn.next_partition().group_of,
            )

    def test_sessions_select_consecutive_runs(self):
        hw = SelectionHardware(100, 8, mode="interval")
        masks = hw.run_partition()
        for mask in masks:
            positions = np.flatnonzero(mask)
            if positions.size:
                assert (np.diff(positions) == 1).all()

    def test_paper_example_semantics(self):
        """The Section 2.2 worked example: lengths 5, 6, 3, 2 on a 16-cell
        chain select cells 0-4, 5-10, 11-13, 14-15 in sessions 0..3."""
        # Find a seed whose 3 tapped bits produce the example's lengths.
        from repro.bist.lfsr import LFSR

        from repro.core.interval import draw_interval_lengths

        target = [5, 6, 3, 2]
        seed = None
        for candidate in range(1, 1 << 16):
            if draw_interval_lengths(LFSR(16, candidate), 4, 3) == target:
                seed = candidate
                break
        assert seed is not None, "no seed generates the example lengths"
        hw = SelectionHardware(16, 4, mode="interval", seed=seed, length_bits=3)
        masks = [hw.unload_mask(g) for g in range(4)]
        assert np.flatnonzero(masks[0]).tolist() == [0, 1, 2, 3, 4]
        assert np.flatnonzero(masks[1]).tolist() == [5, 6, 7, 8, 9, 10]
        assert np.flatnonzero(masks[2]).tolist() == [11, 12, 13]
        assert np.flatnonzero(masks[3]).tolist() == [14, 15]


class TestValidation:
    def test_bad_mode(self):
        with pytest.raises(ValueError):
            SelectionHardware(10, 2, mode="magic")

    def test_bad_length(self):
        with pytest.raises(PartitionError):
            SelectionHardware(0, 2)

    def test_overlapping_masks_rejected(self):
        hw = SelectionHardware(10, 2, mode="random")
        full = np.ones(10, dtype=bool)
        with pytest.raises(PartitionError, match="overlap"):
            hw.partition_from_masks([full, full])

    def test_uncovered_masks_rejected(self):
        hw = SelectionHardware(10, 2, mode="random")
        empty = np.zeros(10, dtype=bool)
        with pytest.raises(PartitionError, match="cover"):
            hw.partition_from_masks([empty, empty])
