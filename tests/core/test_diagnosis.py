"""Tests for the diagnosis engine: soundness, monotonicity, DR metric."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bist.misr import LinearCompactor
from repro.bist.scan import ScanConfig
from repro.core.diagnosis import (
    DiagnosisResult,
    diagnose,
    diagnostic_resolution,
    dr_by_partition_count,
    partitions_to_reach_dr,
)
from repro.core.two_step import make_partitioner
from repro.sim.bitops import pack_bits
from repro.sim.faults import Fault
from repro.sim.faultsim import FaultResponse


def make_response(cell_patterns, num_patterns=8):
    cell_errors = {
        cell: pack_bits([1 if p in pats else 0 for p in range(num_patterns)])
        for cell, pats in cell_patterns.items()
    }
    return FaultResponse(Fault("X", 0), cell_errors, num_patterns)


def partitions_for(scheme, length, groups, count):
    return make_partitioner(scheme, length, groups).partitions(count)


class TestSoundness:
    """Every truly failing cell stays a candidate (exact comparison)."""

    @settings(max_examples=25, deadline=None)
    @given(
        scheme=st.sampled_from(["random", "interval", "two-step", "deterministic"]),
        length=st.integers(10, 120),
        seed=st.integers(0, 2**16),
        num_partitions=st.integers(1, 6),
    )
    def test_exact_mode_never_misses(self, scheme, length, seed, num_partitions):
        rng = np.random.default_rng(seed)
        config = ScanConfig.single_chain(length)
        n_fail = int(rng.integers(1, min(8, length)))
        failing = rng.choice(length, n_fail, replace=False)
        response = make_response(
            {int(c): [int(rng.integers(0, 8))] for c in failing}
        )
        parts = partitions_for(scheme, length, 4, num_partitions)
        result = diagnose(response, config, parts, compactor=None)
        assert result.sound
        assert result.detected

    def test_multi_chain_soundness(self, rng):
        config = ScanConfig.balanced(60, 4)
        response = make_response({3: [0], 47: [2], 21: [5]})
        parts = partitions_for("two-step", config.max_length, 4, 4)
        result = diagnose(response, config, parts, compactor=None)
        assert result.sound


class TestMonotonicity:
    def test_candidate_history_weakly_decreasing(self, rng):
        config = ScanConfig.single_chain(100)
        response = make_response(
            {int(c): [0, 3] for c in rng.choice(100, 5, replace=False)}
        )
        parts = partitions_for("two-step", 100, 8, 6)
        result = diagnose(response, config, parts, compactor=None)
        history = result.candidate_history
        assert all(a >= b for a, b in zip(history, history[1:]))
        assert history[-1] == len(result.candidate_cells)


class TestUndetected:
    def test_no_errors_no_candidates(self):
        config = ScanConfig.single_chain(20)
        response = make_response({})
        parts = partitions_for("random", 20, 4, 3)
        result = diagnose(response, config, parts, compactor=None)
        assert not result.detected
        assert result.candidate_cells == set()


class TestChannelResolution:
    def test_column_cells_inseparable_without_channel_resolution(self):
        config = ScanConfig([[0, 1], [2, 3]])
        response = make_response({1: [0]})
        parts = partitions_for("random", 2, 2, 4)
        coarse = diagnose(
            response, config, parts, compactor=None, channel_resolution=False
        )
        fine = diagnose(response, config, parts, compactor=None)
        # Position 1 holds cells 1 and 3; the combined readout keeps both.
        assert coarse.candidate_cells == {1, 3}
        assert fine.candidate_cells == {1}

    def test_channel_resolution_is_never_coarser(self, rng):
        config = ScanConfig.balanced(40, 4)
        response = make_response(
            {int(c): [1] for c in rng.choice(40, 4, replace=False)}
        )
        parts = partitions_for("two-step", config.max_length, 4, 3)
        fine = diagnose(response, config, parts, compactor=None)
        coarse = diagnose(
            response, config, parts, compactor=None, channel_resolution=False
        )
        assert fine.candidate_cells <= coarse.candidate_cells


class TestWithCompactor:
    def test_agrees_with_exact_mode_at_width_24(self, rng):
        config = ScanConfig.single_chain(64)
        response = make_response(
            {int(c): [int(p) for p in rng.choice(8, 2, replace=False)]
             for c in rng.choice(64, 6, replace=False)}
        )
        parts = partitions_for("two-step", 64, 8, 4)
        exact = diagnose(response, config, parts, compactor=None)
        real = diagnose(response, config, parts, LinearCompactor(24, 1))
        assert exact.candidate_cells == real.candidate_cells


class TestErrors:
    def test_partition_length_mismatch(self):
        config = ScanConfig.single_chain(10)
        parts = partitions_for("random", 12, 4, 1)
        with pytest.raises(ValueError, match="partition length"):
            diagnose(make_response({1: [0]}), config, parts)


class TestMetrics:
    def make_result(self, actual, candidates, history=None):
        return DiagnosisResult(
            actual_cells=set(actual),
            candidate_cells=set(candidates),
            outcomes=[],
            partitions=[],
            candidate_history=history or [len(candidates)],
        )

    def test_dr_zero_when_perfect(self):
        results = [self.make_result({1, 2}, {1, 2})]
        assert diagnostic_resolution(results) == 0.0

    def test_dr_formula(self):
        results = [
            self.make_result({1}, {1, 2, 3}),  # 3 candidates, 1 actual
            self.make_result({4, 5}, {4, 5, 6}),  # 3 candidates, 2 actual
        ]
        # (6 - 3) / 3 = 1.0
        assert diagnostic_resolution(results) == pytest.approx(1.0)

    def test_undetected_faults_ignored(self):
        results = [
            self.make_result({1}, {1}),
            self.make_result(set(), set()),
        ]
        assert diagnostic_resolution(results) == 0.0

    def test_all_undetected_raises(self):
        with pytest.raises(ValueError):
            diagnostic_resolution([self.make_result(set(), set())])

    def test_dr_by_partition_count(self):
        results = [self.make_result({1}, {1}, history=[5, 3, 1])]
        sweep = dr_by_partition_count(results, 3)
        assert sweep == [4.0, 2.0, 0.0]

    def test_partitions_to_reach_dr(self):
        results = [self.make_result({1}, {1}, history=[5, 3, 1])]
        assert partitions_to_reach_dr(results, 2.0, 3) == 2
        assert partitions_to_reach_dr(results, 0.0, 3) == 3
        assert partitions_to_reach_dr(results, -1.0, 3) is None
