"""Tests for scan-chain reordering utilities."""

import numpy as np
import pytest

from repro.bist.scan import ScanConfig
from repro.core.ordering import (
    interleaved_scan_order,
    permuted_scan_config,
    random_scan_order,
    response_span,
    reversed_scan_order,
)
from repro.sim.bitops import pack_bits
from repro.sim.faults import Fault
from repro.sim.faultsim import FaultResponse


def response_at(cells):
    return FaultResponse(
        Fault("X", 0), {c: pack_bits([1]) for c in cells}, 1
    )


class TestPermutations:
    def test_identity(self):
        config = ScanConfig.balanced(10, 2)
        same = permuted_scan_config(config, np.arange(10))
        assert same.chains == config.chains

    def test_cells_preserved(self, rng):
        config = ScanConfig.balanced(20, 3)
        shuffled = random_scan_order(config, rng)
        assert sorted(c for ch in shuffled.chains for c in ch) == list(range(20))
        assert [len(c) for c in shuffled.chains] == [len(c) for c in config.chains]

    def test_bad_permutation_rejected(self):
        config = ScanConfig.single_chain(4)
        with pytest.raises(ValueError):
            permuted_scan_config(config, np.array([0, 0, 1, 2]))

    def test_reversed(self):
        config = ScanConfig([[0, 1, 2], [3, 4]])
        rev = reversed_scan_order(config)
        assert rev.chains == [[2, 1, 0], [4, 3]]

    def test_interleaved(self):
        config = ScanConfig.single_chain(6)
        inter = interleaved_scan_order(config, 2)
        assert inter.chains == [[0, 2, 4, 1, 3, 5]]
        with pytest.raises(ValueError):
            interleaved_scan_order(config, 0)


class TestResponseSpan:
    def test_span_in_positions(self):
        config = ScanConfig.single_chain(10)
        assert response_span(response_at([2, 5]), config) == 4

    def test_no_errors(self):
        config = ScanConfig.single_chain(10)
        assert response_span(response_at([]), config) == 0

    def test_reversal_preserves_span(self, rng):
        config = ScanConfig.single_chain(30)
        response = response_at([4, 9, 11])
        rev = reversed_scan_order(config)
        assert response_span(response, config) == response_span(response, rev)

    def test_random_order_typically_grows_clustered_span(self, rng):
        config = ScanConfig.single_chain(200)
        response = response_at([50, 51, 52, 53])
        shuffled = random_scan_order(config, rng)
        assert response_span(response, config) == 4
        assert response_span(response, shuffled) > 4
