"""Tests for the adaptive binary-search baseline ([6])."""

import numpy as np
import pytest

from repro.bist.misr import LinearCompactor
from repro.bist.scan import ScanConfig
from repro.core.binary_search import binary_search_diagnose
from repro.sim.bitops import pack_bits
from repro.sim.faults import Fault
from repro.sim.faultsim import FaultResponse


def make_response(cell_patterns, num_patterns=8):
    cell_errors = {
        cell: pack_bits([1 if p in pats else 0 for p in range(num_patterns)])
        for cell, pats in cell_patterns.items()
    }
    return FaultResponse(Fault("X", 0), cell_errors, num_patterns)


class TestIsolation:
    def test_single_failing_cell_isolated_exactly(self):
        config = ScanConfig.single_chain(64)
        response = make_response({37: [2]})
        result = binary_search_diagnose(response, config)
        assert result.candidate_cells == {37}
        assert result.sound

    def test_multiple_failing_cells(self, rng):
        config = ScanConfig.single_chain(100)
        failing = {int(c) for c in rng.choice(100, 5, replace=False)}
        response = make_response({c: [0] for c in failing})
        result = binary_search_diagnose(response, config)
        assert result.candidate_cells == failing

    def test_undetected_fault(self):
        config = ScanConfig.single_chain(16)
        result = binary_search_diagnose(make_response({}), config)
        assert result.candidate_cells == set()
        assert result.sessions_used == 1  # the root region check

    def test_session_count_logarithmic_for_single_fail(self):
        config = ScanConfig.single_chain(1024)
        response = make_response({500: [0]})
        result = binary_search_diagnose(response, config)
        # Root + 2 sessions per level on the failing path, some passing
        # siblings: well under exhaustive (1024) and over log2(1024).
        assert 10 <= result.sessions_used <= 2 * 11 + 1

    def test_min_region_stops_early(self):
        config = ScanConfig.single_chain(64)
        response = make_response({10: [0]})
        coarse = binary_search_diagnose(response, config, min_region=8)
        assert 10 in coarse.candidate_cells
        assert len(coarse.candidate_cells) <= 8
        assert coarse.sessions_used < binary_search_diagnose(
            response, config
        ).sessions_used


class TestBudget:
    def test_budget_keeps_open_regions_as_candidates(self):
        config = ScanConfig.single_chain(64)
        response = make_response({10: [0]})
        result = binary_search_diagnose(response, config, session_budget=3)
        assert result.sound
        assert len(result.candidate_cells) > 1


class TestWithCompactor:
    def test_compactor_agrees_with_exact(self, rng):
        config = ScanConfig.single_chain(48)
        response = make_response(
            {int(c): [int(rng.integers(0, 8))]
             for c in rng.choice(48, 3, replace=False)}
        )
        exact = binary_search_diagnose(response, config)
        real = binary_search_diagnose(
            response, config, compactor=LinearCompactor(24, 1)
        )
        assert exact.candidate_cells == real.candidate_cells

    def test_multi_chain(self):
        config = ScanConfig.balanced(32, 4)
        response = make_response({17: [0]})
        result = binary_search_diagnose(response, config)
        # Binary search over positions cannot separate chains: the whole
        # position column remains.
        position = config.location(17).position
        assert result.candidate_cells == set(config.cells_at_position(position))
