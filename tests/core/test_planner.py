"""Tests for the analytic campaign planner, including model-vs-simulation
validation under the model's own assumptions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bist.scan import ScanConfig
from repro.core.diagnosis import diagnose
from repro.core.planner import (
    CampaignPlan,
    expected_dr,
    group_failure_probability,
    partitions_needed,
    plan_campaign,
)
from repro.core.random_selection import RandomSelectionPartitioner
from repro.sim.error_injection import inject_random_errors


class TestGroupFailureProbability:
    def test_zero_failing_cells(self):
        assert group_failure_probability(8, 0) == 0.0

    def test_one_failing_cell(self):
        assert group_failure_probability(8, 1) == pytest.approx(1 / 8)

    def test_many_failing_cells_saturates(self):
        assert group_failure_probability(4, 1000) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            group_failure_probability(0, 1)
        with pytest.raises(ValueError):
            group_failure_probability(4, -1)


class TestExpectedDr:
    def test_monotone_in_partitions(self):
        values = [expected_dr(200, 3, 8, k) for k in range(1, 8)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_monotone_in_groups(self):
        values = [expected_dr(200, 3, b, 4) for b in (4, 8, 16, 32)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_dr(0, 1, 4, 1)
        with pytest.raises(ValueError):
            expected_dr(5, 6, 4, 1)


class TestPartitionsNeeded:
    def test_consistent_with_expected_dr(self):
        k = partitions_needed(500, 4, 16, target_dr=0.5)
        assert k is not None
        assert expected_dr(500, 4, 16, k) <= 0.5
        if k > 1:
            assert expected_dr(500, 4, 16, k - 1) > 0.5

    def test_unreachable_returns_none(self):
        # With massive error multiplicity every group always fails (the
        # failure probability rounds to 1.0) and no pruning ever happens.
        assert partitions_needed(1000, 500, 4, 0.001) is None

    def test_all_cells_failing_is_trivially_met(self):
        # DR is 0 by definition when every cell fails: one partition does.
        assert partitions_needed(100, 100, 4, 0.5) == 1

    def test_cap_respected(self):
        assert partitions_needed(10**6, 1, 2, 1e-9, max_partitions=5) is None


class TestPlanCampaign:
    def test_plan_meets_target(self):
        plan = plan_campaign(6173, 5, target_dr=0.5)
        assert plan is not None
        assert plan.expected_dr <= 0.5
        assert plan.num_sessions == plan.num_groups * plan.num_partitions

    def test_cheapest_among_choices(self):
        plan = plan_campaign(500, 3, target_dr=0.2, group_choices=(4, 8, 16))
        for b in (4, 8, 16):
            k = partitions_needed(500, 3, b, 0.2)
            if k is not None:
                assert plan.num_sessions <= b * k

    def test_infeasible(self):
        assert plan_campaign(1000, 500, 0.001, group_choices=(2, 4)) is None


class TestModelAgainstSimulation:
    def test_expected_dr_matches_monte_carlo(self):
        """Under the model's assumptions (uniform random failing cells,
        random labels) the analytic DR must match simulation closely."""
        num_cells, a, b, k = 400, 3, 8, 3
        config = ScanConfig.single_chain(num_cells)
        rng = np.random.default_rng(0)
        partitioner = RandomSelectionPartitioner(num_cells, b, seed=0x7777)
        partitions = partitioner.partitions(k)
        total_candidates = 0
        total_actual = 0
        trials = 120
        for _ in range(trials):
            response = inject_random_errors(num_cells, 8, a, rng, max_cells=a)
            result = diagnose(response, config, partitions, compactor=None)
            total_candidates += len(result.candidate_cells)
            total_actual += len(result.actual_cells)
        empirical = (total_candidates - total_actual) / total_actual
        analytic = expected_dr(num_cells, a, b, k)
        assert empirical == pytest.approx(analytic, rel=0.5, abs=0.5)


@settings(max_examples=40, deadline=None)
@given(
    num_cells=st.integers(10, 5000),
    a=st.integers(1, 9),
    b=st.sampled_from([4, 8, 16, 32]),
    k=st.integers(1, 12),
)
def test_expected_dr_non_negative_and_bounded(num_cells, a, b, k):
    a = min(a, num_cells)
    dr = expected_dr(num_cells, a, b, k)
    assert 0 <= dr <= (num_cells - a) / a + 1e-9


class TestPopulationModel:
    def test_mixture_dominated_by_heavy_faults(self):
        from repro.core.planner import expected_population_dr

        light_only = expected_population_dr(1000, [2] * 10, 16, 4)
        with_heavy = expected_population_dr(1000, [2] * 10 + [50], 16, 4)
        assert with_heavy > light_only

    def test_mixture_equals_single_when_homogeneous(self):
        from repro.core.planner import expected_dr, expected_population_dr

        single = expected_dr(500, 4, 8, 3)
        mixture = expected_population_dr(500, [4] * 20, 8, 3)
        assert mixture == pytest.approx(single)

    def test_population_plan_meets_target(self):
        from repro.core.planner import (
            expected_population_dr,
            plan_campaign_for_population,
        )

        multiplicities = [1, 2, 2, 3, 8, 20]
        plan = plan_campaign_for_population(800, multiplicities, 0.3)
        assert plan is not None
        assert plan.expected_dr <= 0.3
        assert expected_population_dr(
            800, multiplicities, plan.num_groups, plan.num_partitions
        ) == pytest.approx(plan.expected_dr)

    def test_validation(self):
        from repro.core.planner import expected_population_dr

        with pytest.raises(ValueError):
            expected_population_dr(100, [], 8, 2)
        with pytest.raises(ValueError):
            expected_population_dr(100, [0, 0], 8, 2)
