"""Smoke tests: the shipped example scripts run end to end.

The two heavyweight walk-throughs (`soc_diagnosis`, `full_reproduction`)
are exercised through their underlying experiment tests instead; here we
run the fast ones as real subprocesses so import errors, API drift or
assertion failures in examples surface in CI.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=120):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "diagnosis sound" in out

    def test_selection_hardware(self):
        out = run_example("selection_hardware.py")
        assert "matches the functional interval partitioner" in out
        assert "matches the functional random-selection partitioner" in out

    def test_tester_view(self):
        out = run_example("tester_view.py")
        assert "exact, not an approximation" in out

    def test_scheme_comparison_small(self):
        out = run_example("scheme_comparison.py", "s953", "15")
        assert "best DR after" in out
        for scheme in ("interval", "random", "deterministic", "two-step"):
            assert scheme in out
