"""Supervisor tests over tiny fake workers (forked, no real servers).

Each fake worker entry runs in a forked child and speaks the control
protocol; the supervisor's selectors loop runs on a background thread
with signal installation off, driven through ``request_drain()`` /
``request_rolling_restart()``.
"""

import json
import os
import signal
import socket
import threading
import time

import pytest

from repro.cluster import BROKEN, READY, ClusterSupervisor
from repro.cluster.control import send_message

pytestmark = pytest.mark.skipif(not hasattr(os, "fork"),
                                reason="prefork cluster needs os.fork")


def obedient_entry(index, control_sock):
    """Heartbeats until SIGTERM, then drains and exits 0."""
    stop = []
    signal.signal(signal.SIGTERM, lambda *_: stop.append(1))
    send_message(control_sock, {"type": "ready", "slot": index,
                                "pid": os.getpid(), "port": 40000 + index})
    seq = 0
    while not stop:
        seq += 1
        try:
            send_message(control_sock, {
                "type": "heartbeat", "slot": index, "seq": seq,
                "uptime_s": seq * 0.03, "draining": False,
                "requests": {"ok": 1},
                "metrics": {
                    "counters": {"service.requests{code=ok}": 1},
                    "gauges": {"process.rss_bytes": 1000 + index},
                    "histograms": {},
                },
                "latency": {"total": {"buckets": {"8": 1}, "count": 1,
                                      "sum": 0.002, "max": 0.002}},
            })
        except OSError:
            return 0
        time.sleep(0.03)
    try:
        send_message(control_sock, {"type": "drained", "slot": index})
    except OSError:
        pass
    return 0


def crashy_entry(index, control_sock):
    """Dies immediately — the crash-loop case."""
    return 3


def wait_until(predicate, timeout=15.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def http_get(port, path):
    with socket.create_connection(("127.0.0.1", port), timeout=5) as sock:
        sock.sendall(f"GET {path} HTTP/1.1\r\nHost: t\r\n\r\n".encode())
        data = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            data += chunk
    head, _, body = data.partition(b"\r\n\r\n")
    return int(head.split(b" ")[1]), body


@pytest.fixture
def cluster():
    """Factory: a started supervisor + its run() thread; drains on teardown."""
    running = []

    def _start(**kwargs):
        kwargs.setdefault("host", "127.0.0.1")
        kwargs.setdefault("port", 0)
        kwargs.setdefault("heartbeat_s", 0.05)
        kwargs.setdefault("worker_entry", obedient_entry)
        supervisor = ClusterSupervisor(**kwargs)
        supervisor.start()
        result = {}
        thread = threading.Thread(
            target=lambda: result.update(code=supervisor.run()), daemon=True)
        thread.start()
        running.append((supervisor, thread))
        return supervisor, thread, result

    yield _start
    for supervisor, thread in running:
        if thread.is_alive():
            supervisor.request_drain()
            thread.join(20)


def all_ready(supervisor):
    return all(slot.state == READY for slot in supervisor.slots)


class TestFleetHealth:
    def test_quorum_healthz_and_aggregated_metrics(self, cluster):
        supervisor, _, _ = cluster(workers=2)
        assert wait_until(lambda: all_ready(supervisor))

        status, body = http_get(supervisor.control_port, "/healthz")
        health = json.loads(body)
        assert status == 200
        assert health["status"] == "ok"
        assert health["workers"] == {"configured": 2, "live": 2, "quorum": 1}
        assert len(health["worker_table"]) == 2

        assert wait_until(lambda: all(s.metrics for s in supervisor.slots))
        status, body = http_get(supervisor.control_port, "/metrics")
        metrics = json.loads(body)
        assert status == 200
        # Counters from both workers sum; per-worker gauges stay apart.
        registry = metrics["registry"]
        assert registry["counters"]["service.requests{code=ok}"] == 2
        assert "process.rss_bytes{worker=0}" in registry["gauges"]
        assert "process.rss_bytes{worker=1}" in registry["gauges"]
        assert registry["gauges"]["cluster.worker.up{worker=0}"] == 1
        # Fleet latency merged bucket-wise across both boards.
        assert metrics["fleet_latency"]["total"]["count"] == 2
        assert metrics["requests"]["ok"] == 2

    def test_prometheus_exposition(self, cluster):
        supervisor, _, _ = cluster(workers=2)
        assert wait_until(lambda: all(s.metrics for s in supervisor.slots))
        status, body = http_get(supervisor.control_port,
                                "/metrics?format=prometheus")
        text = body.decode()
        assert status == 200
        assert 'repro_cluster_worker_up{worker="0"} 1' in text
        assert 'repro_cluster_worker_restarts{worker="1"} 0' in text
        assert "repro_service_requests_total" in text
        assert 'repro_service_request_seconds_bucket' in text

    def test_unknown_route_404(self, cluster):
        supervisor, _, _ = cluster(workers=1)
        assert wait_until(lambda: all_ready(supervisor))
        status, _ = http_get(supervisor.control_port, "/nope")
        assert status == 404


class TestRespawn:
    def test_kill_minus_nine_respawns(self, cluster):
        supervisor, _, _ = cluster(workers=2, backoff_base_s=0.05,
                                   min_uptime_s=0.3)
        assert wait_until(lambda: all_ready(supervisor))
        victim = supervisor.slots[0].pid
        os.kill(victim, signal.SIGKILL)
        assert wait_until(
            lambda: supervisor.slots[0].state == READY
            and supervisor.slots[0].pid != victim)
        assert supervisor.slots[0].restarts == 1
        status, body = http_get(supervisor.control_port, "/healthz")
        assert status == 200
        assert json.loads(body)["workers"]["live"] == 2

    def test_crash_loop_trips_breaker_and_exits_1(self):
        supervisor = ClusterSupervisor(
            host="127.0.0.1", port=0, workers=2,
            worker_entry=crashy_entry,
            backoff_base_s=0.02, backoff_cap_s=0.05,
            breaker_threshold=2, heartbeat_s=0.05,
        )
        supervisor.start()
        code = supervisor.run()  # returns once every slot is broken
        assert code == 1
        assert all(slot.state == BROKEN for slot in supervisor.slots)
        # restarts counts unplanned exits: breaker_threshold of them
        # (initial spawn's crash + one respawn's crash), then no more.
        assert all(slot.restarts == 2 for slot in supervisor.slots)

    def test_healthz_503_below_quorum(self, cluster):
        supervisor, _, _ = cluster(workers=2, quorum=2,
                                   backoff_base_s=5.0, min_uptime_s=30.0)
        assert wait_until(lambda: all_ready(supervisor))
        # min_uptime 30s makes the kill a "fast exit" -> 5s backoff, so
        # the fleet stays at 1/2 long enough to observe 503.
        os.kill(supervisor.slots[0].pid, signal.SIGKILL)
        assert wait_until(lambda: supervisor.live_workers() == 1)
        status, body = http_get(supervisor.control_port, "/healthz")
        assert status == 503
        assert json.loads(body)["status"] == "unhealthy"


class TestGracefulOps:
    def test_drain_exits_zero(self, cluster):
        supervisor, thread, result = cluster(workers=2)
        assert wait_until(lambda: all_ready(supervisor))
        supervisor.request_drain()
        thread.join(20)
        assert not thread.is_alive()
        assert result["code"] == 0

    def test_rolling_restart_replaces_all_never_below_n_minus_1(self, cluster):
        supervisor, _, _ = cluster(workers=3)
        assert wait_until(lambda: all_ready(supervisor))
        before = [slot.pid for slot in supervisor.slots]
        min_live = [len(before)]

        def watch():
            while not done.is_set():
                min_live[0] = min(min_live[0], supervisor.live_workers())
                time.sleep(0.005)

        done = threading.Event()
        watcher = threading.Thread(target=watch, daemon=True)
        watcher.start()
        supervisor.request_rolling_restart()
        rolled = wait_until(
            lambda: all(slot.state == READY and slot.pid not in before
                        for slot in supervisor.slots),
            timeout=30)
        done.set()
        watcher.join(5)
        assert rolled
        assert min_live[0] >= len(before) - 1
