"""End-to-end cluster tests: real forked DiagnosisServer workers behind
one shared port, driven through ServiceClient.

One comprehensive scenario per sharing mode keeps the fork/warm cost
bounded; the reuseport scenario exercises the full lifecycle (serve,
verify against the direct engine, kill -9 + respawn, drain to exit 0).
"""

import json
import os
import signal
import socket
import threading
import time

import pytest

from repro.cluster import ClusterSupervisor, READY
from repro.service.client import ServiceClient, TransportError
from repro.service.engine import DiagnosisEngine
from repro.service.protocol import DiagnoseRequest

pytestmark = pytest.mark.skipif(not hasattr(os, "fork"),
                                reason="prefork cluster needs os.fork")

#: Same tiny workload the service tests share (compiles once per worker).
SMALL = dict(circuit="s953", num_patterns=32, fault_count=6)


def wait_until(predicate, timeout=30.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def http_get_json(port, path):
    with socket.create_connection(("127.0.0.1", port), timeout=5) as sock:
        sock.sendall(f"GET {path} HTTP/1.1\r\nHost: t\r\n\r\n".encode())
        data = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            data += chunk
    return json.loads(data.partition(b"\r\n\r\n")[2])


def start_cluster(**overrides):
    kwargs = dict(
        host="127.0.0.1", port=0, workers=2,
        heartbeat_s=0.2, backoff_base_s=0.1, min_uptime_s=0.5,
        server_kwargs=dict(batch_wait_ms=1.0),
        engine_kwargs=dict(workers=0),
        disk_warm=False,
    )
    kwargs.update(overrides)
    supervisor = ClusterSupervisor(**kwargs)
    supervisor.start()
    result = {}
    thread = threading.Thread(
        target=lambda: result.update(code=supervisor.run()), daemon=True)
    thread.start()
    return supervisor, thread, result


def all_ready(supervisor):
    return all(slot.state == READY for slot in supervisor.slots)


def diagnose_with_retry(client, payload, attempts=5):
    """Diagnose, riding out the transient resets a kill -9 can cause.

    The cluster's guarantee under SIGKILL is *recovery*, not zero dropped
    connections — a SYN can land on the dying listener.  Clients retry
    (see loadgen --retries); the test does the same.
    """
    for attempt in range(attempts):
        try:
            return client.diagnose(payload)
        except TransportError:
            if attempt == attempts - 1:
                raise
            time.sleep(0.05 * (attempt + 1))


def direct_results():
    engine = DiagnosisEngine(workers=0)
    requests = [DiagnoseRequest.from_payload(dict(SMALL, fault_index=i))
                for i in range(SMALL["fault_count"])]
    return [tuple(reply.candidate_cells)
            for reply in engine.execute_batch(requests)]


class TestReuseportCluster:
    def test_full_lifecycle(self):
        supervisor, thread, result = start_cluster(sharing="auto")
        client = None
        try:
            assert wait_until(lambda: all_ready(supervisor))
            client = ServiceClient(port=supervisor.port)
            client.wait_ready(timeout_s=60)

            # Replies through the cluster match the direct engine path.
            expected = direct_results()
            for round_ in range(2):
                for i in range(SMALL["fault_count"]):
                    reply = client.diagnose(dict(SMALL, fault_index=i))
                    assert tuple(reply.candidate_cells) == expected[i], (
                        f"round {round_} fault {i} diverged")

            # Fleet metrics see the traffic once heartbeats deliver it.
            assert wait_until(
                lambda: http_get_json(supervisor.control_port, "/metrics")
                .get("requests", {}).get("ok", 0) >= 12, timeout=10)

            # kill -9 one worker: the supervisor respawns it and the
            # (shared-port) service keeps answering correctly.
            victim = supervisor.slots[0].pid
            os.kill(victim, signal.SIGKILL)
            for i in range(SMALL["fault_count"]):
                reply = diagnose_with_retry(client, dict(SMALL, fault_index=i))
                assert tuple(reply.candidate_cells) == expected[i]
            assert wait_until(
                lambda: supervisor.slots[0].state == READY
                and supervisor.slots[0].pid != victim)
            health = http_get_json(supervisor.control_port, "/healthz")
            assert health["workers"]["live"] == 2
            assert any(w["restarts"] == 1 for w in health["worker_table"])
        finally:
            if client is not None:
                client.close()
            supervisor.request_drain()
            thread.join(30)
        assert not thread.is_alive()
        assert result["code"] == 0


class TestInheritCluster:
    def test_serves_and_drains_via_inherited_socket(self):
        supervisor, thread, result = start_cluster(sharing="inherit")
        client = None
        try:
            assert supervisor.sharing == "inherit"
            assert wait_until(lambda: all_ready(supervisor))
            client = ServiceClient(port=supervisor.port)
            client.wait_ready(timeout_s=60)
            expected = direct_results()
            for i in range(SMALL["fault_count"]):
                reply = client.diagnose(dict(SMALL, fault_index=i))
                assert tuple(reply.candidate_cells) == expected[i]
        finally:
            if client is not None:
                client.close()
            supervisor.request_drain()
            thread.join(30)
        assert not thread.is_alive()
        assert result["code"] == 0
