"""Tests for the framed-JSON control channel (cluster/control.py)."""

import socket
import struct

import pytest

from repro.cluster.control import (
    ControlChannelError,
    FrameDecoder,
    MAX_FRAME_BYTES,
    encode_frame,
    send_message,
)


class TestRoundTrip:
    def test_single_message(self):
        message = {"type": "heartbeat", "seq": 7, "uptime_s": 1.25}
        frames = FrameDecoder().feed(encode_frame(message))
        assert frames == [message]

    def test_multiple_messages_in_one_feed(self):
        messages = [{"type": "ready", "slot": i} for i in range(5)]
        blob = b"".join(encode_frame(m) for m in messages)
        assert FrameDecoder().feed(blob) == messages

    def test_byte_by_byte_feed(self):
        message = {"type": "heartbeat", "metrics": {"counters": {"a{b=c}": 2}}}
        decoder = FrameDecoder()
        blob = encode_frame(message)
        out = []
        for i in range(len(blob)):
            out.extend(decoder.feed(blob[i:i + 1]))
        assert out == [message]
        assert decoder.pending_bytes == 0

    def test_split_across_frame_boundary(self):
        first, second = {"type": "ready"}, {"type": "drained"}
        blob = encode_frame(first) + encode_frame(second)
        decoder = FrameDecoder()
        cut = len(encode_frame(first)) + 2  # mid-way into the second frame
        got = decoder.feed(blob[:cut])
        got += decoder.feed(blob[cut:])
        assert got == [first, second]

    def test_unicode_payload(self):
        message = {"type": "log", "text": "café ≠ caffe"}
        assert FrameDecoder().feed(encode_frame(message)) == [message]

    def test_over_socketpair(self):
        left, right = socket.socketpair()
        try:
            send_message(left, {"type": "ready", "slot": 3})
            send_message(left, {"type": "heartbeat", "seq": 1})
            decoder = FrameDecoder()
            messages = []
            while len(messages) < 2:
                messages.extend(decoder.feed(right.recv(4096)))
            assert [m["type"] for m in messages] == ["ready", "heartbeat"]
        finally:
            left.close()
            right.close()


class TestRejection:
    def test_oversized_frame_raises(self):
        header = struct.pack("<I", MAX_FRAME_BYTES + 1)
        with pytest.raises(ControlChannelError, match="frame"):
            FrameDecoder().feed(header)

    def test_garbled_payload_raises(self):
        payload = b"this is not json"
        blob = struct.pack("<I", len(payload)) + payload
        with pytest.raises(ControlChannelError):
            FrameDecoder().feed(blob)

    def test_non_object_payload_raises(self):
        payload = b"[1, 2, 3]"
        blob = struct.pack("<I", len(payload)) + payload
        with pytest.raises(ControlChannelError):
            FrameDecoder().feed(blob)

    def test_partial_frame_reports_pending(self):
        blob = encode_frame({"type": "ready"})
        decoder = FrameDecoder()
        assert decoder.feed(blob[:3]) == []
        assert decoder.pending_bytes == 3
