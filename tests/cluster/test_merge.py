"""Tests for fleet-wide telemetry aggregation (cluster/merge.py and the
mergeable latency-state algebra in service/latency.py)."""

import numpy as np

from repro.cluster.merge import (
    latency_prometheus_series,
    latency_summary,
    merge_worker_latency,
    merge_worker_registries,
)
from repro.service.latency import (
    LatencyBoard,
    LatencyHistogram,
    merge_states,
    state_quantile,
    state_summary,
)
from repro.telemetry import merge_snapshots, render_prometheus


def snapshot(counters=None, gauges=None, histograms=None):
    return {
        "counters": counters or {},
        "gauges": gauges or {},
        "histograms": histograms or {},
    }


class TestRegistryMerge:
    def test_counters_sum_across_workers(self):
        merged = merge_worker_registries({
            "0": snapshot(counters={"service.requests{code=ok}": 10}),
            "1": snapshot(counters={"service.requests{code=ok}": 5,
                                    "service.timeouts": 1}),
        })
        assert merged["counters"]["service.requests{code=ok}"] == 15
        assert merged["counters"]["service.timeouts"] == 1

    def test_gauges_relabeled_per_worker(self):
        merged = merge_worker_registries({
            "0": snapshot(gauges={"process.rss_bytes": 100}),
            "1": snapshot(gauges={"process.rss_bytes": 200}),
        })
        gauges = merged["gauges"]
        assert gauges["process.rss_bytes{worker=0}"] == 100
        assert gauges["process.rss_bytes{worker=1}"] == 200
        assert "process.rss_bytes" not in gauges

    def test_gauge_with_existing_labels_keeps_them(self):
        merged = merge_worker_registries({
            "2": snapshot(gauges={"soa.levels{circuit=s953}": 7}),
        })
        assert merged["gauges"]["soa.levels{circuit=s953,worker=2}"] == 7

    def test_histograms_merge_envelope(self):
        merged = merge_worker_registries({
            "0": snapshot(histograms={
                "service.batch_size": {"count": 2, "sum": 6.0,
                                       "min": 2.0, "max": 4.0}}),
            "1": snapshot(histograms={
                "service.batch_size": {"count": 1, "sum": 9.0,
                                       "min": 9.0, "max": 9.0}}),
        })
        hist = merged["histograms"]["service.batch_size"]
        assert hist["count"] == 3
        assert hist["sum"] == 15.0
        assert hist["min"] == 2.0 and hist["max"] == 9.0

    def test_base_snapshot_not_relabeled(self):
        merged = merge_worker_registries(
            {"0": snapshot(counters={"cluster.heartbeats": 3})},
            base=snapshot(gauges={"cluster.workers": 4},
                          counters={"cluster.spawns": 4}),
        )
        assert merged["gauges"]["cluster.workers"] == 4
        assert merged["counters"]["cluster.spawns"] == 4
        assert merged["counters"]["cluster.heartbeats"] == 3

    def test_inputs_not_mutated(self):
        worker = snapshot(gauges={"g": 1})
        base = snapshot(gauges={"cluster.workers": 2})
        merge_snapshots({"0": worker}, base=base)
        assert worker == snapshot(gauges={"g": 1})
        assert base == snapshot(gauges={"cluster.workers": 2})


class TestLatencyStateMerge:
    def test_bucketwise_merge_is_lossless(self):
        # Two workers each observe half the samples; their merged state
        # must quantile exactly like one histogram holding all of them.
        rng = np.random.default_rng(8)
        samples = rng.uniform(0.001, 0.5, size=400)
        reference = LatencyHistogram()
        left, right = LatencyHistogram(), LatencyHistogram()
        for i, s in enumerate(samples):
            reference.observe(s)
            (left if i % 2 == 0 else right).observe(s)
        merged = merge_states([left.state(), right.state()])
        for q in (0.5, 0.9, 0.95, 0.99, 1.0):
            assert state_quantile(merged, q) == reference.quantile(q)
        assert merged["count"] == reference.count

    def test_state_summary_matches_histogram_summary(self):
        hist = LatencyHistogram()
        for ms in (1, 2, 5, 10, 100):
            hist.observe(ms / 1000)
        assert state_summary(hist.state()) == hist.summary()

    def test_merge_boards_stage_wise(self):
        a, b = LatencyBoard(), LatencyBoard()
        a["total"].observe(0.010)
        a["execute"].observe(0.002)
        b["total"].observe(0.030)
        merged = merge_worker_latency({"0": a.state(), "1": b.state()})
        assert merged["total"]["count"] == 2
        assert merged["execute"]["count"] == 1
        assert merged["queue_wait"]["count"] == 0

    def test_missing_and_empty_workers_tolerated(self):
        a = LatencyBoard()
        a["total"].observe(0.020)
        merged = merge_worker_latency({"0": a.state(), "1": {}, "2": None})
        assert merged["total"]["count"] == 1

    def test_fleet_summary_shape(self):
        a = LatencyBoard()
        for _ in range(10):
            a["total"].observe(0.004)
        summary = latency_summary(merge_worker_latency({"0": a.state()}))
        assert summary["total"]["count"] == 10
        assert summary["total"]["p95_ms"] > 0


class TestPrometheusRendering:
    def test_merged_series_render_as_histograms(self):
        a, b = LatencyBoard(), LatencyBoard()
        for ms in (2, 4, 8):
            a["total"].observe(ms / 1000)
            b["total"].observe(ms * 2 / 1000)
        merged = merge_worker_latency({"0": a.state(), "1": b.state()})
        buckets, totals = latency_prometheus_series(merged)
        text = render_prometheus(
            merge_worker_registries({"0": snapshot(), "1": snapshot()}),
            latency_buckets=buckets, latency_totals=totals,
        )
        assert ('repro_service_request_seconds_bucket'
                '{le="+Inf",stage="total"} 6') in text
        assert 'repro_service_request_seconds_count{stage="total"} 6' in text

    def test_cumulative_counts_monotone(self):
        hist = LatencyHistogram()
        for ms in (1, 1, 3, 50, 700):
            hist.observe(ms / 1000)
        merged = merge_states([hist.state()])
        buckets, _ = latency_prometheus_series({"total": merged})
        series = buckets["total"]
        bounds = [b for b, _ in series]
        counts = [c for _, c in series]
        assert bounds == sorted(bounds)
        assert counts == sorted(counts)
        assert counts[-1] == 5
