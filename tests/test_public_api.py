"""The public API surface: everything exported resolves and is importable."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.circuit",
    "repro.sim",
    "repro.bist",
    "repro.core",
    "repro.soc",
    "repro.experiments",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    for name in getattr(module, "__all__", []):
        assert getattr(module, name, None) is not None, f"{package}.{name}"


def test_version():
    import repro

    assert repro.__version__


def test_quick_end_to_end():
    """Five-line user story from the README quickstart."""
    import numpy as np

    from repro import (
        EmbeddedCore,
        LinearCompactor,
        ScanConfig,
        TwoStepPartitioner,
        diagnose,
        get_circuit,
    )

    core = EmbeddedCore(get_circuit("s953"), num_patterns=64)
    responses = core.sample_fault_responses(3, np.random.default_rng(0))
    config = ScanConfig.single_chain(core.num_cells)
    partitions = TwoStepPartitioner(core.num_cells, 4).partitions(4)
    compactor = LinearCompactor(24, 1)
    for response in responses:
        result = diagnose(response, config, partitions, compactor)
        assert result.actual_cells <= result.candidate_cells
