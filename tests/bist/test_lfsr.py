"""Tests for the LFSR / IVR, including maximal-period checks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bist.lfsr import IVR, LFSR, PRIMITIVE_TAPS


class TestPeriod:
    @pytest.mark.parametrize("degree", list(range(3, 15)))
    def test_maximal_period(self, degree):
        lfsr = LFSR(degree, seed=1)
        assert lfsr.period() == (1 << degree) - 1

    def test_degree_16_period(self):
        # The paper's experiments use a degree-16 primitive polynomial.
        lfsr = LFSR(16, seed=0xACE1)
        assert lfsr.period() == (1 << 16) - 1


class TestStateInvariants:
    def test_zero_seed_rejected(self):
        with pytest.raises(ValueError):
            LFSR(8, seed=0)

    def test_state_stays_nonzero(self):
        lfsr = LFSR(8, seed=1)
        for _ in range(600):
            lfsr.step()
            assert lfsr.state != 0

    def test_state_masked_to_degree(self):
        lfsr = LFSR(8, seed=0x1FF)  # 9 bits; top truncated
        assert lfsr.state == 0xFF

    def test_bad_degree(self):
        with pytest.raises(ValueError):
            LFSR(1)

    def test_unknown_degree_without_taps(self):
        with pytest.raises(ValueError, match="primitive taps"):
            LFSR(33)

    def test_tap_out_of_range(self):
        with pytest.raises(ValueError):
            LFSR(8, taps=(9, 1))

    def test_copy_is_independent(self):
        a = LFSR(8, seed=3)
        b = a.copy()
        a.step()
        assert a.state != b.state


class TestOutput:
    def test_output_is_pre_shift_lsb(self):
        lfsr = LFSR(8, seed=0b10101010)
        assert lfsr.step() == 0
        lfsr.load(0b10101011)
        assert lfsr.step() == 1

    def test_step_many_length(self):
        lfsr = LFSR(8, seed=7)
        assert len(lfsr.step_many(37)) == 37

    def test_output_balanced_over_period(self):
        lfsr = LFSR(10, seed=1)
        ones = sum(lfsr.step_many((1 << 10) - 1))
        assert ones == 1 << 9  # m-sequence has 2^(n-1) ones


class TestPeek:
    def test_peek_bits(self):
        lfsr = LFSR(8, seed=0b1011_0110)
        assert lfsr.peek_bits(3) == 0b110
        assert lfsr.peek_bits(8) == 0b1011_0110

    def test_peek_too_many(self):
        with pytest.raises(ValueError):
            LFSR(8, seed=1).peek_bits(9)

    def test_peek_stages(self):
        lfsr = LFSR(8, seed=0b1000_0001)
        assert lfsr.peek_stages([0, 7]) == 0b11
        assert lfsr.peek_stages([1, 6]) == 0

    def test_peek_stages_bad_position(self):
        with pytest.raises(ValueError):
            LFSR(8, seed=1).peek_stages([8])

    def test_spread_stage_positions(self):
        lfsr = LFSR(16, seed=1)
        assert lfsr.spread_stage_positions(2) == [0, 8]
        assert lfsr.spread_stage_positions(4) == [0, 4, 8, 12]
        with pytest.raises(ValueError):
            lfsr.spread_stage_positions(17)

    def test_spread_labels_are_balanced(self):
        # Over the full period, every r-bit label must appear almost exactly
        # equally often (m-sequence window property).
        lfsr = LFSR(10, seed=1)
        positions = lfsr.spread_stage_positions(2)
        counts = [0, 0, 0, 0]
        for _ in range((1 << 10) - 1):
            counts[lfsr.peek_stages(positions)] += 1
            lfsr.step()
        assert max(counts) - min(counts) <= 1


class TestIVR:
    def test_reload_and_update(self):
        lfsr = LFSR(8, seed=42)
        ivr = IVR(lfsr.state)
        lfsr.step_many(10)
        moved = lfsr.state
        ivr.reload(lfsr)
        assert lfsr.state == 42
        lfsr.step_many(10)
        assert lfsr.state == moved
        ivr.update_from(lfsr)
        assert ivr.value == moved


@settings(max_examples=30, deadline=None)
@given(degree=st.sampled_from(sorted(PRIMITIVE_TAPS)), seed=st.integers(1, 2**16))
def test_sequence_depends_only_on_state(degree, seed):
    seed = (seed % ((1 << degree) - 1)) + 1
    a = LFSR(degree, seed)
    b = LFSR(degree, seed)
    assert a.step_many(50) == b.step_many(50)
    assert a.state == b.state
