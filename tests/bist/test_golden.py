"""Integration tests: the literal tester flow (full streams through the
real MISR) agrees with the linear error-signature shortcut the experiment
harness uses — per session, per partition, with multiple chains."""

import numpy as np
import pytest

from repro.bist.golden import (
    faulty_captured,
    good_captured_matrix,
    response_stream,
    run_tester_partition,
    run_tester_session,
)
from repro.bist.misr import LinearCompactor
from repro.bist.scan import ScanConfig
from repro.bist.session import collect_error_events, run_partition_sessions
from repro.core.two_step import make_partitioner
from repro.sim.faults import collapse_faults
from repro.sim.faultsim import FaultSimulator

MISR_WIDTH = 16


@pytest.fixture(scope="module")
def fault_setup(small_compiled, small_good):
    sim = FaultSimulator(small_compiled, small_good)
    faults = collapse_faults(small_compiled.netlist)
    rng = np.random.default_rng(11)
    picks = rng.choice(len(faults), size=30, replace=False)
    responses = [
        r for r in (sim.simulate_fault(faults[i]) for i in picks) if r.detected
    ][:8]
    assert responses, "need detected faults"
    captured = good_captured_matrix(small_good)
    return captured, responses


class TestStreamConstruction:
    def test_stream_shape(self, small_compiled, small_good):
        config = ScanConfig.single_chain(small_compiled.num_scan_cells)
        captured = good_captured_matrix(small_good)
        stream = response_stream(captured, config, small_good.num_patterns)
        assert len(stream) == small_good.num_patterns * config.max_length
        assert all(len(inputs) == 1 for inputs in stream)

    def test_mask_zeroes_deselected_cycles(self, small_compiled, small_good):
        config = ScanConfig.single_chain(small_compiled.num_scan_cells)
        captured = good_captured_matrix(small_good)
        mask = np.zeros(config.max_length, dtype=bool)
        stream = response_stream(captured, config, small_good.num_patterns, mask)
        assert all(inputs == [0] for inputs in stream)

    def test_faulty_captured_flips_only_error_bits(self, fault_setup):
        captured, responses = fault_setup
        response = responses[0]
        faulty = faulty_captured(captured, response)
        diff_rows = [
            cell
            for cell in range(captured.shape[0])
            if not np.array_equal(captured[cell], faulty[cell])
        ]
        assert diff_rows == response.failing_cells


class TestEquivalenceWithLinearShortcut:
    @pytest.mark.parametrize("chains", [1, 3])
    def test_session_mismatch_equals_nonzero_error_signature(
        self, fault_setup, small_compiled, chains
    ):
        captured, responses = fault_setup
        config = ScanConfig.balanced(small_compiled.num_scan_cells, chains)
        compactor = LinearCompactor(MISR_WIDTH, chains)
        rng = np.random.default_rng(5)
        for response in responses[:4]:
            events = collect_error_events(response, config)
            total = config.total_cycles(response.num_patterns)
            mask = rng.random(config.max_length) < 0.5
            tester = run_tester_session(
                captured, response, config, mask, MISR_WIDTH
            )
            selected = [
                (ch, cyc) for (pos, ch, cyc) in events if mask[pos]
            ]
            error_sig = 0
            for ch, cyc in selected:
                error_sig ^= compactor.impulse_response(ch, total - 1 - cyc)
            assert (tester.golden ^ tester.observed) == error_sig
            assert tester.mismatch == (error_sig != 0)

    def test_partition_flow_matches_session_runner(
        self, fault_setup, small_compiled
    ):
        captured, responses = fault_setup
        config = ScanConfig.single_chain(small_compiled.num_scan_cells)
        part = make_partitioner("two-step", config.max_length, 4).next_partition()
        compactor = LinearCompactor(MISR_WIDTH, 1)
        for response in responses[:4]:
            tester_sessions = run_tester_partition(
                captured, response, config, part.group_of, 4, MISR_WIDTH
            )
            events = collect_error_events(response, config)
            outcome = run_partition_sessions(
                events,
                part.group_of,
                4,
                config.total_cycles(response.num_patterns),
                compactor,
            )
            for group, session in enumerate(tester_sessions):
                assert (session.golden ^ session.observed) == outcome.signatures[
                    group
                ][0]

    def test_nonzero_init_cancels_in_comparison(self, fault_setup, small_compiled):
        captured, responses = fault_setup
        config = ScanConfig.single_chain(small_compiled.num_scan_cells)
        mask = np.ones(config.max_length, dtype=bool)
        a = run_tester_session(captured, responses[0], config, mask, init=0)
        b = run_tester_session(captured, responses[0], config, mask, init=0xBEEF)
        # Different seeds shift both signatures identically (linearity).
        assert (a.golden ^ a.observed) == (b.golden ^ b.observed)
