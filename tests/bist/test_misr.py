"""Tests for the MISR and its linear error-signature model."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bist.misr import MISR, LinearCompactor, _mat_mul, _mat_vec


def mat_pow(cols, exponent, width):
    result = [1 << j for j in range(width)]
    base = list(cols)
    while exponent:
        if exponent & 1:
            result = _mat_mul(base, result)
        base = _mat_mul(base, base)
        exponent >>= 1
    return result


def prime_factors(n):
    factors = set()
    d = 2
    while d * d <= n:
        while n % d == 0:
            factors.add(d)
            n //= d
        d += 1
    if n > 1:
        factors.add(n)
    return factors


class TestTransitionMatrix:
    @pytest.mark.parametrize("width", [8, 16, 24])
    def test_matrix_has_maximal_order(self, width):
        """The characteristic polynomial must be primitive: A's
        multiplicative order is exactly 2**width - 1.  (This is the check
        that caught a polynomial-encoding bug during development: a
        singular A silently aliases signatures.)"""
        cols = MISR(width, 1).transition_columns()
        identity = [1 << j for j in range(width)]
        order_bound = (1 << width) - 1
        assert mat_pow(cols, order_bound, width) == identity
        for p in prime_factors(order_bound):
            assert mat_pow(cols, order_bound // p, width) != identity

    def test_matrix_is_invertible(self):
        cols = MISR(16, 1).transition_columns()
        # Invertible over GF(2): columns are linearly independent.  Gaussian
        # elimination via XOR.
        rows = list(cols)
        rank = 0
        for bit in range(16):
            pivot = next(
                (i for i in range(rank, len(rows)) if rows[i] >> bit & 1), None
            )
            if pivot is None:
                continue
            rows[rank], rows[pivot] = rows[pivot], rows[rank]
            for i in range(len(rows)):
                if i != rank and rows[i] >> bit & 1:
                    rows[i] ^= rows[rank]
            rank += 1
        assert rank == 16


class TestMISR:
    def test_unknown_width(self):
        with pytest.raises(ValueError):
            MISR(33, 1)

    def test_num_inputs_validation(self):
        with pytest.raises(ValueError):
            MISR(8, 0)
        with pytest.raises(ValueError):
            MISR(8, 9)

    def test_input_stages_spread(self):
        misr = MISR(16, 4)
        assert misr.input_stages == (0, 4, 8, 12)

    def test_zero_stream_keeps_zero_state(self):
        misr = MISR(16, 1)
        assert misr.compact([[0]] * 100, init=0) == 0

    def test_single_injection_last_cycle(self):
        misr = MISR(16, 1)
        sig = misr.compact([[0]] * 9 + [[1]], init=0)
        assert sig == 1  # injected at stage 0, no further transitions

    def test_deterministic(self):
        stream = [[i % 2] for i in range(50)]
        assert MISR(16, 1).compact(stream) == MISR(16, 1).compact(stream)


class TestLinearity:
    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(st.integers(0, 1), min_size=10, max_size=120),
        st.lists(st.integers(0, 1), min_size=10, max_size=120),
    )
    def test_signature_of_xor_is_xor_of_signatures(self, a, b):
        n = min(len(a), len(b))
        a, b = a[:n], b[:n]
        misr = MISR(16, 1)
        sig_a = misr.compact([[bit] for bit in a], init=0)
        sig_b = misr.compact([[bit] for bit in b], init=0)
        sig_ab = misr.compact([[x ^ y] for x, y in zip(a, b)], init=0)
        assert sig_ab == sig_a ^ sig_b

    def test_initial_state_superposition(self):
        misr = MISR(16, 1)
        stream = [[i % 3 == 0] for i in range(40)]
        sig_with_init = misr.compact(stream, init=0xBEEF)
        sig_zero_init = misr.compact(stream, init=0)
        sig_init_only = misr.compact([[0]] * 40, init=0xBEEF)
        assert sig_with_init == sig_zero_init ^ sig_init_only


class TestParityCompactor:
    def test_signature_is_event_parity(self):
        from repro.bist.misr import ParityCompactor

        compactor = ParityCompactor(2)
        assert compactor.error_signature([], 10) == 0
        assert compactor.error_signature([(0, 1)], 10) == 1
        assert compactor.error_signature([(0, 1), (1, 5)], 10) == 0
        assert compactor.error_signature([(0, 1), (1, 5), (0, 9)], 10) == 1

    def test_validation(self):
        from repro.bist.misr import ParityCompactor

        compactor = ParityCompactor(1)
        with pytest.raises(ValueError):
            compactor.impulse_response(1, 3)
        with pytest.raises(ValueError):
            compactor.impulse_response(0, -1)
        with pytest.raises(ValueError):
            compactor.error_signature([(0, 10)], 10)

    def test_even_error_groups_alias(self, rng):
        """The structural weakness: a group with two errors passes."""
        import numpy as np

        from repro.bist.misr import ParityCompactor
        from repro.bist.session import run_partition_sessions

        events = [(0, 0, 3), (1, 0, 7)]  # two errors, same group
        group_of = np.zeros(4, dtype=np.int32)
        outcome = run_partition_sessions(
            events, group_of, 1, 40, ParityCompactor(1)
        )
        assert outcome.failing_groups == []  # aliased!


class TestLinearCompactor:
    @pytest.mark.parametrize("num_inputs", [1, 3, 8])
    def test_matches_stepped_misr(self, num_inputs):
        random.seed(num_inputs)
        total = 400
        events = [
            (random.randrange(num_inputs), cycle)
            for cycle in random.sample(range(total), 30)
        ]
        compactor = LinearCompactor(16, num_inputs)
        sig_linear = compactor.error_signature(events, total)
        stream = [[0] * num_inputs for _ in range(total)]
        for channel, cycle in events:
            stream[cycle][channel] ^= 1
        sig_hw = MISR(16, num_inputs).compact(stream, init=0)
        assert sig_linear == sig_hw

    def test_empty_event_list(self):
        assert LinearCompactor(16, 1).error_signature([], 100) == 0

    def test_cycle_out_of_range(self):
        compactor = LinearCompactor(16, 1)
        with pytest.raises(ValueError):
            compactor.error_signature([(0, 100)], 100)

    def test_duplicate_events_cancel(self):
        compactor = LinearCompactor(16, 1)
        assert compactor.error_signature([(0, 5), (0, 5)], 10) == 0

    def test_impulse_response_cached(self):
        compactor = LinearCompactor(16, 2)
        first = compactor.impulse_response(1, 12345)
        second = compactor.impulse_response(1, 12345)
        assert first == second != 0

    def test_long_session_within_power_budget(self):
        compactor = LinearCompactor(16, 1)
        # ~1e6 cycles, as in the SOC experiments.
        sig = compactor.error_signature([(0, 0)], 1_000_000)
        assert sig != 0
