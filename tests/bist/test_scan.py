"""Tests for scan-chain configuration and cell/position/cycle mapping."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bist.scan import CellLocation, ScanConfig


class TestConstruction:
    def test_single_chain(self):
        config = ScanConfig.single_chain(5)
        assert config.num_chains == 1
        assert config.num_cells == 5
        assert config.max_length == 5
        assert config.chains[0] == [0, 1, 2, 3, 4]

    def test_balanced_exact(self):
        config = ScanConfig.balanced(8, 4)
        assert [len(c) for c in config.chains] == [2, 2, 2, 2]

    def test_balanced_remainder_goes_to_early_chains(self):
        config = ScanConfig.balanced(10, 4)
        assert [len(c) for c in config.chains] == [3, 3, 2, 2]

    def test_balanced_bad_chain_count(self):
        with pytest.raises(ValueError):
            ScanConfig.balanced(10, 0)

    def test_empty_config_rejected(self):
        with pytest.raises(ValueError):
            ScanConfig([])

    def test_duplicate_cell_rejected(self):
        with pytest.raises(ValueError, match="more than one chain"):
            ScanConfig([[0, 1], [1, 2]])

    def test_non_contiguous_ids_rejected(self):
        with pytest.raises(ValueError, match="0..num_cells-1"):
            ScanConfig([[0, 2]])


class TestMapping:
    def test_location_round_trip(self):
        config = ScanConfig([[3, 0, 4], [1, 2]])
        for cell in range(5):
            loc = config.location(cell)
            assert config.chains[loc.chain][loc.position] == cell

    def test_cells_at_position_ragged(self):
        config = ScanConfig([[0, 1, 2], [3, 4]])
        assert config.cells_at_position(0) == [0, 3]
        assert config.cells_at_position(2) == [2]

    def test_unload_cycle_is_position(self):
        config = ScanConfig([[0, 1, 2], [3, 4]])
        assert config.unload_cycle(0) == 0
        assert config.unload_cycle(2) == 2
        assert config.unload_cycle(4) == 1

    def test_global_cycle(self):
        config = ScanConfig([[0, 1, 2], [3, 4]])
        assert config.max_length == 3
        assert config.global_cycle(0, pattern=0) == 0
        assert config.global_cycle(2, pattern=1) == 3 + 2
        assert config.global_cycle(4, pattern=2) == 6 + 1

    def test_total_cycles(self):
        config = ScanConfig.single_chain(7)
        assert config.total_cycles(10) == 70

    def test_channel(self):
        config = ScanConfig([[0], [1], [2]])
        assert [config.channel(c) for c in range(3)] == [0, 1, 2]


class TestGrids:
    def test_presence_mask(self):
        config = ScanConfig([[0, 1, 2], [3, 4]])
        mask = config.presence_mask()
        assert mask.shape == (2, 3)
        assert mask.tolist() == [[True, True, True], [True, True, False]]

    def test_cell_id_grid(self):
        config = ScanConfig([[0, 1, 2], [3, 4]])
        grid = config.cell_id_grid()
        assert grid.tolist() == [[0, 1, 2], [3, 4, -1]]

    def test_grid_consistent_with_location(self):
        config = ScanConfig.balanced(23, 5)
        grid = config.cell_id_grid()
        for cell in range(23):
            loc = config.location(cell)
            assert grid[loc.chain, loc.position] == cell


@settings(max_examples=25, deadline=None)
@given(num_cells=st.integers(1, 200), num_chains=st.integers(1, 12))
def test_balanced_covers_all_cells_once(num_cells, num_chains):
    config = ScanConfig.balanced(num_cells, num_chains)
    seen = [cell for chain in config.chains for cell in chain]
    assert sorted(seen) == list(range(num_cells))
    lengths = [len(c) for c in config.chains]
    assert max(lengths) - min(lengths) <= 1
