"""Tests for masked BIST session execution and event collection."""

import numpy as np
import pytest

from repro.bist.misr import LinearCompactor
from repro.bist.scan import ScanConfig
from repro.bist.session import (
    SessionOutcome,
    collect_error_events,
    run_partition_sessions,
)
from repro.sim.bitops import pack_bits
from repro.sim.faults import Fault
from repro.sim.faultsim import FaultResponse


def make_response(cell_patterns, num_patterns=8):
    """Response with errors at {cell: [patterns]}."""
    cell_errors = {
        cell: pack_bits([1 if p in pats else 0 for p in range(num_patterns)])
        for cell, pats in cell_patterns.items()
    }
    return FaultResponse(Fault("X", 0), cell_errors, num_patterns)


class TestCollectEvents:
    def test_single_chain_events(self):
        config = ScanConfig.single_chain(4)
        response = make_response({2: [0, 3], 0: [1]}, num_patterns=4)
        events = sorted(collect_error_events(response, config))
        # (position, channel, global_cycle); cycle = pattern*4 + position.
        assert events == [(0, 0, 4), (2, 0, 2), (2, 0, 14)]

    def test_multi_chain_channels(self):
        config = ScanConfig([[0, 1], [2, 3]])
        response = make_response({1: [0], 3: [0]}, num_patterns=2)
        events = sorted(collect_error_events(response, config))
        assert events == [(1, 0, 1), (1, 1, 1)]

    def test_no_errors(self):
        config = ScanConfig.single_chain(4)
        assert collect_error_events(make_response({}), config) == []


class TestRunSessions:
    def test_exact_mode_flags_groups_with_errors(self):
        group_of = np.array([0, 0, 1, 1])
        response = make_response({2: [0]}, num_patterns=2)
        config = ScanConfig.single_chain(4)
        events = collect_error_events(response, config)
        outcome = run_partition_sessions(events, group_of, 2, 8, None)
        assert outcome.failing_groups == [1]
        assert outcome.signatures[0] == [0]
        assert outcome.signatures[1] == [1]

    def test_compactor_mode_consistent_with_exact(self, rng):
        config = ScanConfig.single_chain(12)
        cells = {int(c): [int(p) for p in rng.choice(8, 3, replace=False)]
                 for c in rng.choice(12, 5, replace=False)}
        response = make_response(cells, num_patterns=8)
        events = collect_error_events(response, config)
        group_of = rng.integers(0, 4, 12).astype(np.int32)
        total = config.total_cycles(8)
        exact = run_partition_sessions(events, group_of, 4, total, None)
        real = run_partition_sessions(
            events, group_of, 4, total, LinearCompactor(24, 1)
        )
        # With a 24-bit MISR aliasing is vanishingly unlikely here.
        assert exact.failing_groups == real.failing_groups

    def test_per_channel_signatures(self):
        config = ScanConfig([[0, 1], [2, 3]])
        response = make_response({0: [0], 3: [1]}, num_patterns=2)
        events = collect_error_events(response, config)
        group_of = np.array([0, 1])
        outcome = run_partition_sessions(
            events, group_of, 2, config.total_cycles(2), LinearCompactor(16, 2),
            num_channels=2,
        )
        # Cell 0 = (chain 0, pos 0) -> group 0 channel 0;
        # cell 3 = (chain 1, pos 1) -> group 1 channel 1.
        assert outcome.signatures[0][0] != 0
        assert outcome.signatures[0][1] == 0
        assert outcome.signatures[1][0] == 0
        assert outcome.signatures[1][1] != 0
        assert outcome.failing_pairs == [(0, 0), (1, 1)]

    def test_total_signature_invariant_across_partitions(self, rng):
        """XOR of all group signatures equals the signature of the full
        error stream, for every partition (MISR linearity)."""
        config = ScanConfig.single_chain(20)
        cells = {int(c): [int(p) for p in rng.choice(16, 4, replace=False)]
                 for c in rng.choice(20, 7, replace=False)}
        response = make_response(cells, num_patterns=16)
        events = collect_error_events(response, config)
        total = config.total_cycles(16)
        compactor = LinearCompactor(16, 1)
        full_sig = compactor.error_signature(
            [(ch, cyc) for _pos, ch, cyc in events], total
        )
        for seed in range(5):
            g = np.random.default_rng(seed).integers(0, 4, 20).astype(np.int32)
            outcome = run_partition_sessions(events, g, 4, total, compactor)
            combined = 0
            for per_channel in outcome.signatures:
                combined ^= per_channel[0]
            assert combined == full_sig


class TestSessionOutcome:
    def test_combined_collapses_channels(self):
        outcome = SessionOutcome([[1, 2], [0, 0], [3, 3]])
        combined = outcome.combined()
        assert combined.signatures == [[3], [0], [0]]
        assert combined.failing_groups == [0]

    def test_failing_matrix(self):
        outcome = SessionOutcome([[0, 5], [0, 0]])
        mat = outcome.failing_matrix(2)
        assert mat.tolist() == [[False, True], [False, False]]
