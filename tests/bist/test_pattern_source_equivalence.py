"""The claim in repro.bist.patterns: the LFSR-stepped PRPG and the seeded
numpy source are interchangeable for diagnosis behaviour.  They produce
different bits, but every diagnosis-level property (soundness, DR regime,
clustering) holds identically — pinned here for a small circuit."""

import numpy as np
import pytest

from repro.bist.misr import LinearCompactor
from repro.bist.patterns import PRPG, fast_pattern_matrices
from repro.bist.scan import ScanConfig
from repro.circuit.library import get_circuit
from repro.core.diagnosis import diagnose, diagnostic_resolution
from repro.core.two_step import make_partitioner
from repro.sim.faults import collapse_faults
from repro.sim.faultsim import FaultSimulator
from repro.sim.logicsim import CompiledCircuit

NUM_PATTERNS = 64


def responses_for(source, compiled, num_faults=30):
    if source == "lfsr":
        pi, ff = PRPG(degree=32, seed=0xACE1).pattern_matrices(
            compiled.num_inputs, compiled.num_scan_cells, NUM_PATTERNS
        )
    else:
        pi, ff = fast_pattern_matrices(
            compiled.num_inputs, compiled.num_scan_cells, NUM_PATTERNS, seed=0xACE1
        )
    good = compiled.simulate(pi, ff, NUM_PATTERNS)
    sim = FaultSimulator(compiled, good)
    faults = collapse_faults(compiled.netlist)
    rng = np.random.default_rng(7)
    picks = rng.choice(len(faults), size=num_faults, replace=False)
    return [
        r
        for r in (sim.simulate_fault(faults[i]) for i in sorted(picks))
        if r.detected
    ]


@pytest.fixture(scope="module")
def compiled():
    return CompiledCircuit(get_circuit("s953"))


class TestSourceEquivalence:
    def test_detection_rates_comparable(self, compiled):
        lfsr = responses_for("lfsr", compiled)
        fast = responses_for("fast", compiled)
        assert lfsr and fast
        # Pseudo-random sources of the same quality detect comparable
        # fractions of the same fault sample.
        assert abs(len(lfsr) - len(fast)) <= 8

    def test_diagnosis_regime_matches(self, compiled):
        config = ScanConfig.single_chain(compiled.num_scan_cells)
        partitions = make_partitioner("two-step", config.max_length, 4).partitions(4)
        compactor = LinearCompactor(24, 1)
        drs = {}
        for source in ("lfsr", "fast"):
            results = [
                diagnose(r, config, partitions, compactor)
                for r in responses_for(source, compiled)
            ]
            assert all(r.sound for r in results)
            drs[source] = diagnostic_resolution(results)
        # The DR regime must agree within a factor; bit-identical values
        # are not expected (different pattern bits).
        hi, lo = max(drs.values()), min(drs.values())
        assert hi <= max(4 * lo, lo + 1.5)

    def test_clustering_property_holds_for_both(self, compiled):
        for source in ("lfsr", "fast"):
            spans = []
            for response in responses_for(source, compiled):
                cells = response.failing_cells
                spans.append((max(cells) - min(cells) + 1) / compiled.num_scan_cells)
            assert np.mean(spans) < 0.5
