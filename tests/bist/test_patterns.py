"""Tests for the pseudo-random pattern sources."""

import numpy as np
import pytest

from repro.bist.patterns import PRPG, fast_pattern_matrices
from repro.sim.bitops import pattern_mask, popcount, unpack_bits


class TestPRPG:
    def test_shapes(self):
        pi, ff = PRPG(seed=0xACE1).pattern_matrices(4, 7, 100)
        assert pi.shape == (4, 2)
        assert ff.shape == (7, 2)

    def test_deterministic(self):
        a = PRPG(seed=5).pattern_matrices(3, 5, 64)
        b = PRPG(seed=5).pattern_matrices(3, 5, 64)
        assert np.array_equal(a[0], b[0])
        assert np.array_equal(a[1], b[1])

    def test_seed_changes_patterns(self):
        a = PRPG(seed=5).pattern_matrices(3, 5, 64)
        b = PRPG(seed=6).pattern_matrices(3, 5, 64)
        assert not (np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1]))

    def test_tail_bits_cleared(self):
        pi, ff = PRPG(seed=1).pattern_matrices(2, 2, 70)
        tail = ~pattern_mask(70)[1]
        for row in list(pi) + list(ff):
            assert int(row[1]) & int(tail) == 0

    def test_bits_roughly_balanced(self):
        pi, ff = PRPG(seed=0xACE1).pattern_matrices(1, 1, 512)
        ones = popcount(pi[0]) + popcount(ff[0])
        assert 0.35 < ones / 1024 < 0.65

    def test_scan_bits_precede_pi_bits(self):
        # The bit stream is consumed cell-0-first then PI-0-first for each
        # pattern; two generators with the same seed but swapped shapes
        # must produce the documented interleaving.
        prpg = PRPG(degree=16, seed=77)
        raw = prpg.lfsr.copy().step_many(3)
        pi, ff = PRPG(degree=16, seed=77).pattern_matrices(1, 2, 1)
        assert unpack_bits(ff[0], 1)[0] == raw[0]
        assert unpack_bits(ff[1], 1)[0] == raw[1]
        assert unpack_bits(pi[0], 1)[0] == raw[2]


class TestFastPatterns:
    def test_shapes_and_mask(self):
        pi, ff = fast_pattern_matrices(3, 9, 70, seed=1)
        assert pi.shape == (3, 2)
        assert ff.shape == (9, 2)
        tail = ~pattern_mask(70)[1]
        for row in list(pi) + list(ff):
            assert int(row[1]) & int(tail) == 0

    def test_deterministic(self):
        a = fast_pattern_matrices(2, 2, 128, seed=42)
        b = fast_pattern_matrices(2, 2, 128, seed=42)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_balanced(self):
        pi, ff = fast_pattern_matrices(1, 1, 1024, seed=3)
        ones = popcount(pi[0]) + popcount(ff[0])
        assert 0.4 < ones / 2048 < 0.6
