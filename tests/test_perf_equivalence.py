"""Equivalence properties for the performance layer (PR 1).

The vectorized session kernels, the workload/partition cache and the
worker pool are *pure optimizations*: every one of them must produce
bit-identical signatures, candidate sets and DR values to the scalar,
uncached, serial reference paths.  These tests pin that contract on
randomized workloads.
"""

import numpy as np
import pytest

from repro.bist.misr import LinearCompactor, ParityCompactor
from repro.bist.scan import ScanConfig
from repro.bist.session import (
    ErrorEvents,
    collect_error_event_arrays,
    collect_error_events,
    run_partition_sessions,
    run_partition_sessions_scalar,
)
from repro.experiments.cache import cache_stats, clear_caches
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    build_circuit_workload,
    evaluate_scheme,
    scheme_partitions,
)
from repro.parallel import parallel_map
from repro.sim.bitops import WORD_BITS, pack_bits
from repro.sim.faults import Fault
from repro.sim.faultsim import FaultResponse, FaultSimulator

TINY = ExperimentConfig(num_faults=10, num_faults_large=4, scale=0.1)


def random_response(rng, num_cells, num_patterns, max_cells=6):
    """A FaultResponse with random error events."""
    n_cells = int(rng.integers(1, max_cells + 1))
    cells = rng.choice(num_cells, n_cells, replace=False)
    cell_errors = {}
    for cell in cells:
        n_pats = int(rng.integers(1, min(num_patterns, 9)))
        pats = set(int(p) for p in rng.choice(num_patterns, n_pats, replace=False))
        cell_errors[int(cell)] = pack_bits(
            [1 if p in pats else 0 for p in range(num_patterns)]
        )
    return FaultResponse(Fault("X", 0), cell_errors, num_patterns)


def reference_collect_events(response, scan_config):
    """The pre-vectorization per-bit event extraction loop."""
    events = []
    for cell, vec in response.cell_errors.items():
        loc = scan_config.location(cell)
        for word_idx in range(len(vec)):
            word = int(vec[word_idx])
            while word:
                low = word & -word
                bit = low.bit_length() - 1
                pattern = word_idx * WORD_BITS + bit
                events.append(
                    (loc.position, loc.chain, scan_config.global_cycle(cell, pattern))
                )
                word ^= low
    return events


class TestVectorizedEventCollection:
    @pytest.mark.parametrize("trial", range(10))
    def test_matches_reference_loop(self, rng, trial):
        num_cells = int(rng.integers(4, 40))
        num_patterns = int(rng.integers(2, 130))
        chains = int(rng.integers(1, 4))
        config = (
            ScanConfig.single_chain(num_cells)
            if chains == 1
            else ScanConfig.balanced(num_cells, chains)
        )
        response = random_response(rng, num_cells, num_patterns)
        assert collect_error_events(response, config) == reference_collect_events(
            response, config
        )

    def test_empty_response(self):
        config = ScanConfig.single_chain(4)
        response = FaultResponse(Fault("X", 0), {}, 8)
        assert collect_error_events(response, config) == []
        assert len(collect_error_event_arrays(response, config)) == 0


class TestVectorizedSessions:
    @pytest.mark.parametrize("compactor_kind", ["misr", "parity", "exact"])
    @pytest.mark.parametrize("trial", range(5))
    def test_matches_scalar_kernel(self, rng, compactor_kind, trial):
        num_cells = int(rng.integers(8, 40))
        num_patterns = int(rng.integers(2, 33))
        num_chains = int(rng.integers(1, 4))
        num_groups = int(rng.integers(2, 6))
        config = ScanConfig.balanced(num_cells, num_chains)
        response = random_response(rng, num_cells, num_patterns)
        events = collect_error_event_arrays(response, config)
        group_of = rng.integers(0, num_groups, config.max_length).astype(np.int32)
        total = config.total_cycles(num_patterns)
        if compactor_kind == "misr":
            compactor = LinearCompactor(24, num_chains)
        elif compactor_kind == "parity":
            compactor = ParityCompactor(num_chains)
        else:
            compactor = None
        fast = run_partition_sessions(
            events, group_of, num_groups, total, compactor, num_channels=num_chains
        )
        slow = run_partition_sessions_scalar(
            events.as_tuples(), group_of, num_groups, total, compactor,
            num_channels=num_chains,
        )
        assert fast.signatures == slow.signatures
        assert fast.failing_pairs == slow.failing_pairs
        np.testing.assert_array_equal(
            fast.failing_matrix(num_chains), slow.failing_matrix(num_chains)
        )

    def test_batch_impulse_matches_scalar(self, rng):
        compactor = LinearCompactor(16, 3)
        channels = rng.integers(0, 3, 64)
        steps = rng.integers(0, 5000, 64)
        batch = compactor.batch_impulse_responses(channels, steps)
        for c, s, b in zip(channels, steps, batch):
            assert int(b) == compactor.impulse_response(int(c), int(s))

    def test_tuple_and_array_inputs_agree(self, rng):
        config = ScanConfig.balanced(12, 2)
        response = random_response(rng, 12, 16)
        tuples = collect_error_events(response, config)
        arrays = ErrorEvents.from_tuples(tuples)
        group_of = rng.integers(0, 3, config.max_length).astype(np.int32)
        total = config.total_cycles(16)
        compactor = LinearCompactor(16, 2)
        a = run_partition_sessions(tuples, group_of, 3, total, compactor, 2)
        b = run_partition_sessions(arrays, group_of, 3, total, compactor, 2)
        assert a.signatures == b.signatures


class TestWorkloadCache:
    def setup_method(self):
        clear_caches()

    def teardown_method(self):
        clear_caches()

    def test_workload_built_once(self):
        first = build_circuit_workload("s953", TINY)
        second = build_circuit_workload("s953", TINY)
        assert second is first
        stats = cache_stats()
        assert stats.misses.get("workload") == 1
        assert stats.hits.get("workload") == 1

    def test_distinct_keys_not_shared(self):
        base = build_circuit_workload("s953", TINY)
        other = build_circuit_workload("s953", TINY, num_patterns=32)
        assert other is not base
        assert other.num_patterns == 32

    def test_disabled_cache_matches_enabled(self, monkeypatch):
        cached = build_circuit_workload("s953", TINY)
        monkeypatch.setenv("REPRO_CACHE", "0")
        fresh = build_circuit_workload("s953", TINY)
        assert fresh is not cached
        assert len(fresh.responses) == len(cached.responses)
        for a, b in zip(fresh.responses, cached.responses):
            assert a.fault == b.fault
            assert set(a.cell_errors) == set(b.cell_errors)
            for cell in a.cell_errors:
                np.testing.assert_array_equal(a.cell_errors[cell], b.cell_errors[cell])

    def test_partitions_cached_and_equal(self):
        first = scheme_partitions("two-step", 50, 4, 5)
        second = scheme_partitions("two-step", 50, 4, 5)
        assert second is not first  # fresh outer list
        assert len(second) == len(first)
        for a, b in zip(first, second):
            assert a is b  # shared frozen partitions
        fresh = scheme_partitions("two-step", 50, 4, 5, seed=99)
        assert fresh[0] is not first[0]

    def test_cached_run_reproduces_uncached_dr(self, monkeypatch):
        warm = build_circuit_workload("s953", TINY)
        warm_eval = evaluate_scheme(warm, "two-step", 4, 4, TINY)
        monkeypatch.setenv("REPRO_CACHE", "0")
        cold = build_circuit_workload("s953", TINY)
        cold_eval = evaluate_scheme(cold, "two-step", 4, 4, TINY)
        assert warm_eval.dr == cold_eval.dr
        for a, b in zip(warm_eval.results, cold_eval.results):
            assert a.candidate_cells == b.candidate_cells
            assert a.actual_cells == b.actual_cells


class TestParallelEvaluation:
    def setup_method(self):
        clear_caches()

    def teardown_method(self):
        clear_caches()

    def test_parallel_map_order(self):
        assert parallel_map(lambda i: i * i, 20, workers=2, min_items=2) == [
            i * i for i in range(20)
        ]

    def test_simulate_faults_parallel_identical(self, small_compiled, small_good):
        sim = FaultSimulator(small_compiled, small_good)
        from repro.sim.faults import collapse_faults

        faults = collapse_faults(small_compiled.netlist)[:16]
        serial = sim.simulate_faults(faults, workers=0)
        parallel = sim.simulate_faults(faults, workers=2)
        assert len(serial) == len(parallel)
        for a, b in zip(serial, parallel):
            assert a.fault == b.fault
            assert set(a.cell_errors) == set(b.cell_errors)
            for cell in a.cell_errors:
                np.testing.assert_array_equal(a.cell_errors[cell], b.cell_errors[cell])

    def test_evaluate_scheme_parallel_identical(self):
        workload = build_circuit_workload("s953", TINY)
        serial = evaluate_scheme(workload, "two-step", 3, 4, TINY, workers=0)
        parallel = evaluate_scheme(workload, "two-step", 3, 4, TINY, workers=2)
        assert serial.dr == parallel.dr
        for a, b in zip(serial.results, parallel.results):
            assert a.candidate_cells == b.candidate_cells
            assert a.candidate_history == b.candidate_history


class TestFaultBatchedEvaluation:
    """The fault-batched kernel (PR 4) is a pure optimization too: every
    end-to-end number must match the event-driven path exactly."""

    def setup_method(self):
        clear_caches()

    def teardown_method(self):
        clear_caches()

    def test_evaluate_scheme_batched_vs_event(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_BATCH", "0")
        clear_caches()
        event = evaluate_scheme(
            build_circuit_workload("s953", TINY), "two-step", 3, 4, TINY, workers=0
        )
        monkeypatch.setenv("REPRO_FAULT_BATCH", "16")
        clear_caches()
        batched = evaluate_scheme(
            build_circuit_workload("s953", TINY), "two-step", 3, 4, TINY, workers=0
        )
        assert event.dr == batched.dr
        for a, b in zip(event.results, batched.results):
            assert a.candidate_cells == b.candidate_cells
            assert a.candidate_history == b.candidate_history

    def test_batched_serial_vs_forked_identical(self, small_compiled, small_good):
        from repro.sim.faults import collapse_faults

        sim = FaultSimulator(small_compiled, small_good)
        faults = collapse_faults(small_compiled.netlist)[:16]
        serial = sim.simulate_faults(faults, workers=0, batch=4)
        forked = sim.simulate_faults(faults, workers=2, batch=4)
        for a, b in zip(serial, forked):
            assert a.fault == b.fault
            assert set(a.cell_errors) == set(b.cell_errors)
            for cell in a.cell_errors:
                np.testing.assert_array_equal(a.cell_errors[cell], b.cell_errors[cell])


class TestSoAEvaluation:
    """The SoA gate-eval kernel (PR 6) is a pure optimization as well:
    end-to-end DR and candidate sets must match the per-gate path."""

    def setup_method(self):
        clear_caches()

    def teardown_method(self):
        clear_caches()

    def test_evaluate_scheme_soa_vs_pergate(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOA", "0")
        clear_caches()
        per_gate = evaluate_scheme(
            build_circuit_workload("s953", TINY), "two-step", 3, 4, TINY, workers=0
        )
        monkeypatch.setenv("REPRO_SOA", "1")
        clear_caches()
        via_soa = evaluate_scheme(
            build_circuit_workload("s953", TINY), "two-step", 3, 4, TINY, workers=0
        )
        assert per_gate.dr == via_soa.dr
        for a, b in zip(per_gate.results, via_soa.results):
            assert a.candidate_cells == b.candidate_cells
            assert a.candidate_history == b.candidate_history


class TestDiskCacheEquivalence:
    """Values served from the persistent disk tier must be bit-identical
    to freshly built ones, end to end."""

    def test_disk_warm_run_reproduces_cold_dr(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_DISK_CACHE", str(tmp_path / "dc"))
        clear_caches()
        cold = evaluate_scheme(
            build_circuit_workload("s953", TINY), "two-step", 3, 4, TINY, workers=0
        )
        clear_caches()  # memory gone; next build comes off disk
        warm = evaluate_scheme(
            build_circuit_workload("s953", TINY), "two-step", 3, 4, TINY, workers=0
        )
        clear_caches()
        assert cold.dr == warm.dr
        for a, b in zip(cold.results, warm.results):
            assert a.candidate_cells == b.candidate_cells
            assert a.num_sessions == b.num_sessions


class TestPopcount:
    def test_matches_unpackbits_reference(self, rng):
        from repro.sim import bitops

        for _ in range(10):
            vec = rng.integers(
                0, np.iinfo(np.uint64).max, size=int(rng.integers(1, 9)),
                dtype=np.uint64, endpoint=True,
            )
            reference = int(np.unpackbits(vec.view(np.uint8)).sum())
            assert bitops.popcount(vec) == reference
            # The byte-LUT fallback must agree with whichever path is active.
            assert int(bitops._BYTE_POPCOUNT[vec.view(np.uint8)].sum()) == reference
