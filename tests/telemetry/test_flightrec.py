"""Flight recorder + trace-context unit tests.

Covers the W3C-style traceparent helpers, the bounded ring and its
slow/error reservoirs, and cross-trace tree assembly — in particular the
link-grafting + parent-chain fixpoint that puts a coalesced batch span
(and the fork chunks under it) into *every* member trace's tree.
"""

from __future__ import annotations

import os

import pytest

from repro.telemetry import (
    FlightRecorder,
    assemble_tree,
    current_trace,
    format_traceparent,
    make_record,
    new_span_id,
    new_trace_id,
    parse_traceparent,
    trace_scope,
)


class TestTraceIds:
    def test_id_shapes(self):
        trace_id, span_id = new_trace_id(), new_span_id()
        assert len(trace_id) == 32 and int(trace_id, 16) >= 0
        assert len(span_id) == 16 and int(span_id, 16) >= 0
        assert trace_id == trace_id.lower()

    def test_ids_are_random(self):
        assert len({new_trace_id() for _ in range(64)}) == 64
        assert len({new_span_id() for _ in range(64)}) == 64

    def test_traceparent_roundtrip(self):
        trace_id, span_id = new_trace_id(), new_span_id()
        header = format_traceparent(trace_id, span_id)
        assert header == f"00-{trace_id}-{span_id}-01"
        assert parse_traceparent(header) == (trace_id, span_id)

    @pytest.mark.parametrize("header", [
        None,
        "",
        "garbage",
        "00-abc-def-01",                                   # wrong lengths
        "00-" + "0" * 32 + "-" + "1" * 16 + "-01",         # zero trace id
        "00-" + "1" * 32 + "-" + "0" * 16 + "-01",         # zero span id
        "ff-" + "1" * 32 + "-" + "2" * 16 + "-01",         # forbidden version
        "00-" + "A" * 32 + "-" + "2" * 16 + "-01",         # uppercase hex
        "00-" + "1" * 32,                                  # too few parts
    ])
    def test_invalid_traceparents_rejected(self, header):
        assert parse_traceparent(header) is None

    def test_future_version_tolerated(self):
        trace_id, span_id = new_trace_id(), new_span_id()
        header = f"cc-{trace_id}-{span_id}-01-extrafield"
        assert parse_traceparent(header) == (trace_id, span_id)

    def test_canonical_length_nonzero_version_still_parses(self):
        # Exactly the canonical 55 chars but not version 00: must fall
        # through the slicing fast path to the tolerant parser.
        trace_id, span_id = new_trace_id(), new_span_id()
        assert parse_traceparent(f"cc-{trace_id}-{span_id}-01") == \
            (trace_id, span_id)

    def test_trace_scope_nests_and_restores(self):
        assert current_trace() is None
        with trace_scope("a" * 32, "b" * 16) as outer:
            assert current_trace() == outer
            with trace_scope("c" * 32, "d" * 16):
                assert current_trace() == ("c" * 32, "d" * 16)
            assert current_trace() == outer
        assert current_trace() is None


def _record(name="svc", trace=None, span=None, **kwargs):
    return make_record(name, trace or new_trace_id(),
                       span or new_span_id(), **kwargs)


class TestFlightRecorder:
    def test_capacity_zero_disables(self):
        rec = FlightRecorder(capacity=0)
        assert not rec.enabled
        rec.record(_record())
        snap = rec.snapshot()
        assert snap["recorded"] == 0 and snap["recent"] == []

    def test_env_capacity(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLIGHT_SPANS", "7")
        assert FlightRecorder().capacity == 7
        monkeypatch.setenv("REPRO_FLIGHT_SPANS", "0")
        assert not FlightRecorder().enabled
        monkeypatch.delenv("REPRO_FLIGHT_SPANS")
        assert FlightRecorder().capacity == 4096

    def test_ring_wraps_but_counts_everything(self):
        rec = FlightRecorder(capacity=4)
        for i in range(10):
            rec.record(_record(seq=i))
        snap = rec.snapshot()
        assert snap["recorded"] == 10
        # Newest first, only the last `capacity` retained.
        assert [r["seq"] for r in snap["recent"]] == [9, 8, 7, 6]

    def test_slow_reservoir_keeps_slowest_requests_per_key(self):
        rec = FlightRecorder(capacity=2)  # tiny ring: reservoirs outlive it
        for i in range(20):
            rec.record(_record(kind="request", key="/diagnose",
                               duration_ms=float(i)))
        slow = rec.snapshot()["slow"]["/diagnose"]
        assert [r["duration_ms"] for r in slow] == [
            19.0, 18.0, 17.0, 16.0, 15.0, 14.0, 13.0, 12.0]

    def test_slow_reservoir_floor_rejects_fast_requests_cheaply(self):
        # Once the reservoir is full, requests faster than its slowest
        # member must not churn it (the hot path relies on this being
        # one float compare, not a sort per request).
        rec = FlightRecorder(capacity=4)
        for i in range(10, 19):
            rec.record(_record(kind="request", key="k",
                               duration_ms=float(i)))
        before = [r["duration_ms"] for r in rec.snapshot()["slow"]["k"]]
        for _ in range(50):
            rec.record(_record(kind="request", key="k", duration_ms=1.0))
        assert [r["duration_ms"]
                for r in rec.snapshot()["slow"]["k"]] == before
        rec.record(_record(kind="request", key="k", duration_ms=99.0))
        slow = [r["duration_ms"] for r in rec.snapshot()["slow"]["k"]]
        assert slow[0] == 99.0 and 1.0 not in slow and len(slow) == 8

    def test_slow_reservoir_ignores_non_requests_and_errors(self):
        rec = FlightRecorder(capacity=8)
        rec.record(_record(kind="batch", key="k", duration_ms=500.0))
        rec.record(_record(kind="request", key="k", duration_ms=400.0,
                           status="internal_error"))
        assert "k" not in rec.snapshot()["slow"]
        assert len(rec.snapshot()["errors"]["k"]) == 1

    def test_error_reservoir_keeps_most_recent(self):
        rec = FlightRecorder(capacity=4)
        for i in range(12):
            rec.record(_record(key="k", status="queue_full", seq=i))
        errors = rec.snapshot()["errors"]["k"]
        assert [r["seq"] for r in errors] == [4, 5, 6, 7, 8, 9, 10, 11]

    def test_resize_keeps_newest_records(self):
        rec = FlightRecorder(capacity=8)
        for i in range(8):
            rec.record(_record(seq=i))
        assert rec.resize(3) == 3
        assert [r["seq"] for r in rec.snapshot()["recent"]] == [7, 6, 5]
        assert rec.capacity == 3 and rec.snapshot()["recorded"] == 8

    def test_resize_to_zero_disables_until_reenabled(self):
        rec = FlightRecorder(capacity=4)
        rec.record(_record(seq=0))
        rec.resize(0)
        assert not rec.enabled
        assert rec.snapshot()["recent"] == []
        rec.record(_record(seq=1))           # dropped while disabled
        rec.resize(16)
        rec.record(_record(seq=2))
        assert rec.enabled
        assert [r["seq"] for r in rec.snapshot()["recent"]] == [2]

    def test_reset_clears_everything(self):
        rec = FlightRecorder(capacity=4)
        rec.record(_record(kind="request", duration_ms=1.0))
        rec.record(_record(status="internal_error"))
        rec.reset()
        snap = rec.snapshot()
        assert snap["recorded"] == 0
        assert snap["recent"] == [] and snap["slow"] == {}
        assert snap["errors"] == {}


def _batch_records():
    """head request + member request + linked batch + fork chunk."""
    head, member = new_trace_id(), new_trace_id()
    head_span, member_span = new_span_id(), new_span_id()
    batch_span, chunk_span = new_span_id(), new_span_id()
    records = [
        make_record("service.request", head, head_span, kind="request"),
        make_record("service.request", member, member_span, kind="request"),
        make_record("service.batch", head, batch_span, parent_id=head_span,
                    kind="batch",
                    links=[{"trace_id": member, "span_id": member_span}]),
        # The fork chunk carries the *head* trace (the context active at
        # fork time) but must appear in the member's tree too.
        make_record("pool.chunk", head, chunk_span, parent_id=batch_span,
                    kind="chunk"),
    ]
    return head, member, records


class TestTreeAssembly:
    def test_head_trace_tree(self):
        head, _member, records = _batch_records()
        tree = assemble_tree(records, head)
        assert tree["span_count"] == 3
        assert len(tree["roots"]) == 1
        root = tree["roots"][0]
        assert root["name"] == "service.request"
        batch = root["children"][0]
        assert batch["name"] == "service.batch"
        assert "linked" not in batch
        assert batch["children"][0]["name"] == "pool.chunk"

    def test_member_trace_grafts_batch_and_chunk(self):
        _head, member, records = _batch_records()
        tree = assemble_tree(records, member)
        assert tree["span_count"] == 3
        assert len(tree["roots"]) == 1, "member trace must read as ONE tree"
        root = tree["roots"][0]
        batch = root["children"][0]
        assert batch["name"] == "service.batch"
        assert batch["linked"] is True
        assert batch["children"][0]["name"] == "pool.chunk"

    def test_unknown_trace_is_empty(self):
        _head, _member, records = _batch_records()
        tree = assemble_tree(records, new_trace_id())
        assert tree["span_count"] == 0 and tree["roots"] == []

    def test_pids_collected(self):
        head, _member, records = _batch_records()
        records[-1]["pid"] = os.getpid() + 1  # simulate a fork child
        tree = assemble_tree(records, head)
        assert tree["pids"] == sorted({os.getpid(), os.getpid() + 1})

    def test_records_for_trace_includes_parent_chain_descendants(self):
        head, member, records = _batch_records()
        rec = FlightRecorder(capacity=16)
        rec.record_many(records)
        for trace_id in (head, member):
            names = sorted(r["name"] for r in rec.records_for_trace(trace_id))
            assert names == ["pool.chunk", "service.batch", "service.request"]
