"""MetricsRegistry: counters, gauges, histograms, snapshot algebra."""

from __future__ import annotations

from repro.telemetry import (
    Histogram,
    MetricsRegistry,
    metric_key,
    split_metric_key,
)


class TestKeys:
    def test_plain_and_labelled(self):
        assert metric_key("cache.hits") == "cache.hits"
        key = metric_key("cache.hits", {"kind": "workload"})
        assert key == "cache.hits{kind=workload}"

    def test_labels_sorted_canonically(self):
        a = metric_key("m", {"b": 2, "a": 1})
        b = metric_key("m", {"a": 1, "b": 2})
        assert a == b == "m{a=1,b=2}"

    def test_split_roundtrip(self):
        name, labels = split_metric_key("pool.tasks{worker=3}")
        assert name == "pool.tasks"
        assert labels == {"worker": "3"}
        assert split_metric_key("plain") == ("plain", {})


class TestCounters:
    def test_incr_accumulates(self):
        reg = MetricsRegistry()
        reg.incr("a")
        reg.incr("a", 4)
        assert reg.counter("a") == 5

    def test_label_dimensions_are_distinct(self):
        reg = MetricsRegistry()
        reg.incr("cache.hits", 2, labels={"kind": "workload"})
        reg.incr("cache.hits", 3, labels={"kind": "partitions"})
        assert reg.counter("cache.hits", {"kind": "workload"}) == 2
        assert reg.counter_total("cache.hits") == 5


class TestHistograms:
    def test_streaming_summary(self):
        hist = Histogram()
        for value in (2.0, 4.0, 6.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.total == 12.0
        assert (hist.min, hist.max) == (2.0, 6.0)
        assert hist.mean == 4.0

    def test_merge_combines_bounds(self):
        a = Histogram()
        a.observe(1.0)
        b = Histogram()
        b.observe(5.0)
        b.observe(9.0)
        a.merge(b.to_dict())
        assert a.count == 3
        assert (a.min, a.max) == (1.0, 9.0)

    def test_merge_empty_is_noop(self):
        hist = Histogram()
        hist.observe(2.0)
        hist.merge(Histogram().to_dict())
        assert hist.count == 1


class TestSnapshotAlgebra:
    def test_diff_reports_only_activity(self):
        reg = MetricsRegistry()
        reg.incr("before", 10)
        before = reg.snapshot()
        reg.incr("before", 1)
        reg.incr("fresh", 2)
        reg.observe("h", 3.0)
        delta = reg.diff(before)
        assert delta["counters"] == {"before": 1, "fresh": 2}
        assert delta["histograms"]["h"]["count"] == 1

    def test_merge_of_diff_reconstructs_totals(self):
        """Parent + child-delta == child having run in the parent: the
        fork-merge invariant."""
        parent = MetricsRegistry()
        parent.incr("faults", 5)
        parent.observe("chunk", 2.0)
        # Simulate the forked child: it inherits a copy, works, diffs.
        child = MetricsRegistry()
        child.merge(parent.snapshot())
        inherited = child.snapshot()
        child.incr("faults", 7)
        child.observe("chunk", 4.0)
        child.gauge("util", 0.5)
        parent.merge(child.diff(inherited))
        assert parent.counter("faults") == 12
        snap = parent.snapshot()
        assert snap["histograms"]["chunk"]["count"] == 2
        assert snap["histograms"]["chunk"]["sum"] == 6.0
        assert snap["gauges"]["util"] == 0.5

    def test_reset_clears_everything(self):
        reg = MetricsRegistry()
        reg.incr("a")
        reg.gauge("g", 1.0)
        reg.observe("h", 1.0)
        reg.reset()
        snap = reg.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_snapshot_is_json_ready(self):
        import json

        reg = MetricsRegistry()
        reg.incr("a", 2)
        reg.observe("h", 1.5)
        reg.gauge("g", 0.25)
        assert json.loads(json.dumps(reg.snapshot()))["counters"]["a"] == 2
