"""Telemetry tests share the process-wide tracer/registry — isolate them."""

from __future__ import annotations

import pytest

from repro.telemetry import METRICS, PROFILER, TRACER


@pytest.fixture(autouse=True)
def clean_telemetry():
    """Reset the global tracer, registry and profiler samples around every
    test, and restore the enabled flag (other test modules must keep
    seeing the default)."""
    was_enabled = TRACER.enabled
    TRACER.reset()
    yield
    TRACER.enabled = was_enabled
    TRACER.reset()
    METRICS.reset()
    PROFILER.stop()
    PROFILER.data.clear()
