"""End-to-end telemetry over the real pipeline: stage coverage when
tracing, strict silence when not, and numbers identical either way."""

from __future__ import annotations

import pytest

from repro.experiments import default_config
from repro.experiments import cache
from repro.experiments.table1 import run_table1
from repro.telemetry import METRICS, TRACER, enable_tracing, span_rollup


@pytest.fixture
def small_config(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.2")
    return default_config(num_faults=4, num_faults_large=4)


class TestTracedRun:
    def test_table1_covers_pipeline_stages(self, small_config):
        enable_tracing()
        cache.clear()
        run_table1(small_config)
        names = {row["name"] for row in span_rollup()}
        expected = {
            "workload.build", "netlist.compile", "fault.sample",
            "partitions.generate", "diagnose", "dr.score",
        }
        assert expected <= names, f"missing stages: {expected - names}"

    def test_cache_and_session_metrics_recorded(self, small_config):
        cache.clear()
        run_table1(small_config)
        snap = METRICS.snapshot()
        assert any(k.startswith("cache.misses") for k in snap["counters"])
        assert snap["counters"].get("session.sessions_compacted", 0) > 0
        assert snap["counters"].get("faultsim.faults", 0) > 0
        assert snap["counters"].get("diagnosis.faults", 0) > 0
        # Second run: the workload and partition stores must hit.
        run_table1(small_config)
        stats = cache.stats()
        assert stats.hits.get("workload", 0) >= 1
        assert stats.hit_rate("workload") > 0
        assert stats.entries > 0
        assert stats.evictions == 0


class TestDisabledRun:
    def test_no_spans_no_stderr_and_identical_dr(self, small_config, capsys):
        assert not TRACER.enabled
        cache.clear()
        untraced = run_table1(small_config)
        assert TRACER.roots() == []
        captured = capsys.readouterr()
        assert captured.err == ""
        assert captured.out == ""
        # Tracing on changes nothing about the numbers.
        enable_tracing()
        cache.clear()
        traced = run_table1(small_config)
        assert traced.dr == untraced.dr
