"""Prometheus text-exposition renderer, verified by an actual parser.

``_parse`` implements the exposition-format grammar (v0.0.4) strictly
enough that any malformed line the renderer could emit — bad metric
name, unescaped label value, sample without a ``# TYPE`` family — fails
the test, not just a substring check.
"""

from __future__ import annotations

import math
import re

from repro.service.latency import LatencyBoard
from repro.telemetry import METRICS, render_prometheus, sanitize_metric_name

_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_TYPE_LINE = re.compile(rf"^# TYPE ({_NAME}) (counter|gauge|summary|histogram)$")
_SAMPLE_LINE = re.compile(
    rf"^({_NAME})(\{{[^{{}}]*\}})? (NaN|[+-]?(?:Inf|[0-9.eE+-]+))$"
)
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _parse(text):
    """(families, samples): ``# TYPE`` declarations and every sample as
    ``(name, labels_dict, value)``.  Raises AssertionError on any line
    that is not valid exposition format."""
    families = {}
    samples = []
    assert text.endswith("\n"), "exposition must end with a newline"
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("#"):
            match = _TYPE_LINE.match(line)
            assert match, f"bad metadata line: {line!r}"
            families[match.group(1)] = match.group(2)
            continue
        match = _SAMPLE_LINE.match(line)
        assert match, f"bad sample line: {line!r}"
        name, labels_raw, value = match.groups()
        labels = {}
        if labels_raw:
            body = labels_raw[1:-1].rstrip(",")
            consumed = ",".join(
                f'{k}="{v}"' for k, v in _LABEL.findall(body)
            )
            assert consumed == body, f"bad labels: {labels_raw!r}"
            labels = dict(_LABEL.findall(body))
        samples.append((name, labels, value))
    for name, _labels, _value in samples:
        base = re.sub(r"_(total|sum|count|bucket|min|max)$", "", name)
        assert name in families or base in families, (
            f"sample {name!r} has no # TYPE family"
        )
    return families, samples


class TestNameSanitization:
    def test_dots_and_bad_chars_fold(self):
        assert sanitize_metric_name("cache.disk.hits") == "repro_cache_disk_hits"
        assert sanitize_metric_name("weird name-1") == "repro_weird_name_1"

    def test_namespace_optional(self):
        assert sanitize_metric_name("x.y", namespace="") == "x_y"


class TestRegistryRendering:
    def test_counters_gauges_histograms_parse(self):
        METRICS.incr("cache.hits", 3, labels={"kind": "workload"})
        METRICS.incr("cache.hits", 2, labels={"kind": "partitions"})
        METRICS.gauge("pool.utilization", 0.75)
        METRICS.observe("service.batch_size", 4)
        METRICS.observe("service.batch_size", 8)
        families, samples = _parse(render_prometheus(METRICS.snapshot()))

        assert families["repro_cache_hits_total"] == "counter"
        hits = {
            labels["kind"]: value
            for name, labels, value in samples
            if name == "repro_cache_hits_total"
        }
        assert hits == {"workload": "3", "partitions": "2"}

        assert families["repro_pool_utilization"] == "gauge"
        assert ("repro_pool_utilization", {}, "0.75") in samples

        assert families["repro_service_batch_size"] == "summary"
        by_name = {name: value for name, labels, value in samples}
        assert by_name["repro_service_batch_size_sum"] == "12"
        assert by_name["repro_service_batch_size_count"] == "2"
        # min/max ride along as companion gauges.
        assert families["repro_service_batch_size_min"] == "gauge"
        assert by_name["repro_service_batch_size_min"] == "4"
        assert by_name["repro_service_batch_size_max"] == "8"

    def test_label_values_escaped(self):
        METRICS.incr("odd.counter", 1, labels={"path": 'a"b\\c'})
        text = render_prometheus(METRICS.snapshot())
        families, samples = _parse(text)
        (_, labels, value), = [
            s for s in samples if s[0] == "repro_odd_counter_total"
        ]
        assert value == "1"
        assert labels["path"] == r"a\"b\\c"

    def test_newlines_in_label_values_escape_to_one_line(self):
        # A raw newline in a label value would split the sample across
        # two exposition lines — the strict parser rejects both halves.
        METRICS.incr("odd.counter", 1, labels={"path": 'a\nb\\n"c'})
        text = render_prometheus(METRICS.snapshot())
        families, samples = _parse(text)
        (_, labels, value), = [
            s for s in samples if s[0] == "repro_odd_counter_total"
        ]
        assert value == "1"
        # \n must render as the two-character escape, backslash first
        # (escaping order matters: backslash -> newline -> quote).
        assert labels["path"] == 'a\\nb\\\\n\\"c'

    def test_empty_registry_renders_empty_scrape(self):
        families, samples = _parse(render_prometheus(
            {"counters": {}, "gauges": {}, "histograms": {}}
        ))
        assert families == {} and samples == []


class TestLatencyHistogramRendering:
    def test_buckets_are_cumulative_with_inf_terminal(self):
        board = LatencyBoard(names=("total", "execute"))
        for ms in (0.5, 2.0, 2.1, 50.0):
            board["total"].observe(ms / 1000)
        board["execute"].observe(0.001)
        buckets, totals = board.prometheus_series()
        families, samples = _parse(render_prometheus(
            {"counters": {}, "gauges": {}, "histograms": {}},
            latency_buckets=buckets, latency_totals=totals,
        ))
        metric = "repro_service_request_seconds"
        assert families[metric] == "histogram"

        total_buckets = [
            (float(labels["le"]), int(value))
            for name, labels, value in samples
            if name == f"{metric}_bucket" and labels["stage"] == "total"
            and labels["le"] != "+Inf"
        ]
        bounds = [b for b, _ in total_buckets]
        counts = [c for _, c in total_buckets]
        assert bounds == sorted(bounds)
        assert counts == sorted(counts), "bucket counts must be cumulative"
        inf = [
            int(value) for name, labels, value in samples
            if name == f"{metric}_bucket" and labels["stage"] == "total"
            and labels["le"] == "+Inf"
        ]
        count = [
            int(value) for name, labels, value in samples
            if name == f"{metric}_count" and labels["stage"] == "total"
        ]
        assert inf == count == [4]
        assert counts[-1] == 4
        (total_sum,) = [
            float(value) for name, labels, value in samples
            if name == f"{metric}_sum" and labels["stage"] == "total"
        ]
        assert math.isclose(total_sum, 0.0546, rel_tol=1e-6)

    def test_quantile_consistency_with_board(self):
        board = LatencyBoard(names=("total",))
        for i in range(100):
            board["total"].observe(0.001 * (i + 1))
        buckets, totals = board.prometheus_series()
        series = buckets["total"]
        # Bucket upper bound holding the p95 must match the board's own
        # estimate (same data, same buckets).
        p95 = board["total"].quantile(0.95)
        rank = 95
        holding = next(b for b, c in series if c >= rank)
        assert math.isclose(min(holding, 0.1), p95, rel_tol=1e-9)
