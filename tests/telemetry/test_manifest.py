"""Manifest build/validate round trip, span rollup, JSONL trace files."""

from __future__ import annotations

import json

from repro.experiments.config import default_config
from repro.telemetry import (
    METRICS,
    MANIFEST_SCHEMA_NAME,
    build_manifest,
    config_hash,
    enable_tracing,
    read_trace_jsonl,
    render_span_tree,
    span,
    span_rollup,
    validate_manifest,
    write_manifest,
    write_trace_jsonl,
)


def _run_fake_pipeline():
    enable_tracing()
    with span("experiment:test"):
        with span("workload.build", circuit="s27"):
            with span("fault.sample") as sp:
                sp.add("responses", 4)
        with span("diagnose", scheme="two-step") as sp:
            sp.add("faults", 4)
    METRICS.incr("cache.misses", 1, labels={"kind": "workload"})
    METRICS.incr("diagnosis.faults", 4)


class TestManifestRoundTrip:
    def test_build_validate_write_read(self, tmp_path):
        _run_fake_pipeline()
        config = default_config(num_faults=4, num_faults_large=4)
        manifest = build_manifest(config=config, seed=config.fault_seed,
                                  extra={"trace_file": "trace.jsonl"})
        assert validate_manifest(manifest) == []
        assert manifest["schema"] == MANIFEST_SCHEMA_NAME
        assert manifest["seed"] == config.fault_seed
        assert manifest["config_hash"] == config_hash(config)
        path = write_manifest(tmp_path / "manifest.json", manifest)
        loaded = json.loads(path.read_text())
        assert validate_manifest(loaded) == []
        names = {row["name"] for row in loaded["span_rollup"]}
        assert {"experiment:test", "workload.build", "fault.sample",
                "diagnose"} <= names
        assert loaded["metrics"]["counters"]["diagnosis.faults"] == 4

    def test_env_knobs_recorded(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        manifest = build_manifest()
        assert manifest["env"]["REPRO_WORKERS"] == "3"
        assert "REPRO_CACHE" in manifest["env"]

    def test_config_hash_stable_and_sensitive(self):
        a = default_config(num_faults=4, num_faults_large=4)
        b = default_config(num_faults=4, num_faults_large=4)
        c = default_config(num_faults=5, num_faults_large=5)
        assert config_hash(a) == config_hash(b)
        assert config_hash(a) != config_hash(c)


class TestValidation:
    def test_rejects_non_object(self):
        assert validate_manifest([]) != []
        assert validate_manifest(None) != []

    def test_reports_missing_and_mistyped_fields(self):
        manifest = build_manifest()
        del manifest["git_sha"]
        manifest["span_rollup"] = "nope"
        errors = validate_manifest(manifest)
        assert any("git_sha: missing" in e for e in errors)
        assert any("span_rollup" in e for e in errors)

    def test_rejects_future_schema_version(self):
        manifest = build_manifest()
        manifest["schema_version"] = 999
        assert any("newer" in e for e in validate_manifest(manifest))


class TestProfileSchemaV3:
    """v3 added the required ``profile`` record; v2 manifests (written
    before the profiler existed) must keep validating without one."""

    def test_built_manifest_is_v3_with_profile(self):
        manifest = build_manifest()
        assert manifest["schema_version"] == 3
        profile = manifest["profile"]
        assert isinstance(profile["enabled"], bool)
        assert isinstance(profile["samples"], int)
        assert isinstance(profile["spans"], list)
        assert validate_manifest(manifest) == []

    def test_v2_manifest_without_profile_still_validates(self):
        manifest = build_manifest()
        manifest["schema_version"] = 2
        del manifest["profile"]
        assert validate_manifest(manifest) == []

    def test_v3_manifest_missing_profile_rejected(self):
        manifest = build_manifest()
        del manifest["profile"]
        errors = validate_manifest(manifest)
        assert any("profile" in e and "schema v3" in e for e in errors)

    def test_v3_profile_wrong_type_rejected(self):
        manifest = build_manifest()
        manifest["profile"] = "lots of samples"
        assert any("profile" in e for e in validate_manifest(manifest))

    def test_v3_profile_mistyped_fields_rejected(self):
        manifest = build_manifest()
        manifest["profile"] = {"enabled": "yes", "samples": 3.5}
        errors = validate_manifest(manifest)
        assert any("profile.enabled" in e for e in errors)
        assert any("profile.samples" in e for e in errors)
        assert any("profile.spans: missing" in e for e in errors)

    def test_write_read_roundtrip_keeps_profile(self, tmp_path):
        from repro.telemetry import PROFILER

        PROFILER.data.record("span:experiment:test;m:f")
        manifest = build_manifest()
        path = write_manifest(tmp_path / "manifest.json", manifest)
        loaded = json.loads(path.read_text())
        assert validate_manifest(loaded) == []
        assert loaded["profile"]["samples"] >= 1
        assert loaded["profile"]["spans"][0]["span"] == "experiment:test"


class TestRollup:
    def test_rollup_aggregates_by_name(self):
        enable_tracing()
        for _ in range(3):
            with span("diagnose") as sp:
                sp.add("faults", 2)
        rollup = {row["name"]: row for row in span_rollup()}
        assert rollup["diagnose"]["count"] == 3
        assert rollup["diagnose"]["counters"] == {"faults": 6}

    def test_self_time_excludes_children(self):
        import time

        enable_tracing()
        with span("parent"):
            with span("child"):
                time.sleep(0.005)
        rollup = {row["name"]: row for row in span_rollup()}
        assert rollup["parent"]["self_s"] <= rollup["parent"]["wall_s"]
        assert rollup["child"]["wall_s"] >= 0.004

    def test_render_tree_mentions_stages(self):
        _run_fake_pipeline()
        tree = render_span_tree()
        assert "experiment:test" in tree
        assert "workload.build" in tree
        assert "circuit=s27" in tree


class TestTraceJsonl:
    def test_jsonl_roundtrip(self, tmp_path):
        _run_fake_pipeline()
        path = write_trace_jsonl(tmp_path / "trace.jsonl")
        spans = read_trace_jsonl(path)
        assert [s.name for s in spans] == ["experiment:test"]
        assert [c.name for c in spans[0].children] == [
            "workload.build", "diagnose"
        ]
        # Rollup over the reloaded spans matches the live one by names.
        live = {row["name"] for row in span_rollup()}
        reloaded = {row["name"] for row in span_rollup(spans)}
        assert live == reloaded
