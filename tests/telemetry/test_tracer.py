"""Span nesting, timing monotonicity, and the disabled no-op path."""

from __future__ import annotations

import sys
import time

from repro.telemetry import (
    NULL_SPAN,
    Span,
    TRACER,
    disable_tracing,
    enable_tracing,
    span,
    trace_enabled,
    traced,
)


class TestNesting:
    def test_children_attach_to_enclosing_span(self):
        enable_tracing()
        with span("outer") as outer:
            with span("middle") as middle:
                with span("inner"):
                    pass
            with span("middle2"):
                pass
        assert [c.name for c in outer.children] == ["middle", "middle2"]
        assert [c.name for c in middle.children] == ["inner"]

    def test_finished_roots_collected_in_order(self):
        enable_tracing()
        with span("first"):
            pass
        with span("second"):
            pass
        assert [s.name for s in TRACER.roots()] == ["first", "second"]

    def test_attributes_and_counters(self):
        enable_tracing()
        with span("stage", circuit="s953") as sp:
            sp.set_attribute("patterns", 128)
            sp.add("faults", 3)
            sp.add("faults", 2)
        assert sp.attributes == {"circuit": "s953", "patterns": 128}
        assert sp.counters == {"faults": 5}

    def test_walk_covers_whole_tree(self):
        enable_tracing()
        with span("a"):
            with span("b"):
                with span("c"):
                    pass
            with span("d"):
                pass
        (root,) = TRACER.roots()
        assert [s.name for s in root.walk()] == ["a", "b", "c", "d"]


class TestTiming:
    def test_durations_monotone_and_nested(self):
        enable_tracing()
        with span("outer") as outer:
            time.sleep(0.002)
            with span("inner") as inner:
                time.sleep(0.002)
            time.sleep(0.002)
        assert outer.closed and inner.closed
        assert inner.duration_s > 0
        assert outer.duration_s >= inner.duration_s
        assert inner.start_wall >= outer.start_wall
        assert inner.end_wall <= outer.end_wall
        # Self time excludes the child.
        assert outer.self_s <= outer.duration_s - inner.duration_s + 1e-6

    def test_cpu_time_recorded(self):
        enable_tracing()
        with span("busy") as sp:
            sum(i * i for i in range(50_000))
        assert sp.cpu_s > 0
        assert sp.duration_s > 0


class TestDisabled:
    def test_no_spans_and_no_stderr(self, capsys):
        disable_tracing()
        with span("anything") as sp:
            with span("nested"):
                pass
        assert sp is NULL_SPAN
        assert TRACER.roots() == []
        captured = capsys.readouterr()
        assert captured.err == ""
        assert captured.out == ""

    def test_null_span_api_is_inert(self):
        disable_tracing()
        with span("x") as sp:
            sp.set_attribute("k", "v")
            sp.add("n", 3)
        assert TRACER.roots() == []

    def test_decorator_passthrough_when_disabled(self):
        disable_tracing()

        @traced("wrapped")
        def compute(x):
            return x + 1

        assert compute(1) == 2
        assert TRACER.roots() == []

    def test_enable_disable_roundtrip(self):
        disable_tracing()
        assert not trace_enabled()
        enable_tracing()
        assert trace_enabled()
        with span("now-on"):
            pass
        assert [s.name for s in TRACER.roots()] == ["now-on"]


class TestDecorator:
    def test_traced_records_span(self):
        enable_tracing()

        @traced()
        def stage():
            return 42

        assert stage() == 42
        (root,) = TRACER.roots()
        assert root.name.endswith("stage")


class TestWireFormat:
    def test_dict_roundtrip_preserves_tree(self):
        enable_tracing()
        with span("root", circuit="s27") as root:
            root.add("events", 7)
            with span("leaf"):
                pass
        data = root.to_dict()
        clone = Span.from_dict(data)
        assert clone.name == "root"
        assert clone.attributes == {"circuit": "s27"}
        assert clone.counters == {"events": 7}
        assert [c.name for c in clone.children] == ["leaf"]
        assert abs(clone.duration_s - root.duration_s) < 1e-6

    def test_capture_and_adopt(self):
        """The fork-merge protocol: spans closed inside a capture are
        detached, and adopt re-attaches them under the current span."""
        enable_tracing()
        with TRACER.capture() as collected:
            with span("worker-stage"):
                pass
        assert [s.name for s in collected] == ["worker-stage"]
        assert TRACER.roots() == []  # captured, not filed globally
        with span("parent") as parent:
            TRACER.adopt([s.to_dict() for s in collected])
        assert [c.name for c in parent.children] == ["worker-stage"]
