"""Telemetry across forked workers: metric deltas and span adoption."""

from __future__ import annotations

import pytest

from repro.parallel import fork_available, parallel_map
from repro.telemetry import METRICS, TRACER, enable_tracing, span

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable"
)


def _task(i: int) -> int:
    METRICS.incr("forktest.calls")
    METRICS.incr("forktest.value", i)
    with span("forktest.stage") as sp:
        sp.add("items", 1)
    return i * i


def _spin_task(i: int) -> int:
    """CPU-bound enough for a 400 Hz sampler to catch inside a worker."""
    import time

    deadline = time.perf_counter() + 0.05
    acc = i
    while time.perf_counter() < deadline:
        acc = (acc * 1103515245 + 12345) % (1 << 31)
    return acc % 7


@needs_fork
class TestForkMerge:
    def test_metrics_merge_across_workers(self):
        before = METRICS.counter("forktest.calls")
        results = parallel_map(_task, 16, workers=2, min_items=2)
        assert results == [i * i for i in range(16)]
        assert METRICS.counter("forktest.calls") - before == 16
        assert METRICS.counter_total("pool.tasks") >= 16

    def test_pool_metrics_recorded(self):
        parallel_map(_task, 12, workers=2, min_items=2)
        snap = METRICS.snapshot()
        assert snap["histograms"]["pool.chunk_size"]["count"] >= 1
        assert snap["gauges"]["pool.workers_seen"] >= 1
        assert 0 < snap["gauges"]["pool.utilization"] <= 1.5

    def test_worker_spans_adopted_under_pool_map(self):
        enable_tracing()
        with span("driver") as driver:
            parallel_map(_task, 10, workers=2, min_items=2)
        (pool_span,) = [c for c in driver.children if c.name == "pool.map"]
        worker_spans = [
            s for s in pool_span.walk() if s.name == "forktest.stage"
        ]
        assert len(worker_spans) == 10
        assert sum(s.counters.get("items", 0) for s in worker_spans) == 10

    def test_serial_path_identical_results(self):
        serial = parallel_map(_task, 9, workers=0)
        forked = parallel_map(_task, 9, workers=2, min_items=2)
        assert serial == forked

    def test_profile_samples_merge_from_workers(self):
        from repro.telemetry import PROFILER

        PROFILER.data.clear()
        PROFILER.start(hz=400)
        try:
            parallel_map(_spin_task, 8, workers=2, min_items=2)
        finally:
            PROFILER.stop()
        # Workers resume sampling after the fork and ship their deltas
        # back through the chunk payload; the parent pool must now hold
        # stacks recorded inside the forked children's task code.
        assert PROFILER.data.total > 0
        assert any("_spin_task" in key for key in PROFILER.data.samples), (
            sorted(PROFILER.data.samples)
        )

    def test_inactive_profiler_ships_no_profile_payload(self):
        from repro.telemetry import PROFILER

        PROFILER.data.clear()
        parallel_map(_spin_task, 8, workers=2, min_items=2)
        assert PROFILER.data.total == 0


class TestSerialFallback:
    def test_small_population_never_forks(self):
        before = METRICS.counter_total("pool.tasks")
        results = parallel_map(lambda i: i, 3, workers=4)
        assert results == [0, 1, 2]
        assert METRICS.counter_total("pool.tasks") == before

    def test_disabled_tracing_adds_no_spans(self):
        assert not TRACER.enabled
        parallel_map(_task, 4, workers=0)
        assert TRACER.roots() == []
