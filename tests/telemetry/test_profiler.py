"""Sampling profiler: fold algebra, env resolution, both backends, span
attribution, and the collapsed-stack export."""

from __future__ import annotations

import importlib
import os
import time

import pytest

from repro.telemetry import enable_tracing, span
from repro.telemetry.profiler import (
    DEFAULT_HZ,
    NO_SPAN,
    SPAN_PREFIX,
    ProfileData,
    SamplingProfiler,
    profile_enabled,
    resolve_profile_hz,
    write_profile_folded,
)

telemetry_log = importlib.import_module("repro.telemetry.log")


def busy(seconds: float) -> int:
    """CPU-bound spin the sampler can catch."""
    deadline = time.perf_counter() + seconds
    acc = 0
    while time.perf_counter() < deadline:
        acc += sum(i * i for i in range(200))
    return acc


class TestEnvResolution:
    def test_profile_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        assert profile_enabled() is False

    @pytest.mark.parametrize("raw", ["1", "true", "on", "YES"])
    def test_profile_truthy(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_PROFILE", raw)
        assert profile_enabled() is True

    @pytest.mark.parametrize("raw", ["0", "false", "off", "no", ""])
    def test_profile_falsy(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_PROFILE", raw)
        assert profile_enabled() is False

    def test_unparseable_profile_warns_once(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_LOG", "info")
        monkeypatch.setenv("REPRO_PROFILE", "maybe")
        monkeypatch.setattr(telemetry_log, "_WARNED_ENV", set())
        assert profile_enabled() is False
        err = capsys.readouterr().err
        assert "REPRO_PROFILE" in err and "'maybe'" in err
        assert profile_enabled() is False
        assert capsys.readouterr().err == ""

    def test_hz_default_and_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE_HZ", raising=False)
        assert resolve_profile_hz() == DEFAULT_HZ
        monkeypatch.setenv("REPRO_PROFILE_HZ", "250")
        assert resolve_profile_hz() == 250
        assert resolve_profile_hz(10) == 10  # explicit argument wins

    @pytest.mark.parametrize("raw", ["fast", "-5", "0", "1.5"])
    def test_bad_hz_warns_once_and_keeps_default(
        self, monkeypatch, capsys, raw
    ):
        monkeypatch.setenv("REPRO_LOG", "info")
        monkeypatch.setenv("REPRO_PROFILE_HZ", raw)
        monkeypatch.setattr(telemetry_log, "_WARNED_ENV", set())
        assert resolve_profile_hz() == DEFAULT_HZ
        err = capsys.readouterr().err
        assert "REPRO_PROFILE_HZ" in err and repr(raw) in err
        assert resolve_profile_hz() == DEFAULT_HZ
        assert capsys.readouterr().err == ""


class TestProfileData:
    def test_record_total_and_folded_lines(self):
        data = ProfileData()
        data.record("span:a;m:f;m:g")
        data.record("span:a;m:f;m:g")
        data.record("span:b;m:h")
        assert data.total == 3
        assert data.folded_lines() == [
            "span:a;m:f;m:g 2",
            "span:b;m:h 1",
        ]

    def test_snapshot_diff_merge_roundtrip(self):
        parent = ProfileData()
        parent.record("span:a;m:f")
        before = parent.snapshot()
        parent.record("span:a;m:f")
        parent.record("span:b;m:g")
        delta = parent.diff(before)
        assert delta == {"span:a;m:f": 1, "span:b;m:g": 1}
        other = ProfileData()
        other.record("span:a;m:f")
        other.merge(delta)
        other.merge(None)  # no-op
        assert other.samples == {"span:a;m:f": 2, "span:b;m:g": 1}

    def test_span_table_self_vs_cumulative(self):
        data = ProfileData()
        # f is on-stack for all 5 samples of span a, the leaf for 2.
        data.samples = {
            "span:a;m:f;m:g": 3,
            "span:a;m:f": 2,
            "span:b;m:h": 1,
        }
        table = data.span_table()
        assert [entry["span"] for entry in table] == ["a", "b"]
        functions = {
            row["function"]: row for row in table[0]["functions"]
        }
        assert functions["m:f"]["cum"] == 5
        assert functions["m:f"]["self"] == 2
        assert functions["m:g"]["cum"] == 3
        assert functions["m:g"]["self"] == 3
        assert table[0]["samples"] == 5

    def test_recursive_frames_count_cum_once(self):
        data = ProfileData()
        data.samples = {"span:a;m:f;m:f;m:f": 4}
        table = data.span_table()
        row = table[0]["functions"][0]
        assert row["function"] == "m:f"
        assert row["cum"] == 4  # not 12

    def test_span_table_truncates_to_top_functions(self):
        data = ProfileData()
        for i in range(20):
            data.samples[f"span:a;m:f{i}"] = 1
        assert len(data.span_table(top_functions=5)[0]["functions"]) == 5


class TestSamplingBackends:
    def test_sigprof_collects_and_attributes_spans(self):
        profiler = SamplingProfiler(hz=200)
        enable_tracing()
        assert profiler.start() == "sigprof"
        try:
            with span("profiled.work"):
                busy(0.3)
        finally:
            profiler.stop()
        assert profiler.mode is None
        assert profiler.active is False
        assert profiler.data.total > 0
        attributed = [
            key for key in profiler.data.samples
            if key.startswith(SPAN_PREFIX + "profiled.work;")
        ]
        assert attributed, profiler.data.samples
        # Stacks carry real frame labels (module:qualname).
        assert any("busy" in key for key in attributed)

    def test_thread_backend_samples_all_threads(self, monkeypatch):
        monkeypatch.setattr(
            SamplingProfiler, "_sigprof_available", staticmethod(lambda: False)
        )
        profiler = SamplingProfiler(hz=200)
        assert profiler.start() == "thread"
        try:
            busy(0.3)
        finally:
            profiler.stop()
        assert profiler.data.total > 0
        assert all(
            key.startswith(SPAN_PREFIX) for key in profiler.data.samples
        )
        # No span open -> the (space-sanitized) no-span label.
        no_span = NO_SPAN.replace(" ", "_")
        assert any(
            key.startswith(SPAN_PREFIX + no_span)
            for key in profiler.data.samples
        )

    def test_start_is_idempotent_and_stop_twice_safe(self):
        profiler = SamplingProfiler(hz=50)
        first = profiler.start()
        assert profiler.start() == first
        profiler.stop()
        profiler.stop()
        assert profiler.mode is None
        assert profiler.last_mode == first

    def test_inactive_profiler_has_zero_cost_surface(self):
        profiler = SamplingProfiler()
        assert profiler.active is False
        assert profiler.data.total == 0
        record = profiler.manifest_record()
        assert record["enabled"] is False
        assert record["mode"] is None
        assert record["samples"] == 0
        assert record["spans"] == []

    def test_resume_after_fork_noop_without_profiling(self):
        profiler = SamplingProfiler()
        assert profiler.resume_after_fork() is False

    def test_resume_after_fork_restarts_in_child(self):
        if not hasattr(os, "fork"):
            pytest.skip("fork unavailable")
        profiler = SamplingProfiler(hz=200)
        profiler.start()
        read_fd, write_fd = os.pipe()
        pid = os.fork()
        if pid == 0:  # child
            os.close(read_fd)
            try:
                resumed = profiler.resume_after_fork()
                busy(0.2)
                ok = resumed and profiler.data.total > 0
                os.write(write_fd, b"1" if ok else b"0")
            finally:
                os._exit(0)
        os.close(write_fd)
        try:
            verdict = os.read(read_fd, 1)
            os.waitpid(pid, 0)
        finally:
            os.close(read_fd)
            profiler.stop()
        assert verdict == b"1"


class TestManifestRecord:
    def test_record_after_sampling(self):
        profiler = SamplingProfiler(hz=200)
        profiler.start()
        busy(0.2)
        profiler.stop()
        record = profiler.manifest_record(top_functions=3)
        assert record["enabled"] is True
        assert record["mode"] in ("sigprof", "thread")
        assert record["hz"] == 200
        assert record["samples"] == profiler.data.total > 0
        assert record["spans"]
        assert all(len(e["functions"]) <= 3 for e in record["spans"])


class TestFoldedExport:
    def test_write_folded_format(self, tmp_path):
        data = ProfileData()
        data.samples = {"span:a;m:f;m:g": 7, "span:b;m:h": 2}
        path = write_profile_folded(tmp_path / "profile.folded", data)
        text = path.read_text()
        assert text == "span:a;m:f;m:g 7\nspan:b;m:h 2\n"
        # flamegraph.pl contract: `stack count`, stack frames ;-separated,
        # no spaces inside the stack.
        for line in text.strip().splitlines():
            stack, _, count = line.rpartition(" ")
            assert stack and int(count) > 0

    def test_write_empty_profile_is_empty_file(self, tmp_path):
        path = write_profile_folded(tmp_path / "empty.folded", ProfileData())
        assert path.read_text() == ""
