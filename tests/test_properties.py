"""Cross-stack property tests: invariants that must hold end to end,
from generated circuit through fault simulation to diagnosis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bist.misr import LinearCompactor
from repro.bist.patterns import fast_pattern_matrices
from repro.bist.scan import ScanConfig
from repro.circuit.generate import CircuitProfile, generate_circuit
from repro.core.diagnosis import diagnose
from repro.core.superposition import apply_superposition
from repro.core.two_step import make_partitioner
from repro.sim.faults import collapse_faults
from repro.sim.faultsim import FaultSimulator
from repro.sim.logicsim import CompiledCircuit
from repro.soc.schedule import TestSchedule as Schedule
from repro.soc.schedule import diagnose_schedule
from repro.soc.core_wrapper import EmbeddedCore
from repro.soc.testrail import TestRail as SocRail


def build_responses(seed, n_ff=16, n_gates=90, num_patterns=24, max_faults=6):
    """Real fault responses from a freshly generated circuit."""
    profile = CircuitProfile(f"prop{seed}", 5, 3, n_ff, n_gates, depth=5)
    netlist = generate_circuit(profile, seed=seed)
    compiled = CompiledCircuit(netlist)
    pi, ff = fast_pattern_matrices(
        compiled.num_inputs, compiled.num_scan_cells, num_patterns, seed=seed
    )
    good = compiled.simulate(pi, ff, num_patterns)
    sim = FaultSimulator(compiled, good)
    rng = np.random.default_rng(seed)
    faults = collapse_faults(netlist)
    rng.shuffle(faults)
    responses = []
    for fault in faults:
        response = sim.simulate_fault(fault)
        if response.detected:
            responses.append(response)
        if len(responses) >= max_faults:
            break
    return compiled, responses


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 2**10),
    scheme=st.sampled_from(["random", "interval", "two-step", "deterministic"]),
    num_partitions=st.integers(1, 5),
)
def test_end_to_end_soundness(seed, scheme, num_partitions):
    """Real circuit, real faults, every scheme: no failing cell is ever
    pruned under exact comparison."""
    compiled, responses = build_responses(seed)
    config = ScanConfig.single_chain(compiled.num_scan_cells)
    partitions = make_partitioner(scheme, config.max_length, 4).partitions(
        num_partitions
    )
    for response in responses:
        result = diagnose(response, config, partitions, compactor=None)
        assert result.sound


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 2**10))
def test_partition_order_does_not_matter(seed):
    """Intersection pruning commutes: shuffling the partition sequence
    leaves the final candidate set unchanged."""
    compiled, responses = build_responses(seed, max_faults=3)
    config = ScanConfig.single_chain(compiled.num_scan_cells)
    partitions = make_partitioner("two-step", config.max_length, 4).partitions(4)
    rng = np.random.default_rng(seed)
    shuffled = list(partitions)
    rng.shuffle(shuffled)
    for response in responses:
        forward = diagnose(response, config, partitions, compactor=None)
        scrambled = diagnose(response, config, shuffled, compactor=None)
        assert forward.candidate_cells == scrambled.candidate_cells


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 2**10))
def test_appending_partitions_never_grows_candidates(seed):
    compiled, responses = build_responses(seed, max_faults=3)
    config = ScanConfig.single_chain(compiled.num_scan_cells)
    gen = make_partitioner("random", config.max_length, 4)
    few = gen.partitions(2)
    more = few + gen.partitions(2)
    for response in responses:
        small = diagnose(response, config, few, compactor=None)
        large = diagnose(response, config, more, compactor=None)
        assert large.candidate_cells <= small.candidate_cells


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 2**10))
def test_superposition_is_idempotent(seed):
    compiled, responses = build_responses(seed, max_faults=3)
    config = ScanConfig.single_chain(compiled.num_scan_cells)
    partitions = make_partitioner("two-step", config.max_length, 4).partitions(3)
    compactor = LinearCompactor(24, 1)
    for response in responses:
        result = diagnose(response, config, partitions, compactor)
        once = apply_superposition(result, config)
        twice = apply_superposition(once, config)
        assert once.candidate_cells == twice.candidate_cells


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 2**10), chains=st.integers(1, 4))
def test_chain_count_does_not_break_soundness(seed, chains):
    compiled, responses = build_responses(seed, max_faults=3)
    config = ScanConfig.balanced(compiled.num_scan_cells, chains)
    partitions = make_partitioner(
        "two-step", config.max_length, 4
    ).partitions(3)
    compactor = LinearCompactor(24, chains)
    for response in responses:
        result = diagnose(response, config, partitions, compactor)
        assert result.sound


class TestScheduleEquivalence:
    def test_single_phase_schedule_matches_plain_diagnosis(self, rng):
        profile = CircuitProfile("sched-eq", 4, 2, 10, 50, depth=4)
        core = EmbeddedCore(generate_circuit(profile, seed=1), num_patterns=16)
        rail = SocRail("eq", [core], tam_width=1)
        schedule = Schedule(rail, {core.name: 16})
        assert len(schedule.phases) == 1
        responses = core.sample_fault_responses(3, rng)
        for response in responses:
            lifted = rail.lift_response(0, response)
            via_schedule = diagnose_schedule(
                lifted, schedule, scheme="two-step", num_partitions=3,
                num_groups=4, misr_width=24,
            )
            partitions = make_partitioner(
                "two-step", rail.scan_config.max_length, 4
            ).partitions(3)
            plain = diagnose(
                lifted, rail.scan_config, partitions, LinearCompactor(24, 1)
            )
            assert via_schedule.candidate_cells == plain.candidate_cells
