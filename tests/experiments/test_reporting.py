"""Tests for table rendering."""

from repro.experiments.reporting import format_cell, render_series, render_table


class TestFormatCell:
    def test_none(self):
        assert format_cell(None) == "-"

    def test_float_precision(self):
        assert format_cell(1.23456) == "1.23"
        assert format_cell(1.23456, precision=3) == "1.235"

    def test_int_and_str(self):
        assert format_cell(7) == "7"
        assert format_cell("abc") == "abc"


class TestRenderTable:
    def test_contains_title_headers_rows(self):
        text = render_table("My Table", ["a", "bb"], [[1, 2.5], ["x", None]])
        assert "My Table" in text
        assert "a" in text and "bb" in text
        assert "2.50" in text
        assert "-" in text

    def test_columns_aligned(self):
        text = render_table("T", ["col"], [[1], [100]])
        lines = text.splitlines()
        widths = {len(line) for line in lines[1:] if line}
        assert len(widths) == 1  # all rule/data lines equal width


class TestRenderSeries:
    def test_one_row(self):
        text = render_series("S", ["x", "y"], [1, 2])
        assert text.count("\n") >= 3
        assert "1" in text and "2" in text
