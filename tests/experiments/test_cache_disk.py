"""Tests for the persistent disk cache tier (``REPRO_DISK_CACHE``)."""

import os
import pickle

import numpy as np
import pytest

from repro.experiments import cache, cache_disk
from repro.experiments.cache_disk import (
    DISK_KINDS,
    FORMAT_VERSION,
    MAGIC,
    SCHEMA_VERSION,
    DiskCacheError,
    cache_dir,
    enabled_for,
    entry_path,
    key_digest,
)


@pytest.fixture()
def disk_root(tmp_path, monkeypatch):
    root = tmp_path / "disk-cache"
    monkeypatch.setenv("REPRO_DISK_CACHE", str(root))
    cache_disk.reset_stats()
    cache.clear()
    yield root
    cache.clear()
    cache_disk.reset_stats()


def sample_value(seed=0):
    rng = np.random.default_rng(seed)
    return {
        "matrix": rng.integers(0, 2**63, size=(17, 3), dtype=np.uint64),
        "name": f"entry-{seed}",
        "nested": [1, 2.5, ("a", rng.standard_normal(5))],
    }


class TestConfiguration:
    def test_disabled_when_env_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_DISK_CACHE", raising=False)
        assert cache_dir() is None
        assert not enabled_for("workload")

    def test_enabled_only_for_persisted_kinds(self, disk_root):
        assert enabled_for("workload")
        assert enabled_for("partitions")
        assert not enabled_for("sessions")  # derived, cheap, not persisted

    def test_digest_depends_on_kind_key_and_schema(self):
        key = ("s953", 1.0, 128, 7, 400)
        assert key_digest("workload", key) != key_digest("partitions", key)
        assert key_digest("workload", key) != key_digest("workload", key + (1,))
        assert len(key_digest("workload", key)) == 40


class TestRoundTrip:
    def test_store_then_load(self, disk_root):
        key = ("s953", 1.0, 128, 7, 400)
        value = sample_value(3)
        assert cache_disk.store("workload", key, value)
        loaded, hit = cache_disk.load("workload", key)
        assert hit
        assert loaded["name"] == value["name"]
        assert np.array_equal(loaded["matrix"], value["matrix"])
        assert np.array_equal(loaded["nested"][2][1], value["nested"][2][1])

    def test_load_survives_pickle_round_trip_of_arrays(self, disk_root):
        # Arrays come back as mmap-backed copy-on-write views; they must
        # still behave like normal writable-after-copy arrays.
        key = ("s27", 1.0, 64, 0, 10)
        cache_disk.store("workload", key, sample_value(5))
        loaded, hit = cache_disk.load("workload", key)
        assert hit
        copied = loaded["matrix"].copy()
        copied[0, 0] = np.uint64(42)
        assert copied[0, 0] == 42

    def test_missing_entry_is_miss(self, disk_root):
        value, hit = cache_disk.load("workload", ("absent", 1.0, 64, 0, 1))
        assert not hit and value is None
        assert cache_disk.stats()["misses"] == 1

    def test_atomic_write_leaves_no_temp_files(self, disk_root):
        cache_disk.store("workload", ("k", 1), sample_value())
        leftovers = [p for p in disk_root.iterdir() if p.name.startswith(".tmp-")]
        assert leftovers == []


class TestCorruption:
    def test_truncated_entry_quarantined(self, disk_root):
        key = ("s27", 1.0, 64, 0, 10)
        cache_disk.store("workload", key, sample_value())
        path = entry_path(disk_root, "workload", key)
        path.write_bytes(path.read_bytes()[:20])
        value, hit = cache_disk.load("workload", key)
        assert not hit and value is None
        assert cache_disk.stats()["errors"] == 1
        assert not path.exists()  # quarantined, costs one attempt only

    def test_bad_magic_quarantined(self, disk_root):
        key = ("s27", 1.0, 64, 0, 11)
        cache_disk.store("workload", key, sample_value())
        path = entry_path(disk_root, "workload", key)
        raw = bytearray(path.read_bytes())
        raw[:4] = b"XXXX"
        path.write_bytes(bytes(raw))
        _, hit = cache_disk.load("workload", key)
        assert not hit
        assert not path.exists()

    def test_stale_format_version_is_miss(self, disk_root):
        import struct

        key = ("s27", 1.0, 64, 0, 12)
        cache_disk.store("workload", key, sample_value())
        path = entry_path(disk_root, "workload", key)
        raw = bytearray(path.read_bytes())
        struct.pack_into("<I", raw, 4, FORMAT_VERSION + 1)
        path.write_bytes(bytes(raw))
        _, hit = cache_disk.load("workload", key)
        assert not hit

    def test_unwritable_dir_degrades_to_no_store(self, disk_root, monkeypatch):
        monkeypatch.setenv("REPRO_DISK_CACHE", str(disk_root / "file-in-the-way"))
        (disk_root / "file-in-the-way").parent.mkdir(parents=True, exist_ok=True)
        (disk_root / "file-in-the-way").write_text("not a directory")
        assert not cache_disk.store("workload", ("k", 2), sample_value())


class TestConcurrentWriters:
    def test_lost_write_race_is_benign_hit(self, disk_root):
        key = ("s27", 1.0, 64, 0, 77)
        assert cache_disk.store("workload", key, sample_value(1))
        # Second writer of the same content-addressed entry loses the
        # race: no rewrite, success reported, race counted.
        assert cache_disk.store("workload", key, sample_value(1))
        stats = cache_disk.stats()
        assert stats["races"] == 1
        loaded, hit = cache_disk.load("workload", key)
        assert hit and loaded["name"] == "entry-1"

    def test_temp_names_carry_pid(self, disk_root, monkeypatch):
        captured = {}
        real_mkstemp = cache_disk.tempfile.mkstemp

        def spy(**kwargs):
            captured.update(kwargs)
            return real_mkstemp(**kwargs)

        monkeypatch.setattr(cache_disk.tempfile, "mkstemp", spy)
        cache_disk.store("workload", ("pid-check", 1), sample_value())
        assert f"-{os.getpid()}-" in captured["prefix"]

    @pytest.mark.skipif(not hasattr(os, "fork"), reason="needs os.fork")
    def test_many_processes_store_same_key(self, disk_root):
        key = ("s953", 1.0, 128, 7, 400)
        value = sample_value(9)
        pids = []
        for _ in range(4):
            pid = os.fork()
            if pid == 0:
                ok = False
                try:
                    ok = cache_disk.store("workload", key, value)
                finally:
                    os._exit(0 if ok else 1)
            pids.append(pid)
        for pid in pids:
            _, status = os.waitpid(pid, 0)
            assert os.waitstatus_to_exitcode(status) == 0
        # Exactly one entry, intact, and no leaked temp files.
        entries = [p for p in disk_root.iterdir()
                   if not p.name.startswith(".tmp-")]
        assert len(entries) == 1
        leftovers = [p for p in disk_root.iterdir()
                     if p.name.startswith(".tmp-")]
        assert leftovers == []
        loaded, hit = cache_disk.load("workload", key)
        assert hit
        assert np.array_equal(loaded["matrix"], value["matrix"])


class TestScan:
    def test_missing_dir_raises_clear_error(self, tmp_path):
        with pytest.raises(DiskCacheError, match="does not exist"):
            cache_disk.scan(tmp_path / "nope")

    def test_unset_env_raises_clear_error(self, monkeypatch):
        monkeypatch.delenv("REPRO_DISK_CACHE", raising=False)
        with pytest.raises(DiskCacheError, match="no disk cache configured"):
            cache_disk.scan()

    def test_path_not_a_directory(self, tmp_path):
        target = tmp_path / "plain-file"
        target.write_text("hello")
        with pytest.raises(DiskCacheError, match="not a directory"):
            cache_disk.scan(target)

    def test_summary_counts_kinds_and_corrupt(self, disk_root):
        cache_disk.store("workload", ("a", 1), sample_value(1))
        cache_disk.store("workload", ("b", 2), sample_value(2))
        cache_disk.store("partitions", ("c", 3), [1, 2, 3])
        (disk_root / "workload-deadbeef.rpdc").write_bytes(b"garbage!")
        summary = cache_disk.scan(disk_root)
        assert summary["kinds"]["workload"]["entries"] == 2
        assert summary["kinds"]["partitions"]["entries"] == 1
        assert summary["entries"] == 3
        assert summary["corrupt"] == 1
        assert summary["bytes"] > 0


class TestMemoizedIntegration:
    def test_disk_hit_skips_builder(self, disk_root):
        key = ("s27", 1.0, 64, 0, 13)
        calls = []

        def builder():
            calls.append(1)
            return sample_value(8)

        first = cache.memoized("workload", key, builder)
        assert calls == [1]
        cache.clear()  # drop memory tier; disk tier persists
        second = cache.memoized("workload", key, builder)
        assert calls == [1]  # builder not re-run: served from disk
        assert np.array_equal(first["matrix"], second["matrix"])
        assert cache_disk.stats()["hits"] == 1

    def test_unpersisted_kind_always_builds(self, disk_root):
        calls = []
        cache.memoized("sessions", ("x",), lambda: calls.append(1) or 1)
        cache.clear()
        cache.memoized("sessions", ("x",), lambda: calls.append(1) or 2)
        assert len(calls) == 2
        assert not list(disk_root.glob("sessions-*"))

    def test_stats_reports_disk_counters(self, disk_root):
        key = ("s27", 1.0, 64, 0, 14)
        cache.memoized("workload", key, lambda: sample_value())
        cache.clear()
        cache.memoized("workload", key, lambda: sample_value())
        snapshot = cache.stats()
        assert snapshot.disk["hits"] == 1
        assert snapshot.disk["bytes_written"] > 0


class TestWarmFromDisk:
    def test_warm_seeds_memo_store(self, disk_root):
        keys = [("s27", 1.0, 64, 0, i) for i in range(3)]
        for i, key in enumerate(keys):
            cache_disk.store("workload", key, sample_value(i))
        cache.clear()
        loaded = cache.warm_from_disk()
        assert loaded == 3
        # A subsequent memoized() is a pure memory hit: builder untouched.
        sentinel = []
        cache.memoized("workload", keys[0], lambda: sentinel.append(1))
        assert sentinel == []

    def test_warm_respects_byte_budget(self, disk_root):
        for i in range(4):
            cache_disk.store("workload", ("big", i), sample_value(i))
        cache.clear()
        loaded = cache.warm_from_disk(max_bytes=1)
        assert loaded <= 1  # budget hit after the first entry at most

    def test_warm_skips_corrupt_entries(self, disk_root):
        cache_disk.store("workload", ("good", 1), sample_value())
        (disk_root / "workload-0000000000.rpdc").write_bytes(b"junk")
        cache.clear()
        assert cache.warm_from_disk() == 1

    def test_warm_with_no_disk_cache_is_noop(self, monkeypatch):
        monkeypatch.delenv("REPRO_DISK_CACHE", raising=False)
        assert cache.warm_from_disk() == 0


class TestEngineWarm:
    def test_engine_warm_from_disk(self, disk_root):
        from repro.service.engine import DiagnosisEngine

        cache_disk.store("workload", ("s27", 1.0, 64, 0, 15), sample_value())
        cache.clear()
        engine = DiagnosisEngine(workers=0)
        assert engine.warm_from_disk() == 1

    def test_engine_warm_degrades_on_empty_dir(self, disk_root):
        from repro.service.engine import DiagnosisEngine

        disk_root.mkdir(parents=True, exist_ok=True)
        engine = DiagnosisEngine(workers=0)
        assert engine.warm_from_disk() == 0
