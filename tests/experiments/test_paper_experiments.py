"""Integration tests: every table/figure/ablation module runs end to end at
a reduced scale and produces structurally sensible output."""

import pytest

from repro.experiments.ablations import (
    run_aliasing_ablation,
    run_binary_search_ablation,
    run_deterministic_ablation,
    run_group_count_ablation,
    run_interval_count_ablation,
)
from repro.experiments.clustering import run_clustering
from repro.experiments.config import ExperimentConfig
from repro.experiments.figure3 import run_figure3
from repro.experiments.figure5 import run_figure5
from repro.experiments.soc_tables import run_table3, run_table4
from repro.experiments.table1 import SCHEMES, run_table1
from repro.experiments.table2 import groups_for_length, run_table2
from repro.soc.d695 import build_d695_soc
from repro.soc.stitch import build_stitched_soc

TINY = ExperimentConfig(num_faults=10, num_faults_large=5, scale=0.08)
SMALL = ExperimentConfig(num_faults=12, num_faults_large=6)


class TestTable1:
    def test_runs_and_has_expected_shape(self):
        result = run_table1(SMALL)
        for scheme in SCHEMES:
            assert len(result.dr[scheme]) == 8
            # DR weakly decreasing in partitions.
            sweep = result.dr[scheme]
            assert all(a >= b - 1e-9 for a, b in zip(sweep, sweep[1:]))
        assert "Table 1" in result.render()

    def test_two_step_matches_interval_at_one_partition(self):
        result = run_table1(SMALL)
        assert result.dr["two-step"][0] == pytest.approx(result.dr["interval"][0])


class TestTable2:
    def test_groups_for_length(self):
        assert groups_for_length(500) == 16
        assert groups_for_length(2000) == 32

    def test_rows_complete(self):
        result = run_table2(TINY, circuits=["s953", "s5378"])
        assert [r.circuit for r in result.rows] == ["s953", "s5378"]
        for row in result.rows:
            assert row.dr_random >= 0
            assert row.dr_two_step >= 0
            assert row.dr_random_pruned <= row.dr_random + 1e-9
            assert row.dr_two_step_pruned <= row.dr_two_step + 1e-9
        assert "Table 2" in result.render()


class TestSocTables:
    @pytest.fixture(scope="class")
    def soc1(self):
        return build_stitched_soc(num_patterns=32, scale=0.08)

    @pytest.fixture(scope="class")
    def soc2(self):
        return build_d695_soc(num_patterns=32, scale=0.08)

    def test_table3(self, soc1):
        result = run_table3(TINY, soc=soc1)
        assert len(result.rows) == 6
        for row in result.rows:
            assert row.dr_random >= -1e-9
            assert row.dr_two_step >= -1e-9
        assert "single scan chain" in result.render()

    def test_table4(self, soc2):
        result = run_table4(TINY, soc=soc2)
        assert len(result.rows) == 8
        assert "multiple scan chains" in result.render()

    def test_figure5(self, soc1):
        result = run_figure5(TINY, soc=soc1, max_partitions=10)
        assert set(result.partitions_needed) == {c.name for c in soc1.cores}
        for by_scheme in result.partitions_needed.values():
            for scheme, needed in by_scheme.items():
                assert needed is None or 1 <= needed <= 10
        assert "Figure 5" in result.render()


class TestFigure3:
    def test_structure(self):
        result = run_figure3(SMALL)
        assert len(result.failing_cells) >= 1
        assert len(result.interval_groups) == 4
        assert len(result.random_groups) == 4
        all_interval = sorted(p for g in result.interval_groups for p in g)
        all_random = sorted(p for g in result.random_groups for p in g)
        assert all_interval == list(range(result.num_cells))
        assert all_random == list(range(result.num_cells))
        # Soundness: suspects include the failing cells.
        assert result.interval_suspects >= len(result.failing_cells)
        assert result.random_suspects >= len(result.failing_cells)
        assert "Figure 3" in result.render()


class TestClustering:
    def test_relative_spans_small(self):
        result = run_clustering(("s953",), SMALL)
        row = result.rows[0]
        assert row.num_faults > 0
        assert 0 < row.mean_relative_span <= 1
        assert row.mean_failing_cells >= 1
        assert "clustering" in result.render()


class TestAblations:
    def test_interval_count(self):
        result = run_interval_count_ablation(
            "s953", counts=(0, 1, 2), num_partitions=4, num_groups=4, config=SMALL
        )
        assert set(result.dr_by_interval_count) == {0, 1, 2}
        assert "Ablation 1" in result.render()

    def test_group_count(self):
        result = run_group_count_ablation(
            "s953", group_counts=(4, 8), num_partitions=4, config=SMALL
        )
        assert len(result.rows) == 2
        sessions = [row[1] for row in result.rows]
        assert sessions == [16, 32]
        assert "Ablation 2" in result.render()

    def test_aliasing(self):
        result = run_aliasing_ablation(
            "s953", widths=(8, 16), num_partitions=4, num_groups=4, config=SMALL
        )
        labels = [row[0] for row in result.rows]
        assert labels == ["exact", "parity", "MISR-8", "MISR-16"]
        exact_violations = result.rows[0][2]
        assert exact_violations == 0
        # Parity aliases on every even error count: it can only do worse
        # (or equal) on soundness than any MISR.
        by_label = {row[0]: row for row in result.rows}
        assert by_label["parity"][2] >= by_label["MISR-16"][2]
        assert "Ablation 3" in result.render()

    def test_deterministic(self):
        result = run_deterministic_ablation(
            "s953", partition_counts=(1, 2), num_groups=4, config=SMALL
        )
        assert len(result.rows) == 4
        assert "Ablation 4" in result.render()

    def test_binary_search(self):
        result = run_binary_search_ablation(
            "s953", num_partitions=4, num_groups=4, config=SMALL
        )
        assert result.mean_sessions_binary > 0
        assert result.partition_sessions == 16
        assert result.dr_binary <= result.dr_two_step + 1e-9
        assert "Ablation 5" in result.render()
