"""Tests for experiment configuration and environment knobs."""

import pytest

from repro.experiments.config import (
    ExperimentConfig,
    default_config,
    env_float,
    env_int,
    paper_config,
)


class TestEnvHelpers:
    def test_env_int_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_X", raising=False)
        assert env_int("REPRO_TEST_X", 7) == 7

    def test_env_int_set(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_X", "42")
        assert env_int("REPRO_TEST_X", 7) == 42

    def test_env_int_blank_is_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_X", "  ")
        assert env_int("REPRO_TEST_X", 7) == 7

    def test_env_float(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_Y", "0.25")
        assert env_float("REPRO_TEST_Y", None) == 0.25


class TestConfigs:
    def test_default_reads_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "9")
        monkeypatch.setenv("REPRO_FAULTS_LARGE", "4")
        monkeypatch.setenv("REPRO_SCALE", "0.1")
        config = default_config()
        assert config.num_faults == 9
        assert config.num_faults_large == 4
        assert config.scale == 0.1

    def test_overrides_beat_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "9")
        config = default_config(num_faults=3)
        assert config.num_faults == 3

    def test_paper_config_is_full_scale(self):
        config = paper_config()
        assert config.num_faults == 500
        assert config.num_faults_large == 500
        assert config.scale is None

    def test_faults_for_large_circuits(self):
        config = ExperimentConfig(num_faults=100, num_faults_large=40)
        assert config.faults_for("s953") == 100
        assert config.faults_for("s38417") == 40

    def test_misr_width_default(self):
        assert ExperimentConfig().misr_width == 24
