"""Integration tests for the ATPG top-up and pattern-count experiments."""

import pytest

from repro.experiments.atpg_topup import run_atpg_topup
from repro.experiments.config import ExperimentConfig
from repro.experiments.patterns_ablation import run_pattern_count_ablation

SMALL = ExperimentConfig(num_faults=12, num_faults_large=6)


class TestAtpgTopup:
    def test_combined_coverage_never_below_random(self):
        result = run_atpg_topup(("s953",), config=SMALL, max_missed=10)
        row = result.rows[0]
        assert 0 <= row.random_coverage <= 1
        assert row.combined_coverage >= row.random_coverage - 1e-12
        assert row.podem_testable <= row.missed
        assert "PODEM" in result.render()


class TestPatternCountAblation:
    def test_coverage_weakly_increases_with_patterns(self):
        result = run_pattern_count_ablation(
            "s953", pattern_counts=(16, 64), num_partitions=4, num_groups=4,
            config=SMALL,
        )
        coverages = [row[1] for row in result.rows]
        assert coverages[0] <= coverages[1] + 1e-12
        cycles = [row[4] for row in result.rows]
        assert cycles[0] < cycles[1]
        assert "pattern count" in result.render()
