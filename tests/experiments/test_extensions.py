"""Integration tests for the extension experiments."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.extensions import (
    run_multi_core,
    run_scan_order_ablation,
    run_vector_diagnosis,
)
from repro.soc.stitch import build_stitched_soc

SMALL = ExperimentConfig(num_faults=10, num_faults_large=5)
TINY = ExperimentConfig(num_faults=8, num_faults_large=4, scale=0.08)


class TestVectorDiagnosisExperiment:
    def test_runs_and_reports_all_schemes(self):
        result = run_vector_diagnosis("s953", config=SMALL)
        schemes = [row[0] for row in result.rows]
        assert schemes == ["random", "interval", "two-step"]
        for row in result.rows:
            assert row[2] >= 0
        assert "failing-vector" in result.render()


class TestScanOrderExperiment:
    def test_random_order_destroys_clustering(self):
        result = run_scan_order_ablation("s5378", config=SMALL)
        by_label = {row[0]: row for row in result.rows}
        structural = by_label["structural"]
        randomized = by_label["random"]
        # The mean failing span grows when the order is shuffled...
        assert randomized[1] > structural[1]
        # ...which is the paper's clustering premise made causal.
        assert "ordering" in result.render()


class TestMultiCoreExperiment:
    def test_two_step_wins_with_two_faulty_cores(self):
        soc = build_stitched_soc(num_patterns=32, scale=0.08)
        result = run_multi_core(soc=soc, config=TINY, num_groups=16)
        by_scheme = {row[0]: row[1] for row in result.rows}
        assert set(by_scheme) == {"random", "two-step"}
        assert by_scheme["two-step"] <= by_scheme["random"] + 1e-9
        assert "faulty cores" in result.render()
