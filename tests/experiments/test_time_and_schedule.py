"""Integration tests for the diagnosis-time and bypass-schedule experiments."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.extensions import (
    _clip_to_budget,
    run_diagnosis_time,
    run_schedule_diagnosis,
)
from repro.sim.bitops import pack_bits
from repro.sim.faults import Fault
from repro.sim.faultsim import FaultResponse
from repro.soc.stitch import build_stitched_soc

TINY = ExperimentConfig(num_faults=8, num_faults_large=4, scale=0.08)


class TestDiagnosisTime:
    def test_cycles_reported_per_core(self):
        soc = build_stitched_soc(num_patterns=32, scale=0.08)
        result = run_diagnosis_time(
            soc=soc, config=TINY, max_partitions=12, num_groups=16
        )
        assert len(result.rows) == 6
        for row in result.rows:
            random_mc, two_step_mc = row[1], row[2]
            if random_mc is not None and two_step_mc is not None:
                assert two_step_mc <= random_mc + 1e-9
        assert "tester cycles" in result.render()


class TestScheduleDiagnosis:
    def test_runs_on_embedded_d695(self):
        result = run_schedule_diagnosis(config=TINY)
        assert len(result.rows) == 8
        assert result.num_phases >= 2
        for row in result.rows:
            if row[2] is not None:
                assert row[2] >= -1e-9
        assert "bypass schedule" in result.render()


class TestClipToBudget:
    def test_late_errors_dropped(self):
        response = FaultResponse(
            Fault("X", 0),
            {0: pack_bits([0, 1, 0, 1, 0, 1, 0, 1])},
            8,
        )
        clipped = _clip_to_budget(response, 4)
        from repro.sim.bitops import unpack_bits

        assert unpack_bits(clipped.cell_errors[0], 8) == [0, 1, 0, 1, 0, 0, 0, 0]

    def test_cell_removed_when_all_errors_late(self):
        response = FaultResponse(
            Fault("X", 0), {0: pack_bits([0, 0, 0, 0, 0, 1, 1, 0])}, 8
        )
        clipped = _clip_to_budget(response, 4)
        assert not clipped.detected
