"""Cache eviction and byte accounting (service memory bounding)."""

import numpy as np
import pytest

from repro.experiments import cache


@pytest.fixture(autouse=True)
def clean_store():
    cache.clear()
    yield
    cache.clear()


class TestByteAccounting:
    def test_numpy_entries_report_buffer_size(self):
        array = np.zeros(1000, dtype=np.uint64)  # 8000 B of payload
        cache.memoized("unit-test", "k", lambda: array)
        stats = cache.stats()
        assert stats.entries == 1
        assert 8000 <= stats.bytes <= 16000

    def test_nested_structures_counted_once(self):
        shared = np.zeros(500, dtype=np.uint64)
        value = {"a": shared, "b": [shared, {"c": shared}]}
        size = cache.estimate_bytes(value)
        # The 4000 B buffer is shared: it must not be triple-counted.
        assert 4000 <= size <= 8000

    def test_stats_bytes_sums_all_entries(self):
        cache.memoized("unit-test", "a", lambda: np.zeros(100, np.uint64))
        cache.memoized("unit-test", "b", lambda: np.zeros(100, np.uint64))
        assert cache.stats().bytes >= 1600
        assert cache.total_bytes() == cache.stats().bytes


class TestEviction:
    def test_evict_removes_and_counts(self):
        cache.memoized("unit-test", "victim", lambda: np.zeros(100, np.uint64))
        before = cache.stats()
        assert cache.evict("unit-test", "victim") is True
        after = cache.stats()
        assert after.entries == before.entries - 1
        assert after.evictions == before.evictions + 1
        assert after.bytes < before.bytes

    def test_evict_missing_key_is_noop(self):
        assert cache.evict("unit-test", "never-stored") is False
        assert cache.stats().evictions == 0

    def test_evicted_key_rebuilds_on_next_lookup(self):
        builds = {"n": 0}

        def builder():
            builds["n"] += 1
            return builds["n"]

        assert cache.memoized("unit-test", "k", builder) == 1
        assert cache.memoized("unit-test", "k", builder) == 1  # hit
        cache.evict("unit-test", "k")
        assert cache.memoized("unit-test", "k", builder) == 2  # rebuilt

    def test_clear_resets_eviction_counter(self):
        cache.memoized("unit-test", "k", lambda: 1)
        cache.evict("unit-test", "k")
        cache.clear()
        assert cache.stats().evictions == 0
        assert cache.stats().bytes == 0
