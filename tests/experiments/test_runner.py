"""Tests for shared experiment machinery (workloads, scheme evaluation)."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    build_circuit_workload,
    build_soc_workloads,
    evaluate_scheme,
    scheme_partitions,
)
from repro.soc.stitch import build_stitched_soc

TINY = ExperimentConfig(num_faults=8, num_faults_large=4, scale=0.1)


@pytest.fixture(scope="module")
def workload():
    return build_circuit_workload("s953", TINY)


class TestWorkloads:
    def test_circuit_workload_shape(self, workload):
        assert workload.scan_config.num_chains == 1
        assert workload.num_cells == workload.scan_config.max_length
        assert 0 < len(workload.responses) <= 8
        assert all(r.detected for r in workload.responses)

    def test_soc_workloads_one_per_core(self):
        soc = build_stitched_soc(["s953", "s838"], num_patterns=16, scale=0.1)
        workloads = build_soc_workloads(soc, TINY)
        assert set(workloads) == {"s953", "s838"}
        for name, wl in workloads.items():
            assert wl.scan_config is soc.scan_config
            core_index = [c.name for c in soc.cores].index(name)
            core_cells = set(soc.core_cells(core_index))
            for response in wl.responses:
                assert set(response.cell_errors) <= core_cells


class TestSchemePartitions:
    def test_counts_and_length(self):
        parts = scheme_partitions("two-step", 50, 4, 5)
        assert len(parts) == 5
        assert all(p.length == 50 for p in parts)

    def test_num_interval_partitions_forwarded(self):
        parts = scheme_partitions(
            "two-step", 50, 4, 4, num_interval_partitions=2
        )
        assert [p.scheme for p in parts[:2]] == ["interval", "interval"]


class TestEvaluateScheme:
    def test_dr_finite_and_results_complete(self, workload):
        evaluation = evaluate_scheme(workload, "two-step", 4, 4, TINY)
        assert evaluation.dr >= 0 or evaluation.dr > -1  # finite
        assert len(evaluation.results) == len(workload.responses)
        assert evaluation.dr_pruned is None

    def test_with_pruning(self, workload):
        evaluation = evaluate_scheme(
            workload, "random", 4, 4, TINY, with_pruning=True
        )
        assert evaluation.dr_pruned is not None
        assert evaluation.dr_pruned <= evaluation.dr + 1e-9
        assert len(evaluation.pruned_results) == len(evaluation.results)

    def test_soundness_across_schemes(self, workload):
        for scheme in ("random", "interval", "two-step", "deterministic"):
            evaluation = evaluate_scheme(workload, scheme, 3, 4, TINY)
            assert all(r.sound for r in evaluation.results)
