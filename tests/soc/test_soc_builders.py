"""Tests for the two SOC builders (scaled down for speed)."""

import pytest

from repro.circuit.library import D695_MODULES, SIX_LARGEST
from repro.soc.d695 import build_d695_soc
from repro.soc.stitch import build_stitched_soc

SCALE = 0.05


@pytest.fixture(scope="module")
def soc1():
    return build_stitched_soc(num_patterns=16, scale=SCALE)


@pytest.fixture(scope="module")
def soc2():
    return build_d695_soc(num_patterns=16, scale=SCALE)


class TestStitchedSoc:
    def test_six_cores_in_order(self, soc1):
        assert [c.name for c in soc1.cores] == SIX_LARGEST

    def test_single_meta_chain(self, soc1):
        assert soc1.scan_config.num_chains == 1
        assert soc1.scan_config.max_length == soc1.num_cells

    def test_total_cells_sum_of_cores(self, soc1):
        assert soc1.num_cells == sum(c.num_cells for c in soc1.cores)

    def test_custom_module_list(self):
        soc = build_stitched_soc(["s953", "s838"], num_patterns=8, scale=0.2)
        assert [c.name for c in soc.cores] == ["s953", "s838"]


class TestD695Soc:
    def test_modules_in_figure4_order(self, soc2):
        assert [c.name for c in soc2.cores] == D695_MODULES

    def test_eight_meta_chains(self, soc2):
        assert soc2.scan_config.num_chains == 8

    def test_chains_balanced(self, soc2):
        lengths = [len(c) for c in soc2.scan_config.chains]
        # Each core contributes floor-or-ceil cells per chain.
        assert max(lengths) - min(lengths) <= len(soc2.cores)

    def test_cells_partitioned(self, soc2):
        seen = [c for chain in soc2.scan_config.chains for c in chain]
        assert sorted(seen) == list(range(soc2.num_cells))

    def test_custom_tam_width(self):
        soc = build_d695_soc(["s953", "s838"], tam_width=2, num_patterns=8, scale=0.2)
        assert soc.scan_config.num_chains == 2
