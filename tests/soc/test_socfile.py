"""Tests for the ITC'02-style SOC description reader/writer."""

import pytest

from repro.soc.schedule import TestSchedule as Schedule
from repro.soc.socfile import (
    D695_SOC_TEXT,
    SocFormatError,
    build_testrail_from_description,
    d695_description,
    load_soc,
    parse_soc,
    save_soc,
    write_soc,
)

MINI = """
SocName mini
TotalModules 2
Module 0 alpha
  Inputs 4
  Outputs 2
  ScanChains 2 : 5 4
  TestPatterns 10
Module 1 beta
  Inputs 3
  Outputs 1
  ScanChains 1 : 7
  TestPatterns 20
"""


class TestParse:
    def test_basic_fields(self):
        desc = parse_soc(MINI)
        assert desc.name == "mini"
        assert [m.name for m in desc.modules] == ["alpha", "beta"]
        alpha = desc.module("alpha")
        assert alpha.inputs == 4
        assert alpha.scan_chains == [5, 4]
        assert alpha.num_scan_cells == 9
        assert desc.total_scan_cells == 16

    def test_pattern_budgets(self):
        desc = parse_soc(MINI)
        assert desc.pattern_budgets() == {"alpha": 10, "beta": 20}

    def test_unknown_module_lookup(self):
        with pytest.raises(KeyError):
            parse_soc(MINI).module("gamma")

    def test_missing_name_rejected(self):
        with pytest.raises(SocFormatError, match="SocName"):
            parse_soc("TotalModules 0\n")

    def test_total_mismatch_rejected(self):
        with pytest.raises(SocFormatError, match="TotalModules"):
            parse_soc("SocName x\nTotalModules 3\nModule 0 a\n")

    def test_field_outside_module_rejected(self):
        with pytest.raises(SocFormatError, match="outside a module"):
            parse_soc("SocName x\nInputs 3\n")

    def test_scan_chain_count_mismatch(self):
        with pytest.raises(SocFormatError, match="ScanChains"):
            parse_soc("SocName x\nModule 0 a\n  ScanChains 2 : 5\n")

    def test_bad_integer(self):
        with pytest.raises(SocFormatError, match="integer"):
            parse_soc("SocName x\nModule 0 a\n  Inputs many\n")

    def test_unknown_field(self):
        with pytest.raises(SocFormatError, match="unknown field"):
            parse_soc("SocName x\nModule 0 a\n  Wires 5\n")

    def test_out_of_order_indices_rejected(self):
        with pytest.raises(SocFormatError, match="indices"):
            parse_soc("SocName x\nModule 1 a\n  Inputs 1\n")


class TestRoundTrip:
    def test_write_parse(self):
        original = parse_soc(MINI)
        again = parse_soc(write_soc(original))
        assert again == original

    def test_file_io(self, tmp_path):
        desc = parse_soc(MINI)
        path = tmp_path / "mini.soc"
        save_soc(desc, path)
        assert load_soc(path) == desc


class TestD695Description:
    def test_matches_figure4_order(self):
        from repro.circuit.library import D695_MODULES

        desc = d695_description()
        assert desc.name == "d695"
        assert [m.name for m in desc.modules] == D695_MODULES

    def test_scan_cells_match_published_ff_counts(self):
        from repro.circuit.library import PROFILES

        for mod in d695_description().modules:
            assert mod.num_scan_cells == PROFILES[mod.name].num_flip_flops

    def test_round_trips(self):
        desc = d695_description()
        assert parse_soc(write_soc(desc)) == desc


class TestBuildFromDescription:
    def test_builds_rail_and_budgets(self):
        desc = parse_soc(MINI.replace("alpha", "s953").replace("beta", "s838"))
        rail, budgets = build_testrail_from_description(desc, tam_width=2, scale=0.3)
        assert rail.name == "mini"
        assert set(budgets) == {"s953", "s838"}
        schedule = Schedule(rail, budgets)
        assert schedule.total_patterns == 20
        assert len(schedule.phases) == 2

    def test_zero_patterns_rejected(self):
        desc = parse_soc("SocName x\nModule 0 s953\n  ScanChains 1 : 29\n"
                         "  TestPatterns 0\n")
        with pytest.raises(SocFormatError, match="no test patterns"):
            build_testrail_from_description(desc, scale=0.3)
