"""Tests for wrapper chain assignment (LPT) and its TestRail integration."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.generate import CircuitProfile, generate_circuit
from repro.soc.core_wrapper import EmbeddedCore
from repro.soc.testrail import TestRail as Rail
from repro.soc.wrapper import (
    assignment_makespan,
    lpt_assignment,
    normalize_chain_lengths,
    wrapper_segments,
)


class TestLpt:
    def test_every_chain_assigned_once(self):
        lengths = [7, 3, 9, 1, 4]
        ports = lpt_assignment(lengths, 2)
        flattened = sorted(i for port in ports for i in port)
        assert flattened == list(range(5))

    def test_balances_classic_case(self):
        # LPT on {5,5,4,4,3,3} over 2 ports -> perfect 12/12 split.
        lengths = [5, 5, 4, 4, 3, 3]
        ports = lpt_assignment(lengths, 2)
        loads = [sum(lengths[i] for i in port) for port in ports]
        assert sorted(loads) == [12, 12]

    def test_single_port(self):
        ports = lpt_assignment([3, 1, 2], 1)
        assert len(ports) == 1 and sorted(ports[0]) == [0, 1, 2]

    def test_more_ports_than_chains(self):
        ports = lpt_assignment([5, 2], 4)
        loads = [sum([5, 2][i] for i in port) for port in ports]
        assert sorted(loads) == [0, 0, 2, 5]

    def test_validation(self):
        with pytest.raises(ValueError):
            lpt_assignment([1], 0)
        with pytest.raises(ValueError):
            lpt_assignment([-1], 2)

    @settings(max_examples=40, deadline=None)
    @given(
        lengths=st.lists(st.integers(0, 50), min_size=1, max_size=20),
        width=st.integers(1, 8),
    )
    def test_lpt_within_greedy_bound(self, lengths, width):
        """Any list schedule satisfies makespan <= avg + max: the last
        chain placed on the critical port started when that port's load was
        at most the average."""
        ports = lpt_assignment(lengths, width)
        makespan = assignment_makespan(lengths, ports)
        bound = -(-sum(lengths) // width) + max(lengths)
        assert makespan <= bound
        # And never below the trivial lower bound.
        assert makespan >= max(max(lengths), -(-sum(lengths) // width))


class TestNormalize:
    def test_preserves_total(self):
        assert sum(normalize_chain_lengths([10, 20, 30], 17)) == 17

    def test_proportions_roughly_kept(self):
        lengths = normalize_chain_lengths([50, 50], 10)
        assert lengths == [5, 5]

    def test_zero_chains_dropped(self):
        lengths = normalize_chain_lengths([100, 1], 5)
        assert sum(lengths) == 5
        assert all(v > 0 for v in lengths)

    def test_validation(self):
        with pytest.raises(ValueError):
            normalize_chain_lengths([0, 0], 5)
        with pytest.raises(ValueError):
            normalize_chain_lengths([3], -1)


class TestWrapperSegments:
    def test_segments_cover_all_cells(self):
        runs = wrapper_segments([4, 3, 5], 2)
        cells = sorted(
            cell
            for port in runs
            for start, end in port
            for cell in range(start, end)
        )
        assert cells == list(range(12))

    def test_chains_stay_whole(self):
        runs = wrapper_segments([4, 3, 5], 2)
        expected_runs = {(0, 4), (4, 7), (7, 12)}
        seen = {run for port in runs for run in port}
        assert seen == expected_runs


class TestRailIntegration:
    def make_core(self, name, n_ff, seed=0):
        profile = CircuitProfile(name, 4, 2, n_ff, 40, depth=4)
        return EmbeddedCore(generate_circuit(profile, seed=seed), num_patterns=8)

    def test_internal_chains_respected(self):
        core = self.make_core("x", 12)
        rail = Rail(
            "w", [core], tam_width=2, internal_chains={"x": [6, 4, 2]}
        )
        # Whole internal chains per meta chain: chain boundaries 0-6, 6-10,
        # 10-12; each meta chain holds whole runs.
        seen = sorted(c for chain in rail.scan_config.chains for c in chain)
        assert seen == list(range(12))
        for chain in rail.scan_config.chains:
            # runs of consecutive local ids
            breaks = sum(
                1 for a, b in zip(chain, chain[1:]) if b != a + 1
            )
            assert breaks <= 2  # at most #chains-1 stitches per line

    def test_normalization_against_scaled_core(self):
        core = self.make_core("y", 10)
        rail = Rail(
            "w", [core], tam_width=2, internal_chains={"y": [32, 32, 32]}
        )
        assert rail.num_cells == 10

    def test_without_internal_chains_unchanged(self):
        core = self.make_core("z", 9)
        rail = Rail("w", [core], tam_width=3)
        assert [len(c) for c in rail.scan_config.chains] == [3, 3, 3]
