"""Tests for daisy-chain test scheduling with per-core pattern budgets."""

import numpy as np
import pytest

from repro.circuit.generate import CircuitProfile, generate_circuit
from repro.sim.bitops import pack_bits
from repro.sim.faults import Fault
from repro.sim.faultsim import FaultResponse
from repro.soc.core_wrapper import EmbeddedCore
from repro.soc.schedule import TestSchedule as Schedule
from repro.soc.schedule import diagnose_schedule, _slice_response
from repro.soc.testrail import TestRail as Rail

NUM_PATTERNS = 32


def tiny_core(name, n_ff, seed=0):
    profile = CircuitProfile(name, 4, 2, n_ff, 50, depth=4)
    return EmbeddedCore(generate_circuit(profile, seed=seed),
                        num_patterns=NUM_PATTERNS)


@pytest.fixture(scope="module")
def soc():
    return Rail(
        "sched",
        [tiny_core("a", 8), tiny_core("b", 6, 1), tiny_core("c", 10, 2)],
        tam_width=2,
    )


class TestPhaseConstruction:
    def test_equal_budgets_single_phase(self, soc):
        schedule = Schedule(soc, {"a": 20, "b": 20, "c": 20})
        assert len(schedule.phases) == 1
        phase = schedule.phases[0]
        assert phase.num_patterns == 20
        assert phase.active_cores == (0, 1, 2)
        assert phase.scan_config.num_cells == soc.num_cells

    def test_staggered_budgets(self, soc):
        schedule = Schedule(soc, {"a": 30, "b": 10, "c": 20})
        assert [p.num_patterns for p in schedule.phases] == [10, 10, 10]
        assert schedule.phases[0].active_cores == (0, 1, 2)
        assert schedule.phases[1].active_cores == (0, 2)
        assert schedule.phases[2].active_cores == (0,)

    def test_bypass_shrinks_chains(self, soc):
        schedule = Schedule(soc, {"a": 30, "b": 10, "c": 20})
        sizes = [p.scan_config.num_cells for p in schedule.phases]
        assert sizes == [24, 18, 8]

    def test_equal_boundary_cores_drop_together(self, soc):
        schedule = Schedule(soc, {"a": 10, "b": 10, "c": 25})
        assert len(schedule.phases) == 2
        assert schedule.phases[1].active_cores == (2,)

    def test_cell_mapping_round_trips(self, soc):
        schedule = Schedule(soc, {"a": 30, "b": 10, "c": 20})
        for phase in schedule.phases:
            for lid, gid in enumerate(phase.global_of_local):
                assert soc.owner(gid).core_index in phase.active_cores
            # phase-local chains reference exactly 0..N-1
            seen = sorted(
                c for chain in phase.scan_config.chains for c in chain
            )
            assert seen == list(range(len(phase.global_of_local)))

    def test_missing_budget_rejected(self, soc):
        with pytest.raises(ValueError, match="no pattern budget"):
            Schedule(soc, {"a": 10, "b": 10})

    def test_budget_above_simulated_patterns_rejected(self, soc):
        with pytest.raises(ValueError, match="exceeds"):
            Schedule(soc, {"a": 10, "b": 10, "c": NUM_PATTERNS + 1})

    def test_describe(self, soc):
        schedule = Schedule(soc, {"a": 30, "b": 10, "c": 20})
        text = schedule.describe()
        assert "3 phase(s)" in text
        assert "patterns 0..9" in text


class TestSliceResponse:
    def test_pattern_window_and_reindexing(self, soc):
        schedule = Schedule(soc, {"a": 30, "b": 10, "c": 20})
        # A cell of core "c" failing at patterns 5 and 15: the phase-0 slice
        # sees pattern 5, the phase-1 slice sees local pattern 5 (= 15).
        gid = soc.global_cell(2, 3)
        response = FaultResponse(
            Fault("X", 0),
            {gid: pack_bits([1 if p in (5, 15) else 0
                             for p in range(NUM_PATTERNS)])},
            NUM_PATTERNS,
        )
        phase0, phase1, phase2 = schedule.phases
        s0 = _slice_response(response, phase0, soc)
        s1 = _slice_response(response, phase1, soc)
        s2 = _slice_response(response, phase2, soc)
        assert len(s0.cell_errors) == 1 and s0.num_patterns == 10
        assert len(s1.cell_errors) == 1 and s1.num_patterns == 10
        assert not s2.detected  # core c is bypassed in phase 2

    def test_inactive_core_cells_dropped(self, soc):
        schedule = Schedule(soc, {"a": 30, "b": 10, "c": 20})
        gid = soc.global_cell(1, 0)  # core b
        response = FaultResponse(
            Fault("X", 0),
            {gid: pack_bits([0] * 15 + [1] + [0] * (NUM_PATTERNS - 16))},
            NUM_PATTERNS,
        )
        # The error is at pattern 15, after core b is bypassed: physically
        # impossible, and the slicing discards it.
        s1 = _slice_response(response, schedule.phases[1], soc)
        assert not s1.detected


class TestDiagnoseSchedule:
    def test_soundness_for_each_core(self, soc, rng):
        schedule = Schedule(soc, {"a": 30, "b": 10, "c": 20})
        for core_index, core in enumerate(soc.cores):
            budget = schedule.budgets[core_index]
            local = core.sample_fault_responses(2, rng)
            for response in local:
                lifted = soc.lift_response(core_index, response)
                # Clip errors to the core's budget window (patterns the
                # schedule actually applies to it).
                clipped = {}
                for cell, vec in lifted.cell_errors.items():
                    bits = [
                        1 if p < budget and (int(vec[p // 64]) >> (p % 64)) & 1
                        else 0
                        for p in range(NUM_PATTERNS)
                    ]
                    if any(bits):
                        clipped[cell] = pack_bits(bits)
                clipped_response = FaultResponse(
                    response.fault, clipped, NUM_PATTERNS
                )
                if not clipped_response.detected:
                    continue
                result = diagnose_schedule(
                    clipped_response, schedule, num_partitions=4, num_groups=4
                )
                assert result.sound

    def test_candidates_confined_to_active_phases(self, soc, rng):
        schedule = Schedule(soc, {"a": 30, "b": 10, "c": 20})
        core_b = soc.cores[1]
        response = core_b.sample_fault_responses(1, rng)[0]
        lifted = soc.lift_response(1, response)
        result = diagnose_schedule(
            lifted, schedule, num_partitions=4, num_groups=4
        )
        # Phase 2 has only core a active; if the fault is confined to core
        # b's capture window, no phase-2 result exists for it.
        if result.per_phase[2] is not None:
            # Errors after the budget would be unphysical; the slicer only
            # passes them if the raw response had late-pattern errors.
            assert result.detected
