"""Tests for the TestRail daisy-chain architecture and core wrapper."""

import numpy as np
import pytest

from repro.circuit.generate import CircuitProfile, generate_circuit
from repro.sim.bitops import pack_bits
from repro.sim.faults import Fault
from repro.sim.faultsim import FaultResponse
from repro.soc.core_wrapper import EmbeddedCore
from repro.soc.testrail import TestRail as Rail
from repro.soc.testrail import _balanced_segments


def tiny_core(name, n_ff=10, seed=0):
    profile = CircuitProfile(name, 4, 2, n_ff, 60, depth=4)
    return EmbeddedCore(generate_circuit(profile, seed=seed), num_patterns=16)


@pytest.fixture(scope="module")
def rail3():
    cores = [tiny_core("coreA", 10), tiny_core("coreB", 7, 1), tiny_core("coreC", 12, 2)]
    return Rail("rail3", cores, tam_width=1)


@pytest.fixture(scope="module")
def rail_wide():
    cores = [tiny_core("coreA", 10), tiny_core("coreB", 7, 1), tiny_core("coreC", 12, 2)]
    return Rail("railW", cores, tam_width=4)


class TestBalancedSegments:
    def test_even(self):
        assert _balanced_segments(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_remainder_first(self):
        assert _balanced_segments(10, 4) == [(0, 3), (3, 6), (6, 8), (8, 10)]

    def test_more_parts_than_cells(self):
        segments = _balanced_segments(2, 4)
        assert segments == [(0, 1), (1, 2), (2, 2), (2, 2)]


class TestSingleChain:
    def test_all_cells_mapped(self, rail3):
        assert rail3.num_cells == 10 + 7 + 12
        assert rail3.scan_config.num_chains == 1

    def test_daisy_order_preserved(self, rail3):
        chain = rail3.scan_config.chains[0]
        owners = [rail3.owner(c).core_index for c in chain]
        assert owners == sorted(owners)

    def test_core_cells_contiguous_on_chain(self, rail3):
        lo, hi = rail3.core_position_range(1, 0)
        assert hi - lo == 7
        for pos in range(lo, hi):
            cell = rail3.scan_config.chains[0][pos]
            assert rail3.owner(cell).core_index == 1

    def test_global_local_round_trip(self, rail3):
        for core_index, core in enumerate(rail3.cores):
            for local in range(core.num_cells):
                gid = rail3.global_cell(core_index, local)
                ref = rail3.owner(gid)
                assert (ref.core_index, ref.local_cell) == (core_index, local)


class TestWideTam:
    def test_chain_count(self, rail_wide):
        assert rail_wide.scan_config.num_chains == 4

    def test_chains_balanced(self, rail_wide):
        lengths = [len(c) for c in rail_wide.scan_config.chains]
        assert max(lengths) - min(lengths) <= len(rail_wide.cores)

    def test_every_cell_exactly_once(self, rail_wide):
        seen = [c for chain in rail_wide.scan_config.chains for c in chain]
        assert sorted(seen) == list(range(rail_wide.num_cells))

    def test_core_contiguous_per_chain(self, rail_wide):
        for core_index in range(3):
            for w in range(4):
                lo, hi = rail_wide.core_position_range(core_index, w)
                for pos in range(lo, hi):
                    cell = rail_wide.scan_config.chains[w][pos]
                    assert rail_wide.owner(cell).core_index == core_index


class TestLiftResponse:
    def test_cells_translated(self, rail3):
        local = FaultResponse(
            Fault("X", 0), {2: pack_bits([1, 0, 1]), 5: pack_bits([0, 1, 0])}, 3
        )
        lifted = rail3.lift_response(1, local)
        expected = {rail3.global_cell(1, 2), rail3.global_cell(1, 5)}
        assert set(lifted.cell_errors) == expected
        assert lifted.num_patterns == 3

    def test_error_vectors_copied(self, rail3):
        vec = pack_bits([1])
        local = FaultResponse(Fault("X", 0), {0: vec}, 1)
        lifted = rail3.lift_response(0, local)
        lifted.cell_errors[rail3.global_cell(0, 0)][0] = np.uint64(0)
        assert vec[0] == np.uint64(1)


class TestEmbeddedCore:
    def test_sampled_responses_are_detected(self, rng):
        core = tiny_core("sampled", 12)
        responses = core.sample_fault_responses(5, rng)
        assert 0 < len(responses) <= 5
        assert all(r.detected for r in responses)

    def test_collapsed_faults_cached(self):
        core = tiny_core("cached", 8)
        assert core.collapsed_faults() is core.collapsed_faults()

    def test_validation(self):
        with pytest.raises(ValueError):
            Rail("bad", [], tam_width=1)
        with pytest.raises(ValueError):
            Rail("bad", [tiny_core("x", 5)], tam_width=0)

    def test_describe_mentions_cores(self, rail3):
        text = rail3.describe()
        assert "coreA" in text and "coreB" in text and "coreC" in text
