"""Scan-chain configuration: mapping scan cells to (chain, shift position).

Positions are numbered in *unload order*, matching the paper's examples
("scan cells 1 to 5 are scanned out" form the first interval): the cell at
position 0 sits next to the scan output and its response enters the
compactor on shift cycle 0 of the pattern's unload.  With ``W`` parallel
chains, shift cycle ``t`` presents the cell at position ``t`` of every
chain (start-aligned; shorter chains finish early and contribute nothing on
the remaining cycles).

The partitioning schemes of the paper select cells by *shift position*
(one shared selection-logic instance serves all chains), so a group is a
set of positions and covers every chain's cell at those positions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class CellLocation:
    chain: int
    position: int


class ScanConfig:
    """A set of scan chains over global cell ids ``0 .. num_cells-1``.

    ``chains[w]`` lists the global cell ids of chain ``w`` in unload order
    (first element exits first).  Chains may have different lengths; unload
    is start-aligned, so every chain's position ``p`` cell exits on cycle
    ``p`` and shorter chains simply finish early.
    """

    def __init__(self, chains: Sequence[Sequence[int]]):
        if not chains:
            raise ValueError("at least one chain required")
        self.chains: List[List[int]] = [list(c) for c in chains]
        self._location: Dict[int, CellLocation] = {}
        for w, chain in enumerate(self.chains):
            for pos, cell in enumerate(chain):
                if cell in self._location:
                    raise ValueError(f"cell {cell} appears in more than one chain")
                self._location[cell] = CellLocation(w, pos)
        self.num_cells = len(self._location)
        if sorted(self._location) != list(range(self.num_cells)):
            raise ValueError("cell ids must be exactly 0..num_cells-1")
        self.max_length = max(len(c) for c in self.chains)
        # Lazily-built derived arrays (the configuration is immutable).
        self._presence_mask = None
        self._cell_id_grid = None
        self._location_arrays = None

    # -- constructors ---------------------------------------------------------

    @classmethod
    def single_chain(cls, num_cells: int) -> "ScanConfig":
        return cls([list(range(num_cells))])

    @classmethod
    def balanced(cls, num_cells: int, num_chains: int) -> "ScanConfig":
        """Split cells into ``num_chains`` nearly-equal chains, preserving
        cell order (cells 0..k on chain 0, then chain 1, ...)."""
        if num_chains < 1:
            raise ValueError("num_chains must be positive")
        base = num_cells // num_chains
        extra = num_cells % num_chains
        chains = []
        start = 0
        for w in range(num_chains):
            length = base + (1 if w < extra else 0)
            chains.append(list(range(start, start + length)))
            start += length
        return cls(chains)

    # -- queries ---------------------------------------------------------------

    @property
    def num_chains(self) -> int:
        return len(self.chains)

    def location(self, cell: int) -> CellLocation:
        return self._location[cell]

    def cells_at_position(self, position: int) -> List[int]:
        """All cells (across chains) at a given shift position."""
        return [
            chain[position] for chain in self.chains if position < len(chain)
        ]

    def unload_cycle(self, cell: int) -> int:
        """Shift cycle (within one pattern's unload) at which ``cell``'s
        response enters the compactor: its position, since positions are
        numbered in unload order and unload is start-aligned."""
        return self._location[cell].position

    def global_cycle(self, cell: int, pattern: int) -> int:
        """Global compactor cycle of ``cell``'s response under ``pattern``."""
        return pattern * self.max_length + self.unload_cycle(cell)

    def total_cycles(self, num_patterns: int) -> int:
        return num_patterns * self.max_length

    def channel(self, cell: int) -> int:
        """Compactor input channel (the chain index)."""
        return self._location[cell].chain

    def presence_mask(self) -> "np.ndarray":
        """Boolean array ``[chain, position]``: True where a cell exists
        (ragged chains leave trailing positions empty).  Built once and
        copied out (callers intersect into it in place)."""
        import numpy as np

        if self._presence_mask is None:
            mask = np.zeros((self.num_chains, self.max_length), dtype=bool)
            for w, chain in enumerate(self.chains):
                mask[w, : len(chain)] = True
            self._presence_mask = mask
        return self._presence_mask.copy()

    def cell_id_grid(self) -> "np.ndarray":
        """Integer array ``[chain, position]`` of global cell ids (-1 where
        no cell exists).  Cached; treat as read-only."""
        import numpy as np

        if self._cell_id_grid is None:
            grid = np.full((self.num_chains, self.max_length), -1, dtype=np.int64)
            for w, chain in enumerate(self.chains):
                grid[w, : len(chain)] = chain
            self._cell_id_grid = grid
        return self._cell_id_grid

    def location_arrays(self) -> Tuple["np.ndarray", "np.ndarray"]:
        """``(positions, chains)`` indexed by global cell id — the lookup
        tables the vectorized event extraction gathers through (cached)."""
        import numpy as np

        if self._location_arrays is None:
            positions = np.empty(self.num_cells, dtype=np.int64)
            chains = np.empty(self.num_cells, dtype=np.int64)
            for cell, loc in self._location.items():
                positions[cell] = loc.position
                chains[cell] = loc.chain
            self._location_arrays = (positions, chains)
        return self._location_arrays
