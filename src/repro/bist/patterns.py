"""Pseudo-random pattern source for scan-BIST sessions.

In a test-per-scan BIST architecture every pattern consists of values
scanned into the cells plus values applied at the primary inputs, all drawn
from an on-chip PRPG.  :class:`PRPG` models that source with an LFSR and
expands its bit stream into the packed pattern matrices the simulator
consumes.  Every BIST session replays the *same* pattern sequence (the
selection logic only changes which responses reach the compactor), so one
expansion per circuit is shared across all sessions and partitions.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..sim.bitops import num_words, pattern_mask
from .lfsr import LFSR


class PRPG:
    """Pseudo-random pattern generator backed by a primitive-polynomial LFSR."""

    def __init__(self, degree: int = 32, seed: int = 0xACE1):
        self.lfsr = LFSR(degree, seed)

    def pattern_matrices(
        self, num_inputs: int, num_cells: int, num_patterns: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Packed PI and scan-in matrices for ``num_patterns`` patterns.

        Returns ``(pi_values, ff_values)`` of shapes ``(num_inputs, words)``
        and ``(num_cells, words)``.  Bit order: for each pattern, the scan-in
        bits are generated first (cell 0 first), then the PI bits.
        """
        words = num_words(num_patterns)
        pi_values = np.zeros((num_inputs, words), dtype=np.uint64)
        ff_values = np.zeros((num_cells, words), dtype=np.uint64)
        for p in range(num_patterns):
            word, bit = p // 64, np.uint64(1) << np.uint64(p % 64)
            for row in range(num_cells):
                if self.lfsr.step():
                    ff_values[row, word] |= bit
            for row in range(num_inputs):
                if self.lfsr.step():
                    pi_values[row, word] |= bit
        mask = pattern_mask(num_patterns)
        return pi_values & mask, ff_values & mask


def fast_pattern_matrices(
    num_inputs: int, num_cells: int, num_patterns: int, seed: int = 0xACE1
) -> Tuple[np.ndarray, np.ndarray]:
    """Drop-in replacement for :meth:`PRPG.pattern_matrices` using a seeded
    ``numpy`` generator instead of a stepped LFSR.

    For large circuits the LFSR expansion is a pure-Python loop over
    ``(cells + inputs) * patterns`` bits; this variant produces statistically
    equivalent pseudo-random patterns in vectorized form.  The experiments
    use it for the 20k-gate circuits; equivalence of diagnosis behaviour
    between the two sources is covered by tests.
    """
    rng = np.random.default_rng(seed)
    words = num_words(num_patterns)
    mask = pattern_mask(num_patterns)
    pi_values = rng.integers(
        0, np.iinfo(np.uint64).max, size=(num_inputs, words), dtype=np.uint64,
        endpoint=True,
    ) & mask
    ff_values = rng.integers(
        0, np.iinfo(np.uint64).max, size=(num_cells, words), dtype=np.uint64,
        endpoint=True,
    ) & mask
    return pi_values, ff_values
