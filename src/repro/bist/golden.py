"""Tester-view BIST flow: full response streams and golden signatures.

The experiment harness computes *error signatures* directly from a fault's
sparse error matrix (:class:`repro.bist.misr.LinearCompactor`) — that is an
exact shortcut, not an approximation, but it never materializes what the
tester actually sees.  This module implements the literal flow for
validation and for small-circuit demonstrations:

1. simulate the fault-free circuit, serialize every pattern's captured
   response through the scan configuration into per-cycle compactor inputs,
   mask by the session's selected cells, and run the real :class:`MISR`
   to obtain the **golden signature** of each session;
2. do the same on the faulty response stream to obtain the **observed
   signature**;
3. compare.

``signatures_match(golden, observed)`` per session is then, by MISR
linearity, exactly ``LinearCompactor.error_signature(...) == 0`` — the
equivalence the integration tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..sim.bitops import get_bit
from ..sim.faultsim import FaultResponse
from ..sim.logicsim import SimResult
from .misr import MISR
from .scan import ScanConfig


def response_stream(
    captured: np.ndarray,
    scan_config: ScanConfig,
    num_patterns: int,
    select_mask: Optional[np.ndarray] = None,
) -> List[List[int]]:
    """Serialize captured responses into per-cycle compactor input tuples.

    ``captured`` has shape ``(num_cells, words)`` — row ``cell`` holds the
    packed per-pattern values that cell captured.  The stream has
    ``num_patterns * max_length`` cycles; on cycle ``p * L + t`` channel
    ``w`` carries the value of chain ``w``'s position-``t`` cell under
    pattern ``p`` (0 where the chain has ended or the cell is masked).

    ``select_mask`` is a boolean array over shift positions (one session's
    selection); ``None`` selects everything.
    """
    num_channels = scan_config.num_chains
    chain_length = scan_config.max_length
    stream: List[List[int]] = []
    for pattern in range(num_patterns):
        for position in range(chain_length):
            inputs = [0] * num_channels
            if select_mask is None or select_mask[position]:
                for w, chain in enumerate(scan_config.chains):
                    if position < len(chain):
                        inputs[w] = get_bit(captured[chain[position]], pattern)
            stream.append(inputs)
    return stream


def faulty_captured(
    good_captured: np.ndarray, response: FaultResponse
) -> np.ndarray:
    """The faulty circuit's captured-response matrix: good values with the
    fault's error bits flipped."""
    faulty = good_captured.copy()
    for cell, err in response.cell_errors.items():
        faulty[cell] ^= err
    return faulty


@dataclass
class SessionSignatures:
    """Golden and observed signature of one masked session."""

    golden: int
    observed: int

    @property
    def mismatch(self) -> bool:
        return self.golden != self.observed


def run_tester_session(
    good_captured: np.ndarray,
    response: FaultResponse,
    scan_config: ScanConfig,
    select_mask: np.ndarray,
    misr_width: int = 16,
    init: int = 0,
) -> SessionSignatures:
    """One BIST session through the real MISR: golden vs observed.

    This is O(patterns × chain length) per session — the price of
    literalism; the experiment harness uses the linear shortcut instead.
    """
    misr = MISR(misr_width, scan_config.num_chains)
    golden = misr.compact(
        response_stream(good_captured, scan_config, response.num_patterns,
                        select_mask),
        init=init,
    )
    observed = misr.compact(
        response_stream(
            faulty_captured(good_captured, response),
            scan_config,
            response.num_patterns,
            select_mask,
        ),
        init=init,
    )
    return SessionSignatures(golden=golden, observed=observed)


def run_tester_partition(
    good_captured: np.ndarray,
    response: FaultResponse,
    scan_config: ScanConfig,
    group_of: np.ndarray,
    num_groups: int,
    misr_width: int = 16,
    init: int = 0,
) -> List[SessionSignatures]:
    """All sessions of one partition through the real MISR."""
    sessions = []
    for group in range(num_groups):
        mask = np.asarray(group_of) == group
        sessions.append(
            run_tester_session(
                good_captured, response, scan_config, mask, misr_width, init
            )
        )
    return sessions


def good_captured_matrix(good: SimResult) -> np.ndarray:
    """The fault-free captured-response matrix, rows indexed by scan-cell
    position (matches ``FaultResponse.cell_errors`` keys for a single-core
    circuit)."""
    return good.captured.copy()
