"""Linear feedback shift registers and primitive polynomial table.

The scan-BIST architecture of the paper (Fig. 1) uses one LFSR both as the
source of pseudo-random scan-cell labels (random-selection partitioning) and
of pseudo-random interval lengths (interval-based partitioning); the Initial
Value Register (IVR) reloads it at session boundaries.  A degree-16
primitive polynomial is used for the paper's experiments.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

#: Maximal-length (primitive polynomial) tap positions for Fibonacci LFSRs,
#: one entry per degree; taps are 1-indexed exponents (XAPP052 table).
PRIMITIVE_TAPS: Dict[int, Tuple[int, ...]] = {
    3: (3, 2),
    4: (4, 3),
    5: (5, 3),
    6: (6, 5),
    7: (7, 6),
    8: (8, 6, 5, 4),
    9: (9, 5),
    10: (10, 7),
    11: (11, 9),
    12: (12, 6, 4, 1),
    13: (13, 4, 3, 1),
    14: (14, 5, 3, 1),
    15: (15, 14),
    16: (16, 15, 13, 4),
    17: (17, 14),
    18: (18, 11),
    19: (19, 6, 2, 1),
    20: (20, 17),
    21: (21, 19),
    22: (22, 21),
    23: (23, 18),
    24: (24, 23, 22, 17),
    25: (25, 22),
    26: (26, 6, 2, 1),
    27: (27, 5, 2, 1),
    28: (28, 25),
    29: (29, 27),
    30: (30, 6, 4, 1),
    31: (31, 28),
    32: (32, 22, 2, 1),
}


class LFSR:
    """Fibonacci LFSR with configurable primitive taps.

    The register shifts right; the feedback (XOR of tapped stages) enters
    the most-significant bit and the least-significant bit is the serial
    output.  Stage ``k`` (1-based, stage ``degree`` being the output stage)
    lives in bit ``degree - k``, so the highest tap — always present in a
    characteristic polynomial — is the output bit and the all-zero state is
    unreachable from any nonzero seed.  With the taps of
    :data:`PRIMITIVE_TAPS` the state sequence has period ``2**degree - 1``.
    """

    def __init__(self, degree: int, seed: int = 1, taps: Tuple[int, ...] = ()):
        if degree < 2:
            raise ValueError("degree must be at least 2")
        if not taps:
            if degree not in PRIMITIVE_TAPS:
                raise ValueError(f"no primitive taps known for degree {degree}")
            taps = PRIMITIVE_TAPS[degree]
        if any(t < 1 or t > degree for t in taps):
            raise ValueError(f"tap positions {taps} out of range for degree {degree}")
        self.degree = degree
        self.taps = tuple(sorted(set(taps), reverse=True))
        self._tap_mask = 0
        for t in self.taps:
            self._tap_mask |= 1 << (degree - t)
        self._state_mask = (1 << degree) - 1
        self.load(seed)

    # -- state handling -----------------------------------------------------

    def load(self, value: int) -> None:
        """Load the register (IVR reload); the all-zero state is rejected."""
        value &= self._state_mask
        if value == 0:
            raise ValueError("LFSR state must be nonzero")
        self.state = value

    def copy(self) -> "LFSR":
        clone = LFSR(self.degree, self.state, self.taps)
        return clone

    # -- stepping -----------------------------------------------------------

    def step(self) -> int:
        """Advance one clock; returns the serial output bit (pre-shift LSB)."""
        out = self.state & 1
        feedback = _parity(self.state & self._tap_mask)
        self.state = (self.state >> 1) | (feedback << (self.degree - 1))
        return out

    def step_many(self, count: int) -> List[int]:
        """Advance ``count`` clocks, returning the output bit stream."""
        return [self.step() for _ in range(count)]

    def peek_bits(self, count: int) -> int:
        """The low ``count`` bits of the current state (the value the
        selection hardware compares against the test counter / loads into
        Shift Counter 2)."""
        if count > self.degree:
            raise ValueError("cannot peek more bits than the LFSR degree")
        return self.state & ((1 << count) - 1)

    def peek_stages(self, positions: Sequence[int]) -> int:
        """A label built from arbitrary register stages (bit positions).

        The paper's selection hardware takes "the output of any r stages of
        the LFSR" as the scan-cell label; spreading the tapped stages across
        the register keeps consecutive cells' labels decorrelated (adjacent
        low bits would just be a sliding window of the output stream)."""
        label = 0
        for j, pos in enumerate(positions):
            if not 0 <= pos < self.degree:
                raise ValueError(f"stage position {pos} out of range")
            label |= ((self.state >> pos) & 1) << j
        return label

    def spread_stage_positions(self, count: int) -> List[int]:
        """``count`` stage positions spread evenly across the register."""
        if count > self.degree:
            raise ValueError("cannot tap more stages than the LFSR degree")
        stride = self.degree // count
        return [j * stride for j in range(count)]

    def period(self, limit: int = 1 << 22) -> int:
        """Cycle length from the current state (exhaustive; small degrees)."""
        start = self.state
        probe = self.copy()
        for count in range(1, limit + 1):
            probe.step()
            if probe.state == start:
                return count
        raise RuntimeError("period exceeds limit")


def _parity(value: int) -> int:
    return bin(value).count("1") & 1


class IVR:
    """Initial Value Register of the Fig. 1 architecture.

    Holds the seed that reloads the LFSR at the start of every BIST session;
    at the end of a *partition* it is updated with the LFSR's current state
    so the next partition differs.
    """

    def __init__(self, value: int):
        self.value = value

    def reload(self, lfsr: LFSR) -> None:
        lfsr.load(self.value)

    def update_from(self, lfsr: LFSR) -> None:
        self.value = lfsr.state
