"""Multiple-input signature register (MISR) and its linear error model.

Two implementations with identical semantics:

* :class:`MISR` — the literal hardware: step the register once per shift
  cycle, XOR-ing the incoming response bits into designated stages.  Used
  for validation and small examples.
* :class:`LinearCompactor` — an O(events · log cycles) computation of the
  **error signature** (observed signature XOR fault-free signature), which
  by linearity equals the signature of the error stream alone compacted
  from the all-zero state.  Diagnosis only ever needs error signatures, and
  real fault responses are sparse, so this is what the experiment harness
  uses.  Aliasing (a nonzero error stream compacting to signature 0) is
  modelled faithfully by both.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from .lfsr import PRIMITIVE_TAPS


def _char_poly_mask(width: int) -> int:
    """Low coefficients of the MISR's characteristic (primitive) polynomial
    ``p(x) = x**width + Σ x**t + 1``: bit ``i`` set iff ``x**i`` has a
    nonzero coefficient, for ``i < width``.  The constant term is always
    present, so bit 0 is always set — this is what makes the Galois
    transition matrix the (invertible) companion matrix of ``p``."""
    taps = PRIMITIVE_TAPS[width]
    mask = 1  # the x**0 term
    for t in taps:
        if t < width:
            mask |= 1 << t
    return mask


class MISR:
    """Galois-form multi-input signature register.

    ``width`` stages; ``num_inputs`` parallel response bits per cycle (one
    per scan chain), injected at stages spread evenly across the register.
    """

    def __init__(self, width: int = 16, num_inputs: int = 1):
        if width not in PRIMITIVE_TAPS:
            raise ValueError(f"no primitive polynomial of degree {width} available")
        if not 1 <= num_inputs <= width:
            raise ValueError("num_inputs must be between 1 and width")
        self.width = width
        self.num_inputs = num_inputs
        self._poly = _char_poly_mask(width)
        self._mask = (1 << width) - 1
        stride = width // num_inputs
        self.input_stages: Tuple[int, ...] = tuple(i * stride for i in range(num_inputs))
        self.state = 0

    def reset(self, value: int = 0) -> None:
        self.state = value & self._mask

    def step(self, inputs: Sequence[int] = ()) -> None:
        """One shift cycle: advance the register (left-shift Galois form,
        multiplication by ``x`` modulo the characteristic polynomial), then
        inject the response bits (0 for masked cells)."""
        top = (self.state >> (self.width - 1)) & 1
        self.state = (self.state << 1) & self._mask
        if top:
            self.state ^= self._poly
        for stage, bit in zip(self.input_stages, inputs):
            if bit:
                self.state ^= 1 << stage

    def compact(self, stream: Iterable[Sequence[int]], init: int = 0) -> int:
        """Signature of a whole stream of per-cycle input tuples."""
        self.reset(init)
        for inputs in stream:
            self.step(inputs)
        return self.state

    # -- linear-algebra view -------------------------------------------------

    def transition_columns(self) -> List[int]:
        """The state-update matrix A as column masks: column ``j`` is
        ``A @ e_j`` where ``e_j`` is the unit state with only stage ``j``."""
        columns = []
        for j in range(self.width):
            self.reset(1 << j)
            self.step()
            columns.append(self.state)
        self.reset(0)
        return columns


class LinearCompactor:
    """Fast error-signature evaluation via precomputed matrix powers.

    For an error event (input channel ``c``, global shift cycle ``t``) in a
    session of ``total_cycles`` cycles, the contribution to the final
    signature is ``A**(total_cycles - 1 - t) @ inject_c`` where ``inject_c``
    is the unit vector at channel ``c``'s injection stage.  The error
    signature is the XOR of all contributions — linearity of the MISR.
    """

    #: Longest impulse-response table that will be materialized (entries);
    #: longer step counts fall back to square-and-multiply.
    TABLE_LIMIT = 1 << 22

    def __init__(self, width: int = 16, num_inputs: int = 1, max_cycles_log2: int = 40):
        self.width = width
        self.num_inputs = num_inputs
        misr = MISR(width, num_inputs)
        self.input_stages = misr.input_stages
        base = misr.transition_columns()
        # Powers A^(2^k) as column-mask matrices.
        self._powers: List[List[int]] = [base]
        for _ in range(max_cycles_log2 - 1):
            prev = self._powers[-1]
            self._powers.append(_mat_mul(prev, prev))
        self._response_cache: Dict[Tuple[int, int], int] = {}
        self._poly = _char_poly_mask(width)
        self._state_mask = (1 << width) - 1
        self._tables: Dict[int, "np.ndarray"] = {}

    def _apply_power(self, exponent: int, vector: int) -> int:
        """``A**exponent @ vector`` over GF(2)."""
        k = 0
        while exponent:
            if exponent & 1:
                vector = _mat_vec(self._powers[k], vector)
            exponent >>= 1
            k += 1
            if k >= len(self._powers) and exponent:
                raise ValueError("cycle count exceeds precomputed matrix powers")
        return vector

    def impulse_response(self, channel: int, steps_remaining: int) -> int:
        """Signature contribution of a single error bit on ``channel`` with
        ``steps_remaining`` further shift cycles after its injection."""
        key = (channel, steps_remaining)
        cached = self._response_cache.get(key)
        if cached is not None:
            return cached
        vector = 1 << self.input_stages[channel]
        result = self._apply_power(steps_remaining, vector)
        self._response_cache[key] = result
        return result

    def error_signature(
        self, events: Iterable[Tuple[int, int]], total_cycles: int
    ) -> int:
        """Error signature of a sparse error stream.

        ``events`` yields ``(channel, cycle)`` pairs (0-based global shift
        cycles); the MISR steps once per cycle for ``total_cycles`` cycles.
        """
        signature = 0
        for channel, cycle in events:
            if not 0 <= cycle < total_cycles:
                raise ValueError(f"cycle {cycle} outside session of {total_cycles}")
            signature ^= self.impulse_response(channel, total_cycles - 1 - cycle)
        return signature

    def impulse_table(self, channel: int, max_steps: int) -> "np.ndarray":
        """``A**s @ inject_c`` for ``s = 0 .. max_steps`` as a ``uint64``
        array, built by iterating the O(1) Galois step and cached (grown on
        demand).  One table serves every partition, session and fault of a
        workload — the batch kernel reduces to a single gather."""
        table = self._tables.get(channel)
        if table is not None and table.size > max_steps:
            return table
        start = 0 if table is None else table.size
        grown = np.empty(max_steps + 1, dtype=np.uint64)
        if table is not None:
            grown[:start] = table
        poly, state_mask, top_bit = self._poly, self._state_mask, self.width - 1
        if start == 0:
            state = 1 << self.input_stages[channel]
            grown[0] = state
            start = 1
        else:
            state = int(grown[start - 1])
        for s in range(start, max_steps + 1):
            top = (state >> top_bit) & 1
            state = (state << 1) & state_mask
            if top:
                state ^= poly
            grown[s] = state
        self._tables[channel] = grown
        return grown

    def batch_impulse_responses(
        self, channels: "np.ndarray", steps_remaining: "np.ndarray"
    ) -> "np.ndarray":
        """Vectorized :meth:`impulse_response` over parallel event arrays.

        For session-scale step counts this is a table lookup per channel
        (see :meth:`impulse_table`); beyond :attr:`TABLE_LIMIT` it falls
        back to square-and-multiply over GF(2) with the whole event
        population advanced at once — for each set bit ``k`` of the
        exponents, the affected state vectors are multiplied by
        ``A**(2**k)`` in a single sweep over the register's columns.
        Signatures fit ``uint64`` because
        :data:`~repro.bist.lfsr.PRIMITIVE_TAPS` caps the width at 32.
        """
        channels = np.asarray(channels, dtype=np.int64)
        exponents = np.asarray(steps_remaining, dtype=np.int64)
        if np.any(exponents < 0):
            raise ValueError("steps_remaining must be non-negative")
        if exponents.size == 0:
            return np.zeros(0, dtype=np.uint64)
        max_step = int(exponents.max())
        if max_step < self.TABLE_LIMIT:
            out = np.empty(exponents.shape, dtype=np.uint64)
            for channel in np.unique(channels):
                selected = channels == channel
                out[selected] = self.impulse_table(int(channel), max_step)[
                    exponents[selected]
                ]
            return out
        stages = np.asarray(self.input_stages, dtype=np.uint64)
        vectors = np.uint64(1) << stages[channels]
        exponents = exponents.copy()
        k = 0
        while np.any(exponents):
            if k >= len(self._powers):
                raise ValueError("cycle count exceeds precomputed matrix powers")
            active = (exponents & 1).astype(bool)
            if np.any(active):
                columns = np.asarray(self._powers[k], dtype=np.uint64)
                sub = vectors[active]
                out = np.zeros_like(sub)
                for j in range(self.width):
                    taken = ((sub >> np.uint64(j)) & np.uint64(1)).astype(bool)
                    out[taken] ^= columns[j]
                vectors[active] = out
            exponents >>= 1
            k += 1
        return vectors


class ParityCompactor:
    """Single-XOR (parity) response compaction — the degenerate width-1
    linear compactor.

    Every response bit XORs into one flip-flop, so a session's error
    signature is simply the parity of its error-event count: any group
    capturing an *even* number of errors aliases to "pass".  Included as
    the lower anchor of the compaction-aliasing ablation; it exposes why
    signature registers need width.

    Drop-in compatible with :class:`LinearCompactor` (same
    ``impulse_response`` / ``error_signature`` interface).
    """

    width = 1

    def __init__(self, num_inputs: int = 1):
        self.num_inputs = num_inputs
        self.input_stages = tuple(0 for _ in range(num_inputs))

    def impulse_response(self, channel: int, steps_remaining: int) -> int:
        if not 0 <= channel < self.num_inputs:
            raise ValueError(f"channel {channel} out of range")
        if steps_remaining < 0:
            raise ValueError("steps_remaining must be non-negative")
        return 1

    def error_signature(
        self, events: Iterable[Tuple[int, int]], total_cycles: int
    ) -> int:
        signature = 0
        for channel, cycle in events:
            if not 0 <= cycle < total_cycles:
                raise ValueError(f"cycle {cycle} outside session of {total_cycles}")
            signature ^= self.impulse_response(channel, total_cycles - 1 - cycle)
        return signature

    def batch_impulse_responses(
        self, channels: "np.ndarray", steps_remaining: "np.ndarray"
    ) -> "np.ndarray":
        """Vectorized impulse responses: every event contributes parity 1."""
        channels = np.asarray(channels, dtype=np.int64)
        steps = np.asarray(steps_remaining, dtype=np.int64)
        if np.any(channels < 0) or np.any(channels >= self.num_inputs):
            raise ValueError("channel out of range")
        if np.any(steps < 0):
            raise ValueError("steps_remaining must be non-negative")
        return np.ones(channels.shape, dtype=np.uint64)


def _mat_vec(columns: Sequence[int], vector: int) -> int:
    """Matrix-vector product over GF(2) with the matrix as column masks."""
    out = 0
    j = 0
    while vector:
        if vector & 1:
            out ^= columns[j]
        vector >>= 1
        j += 1
    return out


def _mat_mul(a: Sequence[int], b: Sequence[int]) -> List[int]:
    """Matrix product ``A @ B`` (both as column masks): column ``j`` of the
    result is ``A @ (column j of B)``."""
    return [_mat_vec(a, col) for col in b]
