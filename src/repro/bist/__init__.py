"""Scan-BIST substrate: LFSR/IVR, MISR and its linear error model, scan
chain configuration, pattern source, and masked session execution."""

from .golden import (
    SessionSignatures,
    faulty_captured,
    good_captured_matrix,
    response_stream,
    run_tester_partition,
    run_tester_session,
)
from .lfsr import IVR, LFSR, PRIMITIVE_TAPS
from .misr import MISR, LinearCompactor, ParityCompactor
from .patterns import PRPG, fast_pattern_matrices
from .scan import CellLocation, ScanConfig
from .session import SessionOutcome, collect_error_events, run_partition_sessions

__all__ = [
    "CellLocation",
    "IVR",
    "LFSR",
    "LinearCompactor",
    "MISR",
    "PRIMITIVE_TAPS",
    "PRPG",
    "ParityCompactor",
    "ScanConfig",
    "SessionSignatures",
    "faulty_captured",
    "good_captured_matrix",
    "response_stream",
    "run_tester_partition",
    "run_tester_session",
    "SessionOutcome",
    "collect_error_events",
    "fast_pattern_matrices",
    "run_partition_sessions",
]
