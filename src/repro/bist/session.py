"""BIST session execution: per-group signature collection under masking.

One *partition* of the scan positions into ``b`` groups costs ``b`` BIST
sessions.  Session ``g`` replays the full pattern set with the selection
hardware passing only the cells of group ``g`` to the compactor; the
signature is compared against the fault-free signature for that group.  By
MISR linearity the comparison is equivalent to checking whether the *error
signature* of the masked error stream is zero, which is what this module
computes (see :class:`repro.bist.misr.LinearCompactor`).

With ``W`` parallel scan chains the compactor keeps one signature per
response channel (per chain) — hardware-wise, ``W`` narrow signature
registers or one wide MISR read out in per-channel slices.  A session's
outcome is therefore a ``(group, channel)`` signature matrix; a channel
whose signature mismatches localizes the error to that chain's cells of
the group.  (Diagnosing with a single combined signature per session is
available as an ablation; it cannot separate cells that share a shift
position across chains.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..sim.bitops import WORD_BITS
from ..sim.faultsim import FaultResponse
from .misr import LinearCompactor
from .scan import ScanConfig


@dataclass
class SessionOutcome:
    """Signatures of all sessions of one partition.

    ``signatures[g][w]`` is the error signature of group ``g`` on response
    channel (chain) ``w`` — ``0`` means the observed signature matched the
    fault-free one.  With exact (alias-free) mode the value is 1 iff any
    error event fell in that group on that chain.
    """

    signatures: List[List[int]]

    @property
    def num_groups(self) -> int:
        return len(self.signatures)

    @property
    def num_channels(self) -> int:
        return len(self.signatures[0]) if self.signatures else 0

    @property
    def failing_groups(self) -> List[int]:
        """Groups with a mismatch on at least one channel."""
        return [
            g
            for g, per_channel in enumerate(self.signatures)
            if any(sig != 0 for sig in per_channel)
        ]

    @property
    def failing_pairs(self) -> List[Tuple[int, int]]:
        """All failing ``(group, channel)`` pairs."""
        return [
            (g, w)
            for g, per_channel in enumerate(self.signatures)
            for w, sig in enumerate(per_channel)
            if sig != 0
        ]

    def failing_matrix(self, num_channels: int) -> np.ndarray:
        """Boolean array ``[group, channel]`` of mismatching signatures."""
        mat = np.zeros((self.num_groups, num_channels), dtype=bool)
        for g, per_channel in enumerate(self.signatures):
            for w, sig in enumerate(per_channel):
                if sig != 0:
                    mat[g, w] = True
        return mat

    def combined(self, exact: bool = False) -> "SessionOutcome":
        """Collapse channels into one signature per group (single shared
        MISR readout — the coarser observation model, kept for the
        channel-resolution ablation).

        With real signatures the combined value is the XOR of the channel
        signatures (MISR linearity; contributions from different chains can
        alias against each other, faithfully).  ``exact=True`` treats the
        per-channel values as pass/fail flags and ORs them instead.
        """
        if exact:
            collapsed = [
                [1 if any(sig != 0 for sig in per_channel) else 0]
                for per_channel in self.signatures
            ]
        else:
            collapsed = [[_xor_all(per_channel)] for per_channel in self.signatures]
        return SessionOutcome(collapsed)


def _xor_all(values: Sequence[int]) -> int:
    out = 0
    for v in values:
        out ^= v
    return out


def collect_error_events(
    response: FaultResponse, scan_config: ScanConfig
) -> List[tuple]:
    """Flatten a fault's error matrix into compactor events.

    Returns ``(position, channel, global_cycle)`` triples, one per erroneous
    (cell, pattern) pair.
    """
    events = []
    for cell, vec in response.cell_errors.items():
        loc = scan_config.location(cell)
        for word_idx in range(len(vec)):
            word = int(vec[word_idx])
            while word:
                low = word & -word
                bit = low.bit_length() - 1
                pattern = word_idx * WORD_BITS + bit
                events.append(
                    (loc.position, loc.chain, scan_config.global_cycle(cell, pattern))
                )
                word ^= low
    return events


def run_partition_sessions(
    events: Sequence[tuple],
    group_of: np.ndarray,
    num_groups: int,
    total_cycles: int,
    compactor: Optional[LinearCompactor],
    num_channels: int = 1,
) -> SessionOutcome:
    """Execute the ``num_groups`` sessions of one partition.

    ``events`` comes from :func:`collect_error_events`; ``group_of`` maps a
    shift position to its group index.  ``compactor=None`` selects the exact
    (alias-free) comparison used by the property tests and ablations.
    """
    signatures = [[0] * num_channels for _ in range(num_groups)]
    if compactor is None:
        for position, channel, _cycle in events:
            signatures[int(group_of[position])][channel] = 1
    else:
        for position, channel, cycle in events:
            group = int(group_of[position])
            signatures[group][channel] ^= compactor.impulse_response(
                channel, total_cycles - 1 - cycle
            )
    return SessionOutcome(signatures)
