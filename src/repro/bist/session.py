"""BIST session execution: per-group signature collection under masking.

One *partition* of the scan positions into ``b`` groups costs ``b`` BIST
sessions.  Session ``g`` replays the full pattern set with the selection
hardware passing only the cells of group ``g`` to the compactor; the
signature is compared against the fault-free signature for that group.  By
MISR linearity the comparison is equivalent to checking whether the *error
signature* of the masked error stream is zero, which is what this module
computes (see :class:`repro.bist.misr.LinearCompactor`).

With ``W`` parallel scan chains the compactor keeps one signature per
response channel (per chain) — hardware-wise, ``W`` narrow signature
registers or one wide MISR read out in per-channel slices.  A session's
outcome is therefore a ``(group, channel)`` signature matrix; a channel
whose signature mismatches localizes the error to that chain's cells of
the group.  (Diagnosing with a single combined signature per session is
available as an ablation; it cannot separate cells that share a shift
position across chains.)

The hot path operates on :class:`ErrorEvents` — parallel numpy arrays of
``(position, channel, cycle)`` triples extracted from an error matrix in a
single pass — and accumulates signatures with bucketed XORs over the
compactor's batch impulse responses.  The tuple-based API is preserved as a
thin view for callers and tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..sim.faultsim import FaultResponse
from ..telemetry import METRICS
from .misr import LinearCompactor
from .scan import ScanConfig


class SessionOutcome:
    """Signatures of all sessions of one partition.

    ``signatures[g][w]`` is the error signature of group ``g`` on response
    channel (chain) ``w`` — ``0`` means the observed signature matched the
    fault-free one.  With exact (alias-free) mode the value is 1 iff any
    error event fell in that group on that chain.

    Either representation can be the source: the scalar kernel supplies the
    list-of-lists, the vectorized kernel a ``(group, channel)`` ``uint64``
    ``signature_matrix``; each view is derived lazily from the other, so
    vectorized consumers never materialize Python ints.
    """

    def __init__(
        self,
        signatures: Optional[List[List[int]]] = None,
        signature_matrix: Optional[np.ndarray] = None,
    ):
        if signatures is None and signature_matrix is None:
            raise ValueError("signatures or signature_matrix required")
        self._signatures = signatures
        self._signature_matrix = signature_matrix

    def __repr__(self) -> str:
        return f"SessionOutcome(signatures={self.signatures!r})"

    @property
    def signatures(self) -> List[List[int]]:
        if self._signatures is None:
            self._signatures = [
                [int(sig) for sig in row] for row in self._signature_matrix
            ]
        return self._signatures

    @property
    def signature_matrix(self) -> Optional[np.ndarray]:
        return self._signature_matrix

    @property
    def num_groups(self) -> int:
        if self._signature_matrix is not None:
            return int(self._signature_matrix.shape[0])
        return len(self._signatures)

    @property
    def num_channels(self) -> int:
        if self._signature_matrix is not None:
            return int(self._signature_matrix.shape[1])
        return len(self._signatures[0]) if self._signatures else 0

    def _matrix(self) -> np.ndarray:
        """Signatures as a ``(group, channel)`` ``uint64`` array."""
        if self._signature_matrix is None:
            matrix = np.asarray(self._signatures, dtype=np.uint64)
            if matrix.ndim == 1:  # zero channels
                matrix = matrix.reshape(len(self._signatures), 0)
            self._signature_matrix = matrix
        return self._signature_matrix

    @property
    def failing_groups(self) -> List[int]:
        """Groups with a mismatch on at least one channel."""
        return [int(g) for g in np.flatnonzero((self._matrix() != 0).any(axis=1))]

    @property
    def failing_pairs(self) -> List[Tuple[int, int]]:
        """All failing ``(group, channel)`` pairs."""
        rows, cols = np.nonzero(self._matrix())
        return [(int(g), int(w)) for g, w in zip(rows, cols)]

    def failing_matrix(self, num_channels: int) -> np.ndarray:
        """Boolean array ``[group, channel]`` of mismatching signatures."""
        mat = np.zeros((self.num_groups, num_channels), dtype=bool)
        own = self._matrix() != 0
        mat[:, : own.shape[1]] = own
        return mat

    def combined(self, exact: bool = False) -> "SessionOutcome":
        """Collapse channels into one signature per group (single shared
        MISR readout — the coarser observation model, kept for the
        channel-resolution ablation).

        With real signatures the combined value is the XOR of the channel
        signatures (MISR linearity; contributions from different chains can
        alias against each other, faithfully).  ``exact=True`` treats the
        per-channel values as pass/fail flags and ORs them instead.
        """
        matrix = self._matrix()
        if exact:
            collapsed = (matrix != 0).any(axis=1).astype(np.uint64)
        elif matrix.shape[1]:
            collapsed = np.bitwise_xor.reduce(matrix, axis=1)
        else:
            collapsed = np.zeros(self.num_groups, dtype=np.uint64)
        return SessionOutcome(signature_matrix=collapsed.reshape(-1, 1))


@dataclass(frozen=True)
class ErrorEvents:
    """A fault's error events as parallel arrays (one entry per erroneous
    ``(cell, pattern)`` pair): shift position, response channel, and global
    compactor cycle."""

    positions: np.ndarray
    channels: np.ndarray
    cycles: np.ndarray

    def __len__(self) -> int:
        return int(self.positions.size)

    def as_tuples(self) -> List[tuple]:
        """The legacy ``(position, channel, cycle)`` triple list."""
        return [
            (int(p), int(w), int(t))
            for p, w, t in zip(self.positions, self.channels, self.cycles)
        ]

    @classmethod
    def empty(cls) -> "ErrorEvents":
        zero = np.zeros(0, dtype=np.int64)
        return cls(zero, zero.copy(), zero.copy())

    @classmethod
    def from_tuples(cls, events: Sequence[tuple]) -> "ErrorEvents":
        if not len(events):
            return cls.empty()
        arr = np.asarray(events, dtype=np.int64)
        return cls(arr[:, 0].copy(), arr[:, 1].copy(), arr[:, 2].copy())

    @classmethod
    def from_response(
        cls, response: FaultResponse, scan_config: ScanConfig
    ) -> "ErrorEvents":
        """Vectorized event extraction: one ``np.nonzero`` over the stacked
        error matrix instead of a per-bit Python loop."""
        cells = list(response.cell_errors)
        if not cells:
            METRICS.incr("session.extractions")
            return cls.empty()
        matrix = np.stack([response.cell_errors[c] for c in cells])
        bits = np.unpackbits(
            matrix.view(np.uint8).reshape(len(cells), -1), axis=1, bitorder="little"
        )
        rows, patterns = np.nonzero(bits)
        all_positions, all_chains = scan_config.location_arrays()
        cell_ids = np.asarray(cells, dtype=np.int64)
        positions = all_positions[cell_ids][rows]
        # global_cycle = pattern * max_length + unload position.
        cycles = patterns.astype(np.int64) * scan_config.max_length + positions
        METRICS.incr("session.extractions")
        METRICS.incr("session.events_extracted", int(positions.size))
        return cls(positions, all_chains[cell_ids][rows], cycles)


def collect_error_event_arrays(
    response: FaultResponse, scan_config: ScanConfig
) -> ErrorEvents:
    """Flatten a fault's error matrix into compactor events (array form)."""
    return ErrorEvents.from_response(response, scan_config)


@dataclass(frozen=True)
class PopulationEvents:
    """Error events of a whole fault population, concatenated.

    ``events`` holds every fault's events back to back in fault order;
    ``fault_of[e]`` is the population index of event ``e`` (nondecreasing),
    and fault ``f``'s events occupy ``[offsets[f], offsets[f+1])``.  Within
    a fault the events appear in exactly the order
    :meth:`ErrorEvents.from_response` produces, so per-fault slices are
    bit-identical to per-fault extraction.
    """

    events: ErrorEvents
    fault_of: np.ndarray
    offsets: np.ndarray

    @property
    def num_faults(self) -> int:
        return int(self.offsets.size) - 1

    def fault_events(self, fault: int) -> ErrorEvents:
        """One fault's events as a view (the per-fault extractor's output)."""
        lo, hi = int(self.offsets[fault]), int(self.offsets[fault + 1])
        return ErrorEvents(
            self.events.positions[lo:hi],
            self.events.channels[lo:hi],
            self.events.cycles[lo:hi],
        )


def collect_population_events(
    responses: Sequence[FaultResponse], scan_config: ScanConfig
) -> PopulationEvents:
    """Extract every fault's error events in one ``np.nonzero``.

    All responses' error matrices are stacked into a single bit matrix and
    unpacked together — one kernel launch for the whole population instead
    of one per fault.  Requires a uniform pattern count (so the packed word
    vectors stack); the fused diagnosis kernel guarantees this by falling
    back to the per-fault path for mixed populations.
    """
    num_faults = len(responses)
    rows: List[np.ndarray] = []
    row_cell: List[int] = []
    row_fault: List[int] = []
    for f, response in enumerate(responses):
        for cell, vec in response.cell_errors.items():
            rows.append(vec)
            row_cell.append(cell)
            row_fault.append(f)
    METRICS.incr("session.population_extractions")
    if not rows:
        zero = np.zeros(0, dtype=np.int64)
        return PopulationEvents(
            ErrorEvents.empty(), zero, np.zeros(num_faults + 1, dtype=np.int64)
        )
    matrix = np.stack(rows)
    bits = np.unpackbits(
        matrix.view(np.uint8).reshape(len(rows), -1), axis=1, bitorder="little"
    )
    row_idx, patterns = np.nonzero(bits)
    all_positions, all_chains = scan_config.location_arrays()
    cell_ids = np.asarray(row_cell, dtype=np.int64)[row_idx]
    positions = all_positions[cell_ids]
    cycles = patterns.astype(np.int64) * scan_config.max_length + positions
    fault_of = np.asarray(row_fault, dtype=np.int64)[row_idx]
    # Rows are grouped by fault and np.nonzero walks them in row-major
    # order, so fault_of is sorted and the offsets fall out of a search.
    offsets = np.searchsorted(fault_of, np.arange(num_faults + 1))
    METRICS.incr("session.events_extracted", int(positions.size))
    return PopulationEvents(
        ErrorEvents(positions, all_chains[cell_ids], cycles), fault_of, offsets
    )


def collect_error_events(
    response: FaultResponse, scan_config: ScanConfig
) -> List[tuple]:
    """Flatten a fault's error matrix into compactor events.

    Returns ``(position, channel, global_cycle)`` triples, one per erroneous
    (cell, pattern) pair.  Thin tuple view over
    :func:`collect_error_event_arrays`.
    """
    return ErrorEvents.from_response(response, scan_config).as_tuples()


def event_contributions(
    events: ErrorEvents,
    compactor: Optional[LinearCompactor],
    total_cycles: int,
) -> Optional[np.ndarray]:
    """Per-event signature contributions, computed once per fault.

    The impulse response of an event depends only on its channel and cycle —
    not on the partition — so one batch evaluation serves every partition's
    sessions.  Returns ``None`` in exact mode (``compactor=None``), where
    session verdicts are pure set membership.
    """
    if compactor is None:
        return None
    if len(events) == 0:
        return np.zeros(0, dtype=np.uint64)
    steps = total_cycles - 1 - events.cycles
    if np.any(steps < 0) or np.any(events.cycles < 0):
        raise ValueError(f"event cycle outside session of {total_cycles}")
    return compactor.batch_impulse_responses(events.channels, steps)


def sessions_from_arrays(
    events: ErrorEvents,
    contributions: Optional[np.ndarray],
    group_of: np.ndarray,
    num_groups: int,
    num_channels: int,
) -> SessionOutcome:
    """Bucketed-XOR session kernel: accumulate the precomputed per-event
    contributions into the ``(group, channel)`` signature matrix.

    ``contributions=None`` selects the exact (alias-free) comparison: a
    bucket's signature is 1 iff any event lands in it.
    """
    METRICS.incr("session.batch_kernel_calls")
    METRICS.incr("session.sessions_compacted", num_groups)
    matrix = np.zeros((num_groups, num_channels), dtype=np.uint64)
    if len(events):
        groups = np.asarray(group_of)[events.positions]
        if contributions is None:
            matrix[groups, events.channels] = np.uint64(1)
        else:
            flat = matrix.reshape(-1)
            np.bitwise_xor.at(
                flat, groups * num_channels + events.channels, contributions
            )
    return SessionOutcome(signature_matrix=matrix)


def sessions_for_partitions(
    events: ErrorEvents,
    contributions: Optional[np.ndarray],
    partitions: Sequence,
    num_channels: int,
) -> List[SessionOutcome]:
    """All partitions' sessions of one fault in a single bucketed pass.

    The per-event contributions are partition-independent, so the whole
    ``(partition, group, channel)`` signature tensor accumulates with one
    scatter instead of one kernel launch per partition.
    """
    num_parts = len(partitions)
    max_groups = max(part.num_groups for part in partitions)
    METRICS.incr("session.batch_kernel_calls")
    METRICS.incr(
        "session.sessions_compacted",
        sum(part.num_groups for part in partitions),
    )
    tensor = np.zeros((num_parts, max_groups, num_channels), dtype=np.uint64)
    if len(events):
        group_stack = np.stack([np.asarray(part.group_of) for part in partitions])
        groups = group_stack[:, events.positions]  # [partition, event]
        flat_index = (
            np.arange(num_parts)[:, np.newaxis] * (max_groups * num_channels)
            + groups * num_channels
            + events.channels[np.newaxis, :]
        ).ravel()
        flat = tensor.reshape(-1)
        if contributions is None:
            flat[flat_index] = np.uint64(1)
        else:
            np.bitwise_xor.at(flat, flat_index, np.tile(contributions, num_parts))
    return [
        SessionOutcome(signature_matrix=tensor[k, : part.num_groups, :])
        for k, part in enumerate(partitions)
    ]


def run_partition_sessions(
    events: Union[Sequence[tuple], ErrorEvents],
    group_of: np.ndarray,
    num_groups: int,
    total_cycles: int,
    compactor: Optional[LinearCompactor],
    num_channels: int = 1,
) -> SessionOutcome:
    """Execute the ``num_groups`` sessions of one partition.

    ``events`` comes from :func:`collect_error_events` (tuple form) or
    :func:`collect_error_event_arrays`; ``group_of`` maps a shift position
    to its group index.  ``compactor=None`` selects the exact (alias-free)
    comparison used by the property tests and ablations.
    """
    if not isinstance(events, ErrorEvents):
        events = ErrorEvents.from_tuples(events)
    if compactor is not None and not hasattr(compactor, "batch_impulse_responses"):
        # Custom compactors only need the scalar impulse_response protocol.
        METRICS.incr("session.scalar_fallbacks")
        return run_partition_sessions_scalar(
            events.as_tuples(), group_of, num_groups, total_cycles, compactor,
            num_channels=num_channels,
        )
    contributions = event_contributions(events, compactor, total_cycles)
    return sessions_from_arrays(
        events, contributions, group_of, num_groups, num_channels
    )


def run_partition_sessions_scalar(
    events: Sequence[tuple],
    group_of: np.ndarray,
    num_groups: int,
    total_cycles: int,
    compactor: Optional[LinearCompactor],
    num_channels: int = 1,
) -> SessionOutcome:
    """Reference per-event implementation of :func:`run_partition_sessions`.

    Kept as the equivalence oracle for the vectorized kernel (property
    tests) and as the fallback for compactors that only implement the
    scalar ``impulse_response`` protocol.
    """
    METRICS.incr("session.scalar_kernel_calls")
    METRICS.incr("session.sessions_compacted", num_groups)
    signatures = [[0] * num_channels for _ in range(num_groups)]
    if compactor is None:
        for position, channel, _cycle in events:
            signatures[int(group_of[position])][channel] = 1
    else:
        for position, channel, cycle in events:
            group = int(group_of[position])
            signatures[group][channel] ^= compactor.impulse_response(
                channel, total_cycles - 1 - cycle
            )
    return SessionOutcome(signatures)
