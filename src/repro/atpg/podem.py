"""PODEM deterministic test generation for single stuck-at faults.

Pseudo-random BIST leaves part of the fault universe undetected
(random-pattern-resistant faults); production flows top the BIST session up
with stored deterministic patterns.  This module implements PODEM (Goel,
1981) on the full-scan combinational view so experiments can (a) classify
the faults the paper's 128-pattern sessions miss and (b) study diagnosis
with a deterministic top-up pattern set.

Implementation: the classic two-circuit five-valued calculus.  Every net
carries a pair ``(good, faulty)`` of three-valued values (0, 1, X); the
pairs (1,0) and (0,1) are D and D̄.  Decisions are made only at primary
inputs and scan-cell pseudo-inputs; each decision triggers a full forward
implication pass (circuits at ATPG granularity are small enough that the
simple full pass beats bookkeeping).  Objectives follow the textbook
scheme: activate the fault, then advance the D-frontier; backtrace drives
each objective to an unassigned input; a backtrack limit bounds the search.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..circuit.levelize import topological_order
from ..circuit.netlist import GateType, Netlist
from ..sim.faults import Fault

# Three-valued scalars.
ZERO, ONE, X = 0, 1, 2

#: (good, faulty) pairs for the five composite values.
V0 = (ZERO, ZERO)
V1 = (ONE, ONE)
VX = (X, X)
VD = (ONE, ZERO)
VDBAR = (ZERO, ONE)


def _and3(a: int, b: int) -> int:
    if a == ZERO or b == ZERO:
        return ZERO
    if a == ONE and b == ONE:
        return ONE
    return X


def _or3(a: int, b: int) -> int:
    if a == ONE or b == ONE:
        return ONE
    if a == ZERO and b == ZERO:
        return ZERO
    return X


def _xor3(a: int, b: int) -> int:
    if a == X or b == X:
        return X
    return a ^ b


def _not3(a: int) -> int:
    if a == X:
        return X
    return 1 - a


_CONTROLLING = {
    GateType.AND: ZERO,
    GateType.NAND: ZERO,
    GateType.OR: ONE,
    GateType.NOR: ONE,
}

_INVERTING = {GateType.NAND, GateType.NOR, GateType.NOT, GateType.XNOR}


def _eval3(gtype: GateType, inputs: Sequence[int]) -> int:
    if gtype in (GateType.AND, GateType.NAND):
        value = ONE
        for v in inputs:
            value = _and3(value, v)
    elif gtype in (GateType.OR, GateType.NOR):
        value = ZERO
        for v in inputs:
            value = _or3(value, v)
    elif gtype in (GateType.XOR, GateType.XNOR):
        value = ZERO
        for v in inputs:
            value = _xor3(value, v)
    else:  # BUF / NOT
        value = inputs[0]
    if gtype in _INVERTING:
        value = _not3(value)
    return value


@dataclass
class TestCube:
    """A generated test: assignments to primary inputs and scan cells.

    Unassigned positions are don't-cares and may be filled randomly (the
    usual practice before pattern application)."""

    pi_values: Dict[str, int]
    ff_values: Dict[str, int]
    fault: Fault

    def assignment_count(self) -> int:
        return len(self.pi_values) + len(self.ff_values)


@dataclass
class AtpgStats:
    detected: int = 0
    untestable: int = 0
    aborted: int = 0


class PodemEngine:
    """PODEM over one netlist (reusable across faults)."""

    def __init__(self, netlist: Netlist, backtrack_limit: int = 200):
        netlist.validate()
        self.netlist = netlist
        self.backtrack_limit = backtrack_limit
        self.topo = topological_order(netlist)
        self.inputs: List[str] = list(netlist.inputs) + [
            g.output for g in netlist.flip_flops
        ]
        self._input_set: Set[str] = set(self.inputs)
        # Observation points: POs and scan-cell D inputs.
        self.observe: List[str] = list(netlist.outputs) + [
            g.fanins[0] for g in netlist.flip_flops
        ]
        self._fanout = netlist.fanout_map()

    # -- implication -------------------------------------------------------

    def _simulate(
        self, assignment: Dict[str, int], fault: Fault
    ) -> Dict[str, Tuple[int, int]]:
        """Full forward five-valued implication under the fault."""
        values: Dict[str, Tuple[int, int]] = {}
        for net in self.topo:
            gate = self.netlist.gates[net]
            if not gate.gtype.is_combinational:
                scalar = assignment.get(net, X)
                good = faulty = scalar
            else:
                good_ins = []
                faulty_ins = []
                for pos, src in enumerate(gate.fanins):
                    g, f = values[src]
                    if fault.pin is not None and fault.pin == (net, pos):
                        f = fault.stuck_at
                    good_ins.append(g)
                    faulty_ins.append(f)
                good = _eval3(gate.gtype, good_ins)
                faulty = _eval3(gate.gtype, faulty_ins)
            if fault.pin is None and fault.net == net:
                faulty = fault.stuck_at
            values[net] = (good, faulty)
        return values

    # -- objectives ----------------------------------------------------------

    def _fault_site_value(self, values: Dict[str, Tuple[int, int]], fault: Fault):
        return values[fault.net]

    def _activation_objective(
        self, values: Dict[str, Tuple[int, int]], fault: Fault
    ) -> Optional[Tuple[str, int]]:
        """Objective to set the faulty net to the opposite of the stuck
        value (so the fault produces D / D̄)."""
        good, _faulty = values[fault.net]
        if good == X:
            return (fault.net, 1 - fault.stuck_at)
        return None

    def _d_frontier(
        self, values: Dict[str, Tuple[int, int]], fault: Fault
    ) -> List[str]:
        frontier = []
        for net, gate in self.netlist.gates.items():
            if not gate.gtype.is_combinational:
                continue
            good, faulty = values[net]
            if good != X and faulty != X:
                continue  # already resolved
            has_d_input = False
            for pos, src in enumerate(gate.fanins):
                g, f = values[src]
                if fault.pin is not None and fault.pin == (net, pos):
                    f = fault.stuck_at
                if g != X and f != X and g != f:
                    has_d_input = True
                    break
            if has_d_input:
                frontier.append(net)
        return frontier

    def _propagation_objective(
        self, values: Dict[str, Tuple[int, int]], fault: Fault
    ) -> Optional[Tuple[str, int]]:
        frontier = self._d_frontier(values, fault)
        for net in frontier:
            gate = self.netlist.gates[net]
            control = _CONTROLLING.get(gate.gtype)
            for src in gate.fanins:
                g, f = values[src]
                if g == X or f == X:
                    if control is not None:
                        return (src, 1 - control)
                    return (src, ZERO)  # XOR-ish: any binding helps
        return None

    # -- backtrace ----------------------------------------------------------

    def _backtrace(
        self,
        objective: Tuple[str, int],
        values: Dict[str, Tuple[int, int]],
    ) -> Optional[Tuple[str, int]]:
        """Drive an objective back to an unassigned input through X nets."""
        net, target = objective
        guard = 0
        while net not in self._input_set:
            guard += 1
            if guard > len(self.topo):
                return None
            gate = self.netlist.gates[net]
            if gate.gtype in _INVERTING:
                target = 1 - target if target != X else X
            # pick an X input to continue through
            next_net = None
            for src in gate.fanins:
                g, f = values[src]
                if g == X or f == X:
                    next_net = src
                    break
            if next_net is None:
                return None
            net = next_net
        g, f = values[net]
        if g != X:
            return None  # input already assigned
        return (net, target)

    # -- detection check -------------------------------------------------------

    def _detected(self, values: Dict[str, Tuple[int, int]]) -> bool:
        for net in self.observe:
            good, faulty = values[net]
            if good != X and faulty != X and good != faulty:
                return True
        return False

    def _possible(self, values: Dict[str, Tuple[int, int]], fault: Fault) -> bool:
        """False when no X-path can carry the fault effect to an
        observation point (prune)."""
        good, faulty = values[fault.net]
        if good != X and good == fault.stuck_at:
            return False  # fault cannot be activated under this assignment
        if good != X and faulty != X and good != faulty:
            # Effect exists at the site: need a frontier or direct observation.
            return bool(self._d_frontier(values, fault)) or self._detected(values)
        return True

    # -- main loop ----------------------------------------------------------------

    def generate(self, fault: Fault) -> Optional[TestCube]:
        """A test cube detecting ``fault``, or ``None`` (untestable within
        the backtrack limit)."""
        assignment: Dict[str, int] = {}
        decisions: List[Tuple[str, int, bool]] = []  # (input, value, tried_both)
        backtracks = 0
        while True:
            values = self._simulate(assignment, fault)
            if self._detected(values):
                return self._cube(assignment, fault)
            feasible = self._possible(values, fault)
            decision = None
            if feasible:
                objective = self._activation_objective(values, fault)
                if objective is None:
                    objective = self._propagation_objective(values, fault)
                if objective is not None:
                    decision = self._backtrace(objective, values)
            if decision is None or not feasible:
                # Backtrack.
                while decisions and decisions[-1][2]:
                    net, _value, _tried = decisions.pop()
                    del assignment[net]
                if not decisions:
                    return None
                net, value, _tried = decisions.pop()
                assignment[net] = 1 - value
                decisions.append((net, 1 - value, True))
                backtracks += 1
                if backtracks > self.backtrack_limit:
                    return None
                continue
            net, value = decision
            assignment[net] = value
            decisions.append((net, value, False))

    def _cube(self, assignment: Dict[str, int], fault: Fault) -> TestCube:
        pi_values = {
            net: v for net, v in assignment.items() if net in set(self.netlist.inputs)
        }
        ff_names = {g.output for g in self.netlist.flip_flops}
        ff_values = {net: v for net, v in assignment.items() if net in ff_names}
        return TestCube(pi_values=pi_values, ff_values=ff_values, fault=fault)


def atpg_campaign(
    netlist: Netlist,
    faults: Sequence[Fault],
    backtrack_limit: int = 200,
) -> Tuple[List[TestCube], AtpgStats]:
    """Generate tests for a fault list; returns the cubes and the
    detected / untestable-or-aborted tallies.

    PODEM with a backtrack limit cannot distinguish truly untestable
    faults from aborts, so both are reported: a ``None`` result with fewer
    than ``backtrack_limit`` backtracks exhausted the decision space
    (proven untestable), otherwise it is an abort.
    """
    engine = PodemEngine(netlist, backtrack_limit=backtrack_limit)
    cubes: List[TestCube] = []
    stats = AtpgStats()
    for fault in faults:
        cube = engine.generate(fault)
        if cube is not None:
            cubes.append(cube)
            stats.detected += 1
        else:
            stats.untestable += 1  # includes aborts; see docstring
    return cubes, stats


def cube_to_pattern(
    cube: TestCube,
    netlist: Netlist,
    rng=None,
) -> Tuple[Dict[str, int], Dict[str, int]]:
    """Fill a cube's don't-cares (randomly if ``rng`` given, else with 0)
    yielding a full (pi, ff) assignment ready for logic simulation."""
    import numpy as np

    rng = rng or np.random.default_rng(0)
    pi = {}
    for net in netlist.inputs:
        pi[net] = cube.pi_values.get(net, int(rng.integers(0, 2)))
    ff = {}
    for gate in netlist.flip_flops:
        ff[gate.output] = cube.ff_values.get(gate.output, int(rng.integers(0, 2)))
    return pi, ff
