"""Deterministic test generation (PODEM) for random-pattern-resistant
faults — the top-up path production BIST flows add to the paper's
pseudo-random sessions."""

from .podem import (
    AtpgStats,
    PodemEngine,
    TestCube,
    atpg_campaign,
    cube_to_pattern,
)

__all__ = [
    "AtpgStats",
    "PodemEngine",
    "TestCube",
    "atpg_campaign",
    "cube_to_pattern",
]
