"""Persistent, mmap-backed on-disk tier for the workload cache.

The process-wide memo store (:mod:`repro.experiments.cache`) dies with the
process, so CLI one-shots, CI jobs and ``repro serve`` cold starts pay the
full netlist-compile + golden-sim + fault-sim cost every time.  This
module adds a content-addressed disk tier under the directory named by
``REPRO_DISK_CACHE`` (unset = disabled): compiled workloads, partition
tables, compactors and SoA gate schedules are written once and re-read
by any later process with the same configuration.

Entry format (one file per entry, ``<kind>-<digest>.rpdc``):

* a versioned header — magic ``RPDC``, a format version, and a JSON meta
  block carrying the kind, the ``repr`` of the memo key, schema version
  and section lengths;
* the pickle-protocol-5 stream of the value with every large numpy buffer
  externalized (``buffer_callback``), followed by the raw buffers, each
  64-byte aligned.

Loads ``mmap`` the file (copy-on-write) and hand the buffer slices back
to ``pickle.loads(..., buffers=...)``, so multi-megabyte error matrices
and golden-simulation planes are wired straight onto the page cache
instead of being copied through the pickle stream — repeated cold starts
touch only the pages they read.

Writes are atomic and multi-writer safe (pid-tagged ``O_EXCL`` temp file
+ ``os.replace``) so concurrent processes — cluster workers warming the
same circuits included — can share one cache directory; losing a write
race to a sibling is a benign hit (``cache.disk.races``), since the
digest covers the kind, the full memo key and the schema version and any
config change simply misses.  Corrupt,
truncated or stale-format files are treated as misses, counted
(``cache.disk.errors``) and quarantined — never a traceback.
"""

from __future__ import annotations

import ast
import hashlib
import json
import mmap
import os
import pickle
import struct
import tempfile
import threading
import time
from pathlib import Path
from typing import Any, Dict, Hashable, Iterator, List, Optional, Tuple

from ..telemetry import METRICS, debug, log

MAGIC = b"RPDC"
#: On-disk layout version; bump when the file format changes.
FORMAT_VERSION = 1
#: Cached-object schema version; bump when Workload/CompiledCircuit & co.
#: change shape so stale entries miss instead of resurrecting old layouts.
SCHEMA_VERSION = 1
#: Buffer sections are aligned to this many bytes so mmap-backed uint64
#: arrays come out aligned.
ALIGN = 64
#: Memo kinds worth persisting (small derived objects ride along free).
DISK_KINDS = frozenset(
    {"workload", "soc-workloads", "partitions", "compactor", "soa-schedule"}
)

_SUFFIX = ".rpdc"
_PREAMBLE = struct.Struct("<4sII")  # magic, format version, header length

_LOCK = threading.Lock()
_STATS = {"hits": 0, "misses": 0, "errors": 0, "races": 0,
          "bytes_read": 0, "bytes_written": 0}


class DiskCacheError(Exception):
    """A disk-cache directory or entry that cannot be used (missing dir,
    corrupt file) — raised only by the explicit inspection API
    (:func:`scan`); the read/write fast path degrades to misses instead."""


def cache_dir() -> Optional[Path]:
    """The disk-tier root from ``REPRO_DISK_CACHE`` (``None`` = disabled)."""
    raw = os.environ.get("REPRO_DISK_CACHE", "").strip()
    return Path(raw) if raw else None


def enabled_for(kind: str) -> bool:
    return kind in DISK_KINDS and cache_dir() is not None


def key_digest(kind: str, key: Hashable) -> str:
    """Content address: kind + schema version + the full memo key.

    Memo keys are tuples of primitives with stable ``repr`` (circuit
    names, scales, seeds, chain tuples — see ``experiments.cache``), so
    the digest is deterministic across processes and machines.
    """
    raw = f"{kind}|schema{SCHEMA_VERSION}|{key!r}"
    return hashlib.sha256(raw.encode("utf-8")).hexdigest()[:40]


def entry_path(root: Path, kind: str, key: Hashable) -> Path:
    return root / f"{kind}-{key_digest(kind, key)}{_SUFFIX}"


# -- read path ----------------------------------------------------------------


def load(kind: str, key: Hashable) -> Tuple[Any, bool]:
    """``(value, True)`` on a disk hit, ``(None, False)`` otherwise.

    Every failure mode — missing dir, missing entry, bad magic, stale
    version, truncated payload, unpicklable content — is a miss; corrupt
    files are additionally quarantined so they only cost one attempt.
    """
    root = cache_dir()
    if root is None or kind not in DISK_KINDS:
        return None, False
    path = entry_path(root, kind, key)
    try:
        value, _meta = _read_entry(path)
    except FileNotFoundError:
        _bump("misses")
        METRICS.incr("cache.disk.misses", 1, labels={"kind": kind})
        return None, False
    except Exception as exc:  # noqa: BLE001 - any corruption is a miss
        _bump("errors")
        METRICS.incr("cache.disk.errors", 1, labels={"kind": kind})
        log(f"disk cache: dropping unreadable entry {path.name}: {exc!r}")
        _quarantine(path)
        return None, False
    _bump("hits")
    _bump("bytes_read", path.stat().st_size if path.exists() else 0)
    METRICS.incr("cache.disk.hits", 1, labels={"kind": kind})
    debug(f"disk cache: hit {kind} {path.name}")
    return value, True


def _read_entry(path: Path) -> Tuple[Any, Dict[str, Any]]:
    """Decode one entry through a copy-on-write mmap.

    The returned value's numpy arrays reference the mapping directly
    (pickle-5 out-of-band buffers), so the pages stay shared with the OS
    page cache; the mapping lives as long as any array does.
    """
    with open(path, "rb") as handle:
        if path.stat().st_size < _PREAMBLE.size:
            raise DiskCacheError("truncated preamble")
        mm = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_COPY)
    magic, version, header_len = _PREAMBLE.unpack_from(mm, 0)
    if magic != MAGIC:
        raise DiskCacheError(f"bad magic {magic!r}")
    if version != FORMAT_VERSION:
        raise DiskCacheError(f"format version {version} != {FORMAT_VERSION}")
    header_end = _PREAMBLE.size + header_len
    if header_end > len(mm):
        raise DiskCacheError("truncated header")
    meta = json.loads(bytes(mm[_PREAMBLE.size:header_end]).decode("utf-8"))
    if meta.get("schema") != SCHEMA_VERSION:
        raise DiskCacheError(f"schema {meta.get('schema')} != {SCHEMA_VERSION}")
    view = memoryview(mm)
    offset = _align_up(header_end)
    pickle_len = int(meta["pickle_len"])
    if offset + pickle_len > len(mm):
        raise DiskCacheError("truncated pickle section")
    stream = view[offset:offset + pickle_len]
    offset = _align_up(offset + pickle_len)
    buffers: List[pickle.PickleBuffer] = []
    for length in meta.get("buffer_lens", []):
        length = int(length)
        if offset + length > len(mm):
            raise DiskCacheError("truncated buffer section")
        buffers.append(pickle.PickleBuffer(view[offset:offset + length]))
        offset = _align_up(offset + length)
    value = pickle.loads(stream, buffers=buffers)
    return value, meta


# -- write path ---------------------------------------------------------------


def store(kind: str, key: Hashable, value: Any) -> bool:
    """Persist one freshly built entry (atomic; best-effort).

    Returns True when the entry landed on disk.  IO failures (read-only
    dir, disk full) are logged and swallowed — persistence is an
    optimization, never a correctness dependency.
    """
    root = cache_dir()
    if root is None or kind not in DISK_KINDS:
        return False
    try:
        root.mkdir(parents=True, exist_ok=True)
        buffers: List[pickle.PickleBuffer] = []
        stream = pickle.dumps(value, protocol=5, buffer_callback=buffers.append)
        raw_buffers = [buf.raw() for buf in buffers]
        meta = {
            "kind": kind,
            "key": repr(key),
            "schema": SCHEMA_VERSION,
            "created": time.time(),
            "pickle_len": len(stream),
            "buffer_lens": [raw.nbytes for raw in raw_buffers],
        }
        header = json.dumps(meta, separators=(",", ":")).encode("utf-8")
        path = entry_path(root, kind, key)
        if path.exists():
            # Another process (e.g. a sibling cluster worker warming the
            # same circuit) already published this entry.  The digest
            # covers kind + key + schema, so the contents are identical —
            # losing the race is a benign hit, not a failure.
            _bump("races")
            METRICS.incr("cache.disk.races", 1, labels={"kind": kind})
            debug(f"disk cache: lost write race for {path.name} (benign)")
            return True
        # mkstemp opens with O_EXCL and a random component; the pid in the
        # prefix keeps names from many concurrent writer processes disjoint
        # even under pathological RNG collisions, and makes leftover temp
        # files attributable.
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".tmp-{kind}-{os.getpid()}-", suffix=_SUFFIX, dir=root
        )
        try:
            with os.fdopen(fd, "wb") as out:
                out.write(_PREAMBLE.pack(MAGIC, FORMAT_VERSION, len(header)))
                out.write(header)
                _pad_to_align(out)
                out.write(stream)
                for raw in raw_buffers:
                    _pad_to_align(out)
                    out.write(raw)
            os.replace(tmp_name, path)
        except BaseException:
            _unlink_quietly(Path(tmp_name))
            raise
        written = path.stat().st_size
        _bump("bytes_written", written)
        METRICS.incr("cache.disk.writes", 1, labels={"kind": kind})
        _refresh_size_gauge(root)
        debug(f"disk cache: wrote {kind} {path.name} ({written} B)")
        return True
    except Exception as exc:  # noqa: BLE001 - persistence is best-effort
        _bump("errors")
        METRICS.incr("cache.disk.errors", 1, labels={"kind": kind})
        log(f"disk cache: write failed for kind={kind}: {exc!r}")
        return False


# -- inspection / warm-up -----------------------------------------------------


def iter_entries(
    root: Optional[Path] = None,
) -> Iterator[Tuple[Path, Dict[str, Any]]]:
    """Yield ``(path, meta)`` for every readable entry; corrupt files are
    skipped (and counted) rather than raised."""
    root = root or cache_dir()
    if root is None or not root.is_dir():
        return
    for path in sorted(root.glob(f"*{_SUFFIX}")):
        if path.name.startswith(".tmp-"):
            continue
        try:
            meta = _read_meta(path)
        except Exception as exc:  # noqa: BLE001 - skip, don't die
            _bump("errors")
            log(f"disk cache: skipping unreadable entry {path.name}: {exc!r}")
            continue
        yield path, meta


def _read_meta(path: Path) -> Dict[str, Any]:
    with open(path, "rb") as handle:
        preamble = handle.read(_PREAMBLE.size)
        if len(preamble) < _PREAMBLE.size:
            raise DiskCacheError("truncated preamble")
        magic, version, header_len = _PREAMBLE.unpack(preamble)
        if magic != MAGIC:
            raise DiskCacheError(f"bad magic {magic!r}")
        if version != FORMAT_VERSION:
            raise DiskCacheError(f"format version {version} != {FORMAT_VERSION}")
        header = handle.read(header_len)
        if len(header) < header_len:
            raise DiskCacheError("truncated header")
        return json.loads(header.decode("utf-8"))


def parse_key(meta: Dict[str, Any]) -> Hashable:
    """Reconstruct a memo key from an entry's header.

    Keys are tuples of primitives, so ``ast.literal_eval`` of the stored
    ``repr`` round-trips them exactly.
    """
    return ast.literal_eval(meta["key"])


def scan(root: Optional[Path] = None) -> Dict[str, Any]:
    """Summarize a disk-cache directory for ``repro stats``.

    Raises :class:`DiskCacheError` with a clear message when the directory
    is missing or not a directory; corrupt entries are reported in the
    summary, not raised.
    """
    root = root or cache_dir()
    if root is None:
        raise DiskCacheError(
            "no disk cache configured (set REPRO_DISK_CACHE or pass a path)")
    if not root.exists():
        raise DiskCacheError(f"disk cache directory does not exist: {root}")
    if not root.is_dir():
        raise DiskCacheError(f"disk cache path is not a directory: {root}")
    kinds: Dict[str, Dict[str, int]] = {}
    corrupt = 0
    total_bytes = 0
    for path in sorted(root.glob(f"*{_SUFFIX}")):
        if path.name.startswith(".tmp-"):
            continue
        size = path.stat().st_size
        total_bytes += size
        try:
            meta = _read_meta(path)
        except Exception:  # noqa: BLE001 - summarizing, not loading
            corrupt += 1
            continue
        entry = kinds.setdefault(meta.get("kind", "?"),
                                 {"entries": 0, "bytes": 0})
        entry["entries"] += 1
        entry["bytes"] += size
    return {
        "dir": str(root),
        "kinds": kinds,
        "entries": sum(k["entries"] for k in kinds.values()),
        "bytes": total_bytes,
        "corrupt": corrupt,
    }


def stats() -> Dict[str, int]:
    """Process-local disk-tier counters (hits/misses/errors/bytes)."""
    with _LOCK:
        return dict(_STATS)


def reset_stats() -> None:
    with _LOCK:
        for key in _STATS:
            _STATS[key] = 0


# -- internals ----------------------------------------------------------------


def _align_up(offset: int) -> int:
    return (offset + ALIGN - 1) // ALIGN * ALIGN


def _pad_to_align(out) -> None:
    pos = out.tell()
    pad = _align_up(pos) - pos
    if pad:
        out.write(b"\0" * pad)


def _bump(counter: str, amount: int = 1) -> None:
    with _LOCK:
        _STATS[counter] += amount


def _refresh_size_gauge(root: Path) -> None:
    try:
        total = sum(
            p.stat().st_size for p in root.glob(f"*{_SUFFIX}")
            if not p.name.startswith(".tmp-")
        )
        METRICS.gauge("cache.disk.bytes", total)
    except OSError:  # pragma: no cover - racing deletions
        pass


def _quarantine(path: Path) -> None:
    _unlink_quietly(path)


def _unlink_quietly(path: Path) -> None:
    try:
        path.unlink()
    except OSError:  # pragma: no cover - already gone / read-only
        pass
