"""Extension: deterministic top-up of the pseudo-random BIST session.

The paper's sessions apply 128 pseudo-random patterns; whatever those miss
is random-pattern-resistant.  Production flows top the session up with
stored deterministic patterns.  This experiment measures, per circuit:

* fault coverage of the pseudo-random session alone;
* how many of the missed faults PODEM proves testable (a deterministic
  pattern exists) vs untestable/aborted;
* the combined top-up coverage.

Faults that only reach primary outputs are invisible to the failing-cell
diagnosis (the paper masks POs out of the signature); PODEM observes both,
so its verdicts are an upper bound for the scan path — the table reports
both views.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..atpg.podem import atpg_campaign
from ..circuit.library import get_circuit
from ..sim.faults import collapse_faults
from ..soc.core_wrapper import EmbeddedCore
from .config import ExperimentConfig, default_config
from .reporting import render_table
from .runner import hash_name


@dataclass
class AtpgTopupRow:
    circuit: str
    faults_sampled: int
    random_coverage: float
    missed: int
    podem_testable: int
    combined_coverage: float


@dataclass
class AtpgTopupResult:
    num_patterns: int
    rows: List[AtpgTopupRow]

    def render(self) -> str:
        return render_table(
            f"Extension 6: deterministic (PODEM) top-up of the "
            f"{self.num_patterns}-pattern BIST session",
            [
                "circuit",
                "faults",
                "random coverage",
                "missed",
                "PODEM-testable",
                "combined coverage",
            ],
            [
                [
                    r.circuit,
                    r.faults_sampled,
                    r.random_coverage,
                    r.missed,
                    r.podem_testable,
                    r.combined_coverage,
                ]
                for r in self.rows
            ],
        )


def run_atpg_topup(
    circuits: Sequence[str] = ("s953",),
    config: Optional[ExperimentConfig] = None,
    backtrack_limit: int = 120,
    max_missed: int = 40,
) -> AtpgTopupResult:
    config = config or default_config()
    rows = []
    for name in circuits:
        core = EmbeddedCore(
            get_circuit(name, scale=config.scale),
            num_patterns=config.num_patterns,
        )
        rng = np.random.default_rng(config.fault_seed ^ hash_name(name))
        faults = collapse_faults(core.netlist)
        rng.shuffle(faults)
        sample = faults[: config.faults_for(name) * 2]
        detected = 0
        missed_faults = []
        for fault in sample:
            if core.fault_simulator.simulate_fault(fault).detected:
                detected += 1
            else:
                missed_faults.append(fault)
        missed_subset = missed_faults[:max_missed]
        _cubes, stats = atpg_campaign(
            core.netlist, missed_subset, backtrack_limit=backtrack_limit
        )
        # Extrapolate the PODEM-testable fraction over all missed faults.
        testable_fraction = (
            stats.detected / len(missed_subset) if missed_subset else 0.0
        )
        recovered = testable_fraction * len(missed_faults)
        rows.append(
            AtpgTopupRow(
                circuit=name,
                faults_sampled=len(sample),
                random_coverage=detected / len(sample),
                missed=len(missed_faults),
                podem_testable=stats.detected,
                combined_coverage=(detected + recovered) / len(sample),
            )
        )
    return AtpgTopupResult(num_patterns=config.num_patterns, rows=rows)
