"""Process-wide memoized store for workloads and partition sets.

Every experiment module used to rebuild its circuit, golden simulation and
fault responses from scratch (``run_table1``, the ablations and the
extensions all call ``build_circuit_workload`` independently), so a full
reproduction run compiled and fault-simulated each benchmark many times
over.  Workloads are pure functions of their configuration — circuit name,
scale, pattern count, fault seed and fault count — and partition sets are
pure functions of the partitioner signature, so both can be memoized for
the lifetime of the process without changing a single number.

Keys must capture *every* input that influences the value:

* workloads: ``(circuit, scale, num_patterns, fault_seed, fault_count)``
* SOC workloads: the SOC fingerprint (name, per-core shapes, the exact
  meta-chain stitching) plus the fault seed and per-core fault counts
* partition sets: the full partitioner signature ``(scheme, length,
  num_groups, num_partitions, lfsr_degree, seed,
  num_interval_partitions)``

The store **never evicts** — workload counts are small (dozens per run)
and values are shared, so the policy is "keep everything"; ``stats()``
reports ``evictions`` (always 0, recorded so trend tooling notices if the
policy ever changes) and the size in entries.  Hits and misses are also
reported per kind into :data:`repro.telemetry.METRICS` as
``cache.hits{kind=...}`` / ``cache.misses{kind=...}``.

Set ``REPRO_CACHE=0`` to disable (every lookup misses); ``clear()``
empties the store, e.g. between benchmark timing passes.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, Tuple

from ..telemetry import METRICS

_LOCK = threading.RLock()
_STORE: Dict[Tuple[str, Hashable], Any] = {}


@dataclass
class CacheStats:
    """Hit/miss counters per cache kind, plus store-wide gauges."""

    hits: Dict[str, int] = field(default_factory=dict)
    misses: Dict[str, int] = field(default_factory=dict)
    #: Live entries in the store (all kinds).
    entries: int = 0
    #: Always 0 — the store never evicts (documented policy).
    evictions: int = 0

    def record(self, kind: str, hit: bool) -> None:
        table = self.hits if hit else self.misses
        table[kind] = table.get(kind, 0) + 1

    def hit_rate(self, kind: str) -> float:
        """Hit fraction for one kind (0.0 when the kind was never seen)."""
        hits = self.hits.get(kind, 0)
        total = hits + self.misses.get(kind, 0)
        return hits / total if total else 0.0

    def kinds(self):
        return sorted(set(self.hits) | set(self.misses))


_STATS = CacheStats()


def cache_enabled() -> bool:
    """The cache honours ``REPRO_CACHE`` (default on; ``0`` disables)."""
    return os.environ.get("REPRO_CACHE", "1").strip() != "0"


def _record(kind: str, hit: bool) -> None:
    _STATS.record(kind, hit)
    METRICS.incr("cache.hits" if hit else "cache.misses", 1, labels={"kind": kind})


def memoized(kind: str, key: Hashable, builder: Callable[[], Any]) -> Any:
    """Return the cached value for ``(kind, key)``, building it on a miss.

    With the cache disabled the builder runs unconditionally and nothing is
    stored — the call is then exactly the uncached code path.
    """
    if not cache_enabled():
        with _LOCK:
            _record(kind, hit=False)
        return builder()
    full_key = (kind, key)
    with _LOCK:
        if full_key in _STORE:
            _record(kind, hit=True)
            return _STORE[full_key]
    # Build outside the lock: workload construction is expensive and two
    # threads racing on the same key deterministically build equal values.
    value = builder()
    with _LOCK:
        _record(kind, hit=False)
        value = _STORE.setdefault(full_key, value)
        METRICS.gauge("cache.entries", len(_STORE))
        return value


def clear() -> None:
    """Empty the store and reset the counters."""
    with _LOCK:
        _STORE.clear()
        _STATS.hits.clear()
        _STATS.misses.clear()
        METRICS.gauge("cache.entries", 0)


def stats() -> CacheStats:
    """A snapshot of the hit/miss counters and store gauges."""
    with _LOCK:
        return CacheStats(
            hits=dict(_STATS.hits),
            misses=dict(_STATS.misses),
            entries=len(_STORE),
            evictions=0,
        )


def cache_size() -> int:
    with _LOCK:
        return len(_STORE)


#: Back-compat aliases (PR 1 public names).
clear_caches = clear
cache_stats = stats


def soc_fingerprint(soc) -> Hashable:
    """A hashable identity for a stitched SOC: which cores, their shapes,
    and the exact cell-to-meta-chain stitching (the lifted responses depend
    on all of it)."""
    return (
        soc.name,
        tuple(
            (core.name, core.num_cells, core.num_patterns) for core in soc.cores
        ),
        tuple(tuple(chain) for chain in soc.scan_config.chains),
    )
