"""Process-wide memoized store for workloads and partition sets.

Every experiment module used to rebuild its circuit, golden simulation and
fault responses from scratch (``run_table1``, the ablations and the
extensions all call ``build_circuit_workload`` independently), so a full
reproduction run compiled and fault-simulated each benchmark many times
over.  Workloads are pure functions of their configuration — circuit name,
scale, pattern count, fault seed and fault count — and partition sets are
pure functions of the partitioner signature, so both can be memoized for
the lifetime of the process without changing a single number.

Keys must capture *every* input that influences the value:

* workloads: ``(circuit, scale, num_patterns, fault_seed, fault_count)``
* SOC workloads: the SOC fingerprint (name, per-core shapes, the exact
  meta-chain stitching) plus the fault seed and per-core fault counts
* partition sets: the full partitioner signature ``(scheme, length,
  num_groups, num_partitions, lfsr_degree, seed,
  num_interval_partitions)``
* SoA gate schedules: ``(circuit name, structural digest)`` — the digest
  hashes the compiled ops, so any netlist or compiler change misses

The store **never evicts on its own** — workload counts are small (dozens
per run) and values are shared, so the default policy is "keep
everything".  Long-lived processes (the diagnosis *service*) can bound
resident memory explicitly with :func:`evict`, which drops one entry and
counts into ``stats().evictions``; batch experiment runs never call it, so
for them the counter stays 0.  Hits and misses are also reported per kind
into :data:`repro.telemetry.METRICS` as ``cache.hits{kind=...}`` /
``cache.misses{kind=...}``, and the resident footprint as the
``cache.bytes`` gauge (estimated recursively: numpy buffers dominate, so
the estimate is accurate where it matters).

Below the in-memory store sits an optional **disk tier**
(:mod:`repro.experiments.cache_disk`, enabled by pointing
``REPRO_DISK_CACHE`` at a directory): memory misses consult it before
running the builder, fresh builds are persisted to it, and
:func:`warm_from_disk` bulk-loads it into the memo store (the diagnosis
service does this at startup so cold starts skip recompilation).

Set ``REPRO_CACHE=0`` to disable (every lookup misses); ``clear()``
empties the in-memory store, e.g. between benchmark timing passes (the
disk tier is never cleared implicitly).
"""

from __future__ import annotations

import os
import sys
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, Iterable, Optional, Tuple

from ..telemetry import METRICS, log
from . import cache_disk

_LOCK = threading.RLock()
_STORE: Dict[Tuple[str, Hashable], Any] = {}
#: Estimated resident bytes per entry (same keys as ``_STORE``).
_SIZES: Dict[Tuple[str, Hashable], int] = {}
_EVICTIONS = 0


@dataclass
class CacheStats:
    """Hit/miss counters per cache kind, plus store-wide gauges."""

    hits: Dict[str, int] = field(default_factory=dict)
    misses: Dict[str, int] = field(default_factory=dict)
    #: Live entries in the store (all kinds).
    entries: int = 0
    #: Entries dropped via :func:`evict` (0 unless a caller bounds memory).
    evictions: int = 0
    #: Estimated resident bytes of all live entries.
    bytes: int = 0
    #: Disk-tier counters (hits/misses/errors/bytes_read/bytes_written);
    #: all zero when ``REPRO_DISK_CACHE`` is unset.
    disk: Dict[str, int] = field(default_factory=dict)

    def record(self, kind: str, hit: bool) -> None:
        table = self.hits if hit else self.misses
        table[kind] = table.get(kind, 0) + 1

    def hit_rate(self, kind: str) -> float:
        """Hit fraction for one kind (0.0 when the kind was never seen)."""
        hits = self.hits.get(kind, 0)
        total = hits + self.misses.get(kind, 0)
        return hits / total if total else 0.0

    def kinds(self):
        return sorted(set(self.hits) | set(self.misses))


_STATS = CacheStats()


def cache_enabled() -> bool:
    """The cache honours ``REPRO_CACHE`` (default on; ``0`` disables)."""
    return os.environ.get("REPRO_CACHE", "1").strip() != "0"


def _record(kind: str, hit: bool) -> None:
    _STATS.record(kind, hit)
    METRICS.incr("cache.hits" if hit else "cache.misses", 1, labels={"kind": kind})


def memoized(kind: str, key: Hashable, builder: Callable[[], Any]) -> Any:
    """Return the cached value for ``(kind, key)``, building it on a miss.

    A memory miss first consults the disk tier (when ``REPRO_DISK_CACHE``
    points somewhere); only a miss on both tiers runs the builder, and a
    fresh build is persisted so every later process hits.  With the cache
    disabled the builder runs unconditionally and nothing is stored — the
    call is then exactly the uncached code path.
    """
    if not cache_enabled():
        with _LOCK:
            _record(kind, hit=False)
        return builder()
    full_key = (kind, key)
    with _LOCK:
        if full_key in _STORE:
            _record(kind, hit=True)
            return _STORE[full_key]
    # Build outside the lock: workload construction is expensive and two
    # threads racing on the same key deterministically build equal values.
    from_disk = False
    value = None
    if cache_disk.enabled_for(kind):
        value, from_disk = cache_disk.load(kind, key)
    if not from_disk:
        value = builder()
    with _LOCK:
        _record(kind, hit=False)
        value = _STORE.setdefault(full_key, value)
        if full_key not in _SIZES:
            _SIZES[full_key] = estimate_bytes(value)
        METRICS.gauge("cache.entries", len(_STORE))
        METRICS.gauge("cache.bytes", sum(_SIZES.values()))
    if not from_disk and cache_disk.enabled_for(kind):
        # Persist outside the lock; best-effort by contract.
        cache_disk.store(kind, key, value)
    return value


def seed(kind: str, key: Hashable, value: Any) -> bool:
    """Insert a pre-built value without touching the hit/miss counters
    (used by disk warm-up).  Returns False if the key was already live."""
    full_key = (kind, key)
    with _LOCK:
        if full_key in _STORE:
            return False
        _STORE[full_key] = value
        _SIZES[full_key] = estimate_bytes(value)
        METRICS.gauge("cache.entries", len(_STORE))
        METRICS.gauge("cache.bytes", sum(_SIZES.values()))
        return True


def warm_from_disk(
    kinds: Optional[Iterable[str]] = None,
    max_bytes: Optional[int] = None,
) -> int:
    """Bulk-load disk-tier entries into the memo store.

    Loads every readable entry of the requested kinds (default: all
    persisted kinds), stopping once ``max_bytes`` of estimated resident
    memory is reached.  Returns the number of entries seeded.  Unreadable
    entries and unparsable keys are skipped with a log line — a corrupt
    cache directory degrades to a cold start, never an error.
    """
    if not cache_enabled():
        return 0
    wanted = set(kinds) if kinds is not None else set(cache_disk.DISK_KINDS)
    loaded = 0
    for path, meta in cache_disk.iter_entries():
        kind = meta.get("kind")
        if kind not in wanted:
            continue
        if max_bytes is not None and total_bytes() >= max_bytes:
            log(f"cache: disk warm-up stopped at {total_bytes()} B "
                f"(budget {max_bytes} B)")
            break
        try:
            key = cache_disk.parse_key(meta)
        except (KeyError, SyntaxError, ValueError) as exc:
            log(f"cache: skipping disk entry {path.name} with "
                f"unparsable key: {exc!r}")
            continue
        value, ok = cache_disk.load(kind, key)
        if ok and seed(kind, key, value):
            loaded += 1
    return loaded


def evict(kind: str, key: Hashable) -> bool:
    """Drop one entry (True if it was resident).

    The only eviction path: the memo store itself never ages anything out.
    Long-lived servers call this to bound resident memory (see
    :class:`repro.service.engine.DiagnosisEngine`); re-requesting an
    evicted key simply rebuilds it (a miss), so eviction is always safe.
    """
    global _EVICTIONS
    full_key = (kind, key)
    with _LOCK:
        if full_key not in _STORE:
            return False
        del _STORE[full_key]
        _SIZES.pop(full_key, None)
        _EVICTIONS += 1
        METRICS.incr("cache.evictions", 1, labels={"kind": kind})
        METRICS.gauge("cache.entries", len(_STORE))
        METRICS.gauge("cache.bytes", sum(_SIZES.values()))
        return True


def clear() -> None:
    """Empty the store and reset the counters."""
    global _EVICTIONS
    with _LOCK:
        _STORE.clear()
        _SIZES.clear()
        _STATS.hits.clear()
        _STATS.misses.clear()
        _EVICTIONS = 0
        METRICS.gauge("cache.entries", 0)
        METRICS.gauge("cache.bytes", 0)


def stats() -> CacheStats:
    """A snapshot of the hit/miss counters and store gauges."""
    with _LOCK:
        return CacheStats(
            hits=dict(_STATS.hits),
            misses=dict(_STATS.misses),
            entries=len(_STORE),
            evictions=_EVICTIONS,
            bytes=sum(_SIZES.values()),
            disk=cache_disk.stats(),
        )


def total_bytes() -> int:
    """Estimated resident bytes of the whole store."""
    with _LOCK:
        return sum(_SIZES.values())


def estimate_bytes(value: Any, _seen: Any = None, _depth: int = 0) -> int:
    """Recursive size estimate biased toward what actually costs memory.

    numpy buffers report ``nbytes`` exactly; containers and dataclasses
    recurse (cycle-safe, depth-capped); everything else falls back to
    ``sys.getsizeof``.  Shared sub-objects are counted once.
    """
    if _seen is None:
        _seen = set()
    if _depth > 12 or id(value) in _seen:
        return 0
    _seen.add(id(value))
    nbytes = getattr(value, "nbytes", None)
    if isinstance(nbytes, int):
        # numpy arrays (and anything else exposing a buffer size).
        return nbytes + 96
    try:
        size = sys.getsizeof(value)
    except TypeError:  # pragma: no cover - exotic objects
        size = 64
    if isinstance(value, dict):
        for k, v in value.items():
            size += estimate_bytes(k, _seen, _depth + 1)
            size += estimate_bytes(v, _seen, _depth + 1)
    elif isinstance(value, (list, tuple, set, frozenset)):
        for item in value:
            size += estimate_bytes(item, _seen, _depth + 1)
    elif hasattr(value, "__dict__"):
        size += estimate_bytes(vars(value), _seen, _depth + 1)
    elif hasattr(value, "__slots__"):
        for slot in value.__slots__:
            size += estimate_bytes(getattr(value, slot, None), _seen, _depth + 1)
    return size


def cache_size() -> int:
    with _LOCK:
        return len(_STORE)


#: Back-compat aliases (PR 1 public names).
clear_caches = clear
cache_stats = stats


def soc_fingerprint(soc) -> Hashable:
    """A hashable identity for a stitched SOC: which cores, their shapes,
    and the exact cell-to-meta-chain stitching (the lifted responses depend
    on all of it)."""
    return (
        soc.name,
        tuple(
            (core.name, core.num_cells, core.num_patterns) for core in soc.cores
        ),
        tuple(tuple(chain) for chain in soc.scan_config.chains),
    )
