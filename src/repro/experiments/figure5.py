"""Figure 5: partitions required to reach DR = 0.5 on the stitched SOC.

For each failing core of SOC 1 (single meta scan chain), sweep the number
of partitions and report the smallest count whose DR (without pruning)
drops to 0.5 or below, for random selection and for two-step.  Expected
shape: two-step always needs fewer partitions — i.e. shorter diagnosis
time — than random selection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..bist.misr import LinearCompactor
from ..core.diagnosis import partitions_to_reach_dr
from ..core.diagnosis_batch import diagnose_population
from ..soc.stitch import build_stitched_soc
from ..soc.testrail import TestRail
from ..telemetry import METRICS, span
from .config import ExperimentConfig, default_config
from .reporting import render_table
from .runner import build_soc_workloads, scheme_partitions
from .soc_tables import SOC1_GROUPS

TARGET_DR = 0.5
MAX_PARTITIONS = 24
SCHEMES = ("random", "two-step")


@dataclass
class Figure5Result:
    #: core name -> scheme -> partitions needed (None = not reached)
    partitions_needed: Dict[str, Dict[str, Optional[int]]]

    def render(self) -> str:
        rows = []
        for core, by_scheme in self.partitions_needed.items():
            rows.append(
                [
                    core,
                    by_scheme["random"],
                    by_scheme["two-step"],
                ]
            )
        return render_table(
            f"Figure 5: partitions to reach DR <= {TARGET_DR} "
            f"(SOC 1, single scan chain, {SOC1_GROUPS} groups, "
            f"cap {MAX_PARTITIONS})",
            ["failing core", "random", "two-step"],
            rows,
        )


def run_figure5(
    config: Optional[ExperimentConfig] = None,
    soc: Optional[TestRail] = None,
    max_partitions: int = MAX_PARTITIONS,
) -> Figure5Result:
    config = config or default_config()
    soc = soc or build_stitched_soc(
        num_patterns=config.num_patterns, scale=config.scale
    )
    workloads = build_soc_workloads(soc, config)
    compactor = LinearCompactor(config.misr_width, soc.scan_config.num_chains)
    needed: Dict[str, Dict[str, Optional[int]]] = {}
    for core in soc.cores:
        workload = workloads[core.name]
        needed[core.name] = {}
        for scheme in SCHEMES:
            partitions = scheme_partitions(
                scheme,
                workload.scan_config.max_length,
                SOC1_GROUPS,
                max_partitions,
                lfsr_degree=config.lfsr_degree,
            )
            with span("diagnose", scheme=scheme, workload=workload.name) as sp:
                responses = workload.responses
                results = diagnose_population(
                    responses, workload.scan_config, partitions, compactor
                )
                sp.add("faults", len(results))
                METRICS.incr("diagnosis.faults", len(results))
            with span("dr.score", scheme=scheme, workload=workload.name):
                needed[core.name][scheme] = partitions_to_reach_dr(
                    results, TARGET_DR, max_partitions
                )
    return Figure5Result(partitions_needed=needed)
