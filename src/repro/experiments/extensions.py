"""Extension experiments beyond the paper's headline tables.

1. **Failing-vector identification** — the companion scheme of reference
   [4] (interval-based diagnosis on the pattern axis), run with the same
   partitioning machinery.
2. **Scan-chain ordering** — the paper's premise is that structural
   locality shows up as positional clustering; re-stitching the chain in a
   random order destroys the clusters and should erase (only) the interval
   advantage.
3. **Multiple faulty cores** — Section 5 argues the multi-fault case looks
   like the single-fault case with one expanded (or two disjoint)
   segments; inject one fault in each of two cores simultaneously.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..bist.misr import LinearCompactor
from ..core.diagnosis import diagnose, diagnostic_resolution
from ..core.ordering import random_scan_order, response_span
from ..core.two_step import make_partitioner
from ..core.vector_diagnosis import (
    diagnose_vectors_population,
    vector_diagnostic_resolution,
)
from ..sim.faultsim import merge_responses
from ..soc.stitch import build_stitched_soc
from ..soc.testrail import TestRail
from .config import ExperimentConfig, default_config
from .reporting import render_table
from .runner import build_circuit_workload, build_soc_workloads, scheme_partitions


# -- 1. failing-vector identification ----------------------------------------


@dataclass
class VectorDiagnosisExperiment:
    circuit: str
    num_patterns: int
    rows: List[list]  # [scheme, partitions, vector DR]

    def render(self) -> str:
        return render_table(
            f"Extension 1: failing-vector identification ({self.circuit}, "
            f"{self.num_patterns} patterns)",
            ["scheme", "partitions", "vector DR"],
            self.rows,
        )


def run_vector_diagnosis(
    circuit: str = "s5378",
    schemes: Sequence[str] = ("random", "interval", "two-step"),
    num_partitions: int = 6,
    num_groups: int = 8,
    config: Optional[ExperimentConfig] = None,
) -> VectorDiagnosisExperiment:
    config = config or default_config()
    workload = build_circuit_workload(circuit, config)
    compactor = LinearCompactor(config.misr_width, workload.scan_config.num_chains)
    rows = []
    for scheme in schemes:
        partitions = scheme_partitions(
            scheme,
            workload.num_patterns,
            num_groups,
            num_partitions,
            lfsr_degree=config.lfsr_degree,
        )
        results = diagnose_vectors_population(
            workload.responses, workload.scan_config, partitions, compactor
        )
        rows.append([scheme, num_partitions, vector_diagnostic_resolution(results)])
    return VectorDiagnosisExperiment(circuit, workload.num_patterns, rows)


# -- 2. scan-chain ordering ----------------------------------------------------


@dataclass
class ScanOrderExperiment:
    circuit: str
    rows: List[list]  # [ordering, mean span, DR interval, DR random]

    def render(self) -> str:
        return render_table(
            f"Extension 2: scan-chain ordering vs clustering ({self.circuit})",
            ["ordering", "mean failing span", "DR interval", "DR random"],
            self.rows,
        )


def run_scan_order_ablation(
    circuit: str = "s5378",
    num_partitions: int = 4,
    num_groups: int = 16,
    config: Optional[ExperimentConfig] = None,
) -> ScanOrderExperiment:
    config = config or default_config()
    workload = build_circuit_workload(circuit, config)
    orders = {
        "structural": workload.scan_config,
        "random": random_scan_order(
            workload.scan_config, np.random.default_rng(config.fault_seed)
        ),
    }
    compactor = LinearCompactor(config.misr_width, 1)
    rows = []
    for label, scan_config in orders.items():
        spans = [
            response_span(response, scan_config)
            for response in workload.responses
            if response.detected
        ]
        drs = []
        for scheme in ("interval", "random"):
            partitions = scheme_partitions(
                scheme,
                scan_config.max_length,
                num_groups,
                num_partitions,
                lfsr_degree=config.lfsr_degree,
            )
            results = [
                diagnose(response, scan_config, partitions, compactor)
                for response in workload.responses
            ]
            drs.append(diagnostic_resolution(results))
        rows.append([label, float(np.mean(spans)), drs[0], drs[1]])
    return ScanOrderExperiment(circuit, rows)


# -- 3. diagnosis time (cycle-domain Figure 5) --------------------------------


@dataclass
class DiagnosisTimeExperiment:
    soc_name: str
    target_dr: float
    rows: List[list]  # [core, cycles random, cycles two-step, ms two-step]

    def render(self) -> str:
        return render_table(
            f"Extension 4: tester cycles to reach DR <= {self.target_dr} "
            f"({self.soc_name}, 50 MHz test clock)",
            ["failing core", "random (Mcycles)", "two-step (Mcycles)",
             "two-step (ms)"],
            self.rows,
        )


def run_diagnosis_time(
    soc: Optional[TestRail] = None,
    target_dr: float = 0.5,
    max_partitions: int = 24,
    num_groups: int = 32,
    config: Optional[ExperimentConfig] = None,
) -> DiagnosisTimeExperiment:
    """Figure 5 in the cycle domain: the tester time each scheme spends to
    reach the target resolution, per failing core."""
    from ..core.time_model import TimeEstimate, cycles_to_reach_dr

    config = config or default_config()
    soc = soc or build_stitched_soc(
        num_patterns=config.num_patterns, scale=config.scale
    )
    workloads = build_soc_workloads(soc, config)
    compactor = LinearCompactor(config.misr_width, soc.scan_config.num_chains)
    rows = []
    for core in soc.cores:
        workload = workloads[core.name]
        cycles = {}
        for scheme in ("random", "two-step"):
            partitions = scheme_partitions(
                scheme,
                soc.scan_config.max_length,
                num_groups,
                max_partitions,
                lfsr_degree=config.lfsr_degree,
            )
            results = [
                diagnose(response, soc.scan_config, partitions, compactor)
                for response in workload.responses
            ]
            cycles[scheme] = cycles_to_reach_dr(
                results,
                target_dr,
                num_groups,
                soc.scan_config,
                workload.num_patterns,
                max_partitions,
            )
        two_step_ms = (
            TimeEstimate(cycles["two-step"]).seconds * 1e3
            if cycles["two-step"] is not None
            else None
        )
        rows.append(
            [
                core.name,
                None if cycles["random"] is None else cycles["random"] / 1e6,
                None if cycles["two-step"] is None else cycles["two-step"] / 1e6,
                two_step_ms,
            ]
        )
    return DiagnosisTimeExperiment(soc.name, target_dr, rows)


# -- 4b. bypass schedule diagnosis ---------------------------------------------


@dataclass
class ScheduleExperiment:
    soc_name: str
    num_phases: int
    rows: List[list]  # [failing core, faults, DR]

    def render(self) -> str:
        return render_table(
            f"Extension 5: diagnosis under the bypass schedule "
            f"({self.soc_name}, {self.num_phases} phases, two-step)",
            ["failing core", "faults", "DR"],
            self.rows,
        )


def run_schedule_diagnosis(
    num_groups: int = 8,
    num_partitions: int = 8,
    config: Optional[ExperimentConfig] = None,
) -> ScheduleExperiment:
    """Diagnose faults through the full daisy-chain schedule of the
    embedded d695 description: per-core pattern budgets, cores bypassed as
    they run out of patterns, per-phase partitions, candidates unioned
    across phases (see :mod:`repro.soc.schedule`)."""
    from ..soc.schedule import TestSchedule, diagnose_schedule
    from ..soc.socfile import build_testrail_from_description, d695_description

    config = config or default_config()
    soc, budgets = build_testrail_from_description(
        d695_description(), tam_width=8, scale=config.scale
    )
    schedule = TestSchedule(soc, budgets)
    rows = []
    for core_index, core in enumerate(soc.cores):
        budget = budgets[core.name]
        rng = np.random.default_rng(config.fault_seed ^ core_index)
        local = core.sample_fault_responses(
            max(4, config.faults_for(core.name) // 4), rng
        )
        results = []
        for response in local:
            lifted = soc.lift_response(core_index, response)
            clipped = _clip_to_budget(lifted, budget)
            if not clipped.detected:
                continue
            results.append(
                diagnose_schedule(
                    clipped,
                    schedule,
                    scheme="two-step",
                    num_partitions=num_partitions,
                    num_groups=num_groups,
                    misr_width=config.misr_width,
                    lfsr_degree=config.lfsr_degree,
                )
            )
        if not results:
            rows.append([core.name, 0, None])
            continue
        total_actual = sum(len(r.actual_cells) for r in results)
        total_candidates = sum(len(r.candidate_cells) for r in results)
        rows.append(
            [core.name, len(results), (total_candidates - total_actual) / total_actual]
        )
    return ScheduleExperiment(soc.name, len(schedule.phases), rows)


def _clip_to_budget(response, budget: int):
    """Drop error bits at patterns the schedule never applies to the core."""
    from ..sim.bitops import pattern_mask
    from ..sim.faultsim import FaultResponse

    mask = pattern_mask(min(budget, response.num_patterns))
    clipped = {}
    for cell, vec in response.cell_errors.items():
        new_vec = vec.copy()
        new_vec[: len(mask)] &= mask
        new_vec[len(mask):] = 0
        if new_vec.any():
            clipped[cell] = new_vec
    return FaultResponse(response.fault, clipped, response.num_patterns)


# -- 6. multiple faulty cores ---------------------------------------------------


@dataclass
class MultiCoreExperiment:
    soc_name: str
    core_pair: Tuple[str, str]
    rows: List[list]  # [scheme, DR]

    def render(self) -> str:
        return render_table(
            f"Extension 3: two faulty cores ({self.soc_name}: "
            f"{self.core_pair[0]} + {self.core_pair[1]})",
            ["scheme", "DR"],
            self.rows,
        )


def run_multi_core(
    soc: Optional[TestRail] = None,
    core_pair: Tuple[str, str] = ("s9234", "s15850"),
    num_partitions: int = 8,
    num_groups: int = 32,
    config: Optional[ExperimentConfig] = None,
) -> MultiCoreExperiment:
    config = config or default_config()
    soc = soc or build_stitched_soc(
        num_patterns=config.num_patterns, scale=config.scale
    )
    workloads = build_soc_workloads(soc, config)
    first, second = (workloads[name] for name in core_pair)
    pair_count = min(len(first.responses), len(second.responses))
    merged = [
        merge_responses([first.responses[i], second.responses[i]])
        for i in range(pair_count)
    ]
    compactor = LinearCompactor(config.misr_width, soc.scan_config.num_chains)
    rows = []
    for scheme in ("random", "two-step"):
        partitions = scheme_partitions(
            scheme,
            soc.scan_config.max_length,
            num_groups,
            num_partitions,
            lfsr_degree=config.lfsr_degree,
        )
        results = [
            diagnose(response, soc.scan_config, partitions, compactor)
            for response in merged
            if response.detected
        ]
        rows.append([scheme, diagnostic_resolution(results)])
    return MultiCoreExperiment(soc.name, core_pair, rows)
