"""Experiment configuration and environment knobs.

The paper injects 500 single stuck-at faults per circuit/core.  That is the
default for the full reproduction (``examples/full_reproduction.py``); test
and benchmark runs honour the environment variables below so the suite
finishes quickly on a laptop.

* ``REPRO_FAULTS`` — faults per circuit/core (default 120)
* ``REPRO_FAULTS_LARGE`` — faults for the 35k-gate class circuits (default 60)
* ``REPRO_SCALE`` — optional global circuit scale factor (default: full size)
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

PAPER_FAULTS = 500
PAPER_PATTERNS_TABLE1 = 200
PAPER_PATTERNS = 128
PAPER_LFSR_DEGREE = 16
#: The paper does not state its MISR width.  24 bits keeps the probability
#: of an aliasing-induced mis-prune negligible at the 500-fault scale (a
#: 16-bit MISR mis-prunes a real failing cell roughly once per ~10^5
#: signature-pair comparisons, which is visible once DR approaches 0);
#: ablation 3 quantifies 8/16/24-bit widths against the exact comparison.
PAPER_MISR_WIDTH = 24

#: Circuits big enough to warrant the smaller fault sample.
LARGE_CIRCUITS = frozenset({"s35932", "s38417", "s38584"})


def env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    return int(raw)


def env_float(name: str, default: Optional[float]) -> Optional[float]:
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    return float(raw)


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all experiments."""

    num_patterns: int = PAPER_PATTERNS
    num_faults: int = 120
    num_faults_large: int = 60
    lfsr_degree: int = PAPER_LFSR_DEGREE
    misr_width: int = PAPER_MISR_WIDTH
    fault_seed: int = 20030301  # DATE 2003
    scale: Optional[float] = None

    def faults_for(self, circuit_name: str) -> int:
        if circuit_name in LARGE_CIRCUITS:
            return min(self.num_faults, self.num_faults_large)
        return self.num_faults


def default_config(**overrides) -> ExperimentConfig:
    """Config honouring the ``REPRO_*`` environment variables."""
    base = dict(
        num_faults=env_int("REPRO_FAULTS", 120),
        num_faults_large=env_int("REPRO_FAULTS_LARGE", 60),
        scale=env_float("REPRO_SCALE", None),
    )
    base.update(overrides)
    return ExperimentConfig(**base)


def paper_config(**overrides) -> ExperimentConfig:
    """The paper's full-scale protocol (500 faults, full-size circuits)."""
    base = dict(num_faults=PAPER_FAULTS, num_faults_large=PAPER_FAULTS, scale=None)
    base.update(overrides)
    return ExperimentConfig(**base)
