"""Table 2: DR on the six largest ISCAS-89 benchmarks, random-selection vs
two-step, without and with superposition pruning.

Protocol per the paper: 128 pseudorandom patterns per BIST session, a
degree-16 primitive-polynomial LFSR creating the partitions, 500 injected
stuck-at faults per circuit, and the *same* number of partitions for both
methods.  Expected shape: two-step beats random selection on every circuit,
by up to ~80% on the larger ones; pruning improves both.

The paper's group-count column is not legible in the available text; we
apply its stated strategy ("use more groups on the longer meta scan
chains"): 16 groups for chains under 1024 cells, 32 groups above.  The
partition count is 8, the value used for both SOCs in Section 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..circuit.library import SIX_LARGEST
from ..telemetry import span
from .config import ExperimentConfig, default_config
from .reporting import render_table
from .runner import build_circuit_workload, evaluate_scheme

NUM_PARTITIONS = 8


def groups_for_length(length: int) -> int:
    """More groups on longer chains (paper Section 5 strategy)."""
    return 32 if length >= 1024 else 16


@dataclass
class Table2Row:
    circuit: str
    num_cells: int
    num_groups: int
    num_faults: int
    dr_random: float
    dr_two_step: float
    dr_random_pruned: float
    dr_two_step_pruned: float


@dataclass
class Table2Result:
    rows: List[Table2Row]

    def render(self) -> str:
        return render_table(
            f"Table 2: DR, six largest ISCAS-89 ({NUM_PARTITIONS} partitions)",
            [
                "circuit",
                "cells",
                "groups",
                "faults",
                "DR random",
                "DR two-step",
                "DR random+prune",
                "DR two-step+prune",
            ],
            [
                [
                    r.circuit,
                    r.num_cells,
                    r.num_groups,
                    r.num_faults,
                    r.dr_random,
                    r.dr_two_step,
                    r.dr_random_pruned,
                    r.dr_two_step_pruned,
                ]
                for r in self.rows
            ],
        )


def run_table2(
    config: Optional[ExperimentConfig] = None,
    circuits: Optional[Sequence[str]] = None,
) -> Table2Result:
    config = config or default_config()
    circuits = list(circuits) if circuits is not None else list(SIX_LARGEST)
    rows = []
    for name in circuits:
        with span("table2.circuit", circuit=name):
            workload = build_circuit_workload(name, config)
            num_groups = groups_for_length(workload.scan_config.max_length)
            random_eval = evaluate_scheme(
                workload, "random", NUM_PARTITIONS, num_groups, config,
                with_pruning=True,
            )
            two_step_eval = evaluate_scheme(
                workload, "two-step", NUM_PARTITIONS, num_groups, config,
                with_pruning=True,
            )
        rows.append(
            Table2Row(
                circuit=name,
                num_cells=workload.num_cells,
                num_groups=num_groups,
                num_faults=len(workload.responses),
                dr_random=random_eval.dr,
                dr_two_step=two_step_eval.dr,
                dr_random_pruned=random_eval.dr_pruned,
                dr_two_step_pruned=two_step_eval.dr_pruned,
            )
        )
    return Table2Result(rows)
