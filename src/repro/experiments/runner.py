"""Shared experiment machinery: workload construction and scheme evaluation.

A *workload* bundles everything fault-independent — the circuit (or SOC),
its pattern set, the fault-free simulation, and a sampled set of fault
responses.  Partition sets are likewise fault-independent (they are fixed
by LFSR seeds), so each scheme's partitions are generated once and reused
across all faults, exactly as the hardware would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..bist.misr import LinearCompactor
from ..bist.scan import ScanConfig
from ..core.diagnosis import DiagnosisResult, diagnostic_resolution
from ..core.diagnosis_batch import diagnose_population
from ..core.partitions import Partition
from ..core.superposition import apply_superposition
from ..core.two_step import make_partitioner
from ..sim.faultsim import FaultResponse
from ..soc.core_wrapper import EmbeddedCore
from ..soc.testrail import TestRail
from ..telemetry import METRICS, debug, span
from . import cache
from .config import ExperimentConfig


@dataclass
class Workload:
    """Fault responses plus the scan configuration they are observed on."""

    name: str
    scan_config: ScanConfig
    responses: List[FaultResponse]
    num_patterns: int

    @property
    def num_cells(self) -> int:
        return self.scan_config.num_cells


def circuit_workload_key(
    circuit_name: str, config: ExperimentConfig, num_patterns: Optional[int] = None
):
    """The memo key :func:`build_circuit_workload` caches under — exposed so
    long-lived callers (the diagnosis service) can ``cache.evict`` exactly
    what the builder stored."""
    patterns = num_patterns or config.num_patterns
    fault_count = config.faults_for(circuit_name)
    return (circuit_name, config.scale, patterns, config.fault_seed, fault_count)


def build_circuit_workload(
    circuit_name: str, config: ExperimentConfig, num_patterns: Optional[int] = None
) -> Workload:
    """Single-scan-chain workload for one benchmark circuit.

    Workloads are pure functions of ``(circuit, scale, num_patterns,
    fault_seed, fault_count)`` and are memoized process-wide — a full
    reproduction run compiles and fault-simulates each benchmark once.
    """
    patterns = num_patterns or config.num_patterns
    fault_count = config.faults_for(circuit_name)
    key = circuit_workload_key(circuit_name, config, patterns)
    return cache.memoized(
        "workload", key,
        lambda: _build_circuit_workload(circuit_name, config, patterns, fault_count),
    )


def _build_circuit_workload(
    circuit_name: str, config: ExperimentConfig, patterns: int, fault_count: int
) -> Workload:
    debug(f"building workload for {circuit_name} ({patterns} patterns, "
          f"{fault_count} faults)")
    with span("workload.build", circuit=circuit_name, patterns=patterns):
        with span("netlist.compile", circuit=circuit_name):
            # EmbeddedCore compiles the netlist and runs the fault-free
            # (golden) pattern-parallel simulation.
            core = EmbeddedCore(
                _get_circuit(circuit_name, config), num_patterns=patterns
            )
        rng = np.random.default_rng(config.fault_seed ^ hash_name(circuit_name))
        with span("fault.sample", circuit=circuit_name) as sp:
            responses = core.sample_fault_responses(fault_count, rng)
            sp.add("responses", len(responses))
    return Workload(
        name=circuit_name,
        scan_config=ScanConfig.single_chain(core.num_cells),
        responses=responses,
        num_patterns=patterns,
    )


def build_soc_workloads(
    soc: TestRail, config: ExperimentConfig
) -> Dict[str, Workload]:
    """One workload per faulty core: faults injected in that core only, with
    responses lifted onto the SOC's meta scan chains (the paper's "only one
    core contains failing scan cells" protocol).  Memoized on the SOC's
    fingerprint plus the fault-sampling knobs."""
    key = (
        cache.soc_fingerprint(soc),
        config.fault_seed,
        tuple(config.faults_for(core.name) for core in soc.cores),
    )
    return cache.memoized(
        "soc-workloads", key, lambda: _build_soc_workloads(soc, config)
    )


def _build_soc_workloads(
    soc: TestRail, config: ExperimentConfig
) -> Dict[str, Workload]:
    workloads: Dict[str, Workload] = {}
    for core_index, core in enumerate(soc.cores):
        debug(f"building SOC workload: {soc.name}/{core.name}")
        rng = np.random.default_rng(config.fault_seed ^ hash_name(core.name))
        with span("workload.build", soc=soc.name, core=core.name):
            with span("fault.sample", circuit=core.name) as sp:
                local = core.sample_fault_responses(
                    config.faults_for(core.name), rng
                )
                sp.add("responses", len(local))
            with span("soc.lift", core=core.name):
                lifted = [soc.lift_response(core_index, r) for r in local]
        workloads[core.name] = Workload(
            name=f"{soc.name}/{core.name}",
            scan_config=soc.scan_config,
            responses=lifted,
            num_patterns=core.num_patterns,
        )
    return workloads


def scheme_partitions(
    scheme: str,
    length: int,
    num_groups: int,
    num_partitions: int,
    lfsr_degree: int = 16,
    seed: Optional[int] = None,
    num_interval_partitions: int = 1,
) -> List[Partition]:
    """The fixed partition sequence a scheme would burn into the BIST flow.

    Memoized on the full partitioner signature; partitions are frozen, so
    the cached list is shared (a fresh outer list guards against callers
    mutating the sequence itself).
    """
    key = (
        scheme, length, num_groups, num_partitions,
        lfsr_degree, seed, num_interval_partitions,
    )
    def build() -> List[Partition]:
        with span("partitions.generate", scheme=scheme, length=length,
                  partitions=num_partitions, groups=num_groups):
            return make_partitioner(
                scheme,
                length,
                num_groups,
                lfsr_degree=lfsr_degree,
                seed=seed,
                num_interval_partitions=num_interval_partitions,
            ).partitions(num_partitions)

    return list(cache.memoized("partitions", key, build))


@dataclass
class SchemeEvaluation:
    """DR (and optionally pruned DR) of one scheme over one workload."""

    scheme: str
    dr: float
    dr_pruned: Optional[float]
    results: List[DiagnosisResult] = field(repr=False, default_factory=list)
    pruned_results: List[DiagnosisResult] = field(repr=False, default_factory=list)


def evaluate_scheme(
    workload: Workload,
    scheme: str,
    num_partitions: int,
    num_groups: int,
    config: ExperimentConfig,
    with_pruning: bool = False,
    compactor: Optional[LinearCompactor] = None,
    num_interval_partitions: int = 1,
    workers: Optional[int] = None,
) -> SchemeEvaluation:
    """Diagnose every sampled fault of the workload under one scheme.

    The whole population goes through the fused diagnosis kernel
    (:func:`repro.core.diagnosis_batch.diagnose_population`; gated by
    ``REPRO_DIAGNOSIS_BATCH``).  Faults diagnose independently, so
    ``workers > 1`` fans the population's chunks out over a fork-based
    process pool (``workers=None`` reads ``REPRO_WORKERS``, default
    serial).  Results and DR are bit-identical to the per-fault serial
    loop for any chunk size and worker count.
    """
    partitions = scheme_partitions(
        scheme,
        workload.scan_config.max_length,
        num_groups,
        num_partitions,
        lfsr_degree=config.lfsr_degree,
        num_interval_partitions=num_interval_partitions,
    )
    if compactor is None:
        # Compactors are pure functions of (width, channel count); sharing
        # one instance shares its impulse-response tables across schemes.
        width, chains = config.misr_width, workload.scan_config.num_chains
        compactor = cache.memoized(
            "compactor", (width, chains), lambda: LinearCompactor(width, chains)
        )
    responses = workload.responses
    with span("diagnose", scheme=scheme, workload=workload.name) as sp:
        results = diagnose_population(
            responses, workload.scan_config, partitions, compactor,
            workers=workers,
        )
        sp.add("faults", len(responses))
        METRICS.incr("diagnosis.faults", len(responses))
    with span("dr.score", scheme=scheme, workload=workload.name):
        dr = diagnostic_resolution(results)
    dr_pruned = None
    pruned_results: List[DiagnosisResult] = []
    if with_pruning:
        with span("superposition.prune", scheme=scheme, workload=workload.name):
            pruned_results = [
                apply_superposition(result, workload.scan_config) for result in results
            ]
        with span("dr.score", scheme=scheme, workload=workload.name, pruned=True):
            dr_pruned = diagnostic_resolution(pruned_results)
    return SchemeEvaluation(scheme, dr, dr_pruned, results, pruned_results)


def hash_name(name: str) -> int:
    value = 0
    for ch in name:
        value = (value * 131 + ord(ch)) & 0x7FFFFFFF
    return value


def _get_circuit(name: str, config: ExperimentConfig):
    from ..circuit.library import get_circuit

    return get_circuit(name, scale=config.scale)
