"""Experiment harness: one module per table/figure of the paper, plus the
ablation studies and shared workload machinery."""

from .ablations import (
    run_aliasing_ablation,
    run_binary_search_ablation,
    run_deterministic_ablation,
    run_group_count_ablation,
    run_interval_count_ablation,
)
from .atpg_topup import run_atpg_topup
from .cache import cache_stats, clear_caches
from .clustering import run_clustering
from .config import ExperimentConfig, default_config, paper_config
from .error_model import run_error_model_ablation
from .extensions import (
    run_diagnosis_time,
    run_multi_core,
    run_scan_order_ablation,
    run_vector_diagnosis,
)
from .figure3 import run_figure3
from .patterns_ablation import run_pattern_count_ablation
from .figure5 import run_figure5
from .reporting import render_series, render_table
from .runner import (
    SchemeEvaluation,
    Workload,
    build_circuit_workload,
    build_soc_workloads,
    evaluate_scheme,
    scheme_partitions,
)
from .soc_tables import run_soc_table, run_table3, run_table4
from .table1 import run_table1
from .table2 import run_table2

__all__ = [
    "ExperimentConfig",
    "SchemeEvaluation",
    "Workload",
    "build_circuit_workload",
    "build_soc_workloads",
    "cache_stats",
    "clear_caches",
    "default_config",
    "evaluate_scheme",
    "paper_config",
    "render_series",
    "render_table",
    "run_aliasing_ablation",
    "run_atpg_topup",
    "run_binary_search_ablation",
    "run_clustering",
    "run_deterministic_ablation",
    "run_error_model_ablation",
    "run_figure3",
    "run_figure5",
    "run_group_count_ablation",
    "run_interval_count_ablation",
    "run_diagnosis_time",
    "run_multi_core",
    "run_pattern_count_ablation",
    "run_scan_order_ablation",
    "run_soc_table",
    "run_vector_diagnosis",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "scheme_partitions",
]
