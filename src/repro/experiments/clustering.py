"""Figure 2 evidence: clustering statistics of failing scan cells.

The paper's argument (Section 3, Figure 2) is that a fault's error-capturing
cells are confined to the fault cone and therefore occupy a small *segment*
of the scan chain.  This experiment quantifies that on our circuits: for
each detected fault, the span of its failing cells (max − min + 1) relative
to the chain length.  Small relative spans confirm the clustering premise
that makes interval-based partitioning effective.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..circuit.levelize import cone_span
from .config import ExperimentConfig, default_config
from .reporting import render_table
from .runner import build_circuit_workload


@dataclass
class ClusteringRow:
    circuit: str
    num_cells: int
    num_faults: int
    mean_failing_cells: float
    mean_span: float
    mean_relative_span: float
    p90_relative_span: float


@dataclass
class ClusteringResult:
    rows: List[ClusteringRow]

    def render(self) -> str:
        return render_table(
            "Figure 2 evidence: failing-cell clustering per fault",
            [
                "circuit",
                "cells",
                "faults",
                "mean #failing",
                "mean span",
                "mean span/chain",
                "p90 span/chain",
            ],
            [
                [
                    r.circuit,
                    r.num_cells,
                    r.num_faults,
                    r.mean_failing_cells,
                    r.mean_span,
                    r.mean_relative_span,
                    r.p90_relative_span,
                ]
                for r in self.rows
            ],
        )


def run_clustering(
    circuits: Sequence[str] = ("s953", "s5378", "s9234"),
    config: Optional[ExperimentConfig] = None,
) -> ClusteringResult:
    config = config or default_config()
    rows = []
    for name in circuits:
        workload = build_circuit_workload(name, config)
        spans = []
        counts = []
        for response in workload.responses:
            cells = response.failing_cells
            if not cells:
                continue
            counts.append(len(cells))
            spans.append(cone_span(cells))
        spans_arr = np.array(spans, dtype=float)
        relative = spans_arr / workload.num_cells
        rows.append(
            ClusteringRow(
                circuit=name,
                num_cells=workload.num_cells,
                num_faults=len(spans),
                mean_failing_cells=float(np.mean(counts)),
                mean_span=float(np.mean(spans_arr)),
                mean_relative_span=float(np.mean(relative)),
                p90_relative_span=float(np.percentile(relative, 90)),
            )
        )
    return ClusteringResult(rows)
