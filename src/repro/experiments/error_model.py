"""Ablation 7: evaluation protocol — random error injection vs real faults.

Section 4 of the paper: "the DR values here are larger than those obtained
by random error injection using a small number of errors.  This is because
in a real circuit, some faults may cause a large number of failing scan
cells that make partitioning and pruning less effective."

This experiment puts the three protocols side by side on one circuit with
the same diagnosis configuration:

* ``random-errors`` — a few errors in a few uniformly random cells (how
  [5]/[6]/[8] were evaluated);
* ``clustered-errors`` — the same error budget confined to a contiguous
  window (a synthetic fault-cone);
* ``real-faults`` — actual stuck-at fault simulation (the paper's
  protocol).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..bist.misr import LinearCompactor
from ..core.diagnosis import diagnose, diagnostic_resolution
from ..sim.error_injection import inject_clustered_errors, inject_random_errors
from .config import ExperimentConfig, default_config
from .reporting import render_table
from .runner import build_circuit_workload, scheme_partitions


@dataclass
class ErrorModelAblation:
    circuit: str
    rows: List[list]  # [protocol, mean failing cells, DR random, DR two-step]

    def render(self) -> str:
        return render_table(
            f"Ablation 7: evaluation protocol ({self.circuit}, 8 partitions)",
            ["protocol", "mean failing cells", "DR random", "DR two-step"],
            self.rows,
        )


def run_error_model_ablation(
    circuit: str = "s5378",
    num_partitions: int = 8,
    num_groups: int = 16,
    errors_per_case: int = 4,
    error_cells: int = 3,
    config: Optional[ExperimentConfig] = None,
) -> ErrorModelAblation:
    config = config or default_config()
    workload = build_circuit_workload(circuit, config)
    rng = np.random.default_rng(config.fault_seed)
    count = len(workload.responses)

    protocols = {
        "random-errors": [
            inject_random_errors(
                workload.num_cells,
                workload.num_patterns,
                errors_per_case,
                rng,
                max_cells=error_cells,
            )
            for _ in range(count)
        ],
        "clustered-errors": [
            inject_clustered_errors(
                workload.num_cells,
                workload.num_patterns,
                errors_per_case,
                rng,
                window=max(2, workload.num_cells // 10),
            )
            for _ in range(count)
        ],
        "real-faults": workload.responses,
    }

    compactor = LinearCompactor(config.misr_width, workload.scan_config.num_chains)
    rows = []
    for label, responses in protocols.items():
        mean_fails = float(
            np.mean([len(r.failing_cells) for r in responses if r.detected])
        )
        drs = []
        for scheme in ("random", "two-step"):
            partitions = scheme_partitions(
                scheme,
                workload.scan_config.max_length,
                num_groups,
                num_partitions,
                lfsr_degree=config.lfsr_degree,
            )
            results = [
                diagnose(response, workload.scan_config, partitions, compactor)
                for response in responses
            ]
            drs.append(diagnostic_resolution(results))
        rows.append([label, mean_fails, drs[0], drs[1]])
    return ErrorModelAblation(circuit, rows)
