"""Tables 3 and 4: SOC diagnostic resolution, per failing core.

Table 3 — the stitched SOC (six largest ISCAS-89 cores on a single meta
scan chain), 8 partitions of 32 groups.  Table 4 — the d695-variant SOC
(8 balanced meta scan chains on an 8-bit TAM), 8 partitions of 8 groups.
In both, exactly one core is assumed faulty per experiment; 500 stuck-at
faults are injected into that core.  Expected shape: two-step beats random
selection for every failing core (up to ~10x), with and without pruning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..soc.d695 import build_d695_soc
from ..soc.stitch import build_stitched_soc
from ..soc.testrail import TestRail
from ..telemetry import span
from .config import ExperimentConfig, default_config
from .reporting import render_table
from .runner import build_soc_workloads, evaluate_scheme

NUM_PARTITIONS = 8
SOC1_GROUPS = 32  # "a rather long meta scan chain so we use 32 groups"
SOC2_GROUPS = 8  # "the scan chains are relatively shorter ... set to 8"


@dataclass
class SocRow:
    failing_core: str
    num_core_cells: int
    num_faults: int
    dr_random: float
    dr_two_step: float
    dr_random_pruned: float
    dr_two_step_pruned: float


@dataclass
class SocTableResult:
    title: str
    num_groups: int
    total_cells: int
    rows: List[SocRow]

    def render(self) -> str:
        return render_table(
            f"{self.title} ({NUM_PARTITIONS} partitions x {self.num_groups} "
            f"groups, {self.total_cells} meta-chain cells)",
            [
                "failing core",
                "core cells",
                "faults",
                "DR random",
                "DR two-step",
                "DR random+prune",
                "DR two-step+prune",
            ],
            [
                [
                    r.failing_core,
                    r.num_core_cells,
                    r.num_faults,
                    r.dr_random,
                    r.dr_two_step,
                    r.dr_random_pruned,
                    r.dr_two_step_pruned,
                ]
                for r in self.rows
            ],
        )


def run_soc_table(
    soc: TestRail,
    num_groups: int,
    title: str,
    config: Optional[ExperimentConfig] = None,
) -> SocTableResult:
    config = config or default_config()
    workloads = build_soc_workloads(soc, config)
    rows = []
    for core_index, core in enumerate(soc.cores):
        workload = workloads[core.name]
        with span("soc.core", soc=soc.name, core=core.name):
            random_eval = evaluate_scheme(
                workload, "random", NUM_PARTITIONS, num_groups, config,
                with_pruning=True,
            )
            two_step_eval = evaluate_scheme(
                workload, "two-step", NUM_PARTITIONS, num_groups, config,
                with_pruning=True,
            )
        rows.append(
            SocRow(
                failing_core=core.name,
                num_core_cells=core.num_cells,
                num_faults=len(workload.responses),
                dr_random=random_eval.dr,
                dr_two_step=two_step_eval.dr,
                dr_random_pruned=random_eval.dr_pruned,
                dr_two_step_pruned=two_step_eval.dr_pruned,
            )
        )
    return SocTableResult(
        title=title,
        num_groups=num_groups,
        total_cells=soc.num_cells,
        rows=rows,
    )


def run_table3(
    config: Optional[ExperimentConfig] = None,
    soc: Optional[TestRail] = None,
) -> SocTableResult:
    """SOC 1: single meta scan chain through the six largest benchmarks."""
    config = config or default_config()
    soc = soc or build_stitched_soc(num_patterns=config.num_patterns, scale=config.scale)
    return run_soc_table(
        soc, SOC1_GROUPS, "Table 3: SOC diagnostic resolution, single scan chain",
        config,
    )


def run_table4(
    config: Optional[ExperimentConfig] = None,
    soc: Optional[TestRail] = None,
) -> SocTableResult:
    """SOC 2: d695 variant, 8 balanced meta scan chains."""
    config = config or default_config()
    soc = soc or build_d695_soc(num_patterns=config.num_patterns, scale=config.scale)
    return run_soc_table(
        soc, SOC2_GROUPS, "Table 4: SOC diagnostic resolution, multiple scan chains",
        config,
    )
