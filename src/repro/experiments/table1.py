"""Table 1: diagnostic resolution on s953 vs number of partitions.

The paper applies a 200-pattern BIST session to full-scan s953 with 500
injected stuck-at faults and sweeps the number of partitions from 1 to 8
for the interval-based, random-selection and two-step schemes.  Expected
shape: interval wins at few partitions, random selection catches up and
wins at many, two-step is best (its DR roughly half of random-selection's).

The group count per partition is 4, matching the paper's Figure 3 example
on the same circuit (Table 1 itself does not state it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..bist.misr import LinearCompactor
from ..core.diagnosis import diagnose, dr_by_partition_count
from ..parallel import parallel_map
from ..telemetry import METRICS, span
from .config import ExperimentConfig, PAPER_PATTERNS_TABLE1, default_config
from .reporting import render_table
from .runner import build_circuit_workload, scheme_partitions

CIRCUIT = "s953"
NUM_GROUPS = 4
MAX_PARTITIONS = 8
SCHEMES = ("interval", "random", "two-step")


@dataclass
class Table1Result:
    """DR per scheme per partition count (1..8)."""

    dr: dict  # scheme -> List[float], index k = k+1 partitions
    num_faults: int

    def rows(self) -> List[list]:
        rows = []
        for k in range(MAX_PARTITIONS):
            rows.append(
                [k + 1]
                + [self.dr[scheme][k] for scheme in SCHEMES]
            )
        return rows

    def render(self) -> str:
        return render_table(
            f"Table 1: DR for {CIRCUIT}, varying number of partitions "
            f"({self.num_faults} faults, {PAPER_PATTERNS_TABLE1} patterns, "
            f"{NUM_GROUPS} groups)",
            ["partitions", "DR (interval)", "DR (random)", "DR (two-step)"],
            self.rows(),
        )


def run_table1(config: ExperimentConfig = None) -> Table1Result:
    config = config or default_config()
    workload = build_circuit_workload(
        CIRCUIT, config, num_patterns=PAPER_PATTERNS_TABLE1
    )
    compactor = LinearCompactor(config.misr_width, workload.scan_config.num_chains)
    dr: dict = {}
    for scheme in SCHEMES:
        partitions = scheme_partitions(
            scheme,
            workload.scan_config.max_length,
            NUM_GROUPS,
            MAX_PARTITIONS,
            lfsr_degree=config.lfsr_degree,
        )
        with span("diagnose", scheme=scheme, workload=CIRCUIT) as sp:
            responses = workload.responses
            results = parallel_map(
                lambda i: diagnose(
                    responses[i], workload.scan_config, partitions, compactor
                ),
                len(responses),
            )
            sp.add("faults", len(results))
            METRICS.incr("diagnosis.faults", len(results))
        with span("dr.score", scheme=scheme, workload=CIRCUIT):
            dr[scheme] = dr_by_partition_count(results, MAX_PARTITIONS)
    return Table1Result(dr=dr, num_faults=len(workload.responses))
