"""Plain-text table rendering for experiment output (paper-style rows)."""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

Cell = Union[str, int, float, None]


def format_cell(value: Cell, precision: int = 2) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    precision: int = 2,
) -> str:
    """A fixed-width table with a title rule, like the paper's tables."""
    text_rows: List[List[str]] = [
        [format_cell(cell, precision) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    rule = "-" * (sum(widths) + 2 * (len(widths) - 1))
    out = [title, rule, line(headers), rule]
    out.extend(line(row) for row in text_rows)
    out.append(rule)
    return "\n".join(out)


def render_series(title: str, labels: Sequence[str], values: Sequence[Cell]) -> str:
    """A labelled one-row series (for figure-style outputs)."""
    return render_table(title, list(labels), [list(values)])
