"""Ablation studies for the design choices DESIGN.md calls out.

1. **Interval partitions in step one** — the paper uses a single interval
   partition "for the sake of simplicity ... even though in some cases more
   interval-based partitions lead to higher diagnostic resolution".  Sweep
   0, 1, 2, 3 interval partitions within a fixed total budget.
2. **Groups per partition** — Section 5's strategy is "more groups on the
   longer meta scan chains".  Sweep the group count on one circuit and
   report DR together with the session cost (groups x partitions).
3. **MISR aliasing** — compare signature-based diagnosis (widths 8/16/24)
   against the exact (alias-free) comparison: candidate-count differences
   and soundness violations.
4. **Deterministic fixed intervals** (Bayraktaroglu & Orailoglu [8]) vs the
   LFSR-drawn intervals of the paper, single partition.
5. **Adaptive binary search** ([6]) — sessions needed for single-position
   resolution vs the sessions the partition schemes spend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..bist.misr import LinearCompactor
from ..core.binary_search import binary_search_diagnose
from ..core.diagnosis import diagnose, diagnostic_resolution
from .config import ExperimentConfig, default_config
from .reporting import render_table
from .runner import build_circuit_workload, evaluate_scheme, scheme_partitions


# -- 1. number of interval partitions in step one ---------------------------


@dataclass
class IntervalCountAblation:
    circuit: str
    num_partitions: int
    dr_by_interval_count: Dict[int, float]

    def render(self) -> str:
        rows = [
            [count, dr] for count, dr in sorted(self.dr_by_interval_count.items())
        ]
        return render_table(
            f"Ablation 1: interval partitions in step one ({self.circuit}, "
            f"{self.num_partitions} total partitions)",
            ["interval partitions", "DR"],
            rows,
        )


def run_interval_count_ablation(
    circuit: str = "s5378",
    counts: Sequence[int] = (0, 1, 2, 3),
    num_partitions: int = 8,
    num_groups: int = 16,
    config: Optional[ExperimentConfig] = None,
) -> IntervalCountAblation:
    config = config or default_config()
    workload = build_circuit_workload(circuit, config)
    dr_by_count = {}
    for count in counts:
        scheme = "random" if count == 0 else "two-step"
        evaluation = evaluate_scheme(
            workload,
            scheme,
            num_partitions,
            num_groups,
            config,
            num_interval_partitions=count,
        )
        dr_by_count[count] = evaluation.dr
    return IntervalCountAblation(circuit, num_partitions, dr_by_count)


# -- 2. groups per partition --------------------------------------------------


@dataclass
class GroupCountAblation:
    circuit: str
    rows: List[list]  # [groups, sessions, dr_random, dr_two_step]

    def render(self) -> str:
        return render_table(
            f"Ablation 2: groups per partition ({self.circuit})",
            ["groups", "sessions", "DR random", "DR two-step"],
            self.rows,
        )


def run_group_count_ablation(
    circuit: str = "s5378",
    group_counts: Sequence[int] = (4, 8, 16, 32),
    num_partitions: int = 8,
    config: Optional[ExperimentConfig] = None,
) -> GroupCountAblation:
    config = config or default_config()
    workload = build_circuit_workload(circuit, config)
    rows = []
    for groups in group_counts:
        random_eval = evaluate_scheme(
            workload, "random", num_partitions, groups, config
        )
        two_step_eval = evaluate_scheme(
            workload, "two-step", num_partitions, groups, config
        )
        rows.append(
            [groups, groups * num_partitions, random_eval.dr, two_step_eval.dr]
        )
    return GroupCountAblation(circuit, rows)


# -- 3. MISR aliasing -----------------------------------------------------------


@dataclass
class AliasingAblation:
    circuit: str
    rows: List[list]  # [mode, dr, soundness_violations]

    def render(self) -> str:
        return render_table(
            f"Ablation 3: MISR aliasing ({self.circuit}, two-step)",
            ["comparison", "DR", "soundness violations"],
            self.rows,
        )


def run_aliasing_ablation(
    circuit: str = "s953",
    widths: Sequence[int] = (8, 16, 24),
    num_partitions: int = 8,
    num_groups: int = 8,
    config: Optional[ExperimentConfig] = None,
) -> AliasingAblation:
    config = config or default_config()
    workload = build_circuit_workload(circuit, config)
    partitions = scheme_partitions(
        "two-step",
        workload.scan_config.max_length,
        num_groups,
        num_partitions,
        lfsr_degree=config.lfsr_degree,
    )
    from ..bist.misr import ParityCompactor

    rows = []
    modes = (
        [("exact", None),
         ("parity", ParityCompactor(workload.scan_config.num_chains))]
        + [
            (f"MISR-{w}", LinearCompactor(w, workload.scan_config.num_chains))
            for w in widths
        ]
    )
    for label, compactor in modes:
        results = [
            diagnose(response, workload.scan_config, partitions, compactor)
            for response in workload.responses
        ]
        violations = sum(1 for r in results if r.detected and not r.sound)
        rows.append([label, diagnostic_resolution(results), violations])
    return AliasingAblation(circuit, rows)


# -- 4. deterministic vs LFSR-drawn intervals --------------------------------


@dataclass
class DeterministicAblation:
    circuit: str
    rows: List[list]  # [scheme, partitions, dr]

    def render(self) -> str:
        return render_table(
            f"Ablation 4: deterministic vs LFSR-drawn intervals ({self.circuit})",
            ["scheme", "partitions", "DR"],
            self.rows,
        )


def run_deterministic_ablation(
    circuit: str = "s953",
    partition_counts: Sequence[int] = (1, 2, 4),
    num_groups: int = 8,
    config: Optional[ExperimentConfig] = None,
) -> DeterministicAblation:
    config = config or default_config()
    workload = build_circuit_workload(circuit, config)
    rows = []
    for scheme in ("interval", "deterministic"):
        for count in partition_counts:
            evaluation = evaluate_scheme(
                workload, scheme, count, num_groups, config
            )
            rows.append([scheme, count, evaluation.dr])
    return DeterministicAblation(circuit, rows)


# -- 5. adaptive binary search session cost ----------------------------------


@dataclass
class BinarySearchAblation:
    circuit: str
    mean_sessions_binary: float
    partition_sessions: int
    dr_two_step: float
    dr_binary: float

    def render(self) -> str:
        return render_table(
            f"Ablation 5: adaptive binary search vs two-step ({self.circuit})",
            [
                "mean sessions (binary)",
                "sessions (two-step)",
                "DR binary",
                "DR two-step",
            ],
            [
                [
                    self.mean_sessions_binary,
                    self.partition_sessions,
                    self.dr_binary,
                    self.dr_two_step,
                ]
            ],
        )


def run_binary_search_ablation(
    circuit: str = "s953",
    num_partitions: int = 8,
    num_groups: int = 8,
    config: Optional[ExperimentConfig] = None,
) -> BinarySearchAblation:
    config = config or default_config()
    workload = build_circuit_workload(circuit, config)
    compactor = LinearCompactor(config.misr_width, workload.scan_config.num_chains)
    binary_results = [
        binary_search_diagnose(response, workload.scan_config, compactor)
        for response in workload.responses
    ]
    total_actual = sum(len(r.actual_cells) for r in binary_results)
    total_candidates = sum(len(r.candidate_cells) for r in binary_results)
    dr_binary = (total_candidates - total_actual) / total_actual
    mean_sessions = float(np.mean([r.sessions_used for r in binary_results]))
    two_step_eval = evaluate_scheme(
        workload, "two-step", num_partitions, num_groups, config
    )
    return BinarySearchAblation(
        circuit=circuit,
        mean_sessions_binary=mean_sessions,
        partition_sessions=num_partitions * num_groups,
        dr_two_step=two_step_eval.dr,
        dr_binary=dr_binary,
    )
