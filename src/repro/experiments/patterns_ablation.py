"""Ablation: BIST pattern count.

The paper uses 200 patterns for Table 1 and 128 for everything else
("Since the simulation time is very high, we use only 128 pseudorandom
patterns for each BIST session").  More patterns mean more detecting
events per fault — better group-failure observability — but also more
failing cells per fault (bigger candidate floors) and longer sessions.
This ablation sweeps the pattern count and reports fault coverage, mean
error multiplicity, DR and session cost together, quantifying the
trade-off the paper resolves by fiat.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..core.time_model import session_cycles
from ..sim.coverage import coverage_report
from ..soc.core_wrapper import EmbeddedCore
from .config import ExperimentConfig, default_config
from .reporting import render_table
from .runner import Workload, evaluate_scheme, hash_name


@dataclass
class PatternCountAblation:
    circuit: str
    rows: List[list]  # [patterns, coverage, mean fails, DR two-step, kcycles]

    def render(self) -> str:
        return render_table(
            f"Ablation 6: BIST pattern count ({self.circuit}, two-step, "
            f"8 partitions)",
            [
                "patterns",
                "fault coverage",
                "mean failing cells",
                "DR two-step",
                "session kcycles",
            ],
            self.rows,
        )


def run_pattern_count_ablation(
    circuit: str = "s5378",
    pattern_counts: Sequence[int] = (32, 64, 128, 256),
    num_partitions: int = 8,
    num_groups: int = 16,
    config: Optional[ExperimentConfig] = None,
) -> PatternCountAblation:
    config = config or default_config()
    from ..bist.scan import ScanConfig
    from ..circuit.library import get_circuit

    rows = []
    for num_patterns in pattern_counts:
        core = EmbeddedCore(
            get_circuit(circuit, scale=config.scale), num_patterns=num_patterns
        )
        rng = np.random.default_rng(config.fault_seed ^ hash_name(circuit))
        report = coverage_report(
            core.fault_simulator,
            max_faults=config.faults_for(circuit) * 2,
            rng=rng,
        )
        responses = core.sample_fault_responses(
            config.faults_for(circuit), np.random.default_rng(config.fault_seed)
        )
        workload = Workload(
            name=circuit,
            scan_config=ScanConfig.single_chain(core.num_cells),
            responses=responses,
            num_patterns=num_patterns,
        )
        evaluation = evaluate_scheme(
            workload, "two-step", num_partitions, num_groups, config
        )
        detected = report.detected_profiles
        mean_fails = (
            float(np.mean([p.num_failing_cells for p in detected]))
            if detected
            else 0.0
        )
        rows.append(
            [
                num_patterns,
                report.fault_coverage,
                mean_fails,
                evaluation.dr,
                session_cycles(workload.scan_config, num_patterns) / 1000.0,
            ]
        )
    return PatternCountAblation(circuit, rows)
