"""Figure 3: a single-partition worked example on s953.

One stuck-at fault is injected into full-scan s953; one partition of 4
groups is generated with the interval-based method and one with the
random-selection method.  The figure reports the group contents and the
number of suspect failing scan cells each method leaves after observing
the pass/fail of its 4 sessions.  In the paper the fault produces two
failing cells which the interval partition keeps in one group (8 suspects)
while random selection spreads them over two groups (22 suspects).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..bist.misr import LinearCompactor
from ..core.diagnosis import diagnose
from ..core.partitions import Partition
from ..telemetry import span
from .config import ExperimentConfig, default_config
from .runner import Workload, build_circuit_workload, scheme_partitions

CIRCUIT = "s953"
NUM_GROUPS = 4


@dataclass
class Figure3Result:
    failing_cells: List[int]
    interval_groups: List[List[int]]
    random_groups: List[List[int]]
    interval_suspects: int
    random_suspects: int
    num_cells: int

    def render(self) -> str:
        lines = [
            f"Figure 3: single-partition example on {CIRCUIT} "
            f"({self.num_cells} scan cells)",
            f"True failing scan cells: {self.failing_cells}",
            "",
            "Interval-based partitioning:",
        ]
        for g, members in enumerate(self.interval_groups):
            span = f"{members[0]}-{members[-1]}" if members else "(empty)"
            lines.append(f"  Group {g + 1}: {span}")
        lines.append(f"  No. of suspect failing scan cells: {self.interval_suspects}")
        lines.append("")
        lines.append("Random-selection partitioning:")
        for g, members in enumerate(self.random_groups):
            lines.append(f"  Group {g + 1}: {','.join(map(str, members))}")
        lines.append(f"  No. of suspect failing scan cells: {self.random_suspects}")
        return "\n".join(lines)


def _pick_clustered_fault(workload: Workload) -> int:
    """Index of a response with a small multi-cell failing set, like the
    paper's example (two failing cells)."""
    best = None
    for idx, response in enumerate(workload.responses):
        count = len(response.failing_cells)
        if count < 2:
            continue
        if best is None or count < len(workload.responses[best].failing_cells):
            best = idx
    if best is None:  # all single-cell; take the first detected fault
        for idx, response in enumerate(workload.responses):
            if response.detected:
                return idx
        raise RuntimeError("no detected fault in workload")
    return best


def run_figure3(
    config: Optional[ExperimentConfig] = None, fault_index: Optional[int] = None
) -> Figure3Result:
    config = config or default_config()
    workload = build_circuit_workload(CIRCUIT, config)
    if fault_index is None:
        fault_index = _pick_clustered_fault(workload)
    response = workload.responses[fault_index]
    compactor = LinearCompactor(config.misr_width, 1)

    def one_partition(scheme: str) -> Partition:
        return scheme_partitions(
            scheme,
            workload.scan_config.max_length,
            NUM_GROUPS,
            1,
            lfsr_degree=config.lfsr_degree,
        )[0]

    interval_part = one_partition("interval")
    random_part = one_partition("random")
    with span("diagnose", scheme="interval", workload=CIRCUIT):
        interval_result = diagnose(
            response, workload.scan_config, [interval_part], compactor
        )
    with span("diagnose", scheme="random", workload=CIRCUIT):
        random_result = diagnose(
            response, workload.scan_config, [random_part], compactor
        )
    return Figure3Result(
        failing_cells=sorted(response.failing_cells),
        interval_groups=[
            [int(p) for p in interval_part.members(g)] for g in range(NUM_GROUPS)
        ],
        random_groups=[
            [int(p) for p in random_part.members(g)] for g in range(NUM_GROUPS)
        ],
        interval_suspects=len(interval_result.candidate_cells),
        random_suspects=len(random_result.candidate_cells),
        num_cells=workload.num_cells,
    )
