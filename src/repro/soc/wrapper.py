"""Core wrapper design: assigning internal scan chains to TAM lines.

The paper reorganizes each core's internal scan chains into ``W`` balanced
meta scan chains ("The scan chains in the cores are reorganized to
construct 8 balanced meta scan chains on the SOC").  The underlying
problem — partition a core's internal chains over ``W`` wrapper scan ports
minimizing the longest port — is the classical multiprocessor-scheduling
step of wrapper design (Marinissen et al.; Iyengar/Chakrabarty TAM
optimization), NP-hard in general and well served by the Longest
Processing Time (LPT) heuristic.

This module implements that step so SOC construction can honour the
internal chain structure declared in an ITC'02-style description instead
of slicing cores arbitrarily:

* :func:`lpt_assignment` — LPT bin packing of chain lengths onto W ports;
* :func:`normalize_chain_lengths` — rescale declared lengths to a core
  whose simulated cell count differs (scaled test circuits);
* :func:`wrapper_segments` — concrete local cell-id runs per TAM line.
"""

from __future__ import annotations

import heapq
from typing import List, Sequence, Tuple


def lpt_assignment(chain_lengths: Sequence[int], tam_width: int) -> List[List[int]]:
    """Assign internal chains (by index) to ``tam_width`` ports, longest
    chain first onto the currently lightest port.

    Returns a list of ``tam_width`` lists of chain indices.  LPT guarantees
    a makespan within 4/3 of optimal.
    """
    if tam_width < 1:
        raise ValueError("tam_width must be positive")
    if any(length < 0 for length in chain_lengths):
        raise ValueError("chain lengths must be non-negative")
    ports: List[List[int]] = [[] for _ in range(tam_width)]
    heap: List[Tuple[int, int]] = [(0, w) for w in range(tam_width)]
    heapq.heapify(heap)
    order = sorted(
        range(len(chain_lengths)), key=lambda i: chain_lengths[i], reverse=True
    )
    for index in order:
        load, port = heapq.heappop(heap)
        ports[port].append(index)
        heapq.heappush(heap, (load + chain_lengths[index], port))
    return ports


def assignment_makespan(
    chain_lengths: Sequence[int], assignment: Sequence[Sequence[int]]
) -> int:
    """Longest port load under an assignment."""
    return max(
        (sum(chain_lengths[i] for i in port) for port in assignment), default=0
    )


def normalize_chain_lengths(
    declared_lengths: Sequence[int], actual_cells: int
) -> List[int]:
    """Rescale declared internal chain lengths so they sum to the simulated
    core's actual cell count, preserving proportions (largest remainder).

    Used when experiments run scaled-down circuits against a full-size SOC
    description.  Zero-length chains are dropped.
    """
    total = sum(declared_lengths)
    if total <= 0:
        raise ValueError("declared chain lengths must sum to a positive value")
    if actual_cells < 0:
        raise ValueError("actual_cells must be non-negative")
    scaled = [length * actual_cells / total for length in declared_lengths]
    floors = [int(v) for v in scaled]
    shortfall = actual_cells - sum(floors)
    remainders = sorted(
        range(len(scaled)), key=lambda i: scaled[i] - floors[i], reverse=True
    )
    for i in remainders[:shortfall]:
        floors[i] += 1
    return [v for v in floors if v > 0] or [actual_cells]


def wrapper_segments(
    chain_lengths: Sequence[int], tam_width: int
) -> List[List[Tuple[int, int]]]:
    """Per-TAM-line local cell-id runs for one core.

    Internal chain ``i`` occupies local cells ``offset_i .. offset_i +
    len_i``; the returned structure lists, for each TAM line, the
    ``(start, end)`` half-open runs of the chains LPT assigned to it, in
    assignment order (they are stitched head-to-tail on the meta chain).
    """
    offsets = []
    position = 0
    for length in chain_lengths:
        offsets.append(position)
        position += length
    assignment = lpt_assignment(chain_lengths, tam_width)
    segments: List[List[Tuple[int, int]]] = []
    for port in assignment:
        segments.append(
            [(offsets[i], offsets[i] + chain_lengths[i]) for i in port]
        )
    return segments
