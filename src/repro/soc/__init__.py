"""System-on-chip substrate: embedded cores, TestRail daisy-chain meta scan
chains, and the two SOCs of the paper's evaluation."""

from .core_wrapper import EmbeddedCore
from .schedule import Phase, ScheduleDiagnosisResult, TestSchedule, diagnose_schedule
from .socfile import (
    D695_SOC_TEXT,
    ModuleDescription,
    SocDescription,
    SocFormatError,
    build_testrail_from_description,
    d695_description,
    load_soc,
    parse_soc,
    save_soc,
    write_soc,
)
from .d695 import DEFAULT_TAM_WIDTH, build_d695_soc
from .stitch import build_stitched_soc
from .testrail import CellRef, TestRail
from .wrapper import (
    assignment_makespan,
    lpt_assignment,
    normalize_chain_lengths,
    wrapper_segments,
)

__all__ = [
    "CellRef",
    "D695_SOC_TEXT",
    "ModuleDescription",
    "Phase",
    "ScheduleDiagnosisResult",
    "SocDescription",
    "SocFormatError",
    "TestSchedule",
    "build_testrail_from_description",
    "d695_description",
    "diagnose_schedule",
    "load_soc",
    "parse_soc",
    "save_soc",
    "write_soc",
    "DEFAULT_TAM_WIDTH",
    "EmbeddedCore",
    "TestRail",
    "build_d695_soc",
    "build_stitched_soc",
    "assignment_makespan",
    "lpt_assignment",
    "normalize_chain_lengths",
    "wrapper_segments",
]
