"""TestRail / daisy-chain test access architecture (Marinissen et al. [10]).

``W`` meta scan chains are threaded through the internal scan chains of the
embedded cores in daisy-chain order: meta chain ``w`` consists of core 0's
``w``-th segment, then core 1's, and so on.  Each core's cells are split
into ``W`` balanced contiguous segments.  A single test session transports
patterns to all cores and responses back through the meta chains; a core
that runs out of patterns is bypassed (the bypass is irrelevant to
diagnosis of captured responses and is modelled as the core simply
contributing no further error events).

The key structural consequence for diagnosis — the reason interval-based
partitioning shines here — is that a faulty core's cells occupy one
*contiguous* block of shift positions on every meta chain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..bist.scan import ScanConfig
from ..sim.faultsim import FaultResponse
from .core_wrapper import EmbeddedCore


@dataclass(frozen=True)
class CellRef:
    """A meta-chain cell identified by its core and local cell id."""

    core_index: int
    local_cell: int


class TestRail:
    """Daisy-chained meta scan chains over a list of embedded cores."""

    def __init__(
        self,
        name: str,
        cores: Sequence[EmbeddedCore],
        tam_width: int = 1,
        internal_chains: Optional[Dict[str, Sequence[int]]] = None,
    ):
        if tam_width < 1:
            raise ValueError("tam_width must be positive")
        if not cores:
            raise ValueError("at least one core required")
        self.name = name
        self.cores: List[EmbeddedCore] = list(cores)
        self.tam_width = tam_width

        # Split each core's cells over the tam_width meta chains, then
        # concatenate per chain in daisy order.  With declared internal
        # chains the split follows the wrapper design (whole internal
        # chains LPT-assigned to TAM lines); otherwise cells are divided
        # into balanced contiguous segments.
        chain_refs: List[List[CellRef]] = [[] for _ in range(tam_width)]
        for core_index, core in enumerate(self.cores):
            declared = (internal_chains or {}).get(core.name)
            if declared is not None:
                from .wrapper import normalize_chain_lengths, wrapper_segments

                lengths = normalize_chain_lengths(list(declared), core.num_cells)
                per_port = wrapper_segments(lengths, tam_width)
                for w, runs in enumerate(per_port):
                    for start, end in runs:
                        chain_refs[w].extend(
                            CellRef(core_index, local)
                            for local in range(start, end)
                        )
            else:
                segments = _balanced_segments(core.num_cells, tam_width)
                for w, (start, end) in enumerate(segments):
                    chain_refs[w].extend(
                        CellRef(core_index, local) for local in range(start, end)
                    )
        self._chain_refs = chain_refs

        # Global cell ids must be 0..N-1 for ScanConfig; assign them in
        # chain-major, position-minor order.
        self._ref_of_global: List[CellRef] = []
        self._global_of_ref: Dict[CellRef, int] = {}
        chains: List[List[int]] = []
        for refs in chain_refs:
            chain = []
            for ref in refs:
                gid = len(self._ref_of_global)
                self._ref_of_global.append(ref)
                self._global_of_ref[ref] = gid
                chain.append(gid)
            chains.append(chain)
        self.scan_config = ScanConfig(chains)

    # -- mapping -----------------------------------------------------------

    @property
    def num_cells(self) -> int:
        return self.scan_config.num_cells

    def global_cell(self, core_index: int, local_cell: int) -> int:
        return self._global_of_ref[CellRef(core_index, local_cell)]

    def owner(self, global_cell: int) -> CellRef:
        return self._ref_of_global[global_cell]

    def core_cells(self, core_index: int) -> List[int]:
        """All global cell ids belonging to one core."""
        return [
            gid
            for gid, ref in enumerate(self._ref_of_global)
            if ref.core_index == core_index
        ]

    def core_position_range(self, core_index: int, chain: int) -> Tuple[int, int]:
        """Half-open range of shift positions occupied by ``core_index`` on
        ``chain`` (empty range if the core has no cells there)."""
        refs = self._chain_refs[chain]
        positions = [
            pos for pos, ref in enumerate(refs) if ref.core_index == core_index
        ]
        if not positions:
            return (0, 0)
        return (min(positions), max(positions) + 1)

    # -- responses ----------------------------------------------------------

    def lift_response(self, core_index: int, response: FaultResponse) -> FaultResponse:
        """Translate a core-local fault response into SOC-global cell ids."""
        lifted = {
            self.global_cell(core_index, cell): vec.copy()
            for cell, vec in response.cell_errors.items()
        }
        return FaultResponse(response.fault, lifted, response.num_patterns)

    def describe(self) -> str:
        lines = [f"TestRail {self.name}: {self.tam_width} meta chain(s)"]
        for w, refs in enumerate(self._chain_refs):
            lines.append(f"  chain {w}: {len(refs)} cells")
        for k, core in enumerate(self.cores):
            lines.append(f"  core {k}: {core.name} ({core.num_cells} cells)")
        return "\n".join(lines)


def _balanced_segments(num_cells: int, parts: int) -> List[Tuple[int, int]]:
    """Split ``range(num_cells)`` into ``parts`` contiguous nearly-equal
    half-open segments (earlier segments get the remainder)."""
    base, extra = divmod(num_cells, parts)
    segments = []
    start = 0
    for w in range(parts):
        size = base + (1 if w < extra else 0)
        segments.append((start, start + size))
        start += size
    return segments
