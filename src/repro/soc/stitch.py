"""SOC 1 of the paper: the six largest ISCAS-89 benchmarks stitched onto a
single meta scan chain (Section 5, Table 3, Figure 5)."""

from __future__ import annotations

from typing import Optional, Sequence

from ..circuit.library import SIX_LARGEST, get_circuit
from .core_wrapper import EmbeddedCore
from .testrail import TestRail


def build_stitched_soc(
    module_names: Optional[Sequence[str]] = None,
    num_patterns: int = 128,
    pattern_seed: int = 0xACE1,
    scale: Optional[float] = None,
) -> TestRail:
    """The first SOC: one meta scan chain threaded through all cores.

    ``scale`` shrinks every core proportionally (for tests); the default is
    the full published sizes.
    """
    names = list(module_names) if module_names is not None else list(SIX_LARGEST)
    cores = [
        EmbeddedCore(
            get_circuit(name, scale=scale),
            num_patterns=num_patterns,
            pattern_seed=pattern_seed,
        )
        for name in names
    ]
    return TestRail("soc-six-largest", cores, tam_width=1)
