"""SOC 2 of the paper: a variant of the ITC'02 ``d695`` SOC (Section 5,
Table 4).

Only the full-scan ISCAS-89 modules of d695 are used (the combinational
c-circuits carry no scan cells and play no role in failing-cell diagnosis).
The cores are daisy-chained on an 8-bit-wide TAM whose meta scan chains are
balanced across the SOC, in the order of the paper's Figure 4.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..circuit.library import D695_MODULES, get_circuit
from .core_wrapper import EmbeddedCore
from .testrail import TestRail

DEFAULT_TAM_WIDTH = 8


def build_d695_soc(
    module_names: Optional[Sequence[str]] = None,
    tam_width: int = DEFAULT_TAM_WIDTH,
    num_patterns: int = 128,
    pattern_seed: int = 0xACE1,
    scale: Optional[float] = None,
) -> TestRail:
    """The d695-variant SOC with ``tam_width`` balanced meta scan chains."""
    names = list(module_names) if module_names is not None else list(D695_MODULES)
    cores = [
        EmbeddedCore(
            get_circuit(name, scale=scale),
            num_patterns=num_patterns,
            pattern_seed=pattern_seed,
        )
        for name in names
    ]
    return TestRail("soc-d695", cores, tam_width=tam_width)
