"""Embedded core wrapper: a reusable module with internal scan cells.

In the paper's SOC scenario each core is a full-scan ISCAS-89 circuit whose
internal scan chain segments are threaded onto SOC-level meta scan chains
(TestRail daisy-chain architecture [10]).  The wrapper owns the core's
compiled circuit and pattern set and produces fault responses in *local*
cell coordinates; the :class:`repro.soc.testrail.TestRail` maps those onto
the meta chains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..bist.patterns import fast_pattern_matrices
from ..circuit.netlist import Netlist
from ..sim.faults import Fault, collapse_faults, sample_faults
from ..sim.faultsim import FaultResponse, FaultSimulator
from ..sim.logicsim import CompiledCircuit

#: Smallest fault slab worth handing to ``simulate_faults`` while sampling
#: for detected faults — keeps the batched kernel fed near the tail.
_SAMPLE_SLAB_MIN = 32


class EmbeddedCore:
    """One core of the SOC, with its own BIST pattern expansion.

    The TestRail transports one shared pseudo-random stream, but because
    each core's scan segment occupies a fixed slice of the meta chains, the
    values any core receives are statistically independent pseudo-random
    bits; modelling them as a per-core seeded stream is equivalent and lets
    the cores simulate independently.
    """

    def __init__(
        self,
        netlist: Netlist,
        num_patterns: int = 128,
        pattern_seed: int = 0xACE1,
    ):
        self.netlist = netlist
        self.name = netlist.name
        self.compiled = CompiledCircuit(netlist)
        self.num_patterns = num_patterns
        pi_values, ff_values = fast_pattern_matrices(
            self.compiled.num_inputs,
            self.compiled.num_scan_cells,
            num_patterns,
            seed=pattern_seed ^ _name_seed(netlist.name),
        )
        self._good = self.compiled.simulate(pi_values, ff_values, num_patterns)
        self._fault_simulator = FaultSimulator(self.compiled, self._good)
        self._collapsed: Optional[List[Fault]] = None

    @property
    def num_cells(self) -> int:
        return self.compiled.num_scan_cells

    @property
    def fault_simulator(self) -> FaultSimulator:
        return self._fault_simulator

    def collapsed_faults(self) -> List[Fault]:
        if self._collapsed is None:
            self._collapsed = collapse_faults(self.netlist)
        return self._collapsed

    def sample_fault_responses(
        self,
        count: int,
        rng: np.random.Generator,
        detected_only: bool = True,
    ) -> List[FaultResponse]:
        """Inject ``count`` sampled stuck-at faults and return their error
        matrices (local cell ids).  With ``detected_only`` the sample is
        drawn until ``count`` detected faults are found or the collapsed
        list is exhausted — mirroring the paper's "inject 500 single
        stuck-at faults" protocol, where undetected faults contribute
        nothing to DR."""
        universe = list(self.collapsed_faults())
        rng.shuffle(universe)
        responses: List[FaultResponse] = []
        pos = 0
        while pos < len(universe) and len(responses) < count:
            # Simulate a slab at a time so the fault-batched kernel (and
            # the worker pool) serve the sampling loop; selection still
            # follows shuffle order exactly, so the chosen responses are
            # bit-identical to the one-at-a-time loop.  A slab may
            # simulate a few faults past ``count`` — undetected faults
            # make that unavoidable anyway.
            need = count - len(responses)
            slab = universe[pos:pos + max(need, _SAMPLE_SLAB_MIN)]
            pos += len(slab)
            for response in self._fault_simulator.simulate_faults(slab):
                if detected_only and not response.detected:
                    continue
                responses.append(response)
                if len(responses) >= count:
                    break
        return responses


def _name_seed(name: str) -> int:
    value = 0
    for ch in name:
        value = (value * 131 + ord(ch)) & 0x7FFFFFFF
    return value
