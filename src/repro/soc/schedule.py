"""Daisy-chain test scheduling with per-core pattern budgets and bypass.

Paper, Section 5: "Test patterns are transported to the cores and the test
responses are transported from the cores using the meta scan chains in a
single test session.  Test application continues until a core runs out of
test patterns.  This core is then by-passed and the process repeats for
other cores until all the cores run out of test patterns."

This module models that flow.  A :class:`TestSchedule` splits the pattern
sequence into *phases*: within a phase the set of active cores is fixed;
at a phase boundary every core whose budget is exhausted drops out and its
cells disappear from the meta chains (bypass flops close the gap), so the
chains shorten and every remaining cell's shift position moves.

Diagnosis across a schedule runs the partition sessions *per phase* (each
phase has its own chain geometry, so its own partitions) and takes the
union of the per-phase candidate sets:

* a cell can only capture errors while its core is active, so the union of
  per-phase candidates covers every truly failing cell (soundness);
* a phase in which the fault produced no errors contributes nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..bist.misr import LinearCompactor
from ..bist.scan import ScanConfig
from ..core.diagnosis import DiagnosisResult, diagnose
from ..core.two_step import make_partitioner
from ..sim.bitops import num_words, pattern_mask
from ..sim.faultsim import FaultResponse
from .testrail import TestRail


@dataclass
class Phase:
    """One segment of the test schedule with a fixed set of active cores."""

    index: int
    first_pattern: int
    num_patterns: int
    active_cores: Tuple[int, ...]
    scan_config: ScanConfig
    #: phase-local cell id -> SOC-global cell id
    global_of_local: List[int]

    @property
    def last_pattern(self) -> int:
        return self.first_pattern + self.num_patterns


class TestSchedule:
    """The phase structure induced by per-core pattern budgets."""

    def __init__(self, soc: TestRail, pattern_budgets: Dict[str, int]):
        self.soc = soc
        self.budgets: List[int] = []
        for core in soc.cores:
            if core.name not in pattern_budgets:
                raise ValueError(f"no pattern budget for core {core.name}")
            budget = pattern_budgets[core.name]
            if budget < 0:
                raise ValueError("pattern budgets must be non-negative")
            if budget > core.num_patterns:
                raise ValueError(
                    f"budget {budget} exceeds {core.name}'s simulated "
                    f"pattern count {core.num_patterns}"
                )
            self.budgets.append(budget)
        self.phases: List[Phase] = self._build_phases()

    def _build_phases(self) -> List[Phase]:
        starts = sorted({0, *self.budgets})
        phases: List[Phase] = []
        for start in starts:
            remaining = [b for b in self.budgets if b > start]
            if not remaining:
                break
            end = min(remaining)
            active = tuple(
                k for k, budget in enumerate(self.budgets) if budget > start
            )
            scan_config, global_of_local = self._phase_scan_config(active)
            phases.append(
                Phase(
                    index=len(phases),
                    first_pattern=start,
                    num_patterns=end - start,
                    active_cores=active,
                    scan_config=scan_config,
                    global_of_local=global_of_local,
                )
            )
        return phases

    def _phase_scan_config(
        self, active: Tuple[int, ...]
    ) -> Tuple[ScanConfig, List[int]]:
        """The meta chains with every inactive core bypassed."""
        active_set = set(active)
        global_of_local: List[int] = []
        chains: List[List[int]] = []
        for chain in self.soc.scan_config.chains:
            local_chain = []
            for gid in chain:
                if self.soc.owner(gid).core_index in active_set:
                    local_chain.append(len(global_of_local))
                    global_of_local.append(gid)
            chains.append(local_chain)
        # A phase may leave individual chains empty (all of their cores
        # bypassed) but must keep at least one cell overall.
        if not global_of_local:
            raise ValueError("phase has no active cells")
        return ScanConfig(chains), global_of_local

    @property
    def total_patterns(self) -> int:
        return max(self.budgets) if self.budgets else 0

    def describe(self) -> str:
        lines = [f"schedule over {self.soc.name}: {len(self.phases)} phase(s)"]
        for phase in self.phases:
            names = ", ".join(self.soc.cores[k].name for k in phase.active_cores)
            lines.append(
                f"  phase {phase.index}: patterns "
                f"{phase.first_pattern}..{phase.last_pattern - 1}, "
                f"{phase.scan_config.num_cells} cells, active: {names}"
            )
        return "\n".join(lines)


def _slice_response(
    response: FaultResponse,
    phase: Phase,
    soc: TestRail,
) -> FaultResponse:
    """The fault's error matrix restricted to one phase: only patterns in
    the phase window, only cells active in the phase, re-indexed to the
    phase-local cell ids and pattern offsets."""
    local_of_global = {gid: lid for lid, gid in enumerate(phase.global_of_local)}
    words = num_words(phase.num_patterns)
    mask = pattern_mask(phase.num_patterns)
    sliced: Dict[int, np.ndarray] = {}
    for gid, vec in response.cell_errors.items():
        lid = local_of_global.get(gid)
        if lid is None:
            continue
        local_vec = np.zeros(words, dtype=np.uint64)
        for p_local in range(phase.num_patterns):
            p_global = phase.first_pattern + p_local
            word, bit = divmod(p_global, 64)
            if word < len(vec) and (int(vec[word]) >> bit) & 1:
                local_vec[p_local // 64] |= np.uint64(1) << np.uint64(p_local % 64)
        local_vec &= mask
        if local_vec.any():
            sliced[lid] = local_vec
    return FaultResponse(response.fault, sliced, phase.num_patterns)


@dataclass
class ScheduleDiagnosisResult:
    """Union of per-phase diagnosis over a full test schedule."""

    actual_cells: Set[int]
    candidate_cells: Set[int]
    per_phase: List[Optional[DiagnosisResult]]

    @property
    def detected(self) -> bool:
        return bool(self.actual_cells)

    @property
    def sound(self) -> bool:
        return self.actual_cells <= self.candidate_cells


def diagnose_schedule(
    response: FaultResponse,
    schedule: TestSchedule,
    scheme: str = "two-step",
    num_partitions: int = 8,
    num_groups: int = 8,
    misr_width: int = 24,
    lfsr_degree: int = 16,
) -> ScheduleDiagnosisResult:
    """Diagnose a fault across all phases of a bypassing schedule.

    Each phase gets its own partition sequence (its chain geometry is
    unique) and its own sessions; candidates are the union of the phases'
    candidate sets, mapped back to SOC-global cell ids.
    """
    candidates: Set[int] = set()
    per_phase: List[Optional[DiagnosisResult]] = []
    for phase in schedule.phases:
        local = _slice_response(response, phase, schedule.soc)
        if not local.detected:
            per_phase.append(None)
            continue
        partitions = make_partitioner(
            scheme, phase.scan_config.max_length, num_groups, lfsr_degree
        ).partitions(num_partitions)
        compactor = LinearCompactor(misr_width, phase.scan_config.num_chains)
        result = diagnose(local, phase.scan_config, partitions, compactor)
        per_phase.append(result)
        candidates.update(
            phase.global_of_local[lid] for lid in result.candidate_cells
        )
    return ScheduleDiagnosisResult(
        actual_cells=set(response.failing_cells),
        candidate_cells=candidates,
        per_phase=per_phase,
    )
