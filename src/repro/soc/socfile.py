"""ITC'02-style SOC description files.

The ITC'02 SOC Test Benchmarks [11] describe each system as a list of
modules with their terminal counts, internal scan chains and test-pattern
counts.  This module implements a reader/writer for a documented subset of
that format — the fields fault-oriented experiments actually consume — plus
an embedded description of the d695 variant the paper evaluates (only its
full-scan ISCAS-89 modules; the combinational c-circuits carry no scan
cells and are omitted, exactly as in the paper).

Grammar (line-oriented, ``#`` comments)::

    SocName d695
    TotalModules 8
    Module 0 s838
      Inputs 34
      Outputs 1
      ScanChains 1 : 32
      TestPatterns 75

``ScanChains n : l1 l2 ... ln`` lists the module's internal scan chain
lengths.  ``TestPatterns`` is the module's pattern budget, which drives
the daisy-chain bypass schedule (:mod:`repro.soc.schedule`).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union


class SocFormatError(ValueError):
    """Raised on malformed SOC description input."""


@dataclass
class ModuleDescription:
    """One embedded module of the SOC."""

    index: int
    name: str
    inputs: int = 0
    outputs: int = 0
    scan_chains: List[int] = field(default_factory=list)
    test_patterns: int = 0

    @property
    def num_scan_cells(self) -> int:
        return sum(self.scan_chains)


@dataclass
class SocDescription:
    """A parsed SOC description."""

    name: str
    modules: List[ModuleDescription] = field(default_factory=list)

    def module(self, name: str) -> ModuleDescription:
        for mod in self.modules:
            if mod.name == name:
                return mod
        raise KeyError(f"no module named {name!r} in SOC {self.name!r}")

    @property
    def total_scan_cells(self) -> int:
        return sum(m.num_scan_cells for m in self.modules)

    def pattern_budgets(self) -> Dict[str, int]:
        return {m.name: m.test_patterns for m in self.modules}


_MODULE_RE = re.compile(r"^Module\s+(\d+)\s+(\S+)$")
_FIELD_RE = re.compile(r"^(\w+)\s+(.*)$")


def parse_soc(text: str) -> SocDescription:
    """Parse an ITC'02-style SOC description."""
    name: Optional[str] = None
    total: Optional[int] = None
    modules: List[ModuleDescription] = []
    current: Optional[ModuleDescription] = None

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        module_match = _MODULE_RE.match(line)
        if module_match:
            current = ModuleDescription(
                index=int(module_match.group(1)), name=module_match.group(2)
            )
            modules.append(current)
            continue
        field_match = _FIELD_RE.match(line)
        if not field_match:
            raise SocFormatError(f"line {lineno}: cannot parse {raw.strip()!r}")
        key, value = field_match.group(1), field_match.group(2).strip()
        if key == "SocName":
            name = value
        elif key == "TotalModules":
            total = _parse_int(value, lineno)
        elif current is None:
            raise SocFormatError(f"line {lineno}: field {key!r} outside a module")
        elif key == "Inputs":
            current.inputs = _parse_int(value, lineno)
        elif key == "Outputs":
            current.outputs = _parse_int(value, lineno)
        elif key == "TestPatterns":
            current.test_patterns = _parse_int(value, lineno)
        elif key == "ScanChains":
            current.scan_chains = _parse_scan_chains(value, lineno)
        else:
            raise SocFormatError(f"line {lineno}: unknown field {key!r}")

    if name is None:
        raise SocFormatError("missing SocName")
    if total is not None and total != len(modules):
        raise SocFormatError(
            f"TotalModules says {total} but {len(modules)} modules defined"
        )
    indices = [m.index for m in modules]
    if indices != list(range(len(modules))):
        raise SocFormatError("module indices must be 0..n-1 in order")
    return SocDescription(name=name, modules=modules)


def _parse_int(value: str, lineno: int) -> int:
    try:
        parsed = int(value)
    except ValueError as exc:
        raise SocFormatError(f"line {lineno}: expected integer, got {value!r}") from exc
    if parsed < 0:
        raise SocFormatError(f"line {lineno}: negative value {parsed}")
    return parsed


def _parse_scan_chains(value: str, lineno: int) -> List[int]:
    if ":" not in value:
        raise SocFormatError(f"line {lineno}: ScanChains needs 'count : lengths'")
    count_text, lengths_text = value.split(":", 1)
    count = _parse_int(count_text.strip(), lineno)
    lengths = [_parse_int(v, lineno) for v in lengths_text.split()]
    if len(lengths) != count:
        raise SocFormatError(
            f"line {lineno}: ScanChains declares {count} chains but lists "
            f"{len(lengths)} lengths"
        )
    return lengths


def write_soc(desc: SocDescription) -> str:
    """Serialize a description (round-trips with :func:`parse_soc`)."""
    lines = [f"SocName {desc.name}", f"TotalModules {len(desc.modules)}"]
    for mod in desc.modules:
        lines.append(f"Module {mod.index} {mod.name}")
        lines.append(f"  Inputs {mod.inputs}")
        lines.append(f"  Outputs {mod.outputs}")
        chain_text = " ".join(str(v) for v in mod.scan_chains)
        lines.append(f"  ScanChains {len(mod.scan_chains)} : {chain_text}")
        lines.append(f"  TestPatterns {mod.test_patterns}")
    return "\n".join(lines) + "\n"


def load_soc(path: Union[str, Path]) -> SocDescription:
    return parse_soc(Path(path).read_text())


def save_soc(desc: SocDescription, path: Union[str, Path]) -> None:
    Path(path).write_text(write_soc(desc))


#: Embedded description of the paper's d695 variant: the eight full-scan
#: ISCAS-89 modules, daisy-chained in the order of the paper's Figure 4.
#: Terminal/flip-flop counts are the published circuit statistics; the
#: internal chain split and per-module pattern counts follow the ITC'02
#: d695 test set's order of magnitude (pseudo-random BIST budgets).
D695_SOC_TEXT = """
# d695 variant (full-scan ISCAS-89 modules only), after ITC'02 [11]
SocName d695
TotalModules 8
Module 0 s838
  Inputs 34
  Outputs 1
  ScanChains 1 : 32
  TestPatterns 75
Module 1 s9234
  Inputs 36
  Outputs 39
  ScanChains 4 : 54 53 52 52
  TestPatterns 105
Module 2 s5378
  Inputs 35
  Outputs 49
  ScanChains 4 : 46 45 44 44
  TestPatterns 97
Module 3 s38584
  Inputs 38
  Outputs 304
  ScanChains 8 : 179 179 179 179 178 178 177 177
  TestPatterns 110
Module 4 s13207
  Inputs 62
  Outputs 152
  ScanChains 8 : 80 80 80 80 80 80 79 79
  TestPatterns 121
Module 5 s38417
  Inputs 28
  Outputs 106
  ScanChains 8 : 205 205 205 205 204 204 204 204
  TestPatterns 93
Module 6 s35932
  Inputs 35
  Outputs 320
  ScanChains 8 : 216 216 216 216 216 216 216 216
  TestPatterns 64
Module 7 s15850
  Inputs 77
  Outputs 150
  ScanChains 8 : 67 67 67 67 67 67 66 66
  TestPatterns 88
"""


def d695_description() -> SocDescription:
    """The embedded d695-variant description."""
    return parse_soc(D695_SOC_TEXT)


def build_testrail_from_description(
    desc: SocDescription,
    tam_width: int = 8,
    scale: Optional[float] = None,
    pattern_seed: int = 0xACE1,
):
    """Instantiate a :class:`repro.soc.testrail.TestRail` plus the pattern
    budgets for its bypass schedule from a parsed description.

    Module names must exist in the circuit library; every core is simulated
    for the *largest* module budget so any schedule over the description
    can be sliced out of the simulated responses.  With ``scale`` set, the
    budgets are left untouched (they are test-set properties, not circuit
    sizes).
    """
    from ..circuit.library import get_circuit
    from .core_wrapper import EmbeddedCore
    from .testrail import TestRail

    num_patterns = max((m.test_patterns for m in desc.modules), default=0)
    if num_patterns == 0:
        raise SocFormatError("description has no test patterns")
    cores = [
        EmbeddedCore(
            get_circuit(mod.name, scale=scale),
            num_patterns=num_patterns,
            pattern_seed=pattern_seed,
        )
        for mod in desc.modules
    ]
    internal = {
        mod.name: mod.scan_chains for mod in desc.modules if mod.scan_chains
    }
    rail = TestRail(
        desc.name, cores, tam_width=tam_width, internal_chains=internal
    )
    return rail, desc.pattern_budgets()
