"""repro — reproduction of "A Partition-Based Approach for Identifying
Failing Scan Cells in Scan-BIST with Applications to System-on-Chip Fault
Diagnosis" (Liu & Chakrabarty, DATE 2003).

Public API layers:

* :mod:`repro.circuit` — gate-level netlists, .bench I/O, benchmark library
* :mod:`repro.sim` — bit-parallel logic simulation, stuck-at fault simulation
* :mod:`repro.bist` — LFSR, MISR, scan chains, BIST sessions
* :mod:`repro.core` — partitioning schemes, selection hardware, diagnosis
* :mod:`repro.soc` — TestRail daisy-chain SOCs
* :mod:`repro.experiments` — the paper's tables and figures
"""

from .bist import LFSR, MISR, LinearCompactor, ScanConfig
from .circuit import Netlist, get_circuit, parse_bench
from .core import (
    DiagnosisResult,
    IntervalPartitioner,
    Partition,
    RandomSelectionPartitioner,
    TwoStepPartitioner,
    apply_superposition,
    diagnose,
    diagnostic_resolution,
)
from .sim import CompiledCircuit, Fault, FaultResponse, FaultSimulator
from .soc import EmbeddedCore, TestRail, build_d695_soc, build_stitched_soc

__version__ = "1.0.0"

__all__ = [
    "CompiledCircuit",
    "DiagnosisResult",
    "EmbeddedCore",
    "Fault",
    "FaultResponse",
    "FaultSimulator",
    "IntervalPartitioner",
    "LFSR",
    "LinearCompactor",
    "MISR",
    "Netlist",
    "Partition",
    "RandomSelectionPartitioner",
    "ScanConfig",
    "TestRail",
    "TwoStepPartitioner",
    "apply_superposition",
    "build_d695_soc",
    "build_stitched_soc",
    "diagnose",
    "diagnostic_resolution",
    "get_circuit",
    "parse_bench",
    "__version__",
]
