"""Batch diagnosis execution against cache-pinned compiled state.

The engine is the synchronous heart of the service: given a batch of
requests that share a :meth:`~repro.service.protocol.DiagnoseRequest.workload_key`,
it resolves the compiled workload (netlist, golden simulation, sampled
fault responses), the partition set and the compactor **once** — all three
through :mod:`repro.experiments.cache`, so they stay hot across batches —
then diagnoses the whole batch in one fused kernel launch
(:func:`repro.core.diagnosis_batch.diagnose_population`; chunked and
forked over the pool only when the batch outgrows the chunk bound).
Results are bit-identical to calling
:func:`repro.core.diagnosis.diagnose` per request, serial or forked.

Graceful degradation: if the fork pool dies mid-batch (OOM-killed child,
``BrokenProcessPool``), the engine logs it, re-runs the batch serially,
and latches **serial-only mode** for the rest of its life — the service
degrades in throughput instead of failing requests.

Memory bounding: the process-wide cache never ages entries out, so a
long-lived server would grow with every distinct workload it has ever
seen.  ``max_cache_bytes`` gives the engine an LRU budget: after each
resolve it evicts the least-recently-used workloads (never the one it is
about to use) until the cache's byte estimate fits.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..bist.misr import LinearCompactor
from ..bist.scan import ScanConfig
from ..core.diagnosis import DiagnosisResult
from ..core.diagnosis_batch import diagnose_population
from ..core.partitions import Partition
from ..experiments import cache
from ..experiments.config import ExperimentConfig
from ..experiments.runner import (
    Workload,
    build_circuit_workload,
    circuit_workload_key,
    scheme_partitions,
)
from ..sim.bitops import num_words
from ..sim.faults import Fault
from ..sim.faultsim import FaultResponse
from ..telemetry import (
    FLIGHT,
    METRICS,
    log,
    make_record,
    new_span_id,
    span,
    trace_scope,
)
from .protocol import DiagnoseReply, DiagnoseRequest, ServiceError

#: A batch slot resolves to either a reply or a per-request error.
BatchResult = Union[DiagnoseReply, ServiceError]


@dataclass
class WorkloadContext:
    """Everything a batch needs, resolved once per workload key."""

    workload: Workload
    partitions: List[Partition]
    compactor: LinearCompactor
    cache_key: Hashable  # the "workload" memo key (for eviction)

    @property
    def scan_config(self) -> ScanConfig:
        return self.workload.scan_config


class DiagnosisEngine:
    """Resolves workloads and executes coalesced diagnosis batches."""

    def __init__(self, workers: Optional[int] = None,
                 max_cache_bytes: Optional[int] = None):
        #: Worker-pool request handed to :func:`parallel_map` per batch
        #: (``None`` honours ``REPRO_WORKERS``; 0 forces serial).
        self.workers = workers
        self.max_cache_bytes = max_cache_bytes
        self._serial_only = False
        self._lock = threading.Lock()
        #: Workload cache keys in least-recently-used-first order.
        self._lru: "OrderedDict[Hashable, Hashable]" = OrderedDict()

    # -- state ----------------------------------------------------------------

    @property
    def degraded(self) -> bool:
        """True once the fork pool has died and the engine latched serial."""
        return self._serial_only

    def force_serial(self) -> None:
        self._serial_only = True

    # -- resolution -----------------------------------------------------------

    def resolve(self, request: DiagnoseRequest) -> WorkloadContext:
        """Compiled state for one workload key (cache-hot after first use)."""
        config = ExperimentConfig(
            num_patterns=request.num_patterns,
            num_faults=request.fault_count,
            num_faults_large=request.fault_count,
            misr_width=request.misr_width,
            fault_seed=request.fault_seed,
            scale=request.scale,
        )
        try:
            workload = build_circuit_workload(
                request.circuit, config, num_patterns=request.num_patterns
            )
        except KeyError as exc:
            raise ServiceError("circuit_not_found", str(exc.args[0]))
        partitions = scheme_partitions(
            request.scheme,
            workload.scan_config.max_length,
            request.num_groups,
            request.num_partitions,
            lfsr_degree=config.lfsr_degree,
        )
        width, chains = request.misr_width, workload.scan_config.num_chains
        compactor = cache.memoized(
            "compactor", (width, chains), lambda: LinearCompactor(width, chains)
        )
        cache_key = circuit_workload_key(
            request.circuit, config, request.num_patterns
        )
        self._touch(cache_key)
        return WorkloadContext(workload, partitions, compactor, cache_key)

    def prewarm(self, request: DiagnoseRequest) -> WorkloadContext:
        """Resolve eagerly (e.g. at server start, before traffic lands)."""
        return self.resolve(request)

    def warm_from_disk(self) -> int:
        """Load the persistent disk tier (``REPRO_DISK_CACHE``) into the
        process-wide memo store, bounded by this engine's cache budget.

        Called at server start so cold starts skip netlist compilation and
        fault simulation for every workload a previous process ever built.
        Returns the number of entries loaded (0 when no disk cache is
        configured or the directory is empty/corrupt — warm-up degrades,
        it never fails).
        """
        loaded = cache.warm_from_disk(max_bytes=self.max_cache_bytes)
        if loaded:
            METRICS.incr("service.disk_warmed", loaded)
            log(f"service: warmed {loaded} cache entries from disk "
                f"({cache.total_bytes()} B resident)")
        return loaded

    def _touch(self, cache_key: Hashable) -> None:
        """LRU bookkeeping + eviction down to the byte budget."""
        with self._lock:
            self._lru[cache_key] = cache_key
            self._lru.move_to_end(cache_key)
            if self.max_cache_bytes is None:
                return
            while len(self._lru) > 1 and cache.total_bytes() > self.max_cache_bytes:
                victim, _ = self._lru.popitem(last=False)
                if cache.evict("workload", victim):
                    log(f"service: evicted workload {victim[0]!r} "
                        f"(cache {cache.total_bytes()} B > "
                        f"budget {self.max_cache_bytes} B)")

    # -- execution ------------------------------------------------------------

    def execute_batch(
        self,
        requests: Sequence[DiagnoseRequest],
        traces: Optional[Sequence[Optional[Tuple[str, str]]]] = None,
    ) -> List[BatchResult]:
        """Diagnose a coalesced batch (all requests share a workload key).

        Per-request failures (bad fault index, out-of-range cell) become
        :class:`ServiceError` slots; a workload-level failure (unknown
        circuit) fails every slot with the same error.  The result list is
        index-aligned with ``requests``.

        ``traces`` (optional, index-aligned) carries each member's
        ``(trace_id, server_span_id)``; the engine then records one batch
        flight span — child of the head member's server span, *linked* to
        every other member's — and runs the kernel under that trace
        context so fork-chunk spans nest beneath it.
        """
        if not requests:
            return []
        try:
            context = self.resolve(requests[0])
        except ServiceError as exc:
            return [exc for _ in requests]
        except Exception as exc:  # noqa: BLE001 - request-level boundary
            log(f"service: workload resolution failed: {exc!r}")
            return [ServiceError("internal_error", f"workload resolution failed: {exc}")
                    for _ in requests]

        responses: List[Optional[FaultResponse]] = []
        results: List[Optional[BatchResult]] = []
        for request in requests:
            try:
                responses.append(self._response_for(request, context))
                results.append(None)  # filled from the diagnosis pass
            except ServiceError as exc:
                responses.append(None)
                results.append(exc)

        live = [i for i, r in enumerate(responses) if r is not None]
        if live:
            diagnosed = self._diagnose_traced(
                [responses[i] for i in live], context, requests[0],
                self._live_traces(traces, live),
            )
            for slot, outcome in zip(live, diagnosed):
                request = requests[slot]
                if isinstance(outcome, ServiceError):
                    results[slot] = outcome
                else:
                    results[slot] = DiagnoseReply(
                        request_id=request.request_id,
                        circuit=request.circuit,
                        scheme=request.scheme,
                        candidate_cells=sorted(outcome.candidate_cells),
                        actual_cells=sorted(outcome.actual_cells),
                        sound=outcome.sound,
                        num_sessions=outcome.num_sessions,
                        candidate_history=list(outcome.candidate_history),
                    )
        METRICS.incr("service.diagnosed", len(live))
        return results  # type: ignore[return-value]

    def _response_for(
        self, request: DiagnoseRequest, context: WorkloadContext
    ) -> FaultResponse:
        if request.fault_index is not None:
            responses = context.workload.responses
            if request.fault_index >= len(responses):
                raise ServiceError(
                    "invalid_argument",
                    f"fault_index {request.fault_index} out of range "
                    f"[0, {len(responses)})",
                )
            return responses[request.fault_index]
        assert request.cell_errors is not None
        num_cells = context.scan_config.num_cells
        words = num_words(request.num_patterns)
        cell_errors: Dict[int, np.ndarray] = {}
        for cell, patterns in request.cell_errors:
            if cell >= num_cells:
                raise ServiceError(
                    "invalid_argument",
                    f"cell position {cell} out of range [0, {num_cells}) "
                    f"for {request.circuit}",
                )
            vec = np.zeros(words, dtype=np.uint64)
            for p in patterns:
                vec[p // 64] |= np.uint64(1) << np.uint64(p % 64)
            cell_errors[cell] = vec
        fault = Fault(f"external:{request.request_id or 'anon'}", 0)
        return FaultResponse(fault, cell_errors, request.num_patterns)

    @staticmethod
    def _live_traces(
        traces: Optional[Sequence[Optional[Tuple[str, str]]]],
        live: Sequence[int],
    ) -> List[Tuple[str, str]]:
        """The (trace_id, span_id) pairs of the live batch slots, in order."""
        if not traces:
            return []
        return [traces[i] for i in live
                if i < len(traces) and traces[i] is not None]

    def _diagnose_traced(
        self,
        responses: List[FaultResponse],
        context: WorkloadContext,
        head: DiagnoseRequest,
        trace_pairs: List[Tuple[str, str]],
    ) -> List[Union[DiagnosisResult, ServiceError]]:
        """Run the batch, recording one flight span linked to every member
        trace and installing the trace context for the fork fan-out."""
        if not trace_pairs or not FLIGHT.enabled:
            return self._diagnose_many(responses, context, head)
        head_trace, head_span = trace_pairs[0]
        batch_span = new_span_id()
        start_wall = time.time()
        t0 = time.perf_counter()
        with trace_scope(head_trace, batch_span):
            outcomes = self._diagnose_many(responses, context, head)
        failed = sum(1 for o in outcomes if isinstance(o, ServiceError))
        FLIGHT.record(make_record(
            "service.batch", head_trace, batch_span,
            parent_id=head_span, kind="batch",
            key=f"{head.circuit}/{head.scheme}",
            start=start_wall,
            duration_ms=(time.perf_counter() - t0) * 1000,
            status="ok" if not failed else "internal_error",
            links=[{"trace_id": t, "span_id": s}
                   for t, s in trace_pairs[1:]],
            batch_size=len(responses),
            circuit=head.circuit,
            scheme=head.scheme,
        ))
        return outcomes

    def _diagnose_many(
        self,
        responses: List[FaultResponse],
        context: WorkloadContext,
        head: DiagnoseRequest,
    ) -> List[Union[DiagnosisResult, ServiceError]]:
        """One fused kernel launch per coalesced batch.

        The whole batch goes through
        :func:`repro.core.diagnosis_batch.diagnose_population` — a dynamic
        batch is exactly a fault population sharing one workload, so the
        per-request ``parallel_map`` fan-out collapses into a single
        signature scatter (chunked and forked only when the batch outgrows
        ``REPRO_DIAGNOSIS_BATCH``).
        """
        scan = context.scan_config

        def run(workers: int) -> List[DiagnosisResult]:
            return diagnose_population(
                responses, scan, context.partitions, context.compactor,
                workers=workers,
            )

        workers = 0 if self._serial_only else self.workers
        with span("service.batch", circuit=head.circuit, scheme=head.scheme,
                  size=len(responses)):
            try:
                return run(workers)
            except Exception as exc:  # noqa: BLE001 - pool death is recoverable
                log(f"service: worker pool failed ({exc!r}); "
                    "degrading to serial execution")
                METRICS.incr("service.degraded")
                self._serial_only = True
            try:
                return run(0)
            except Exception as exc:  # noqa: BLE001 - request-level boundary
                log(f"service: serial fallback failed: {exc!r}")
                error = ServiceError("internal_error", f"diagnosis failed: {exc}")
                return [error for _ in responses]
