"""Wire protocol for the diagnosis service: requests, replies, errors.

The service speaks JSON over HTTP/1.1.  A diagnosis request names a
*workload* (circuit, pattern count, fault sampling knobs) and a *scheme*
(partitioner, partition/group counts, MISR width) — everything the server
needs to rebuild the exact compiled state — plus the failing data itself,
in one of two forms:

* ``fault_index`` — an index into the workload's deterministically sampled
  fault set.  The server replays that fault's captured response.  This is
  the replay/benchmark mode: client and server agree on the fault universe
  by construction.
* ``cell_errors`` — an explicit failing signature: a map of scan-cell
  position to the list of pattern indices where the cell captured a wrong
  value (what a tester would upload).  The server packs it into a
  :class:`repro.sim.faultsim.FaultResponse` and diagnoses it directly.

Requests sharing a :meth:`DiagnoseRequest.workload_key` are coalesced into
one batch by the server (see :mod:`repro.service.batching`) because they
share compiled netlists, partition sets and compactor tables.

Errors carry **stable machine-readable codes** (:data:`ERROR_STATUS` maps
each to its HTTP status); clients should branch on ``error.code``, never
on the human-readable message.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Tuple

#: Partitioning schemes the service accepts (mirrors ``make_partitioner``).
SCHEMES = ("two-step", "random", "interval", "deterministic")

#: Stable error code -> HTTP status.  Codes are part of the public API:
#: they never change meaning, new codes may be added.
ERROR_STATUS: Dict[str, int] = {
    "malformed_payload": 400,   # not JSON / wrong shape / missing field
    "invalid_argument": 400,    # well-formed but semantically wrong value
    "circuit_not_found": 404,   # unknown benchmark name
    "no_such_route": 404,       # unknown URL path
    "method_not_allowed": 405,  # e.g. GET /diagnose
    "queue_full": 429,          # admission control rejected (Retry-After set)
    "internal_error": 500,      # unexpected server-side failure
    "shutting_down": 503,       # server is draining (SIGTERM received)
    "deadline_exceeded": 504,   # request timed out in queue or in flight
}


class ServiceError(Exception):
    """A request-level failure with a stable code and an HTTP status."""

    def __init__(self, code: str, message: str,
                 retry_after_s: Optional[float] = None):
        if code not in ERROR_STATUS:
            raise ValueError(f"unknown error code {code!r}")
        super().__init__(message)
        self.code = code
        self.message = message
        self.status = ERROR_STATUS[code]
        self.retry_after_s = retry_after_s

    def to_payload(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "error": {"code": self.code, "message": self.message}
        }
        if self.retry_after_s is not None:
            payload["error"]["retry_after_s"] = self.retry_after_s
        return payload


def _require(payload: Dict[str, Any], key: str, types: tuple) -> Any:
    if key not in payload:
        raise ServiceError("malformed_payload", f"missing field {key!r}")
    value = payload[key]
    if not isinstance(value, types) or isinstance(value, bool):
        raise ServiceError(
            "malformed_payload",
            f"field {key!r} must be {'/'.join(t.__name__ for t in types)}",
        )
    return value


def _optional(payload: Dict[str, Any], key: str, types: tuple, default: Any) -> Any:
    if key not in payload or payload[key] is None:
        return default
    return _require(payload, key, types)


@dataclass(frozen=True)
class DiagnoseRequest:
    """One diagnosis query.  See the module docstring for the two modes."""

    circuit: str
    scheme: str = "two-step"
    num_partitions: int = 6
    num_groups: int = 8
    misr_width: int = 24
    num_patterns: int = 128
    fault_seed: int = 20030301
    fault_count: int = 20
    scale: Optional[float] = None
    fault_index: Optional[int] = None
    #: cell position -> sorted pattern indices with a captured error.
    cell_errors: Optional[Tuple[Tuple[int, Tuple[int, ...]], ...]] = None
    timeout_ms: Optional[float] = None
    request_id: str = ""

    # -- construction --------------------------------------------------------

    @classmethod
    def from_payload(cls, payload: Any) -> "DiagnoseRequest":
        """Validate a decoded JSON body.  Raises :class:`ServiceError` with
        ``malformed_payload`` (shape) or ``invalid_argument`` (semantics)."""
        if not isinstance(payload, dict):
            raise ServiceError("malformed_payload", "request body must be a JSON object")
        circuit = _require(payload, "circuit", (str,))
        scheme = _optional(payload, "scheme", (str,), "two-step")
        if scheme not in SCHEMES:
            raise ServiceError(
                "invalid_argument",
                f"unknown scheme {scheme!r}; known: {', '.join(SCHEMES)}",
            )
        knobs = {}
        for key, default, lo in (
            ("num_partitions", 6, 1),
            ("num_groups", 8, 1),
            ("misr_width", 24, 1),
            ("num_patterns", 128, 1),
            ("fault_count", 20, 1),
            ("fault_seed", 20030301, None),
        ):
            value = _optional(payload, key, (int,), default)
            if lo is not None and value < lo:
                raise ServiceError("invalid_argument", f"{key} must be >= {lo}")
            knobs[key] = value
        scale = _optional(payload, "scale", (int, float), None)
        if scale is not None and not 0 < scale <= 1:
            raise ServiceError("invalid_argument", "scale must be in (0, 1]")
        timeout_ms = _optional(payload, "timeout_ms", (int, float), None)
        if timeout_ms is not None and timeout_ms <= 0:
            raise ServiceError("invalid_argument", "timeout_ms must be > 0")
        fault_index = _optional(payload, "fault_index", (int,), None)
        cell_errors = payload.get("cell_errors")
        if (fault_index is None) == (cell_errors is None):
            raise ServiceError(
                "malformed_payload",
                "exactly one of fault_index / cell_errors is required",
            )
        packed: Optional[Tuple[Tuple[int, Tuple[int, ...]], ...]] = None
        if cell_errors is not None:
            packed = cls._pack_cell_errors(cell_errors, knobs["num_patterns"])
        if fault_index is not None and fault_index < 0:
            raise ServiceError("invalid_argument", "fault_index must be >= 0")
        return cls(
            circuit=circuit,
            scheme=scheme,
            scale=float(scale) if scale is not None else None,
            fault_index=fault_index,
            cell_errors=packed,
            timeout_ms=float(timeout_ms) if timeout_ms is not None else None,
            request_id=str(_optional(payload, "request_id", (str, int), "")),
            **knobs,
        )

    @staticmethod
    def _pack_cell_errors(raw: Any, num_patterns: int):
        if not isinstance(raw, dict) or not raw:
            raise ServiceError(
                "malformed_payload",
                "cell_errors must be a non-empty object of cell -> pattern list",
            )
        packed = []
        for cell, patterns in raw.items():
            try:
                cell_pos = int(cell)
            except (TypeError, ValueError):
                raise ServiceError("malformed_payload",
                                   f"cell_errors key {cell!r} is not an integer")
            if cell_pos < 0:
                raise ServiceError("invalid_argument",
                                   f"cell position {cell_pos} must be >= 0")
            if not isinstance(patterns, list) or not patterns:
                raise ServiceError(
                    "malformed_payload",
                    f"cell_errors[{cell!r}] must be a non-empty pattern list",
                )
            seen = set()
            for p in patterns:
                if not isinstance(p, int) or isinstance(p, bool):
                    raise ServiceError("malformed_payload",
                                       f"cell_errors[{cell!r}] holds a non-integer")
                if not 0 <= p < num_patterns:
                    raise ServiceError(
                        "invalid_argument",
                        f"pattern index {p} out of range [0, {num_patterns})",
                    )
                seen.add(p)
            packed.append((cell_pos, tuple(sorted(seen))))
        return tuple(sorted(packed))

    # -- identity ------------------------------------------------------------

    @property
    def workload_key(self) -> Hashable:
        """Everything the compiled server-side state depends on.  Requests
        sharing this key batch into one vectorized diagnosis call."""
        return (
            self.circuit, self.scale, self.num_patterns,
            self.fault_seed, self.fault_count,
            self.scheme, self.num_partitions, self.num_groups, self.misr_width,
        )

    def to_payload(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "circuit": self.circuit,
            "scheme": self.scheme,
            "num_partitions": self.num_partitions,
            "num_groups": self.num_groups,
            "misr_width": self.misr_width,
            "num_patterns": self.num_patterns,
            "fault_seed": self.fault_seed,
            "fault_count": self.fault_count,
        }
        if self.scale is not None:
            payload["scale"] = self.scale
        if self.fault_index is not None:
            payload["fault_index"] = self.fault_index
        if self.cell_errors is not None:
            payload["cell_errors"] = {
                str(cell): list(patterns) for cell, patterns in self.cell_errors
            }
        if self.timeout_ms is not None:
            payload["timeout_ms"] = self.timeout_ms
        if self.request_id:
            payload["request_id"] = self.request_id
        return payload


@dataclass
class DiagnoseReply:
    """The diagnosis outcome for one request."""

    request_id: str
    circuit: str
    scheme: str
    candidate_cells: List[int]
    actual_cells: List[int]
    sound: bool
    num_sessions: int
    candidate_history: List[int] = field(default_factory=list)
    #: Server-side timings (filled by the server, not the engine).
    queue_wait_ms: Optional[float] = None
    execute_ms: Optional[float] = None
    batch_size: Optional[int] = None
    #: The request's trace id (client-supplied or server-minted); feed it
    #: to ``GET /debug/trace/<id>`` for the assembled span tree.
    trace_id: Optional[str] = None

    def to_payload(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "request_id": self.request_id,
            "circuit": self.circuit,
            "scheme": self.scheme,
            "candidate_cells": self.candidate_cells,
            "actual_cells": self.actual_cells,
            "num_candidates": len(self.candidate_cells),
            "sound": self.sound,
            "num_sessions": self.num_sessions,
            "candidate_history": self.candidate_history,
        }
        timing = {}
        if self.queue_wait_ms is not None:
            timing["queue_wait_ms"] = round(self.queue_wait_ms, 3)
        if self.execute_ms is not None:
            timing["execute_ms"] = round(self.execute_ms, 3)
        if self.batch_size is not None:
            timing["batch_size"] = self.batch_size
        if timing:
            payload["timing"] = timing
        if self.trace_id:
            payload["trace_id"] = self.trace_id
        return payload

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "DiagnoseReply":
        timing = payload.get("timing", {})
        return cls(
            request_id=payload.get("request_id", ""),
            circuit=payload["circuit"],
            scheme=payload["scheme"],
            candidate_cells=list(payload["candidate_cells"]),
            actual_cells=list(payload.get("actual_cells", [])),
            sound=bool(payload.get("sound", False)),
            num_sessions=int(payload.get("num_sessions", 0)),
            candidate_history=list(payload.get("candidate_history", [])),
            queue_wait_ms=timing.get("queue_wait_ms"),
            execute_ms=timing.get("execute_ms"),
            batch_size=timing.get("batch_size"),
            trace_id=payload.get("trace_id"),
        )
