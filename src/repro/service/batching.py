"""Bounded request queue with dynamic, workload-keyed batching.

Requests arrive one HTTP connection at a time but share expensive compiled
state whenever their workload key matches, so the dispatcher coalesces
them: take the oldest pending request, then hold the batch open for up to
``batch_wait_s`` (or until ``batch_max`` same-key requests are pending),
and hand the whole group to the engine as **one** vectorized diagnosis
call.  Requests with *other* keys are left queued in arrival order — FIFO
across keys, batched within a key.

Admission control is synchronous: :meth:`BatchQueue.offer` either accepts
the request (bounded by ``max_depth``) or raises ``queue_full`` with a
``Retry-After`` hint derived from the recent batch service rate — callers
get an answer immediately instead of waiting in an unbounded backlog.

Deadlines: every entry may carry an absolute ``deadline`` (monotonic
seconds).  Expired or abandoned (client timed out / disconnected) entries
are dropped at batch-formation time, so the engine never burns cycles on
a request nobody is waiting for.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Tuple

from ..telemetry import METRICS
from .protocol import DiagnoseRequest, ServiceError


@dataclass
class PendingRequest:
    """One queued request plus its completion future and timing marks."""

    request: DiagnoseRequest
    future: "asyncio.Future"
    enqueued_at: float = field(default_factory=time.monotonic)
    #: Absolute monotonic deadline (None = no per-request timeout).
    deadline: Optional[float] = None
    #: ``(trace_id, server_span_id)`` minted (or accepted) at the edge;
    #: the engine links the coalesced batch span to every member's pair.
    trace: Optional[Tuple[str, str]] = None

    @property
    def expired(self) -> bool:
        return self.deadline is not None and time.monotonic() > self.deadline

    @property
    def abandoned(self) -> bool:
        """The waiter gave up (timeout/disconnect) — nothing to deliver to."""
        return self.future.done()


class BatchQueue:
    """FIFO-across-keys, coalescing-within-key bounded request queue."""

    def __init__(self, max_depth: int = 256, batch_max: int = 32,
                 batch_wait_s: float = 0.005):
        if max_depth < 1 or batch_max < 1:
            raise ValueError("max_depth and batch_max must be >= 1")
        self.max_depth = max_depth
        self.batch_max = batch_max
        self.batch_wait_s = max(0.0, batch_wait_s)
        self._pending: Deque[PendingRequest] = deque()
        self._cond: Optional[asyncio.Condition] = None
        #: EWMA of seconds consumed per request served (Retry-After hint).
        self._service_rate_s = 0.05
        self._closed = False

    # The condition must be created on the serving loop, not at import.
    def _condition(self) -> asyncio.Condition:
        if self._cond is None:
            self._cond = asyncio.Condition()
        return self._cond

    @property
    def depth(self) -> int:
        return len(self._pending)

    # -- producer side -------------------------------------------------------

    def offer(self, entry: PendingRequest) -> None:
        """Admit or reject immediately (raises ``queue_full`` / ``shutting_down``)."""
        if self._closed:
            raise ServiceError("shutting_down", "server is draining")
        if len(self._pending) >= self.max_depth:
            METRICS.incr("service.rejected")
            raise ServiceError(
                "queue_full",
                f"queue depth {self.max_depth} reached",
                retry_after_s=self.retry_after_hint(),
            )
        self._pending.append(entry)
        METRICS.gauge("service.queue_depth", len(self._pending))

    async def announce(self) -> None:
        """Wake the dispatcher after :meth:`offer` (split so admission stays
        synchronous while notification awaits the lock)."""
        cond = self._condition()
        async with cond:
            cond.notify_all()

    def retry_after_hint(self) -> float:
        """Seconds until the backlog should have drained enough to retry."""
        backlog_s = len(self._pending) * self._service_rate_s / max(1, self.batch_max)
        return round(min(30.0, max(1.0, backlog_s)), 1)

    def record_service_rate(self, seconds_per_request: float) -> None:
        self._service_rate_s += 0.2 * (seconds_per_request - self._service_rate_s)

    # -- consumer side -------------------------------------------------------

    async def next_batch(self) -> List[PendingRequest]:
        """Block until a batch is ready; empty list means the queue closed.

        The batch is the oldest pending request plus every same-key request
        that is already queued or arrives within ``batch_wait_s``, capped
        at ``batch_max``.  Expired/abandoned entries are pruned (expired
        ones get a ``deadline_exceeded`` result).
        """
        cond = self._condition()
        async with cond:
            while True:
                self._prune_locked()
                if self._pending:
                    break
                if self._closed:
                    return []
                await cond.wait()
            key = self._pending[0].request.workload_key
            if self.batch_wait_s > 0:
                give_up = time.monotonic() + self.batch_wait_s
                while self._count_key(key) < self.batch_max:
                    remaining = give_up - time.monotonic()
                    if remaining <= 0 or self._closed:
                        break
                    try:
                        await asyncio.wait_for(cond.wait(), timeout=remaining)
                    except asyncio.TimeoutError:
                        break
            batch: List[PendingRequest] = []
            kept: Deque[PendingRequest] = deque()
            for entry in self._pending:
                if len(batch) < self.batch_max and entry.request.workload_key == key:
                    batch.append(entry)
                else:
                    kept.append(entry)
            self._pending = kept
            METRICS.gauge("service.queue_depth", len(self._pending))
        batch = [e for e in batch if self._still_wanted(e)]
        return batch if batch else await self.next_batch()

    def _count_key(self, key) -> int:
        return sum(1 for e in self._pending if e.request.workload_key == key)

    def _prune_locked(self) -> None:
        kept: Deque[PendingRequest] = deque()
        for entry in self._pending:
            if self._still_wanted(entry):
                kept.append(entry)
        if len(kept) != len(self._pending):
            self._pending = kept
            METRICS.gauge("service.queue_depth", len(self._pending))

    @staticmethod
    def _still_wanted(entry: PendingRequest) -> bool:
        """Resolve expired entries; drop abandoned ones.  True = diagnose it."""
        if entry.abandoned:
            return False
        if entry.expired:
            METRICS.incr("service.timeouts")
            entry.future.set_exception(
                ServiceError("deadline_exceeded",
                             "deadline expired while queued")
            )
            return False
        return True

    # -- shutdown ------------------------------------------------------------

    async def close(self) -> None:
        """Stop admitting; wake the dispatcher so it can drain and exit."""
        self._closed = True
        await self.announce()

    @property
    def closed(self) -> bool:
        return self._closed
