"""``repro top`` — a refreshing terminal dashboard for a serving fleet.

Polls ``GET /metrics`` (JSON) plus ``GET /debug/requests`` on one
endpoint — a single :class:`~repro.service.server.DiagnosisServer` or a
cluster supervisor's control port (which answers the same two routes
with fleet-merged bodies) — and redraws a compact board every interval:

* throughput (requests/s from successive count deltas) and the request
  taxonomy (per-code counts, rejected, timeouts);
* latency quantiles (p50/p95/p99) per stage, fleet-merged on a cluster;
* queue depth / inflight, and on a cluster the per-worker table — state,
  pid, restarts, heartbeat age, per-worker rps, breaker state;
* the slowest and most recently failing requests from the flight
  recorder, with trace ids ready for ``GET /debug/trace/<id>``.

``--once`` renders a single board without clearing the screen (useful in
scripts and CI logs); everything it shows comes from the two public
endpoints, so the dashboard works against any reachable fleet.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Any, Dict, List, Optional, Tuple

from .client import ServiceClient, TransportError
from .protocol import ServiceError

#: Clear screen + home cursor (the refresh path; ``--once`` skips it).
ANSI_CLEAR = "\x1b[2J\x1b[H"


def _fmt(value: Any, pattern: str = "{:.1f}") -> str:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return "-"
    return pattern.format(value)


def _total_requests(metrics: Dict[str, Any]) -> int:
    return sum(int(v) for v in (metrics.get("requests") or {}).values())


def gather(client: ServiceClient) -> Dict[str, Any]:
    """One poll: /metrics always, /debug/requests best-effort."""
    sample: Dict[str, Any] = {"metrics": client.metrics()}
    try:
        sample["debug"] = client.debug_requests(limit=50)
    except (ServiceError, TransportError):
        sample["debug"] = None
    return sample


def slow_exemplars(debug: Any) -> Tuple[List[Dict[str, Any]], List[Dict[str, Any]]]:
    """(slow, errors) flight records from either endpoint shape.

    A single server answers the flight snapshot directly; the supervisor
    fan-out wraps per-worker snapshots under ``workers``.
    """
    if not isinstance(debug, dict):
        return [], []
    snaps = ([body for body in debug["workers"].values()
              if isinstance(body, dict)]
             if isinstance(debug.get("workers"), dict) else [debug])
    slow: List[Dict[str, Any]] = []
    errors: List[Dict[str, Any]] = []
    for snap in snaps:
        for records in (snap.get("slow") or {}).values():
            slow.extend(r for r in records if isinstance(r, dict))
        for records in (snap.get("errors") or {}).values():
            errors.extend(r for r in records if isinstance(r, dict))
    slow.sort(key=lambda r: r.get("duration_ms", 0.0), reverse=True)
    errors.sort(key=lambda r: r.get("start", 0.0), reverse=True)
    return slow, errors


def _exemplar_lines(title: str, records: List[Dict[str, Any]],
                    limit: int) -> List[str]:
    if not records:
        return []
    lines = [title]
    for record in records[:limit]:
        lines.append(
            f"  {record.get('trace_id', '?'):<32} "
            f"{_fmt(record.get('duration_ms'), '{:>9.1f}')}ms "
            f"{record.get('status', '?'):<17} {record.get('key', '?')}")
    return lines


def _worker_lines(metrics: Dict[str, Any],
                  prev: Optional[Dict[str, Any]],
                  elapsed: Optional[float]) -> List[str]:
    table = metrics.get("worker_table")
    if not isinstance(table, list) or not table:
        return []
    prev_counts: Dict[Any, int] = {}
    if prev and elapsed:
        for row in prev.get("worker_table") or []:
            prev_counts[row.get("slot")] = int(row.get("requests_total") or 0)
    lines = ["workers  slot state     pid      restarts uptime_s  hb_age  rps"]
    for row in table:
        rps = "-"
        total = row.get("requests_total")
        if (elapsed and isinstance(total, (int, float))
                and row.get("slot") in prev_counts):
            rps = f"{max(0, int(total) - prev_counts[row['slot']]) / elapsed:.1f}"
        state = row.get("state", "?")
        if state == "broken":
            state = "broken!"  # breaker open — the slot stays down
        lines.append(
            f"         {row.get('slot', '?'):<4} {state:<9} "
            f"{str(row.get('pid', '-')):<8} {row.get('restarts', 0):<8} "
            f"{_fmt(row.get('uptime_s'), '{:<9.1f}')}"
            f"{_fmt(row.get('heartbeat_age_s'), '{:<7.2f}')} {rps}")
    return lines


def render(sample: Dict[str, Any], prev: Optional[Dict[str, Any]],
           elapsed: Optional[float], limit: int, endpoint: str) -> str:
    metrics = sample["metrics"]
    lines: List[str] = []
    status = metrics.get("status", "?")
    uptime = _fmt(metrics.get("uptime_s"), "{:.0f}")
    rps = "-"
    if prev is not None and elapsed:
        delta = _total_requests(metrics) - _total_requests(prev["metrics"])
        rps = f"{max(0, delta) / elapsed:.1f}"
    lines.append(f"repro top — {endpoint}   status={status} "
                 f"uptime={uptime}s  rps={rps}")

    counts = metrics.get("requests") or {}
    taxonomy = " ".join(f"{code}={count}"
                        for code, count in sorted(counts.items())) or "(none)"
    shed = ""
    if "rejected" in metrics or "timeouts" in metrics:
        shed = (f"   rejected={metrics.get('rejected', 0)} "
                f"timeouts={metrics.get('timeouts', 0)}")
    lines.append(f"requests {taxonomy}{shed}")

    queue = metrics.get("queue")
    if isinstance(queue, dict):
        lines.append(f"queue    depth={queue.get('depth', '-')}"
                     f"/{queue.get('max_depth', '-')} "
                     f"inflight={queue.get('inflight', '-')}"
                     + ("   DEGRADED" if metrics.get("degraded") else ""))

    latency = metrics.get("fleet_latency") or metrics.get("latency") or {}
    if latency:
        lines.append("latency  stage        count    p50_ms    p95_ms    p99_ms")
        for stage, summary in sorted(latency.items()):
            if not isinstance(summary, dict):
                continue
            lines.append(
                f"         {stage:<12} {summary.get('count', 0):<8} "
                f"{_fmt(summary.get('p50_ms'), '{:>8.1f}')}  "
                f"{_fmt(summary.get('p95_ms'), '{:>8.1f}')}  "
                f"{_fmt(summary.get('p99_ms'), '{:>8.1f}')}")

    lines.extend(_worker_lines(metrics, prev["metrics"] if prev else None,
                               elapsed))

    slow, errors = slow_exemplars(sample.get("debug"))
    lines.extend(_exemplar_lines(
        f"slowest traces (GET /debug/trace/<id>)", slow, limit))
    lines.extend(_exemplar_lines("recent errors", errors, limit))
    if sample.get("debug") is None:
        lines.append("(no /debug/requests endpoint — flight recorder "
                     "disabled or pre-observability server)")
    return "\n".join(lines) + "\n"


def top_main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro top`` / ``repro-top``."""
    parser = argparse.ArgumentParser(
        prog="repro top",
        description="Refreshing dashboard over a serving endpoint's "
        "/metrics and /debug/requests (single server, or a cluster "
        "supervisor's control port for the fleet-merged view).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int,
                        default=int(os.environ.get("REPRO_SERVE_PORT", "")
                                    .strip() or 8953))
    parser.add_argument("--interval", type=float, default=2.0,
                        help="refresh period in seconds (default 2)")
    parser.add_argument("--limit", type=int, default=8,
                        help="slow/error exemplar rows shown (default 8)")
    parser.add_argument("--once", action="store_true",
                        help="render one board and exit (no screen clears)")
    args = parser.parse_args(argv)

    endpoint = f"{args.host}:{args.port}"
    prev: Optional[Dict[str, Any]] = None
    prev_at: Optional[float] = None
    try:
        with ServiceClient(host=args.host, port=args.port,
                           timeout_s=max(5.0, args.interval)) as client:
            while True:
                try:
                    sample = gather(client)
                except (TransportError, ServiceError) as exc:
                    if args.once:
                        print(f"repro top: {endpoint}: {exc}", file=sys.stderr)
                        return 1
                    sys.stdout.write(ANSI_CLEAR +
                                     f"repro top: {endpoint}: {exc}\n")
                    sys.stdout.flush()
                    time.sleep(args.interval)
                    continue
                now = time.monotonic()
                board = render(sample, prev,
                               now - prev_at if prev_at else None,
                               args.limit, endpoint)
                if args.once:
                    sys.stdout.write(board)
                    return 0
                sys.stdout.write(ANSI_CLEAR + board)
                sys.stdout.flush()
                prev, prev_at = sample, now
                time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
