"""Asyncio HTTP diagnosis server: batching, admission control, drain.

Zero dependencies beyond the stdlib: the HTTP/1.1 layer is a small
hand-rolled parser over ``asyncio`` streams (no ``http.server``, which is
thread-per-connection and has no backpressure story).  The event loop only
parses, routes and queues; all diagnosis work runs in a thread-pool
executor so a long batch never stalls accepts, health checks or metric
scrapes.

Request lifecycle (see docs/architecture.md, "Serving")::

    accept -> parse -> admission (queue bound) -> BatchQueue
           -> dispatcher coalesces same-workload requests
           -> DiagnosisEngine.execute_batch (executor thread, parallel_map)
           -> per-request futures resolve -> HTTP responses

Endpoints:

* ``POST /diagnose`` — one diagnosis request (protocol.py), JSON in/out.
* ``GET /healthz``   — liveness/readiness: 200 ``ok`` or 503 ``draining``.
* ``GET /metrics``   — JSON snapshot: queue depth, batch sizes,
  p50/p95/p99 latency, per-code request counts, cache footprint, process
  health (``uptime_seconds``, ``process_rss_bytes``), plus the full
  :data:`repro.telemetry.METRICS` registry.  ``?format=prometheus`` or
  ``Accept: text/plain`` selects the Prometheus text exposition
  (:mod:`repro.telemetry.promexp`) instead — counters, gauges, and the
  latency board as real ``_bucket``/``_sum``/``_count`` histograms.
* ``GET /debug/requests`` — flight-recorder snapshot: the most recent,
  slowest, and most recently failing requests per route/workload, each
  with its queue/batch/kernel timing breakdown (``?limit=N``).
* ``GET /debug/trace/<trace_id>`` — the assembled span tree for one
  trace (server -> batch -> fork chunk), plus the raw records so a
  cluster supervisor can pool workers' records and re-assemble.
* ``GET /debug/profile?seconds=N`` — on-demand sampling-profiler burst;
  returns collapsed stacks as ``text/plain`` (flamegraph.pl input).

Every request runs under a trace context: the client's ``traceparent``
header is honoured when valid, otherwise the server mints ids; the reply
payload echoes ``trace_id`` so clients can fetch the tree afterwards.

Knobs (constructor arguments; the CLI maps env vars onto them):
``REPRO_SERVE_PORT``, ``REPRO_BATCH_MAX``, ``REPRO_BATCH_WAIT_MS``,
``REPRO_QUEUE_DEPTH``, ``REPRO_FLIGHT_SPANS``.

Shutdown: SIGTERM/SIGINT stop the listener, flip ``/healthz`` to
``draining`` (new diagnoses get 503 ``shutting_down``), let queued and
in-flight batches finish (bounded by ``drain_grace_s``), then exit 0.
"""

from __future__ import annotations

import argparse
import asyncio
import functools
import json
import os
import signal
import socket
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Tuple, Union
from urllib.parse import parse_qs, unquote

from ..experiments import cache
from ..telemetry import (
    FLIGHT,
    METRICS,
    PROMETHEUS_CONTENT_TYPE,
    SamplingProfiler,
    assemble_tree,
    log,
    make_record,
    new_span_id,
    new_trace_id,
    parse_traceparent,
    render_prometheus,
    trace_scope,
)
from .batching import BatchQueue, PendingRequest
from .engine import DiagnosisEngine
from .latency import LatencyBoard
from .protocol import DiagnoseReply, DiagnoseRequest, ServiceError

DEFAULT_PORT = 8953
MAX_HEADER_BYTES = 16 * 1024
MAX_BODY_BYTES = 8 * 1024 * 1024

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
    504: "Gateway Timeout",
}


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    return int(raw) if raw else default


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name, "").strip()
    return float(raw) if raw else default


def process_rss_bytes() -> Optional[int]:
    """Resident set size of this process, stdlib only.

    ``/proc/self/statm`` (Linux) gives current residency; the
    ``resource`` fallback reports peak residency (``ru_maxrss`` — KiB on
    Linux, bytes on macOS), which is close enough for a gauge whose job
    is spotting leaks.  None when neither source exists.
    """
    try:
        with open("/proc/self/statm") as handle:
            fields = handle.read().split()
        return int(fields[1]) * os.sysconf("SC_PAGE_SIZE")
    except (OSError, IndexError, ValueError):
        pass
    try:
        import resource

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        return peak if sys.platform == "darwin" else peak * 1024
    except (ImportError, OSError, ValueError):  # pragma: no cover - exotic
        return None


#: Response body: a JSON-able dict, or pre-rendered ``(bytes, content_type)``.
_Body = Union[Dict[str, Any], Tuple[bytes, str]]


class _BadHttp(Exception):
    """Unparseable request framing — respond 400 and close."""


class DiagnosisServer:
    """The serving layer; one instance per process."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        engine: Optional[DiagnosisEngine] = None,
        batch_max: Optional[int] = None,
        batch_wait_ms: Optional[float] = None,
        queue_depth: Optional[int] = None,
        dispatchers: int = 1,
        default_timeout_ms: Optional[float] = 30_000.0,
        drain_grace_s: float = 10.0,
        sock: Optional[socket.socket] = None,
        on_ready: Optional[Callable[["DiagnosisServer"], None]] = None,
        on_drained: Optional[Callable[["DiagnosisServer"], None]] = None,
    ):
        self.host = host
        self.port = DEFAULT_PORT if port is None else port
        #: Pre-bound listen socket (prefork cluster workers inherit one
        #: from the supervisor or bind their own ``SO_REUSEPORT`` copy);
        #: when given, ``host``/``port`` are informational only.
        self.sock = sock
        #: Lifecycle hooks for embedding supervisors: ``on_ready`` fires
        #: once the socket is accepting, ``on_drained`` after a drain
        #: completed (both called on the event-loop thread, never raised
        #: through the server).
        self.on_ready = on_ready
        self.on_drained = on_drained
        self.engine = engine or DiagnosisEngine()
        self.batch_max = batch_max if batch_max is not None else _env_int(
            "REPRO_BATCH_MAX", 32)
        wait_ms = batch_wait_ms if batch_wait_ms is not None else _env_float(
            "REPRO_BATCH_WAIT_MS", 5.0)
        depth = queue_depth if queue_depth is not None else _env_int(
            "REPRO_QUEUE_DEPTH", 256)
        self.queue = BatchQueue(
            max_depth=depth, batch_max=self.batch_max,
            batch_wait_s=wait_ms / 1000.0,
        )
        self.dispatchers = max(1, dispatchers)
        self.default_timeout_ms = default_timeout_ms
        self.drain_grace_s = drain_grace_s
        self.latency = LatencyBoard()
        self.started_at = time.monotonic()
        self._server: Optional[asyncio.AbstractServer] = None
        self._dispatcher_tasks: List[asyncio.Task] = []
        self._conn_tasks: "set[asyncio.Task]" = set()
        self._executor = ThreadPoolExecutor(
            max_workers=self.dispatchers, thread_name_prefix="repro-serve"
        )
        self._inflight = 0
        self._draining = False
        self._stopped = asyncio.Event()
        self._request_counts: Dict[str, int] = {}
        #: One on-demand profiler burst at a time (``/debug/profile``).
        self._profile_lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind and start serving (returns once the socket is listening).

        With ``sock`` the server adopts the pre-bound socket instead of
        binding ``host:port`` itself — the prefork path, where the
        supervisor owns the bind and workers only accept.
        """
        if self.sock is not None:
            self._server = await asyncio.start_server(
                self._serve_connection, sock=self.sock
            )
        else:
            self._server = await asyncio.start_server(
                self._serve_connection, self.host, self.port
            )
        self.port = self._server.sockets[0].getsockname()[1]
        for _ in range(self.dispatchers):
            self._dispatcher_tasks.append(
                asyncio.ensure_future(self._dispatch_loop())
            )
        log(f"service: listening on http://{self.host}:{self.port} "
            f"(batch_max={self.batch_max}, "
            f"wait={self.queue.batch_wait_s * 1000:.0f}ms, "
            f"queue_depth={self.queue.max_depth})")
        self._fire_hook(self.on_ready)

    async def serve_forever(self) -> None:
        await self._stopped.wait()

    async def shutdown(self, drain: bool = True) -> None:
        """Stop accepting, optionally drain, then tear everything down."""
        if self._draining:
            await self._stopped.wait()
            return
        self._draining = True
        log("service: draining (no new requests admitted)")
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.queue.close()
        if drain and self._dispatcher_tasks:
            # Dispatchers exit once the closed queue is empty, so waiting on
            # them drains every queued and in-flight batch.
            _, pending = await asyncio.wait(
                self._dispatcher_tasks, timeout=self.drain_grace_s
            )
            if pending:
                log(f"service: drain grace expired with {len(pending)} "
                    "dispatcher(s) still busy")
        for task in self._dispatcher_tasks:
            task.cancel()
        await asyncio.gather(*self._dispatcher_tasks, return_exceptions=True)
        for task in list(self._conn_tasks):
            task.cancel()
        await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._executor.shutdown(wait=True)
        self._stopped.set()
        log("service: drained and stopped")
        self._fire_hook(self.on_drained)

    def _fire_hook(self, hook: Optional[Callable[["DiagnosisServer"], None]]) -> None:
        if hook is None:
            return
        try:
            hook(self)
        except Exception as exc:  # noqa: BLE001 - hooks must not kill serving
            log(f"service: lifecycle hook raised: {exc!r}")

    @property
    def draining(self) -> bool:
        return self._draining

    # -- dispatcher ----------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        loop = asyncio.get_event_loop()
        while True:
            batch = await self.queue.next_batch()
            if not batch:
                return  # queue closed and empty
            self._inflight += len(batch)
            started = time.monotonic()
            requests = [entry.request for entry in batch]
            traces = [entry.trace for entry in batch]
            try:
                results = await loop.run_in_executor(
                    self._executor,
                    functools.partial(self.engine.execute_batch, requests,
                                      traces=traces),
                )
            except Exception as exc:  # noqa: BLE001 - request-level boundary
                log(f"service: batch execution raised: {exc!r}")
                results = [ServiceError("internal_error", f"batch failed: {exc}")
                           for _ in batch]
            finally:
                self._inflight -= len(batch)
            execute_s = time.monotonic() - started
            self.queue.record_service_rate(execute_s / len(batch))
            self.latency["execute"].observe(execute_s)
            METRICS.incr("service.batches")
            METRICS.observe("service.batch_size", len(batch))
            METRICS.observe("service.batch_execute_s", execute_s)
            for entry, result in zip(batch, results):
                if entry.future.done():
                    continue  # waiter timed out / disconnected meanwhile
                queue_wait_s = started - entry.enqueued_at
                self.latency["queue_wait"].observe(queue_wait_s)
                if isinstance(result, ServiceError):
                    entry.future.set_exception(result)
                else:
                    result.queue_wait_ms = queue_wait_s * 1000
                    result.execute_ms = execute_s * 1000
                    result.batch_size = len(batch)
                    entry.future.set_result(result)

    # -- connection handling -------------------------------------------------

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        try:
            while True:
                try:
                    parsed = await self._read_request(reader)
                except _BadHttp as exc:
                    error = ServiceError("malformed_payload", str(exc))
                    await self._write_response(
                        writer, error.status, error.to_payload(), close=True)
                    break
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                if parsed is None:
                    break  # clean EOF between requests
                method, path, query, headers, body = parsed
                status, payload, extra = await self._route(
                    method, path, query, headers, body)
                keep_alive = headers.get("connection", "keep-alive") != "close"
                await self._write_response(
                    writer, status, payload, extra_headers=extra,
                    close=not keep_alive)
                if not keep_alive:
                    break
        except (asyncio.CancelledError, ConnectionError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:  # noqa: BLE001 - already-gone peer
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, str, Dict[str, str], bytes]]:
        request_line = await reader.readline()
        if not request_line:
            return None
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1"):
            raise _BadHttp("malformed request line")
        method, target = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        total = len(request_line)
        while True:
            line = await reader.readline()
            total += len(line)
            if total > MAX_HEADER_BYTES:
                raise _BadHttp("headers too large")
            if line in (b"\r\n", b"\n"):
                break
            if not line:
                raise _BadHttp("truncated headers")
            name, sep, value = line.decode("latin-1").partition(":")
            if not sep:
                raise _BadHttp("malformed header")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            raise _BadHttp("bad Content-Length")
        if length < 0 or length > MAX_BODY_BYTES:
            raise _BadHttp("body too large")
        body = await reader.readexactly(length) if length else b""
        path, _, query = target.partition("?")
        return method, path, query, headers, body

    async def _write_response(
        self, writer: asyncio.StreamWriter, status: int, payload: _Body,
        extra_headers: Optional[Dict[str, str]] = None, close: bool = False,
    ) -> None:
        if isinstance(payload, tuple):
            body, content_type = payload
        else:
            body = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
        lines = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            f"Connection: {'close' if close else 'keep-alive'}",
        ]
        for name, value in (extra_headers or {}).items():
            lines.append(f"{name}: {value}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body)
        await writer.drain()

    # -- routing -------------------------------------------------------------

    async def _route(
        self, method: str, path: str, query: str, headers: Dict[str, str],
        body: bytes,
    ) -> Tuple[int, _Body, Optional[Dict[str, str]]]:
        try:
            if path == "/diagnose":
                if method != "POST":
                    raise ServiceError("method_not_allowed", "use POST /diagnose")
                reply = await self._handle_diagnose(body, headers)
                self._count("ok")
                return 200, reply.to_payload(), None
            if path == "/healthz":
                if method != "GET":
                    raise ServiceError("method_not_allowed", "use GET /healthz")
                payload = self._health_payload()
                return (503 if self._draining else 200), payload, None
            if path == "/metrics":
                if method != "GET":
                    raise ServiceError("method_not_allowed", "use GET /metrics")
                if self._wants_prometheus(query, headers):
                    return 200, self._prometheus_body(), None
                return 200, self._metrics_payload(), None
            if path == "/debug/requests":
                if method != "GET":
                    raise ServiceError("method_not_allowed",
                                       "use GET /debug/requests")
                return 200, self._debug_requests_payload(query), None
            if path.startswith("/debug/trace/"):
                if method != "GET":
                    raise ServiceError("method_not_allowed",
                                       "use GET /debug/trace/<trace_id>")
                trace_id = unquote(path[len("/debug/trace/"):])
                return 200, self._debug_trace_payload(trace_id), None
            if path == "/debug/profile":
                if method != "GET":
                    raise ServiceError("method_not_allowed",
                                       "use GET /debug/profile")
                return 200, await self._handle_debug_profile(query), None
            if path == "/debug/flightrec":
                if method not in ("GET", "POST"):
                    raise ServiceError("method_not_allowed",
                                       "use GET or POST /debug/flightrec")
                return 200, self._debug_flightrec_payload(
                    body if method == "POST" else None), None
            raise ServiceError("no_such_route", f"no route for {path}")
        except ServiceError as exc:
            self._count(exc.code)
            extra = None
            if exc.retry_after_s is not None:
                extra = {"Retry-After": str(max(1, int(round(exc.retry_after_s))))}
            return exc.status, exc.to_payload(), extra
        except Exception as exc:  # noqa: BLE001 - request-level boundary
            log(f"service: handler crashed: {exc!r}")
            self._count("internal_error")
            error = ServiceError("internal_error", "unexpected server error")
            return error.status, error.to_payload(), None

    #: Error code -> ``outcome`` label.  Load shedding (admission control,
    #: deadlines) is not a server failure; the taxonomy keeps rejected and
    #: timed-out requests distinguishable from errors on the boards.
    _OUTCOMES = {
        "queue_full": "rejected",
        "shutting_down": "rejected",
        "deadline_exceeded": "timeout",
    }

    def _count(self, code: str) -> None:
        self._request_counts[code] = self._request_counts.get(code, 0) + 1
        outcome = "ok" if code == "ok" else self._OUTCOMES.get(code, "error")
        METRICS.incr("service.requests",
                     labels={"code": code, "outcome": outcome})

    async def _handle_diagnose(
        self, body: bytes, headers: Optional[Dict[str, str]] = None,
    ) -> DiagnoseReply:
        arrived = time.monotonic()
        started_wall = time.time()
        parent = parse_traceparent((headers or {}).get("traceparent"))
        if parent is not None:
            trace_id, client_span = parent
        else:
            trace_id, client_span = new_trace_id(), None
        server_span = new_span_id()
        flight_key = "/diagnose"
        flight_extra: Dict[str, Any] = {}
        status = "ok"
        with trace_scope(trace_id, server_span):
            try:
                try:
                    payload = json.loads(body.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError):
                    raise ServiceError("malformed_payload",
                                       "request body is not valid JSON")
                request = DiagnoseRequest.from_payload(payload)
                flight_key = f"{request.circuit}/{request.scheme}"
                if self._draining:
                    raise ServiceError("shutting_down", "server is draining")
                timeout_ms = request.timeout_ms or self.default_timeout_ms
                deadline = arrived + timeout_ms / 1000.0 if timeout_ms else None
                entry = PendingRequest(
                    request=request,
                    future=asyncio.get_event_loop().create_future(),
                    enqueued_at=arrived,
                    deadline=deadline,
                    trace=(trace_id, server_span),
                )
                self.queue.offer(entry)  # raises queue_full / shutting_down
                await self.queue.announce()
                try:
                    if deadline is not None:
                        reply = await asyncio.wait_for(
                            entry.future, timeout=deadline - time.monotonic())
                    else:
                        reply = await entry.future
                except asyncio.TimeoutError:
                    METRICS.incr("service.timeouts")
                    raise ServiceError("deadline_exceeded",
                                       f"request exceeded {timeout_ms:.0f} ms")
                finally:
                    self.latency["total"].observe(time.monotonic() - arrived)
                    METRICS.observe("service.latency_s",
                                    time.monotonic() - arrived)
                reply.trace_id = trace_id
                flight_extra = {
                    "queue_wait_ms": reply.queue_wait_ms,
                    "execute_ms": reply.execute_ms,
                    "batch_size": reply.batch_size,
                }
                return reply
            except ServiceError as exc:
                status = exc.code
                raise
            finally:
                FLIGHT.record(make_record(
                    "service.request", trace_id, server_span,
                    parent_id=client_span, kind="request", key=flight_key,
                    start=started_wall,
                    duration_ms=(time.monotonic() - arrived) * 1000,
                    status=status, **flight_extra,
                ))

    # -- introspection -------------------------------------------------------

    @staticmethod
    def _wants_prometheus(query: str, headers: Dict[str, str]) -> bool:
        """Content negotiation for ``GET /metrics``.

        ``?format=prometheus`` (or ``?format=json``) wins outright;
        otherwise an ``Accept`` header naming ``text/plain`` (what
        Prometheus scrapers send) selects the text exposition.  Everything
        else — including unknown formats — keeps the JSON default, so
        existing consumers can never be broken by a typo.
        """
        fmt = (parse_qs(query).get("format") or [""])[0].strip().lower()
        if fmt == "prometheus":
            return True
        if fmt:
            return False
        accept = headers.get("accept", "").lower()
        return "text/plain" in accept and "application/json" not in accept

    def _observe_process_gauges(self) -> Tuple[float, Optional[int]]:
        """Refresh the process-health gauges both snapshots share."""
        uptime_s = time.monotonic() - self.started_at
        rss = process_rss_bytes()
        METRICS.gauge("service.uptime_seconds", round(uptime_s, 3))
        if rss is not None:
            METRICS.gauge("process.rss_bytes", rss)
        METRICS.gauge("service.queue_depth", self.queue.depth)
        METRICS.gauge("service.inflight", self._inflight)
        return uptime_s, rss

    def _prometheus_body(self) -> Tuple[bytes, str]:
        self._observe_process_gauges()
        buckets, totals = self.latency.prometheus_series()
        text = render_prometheus(
            METRICS.snapshot(), latency_buckets=buckets, latency_totals=totals,
        )
        return text.encode("utf-8"), PROMETHEUS_CONTENT_TYPE

    def _health_payload(self) -> Dict[str, Any]:
        return {
            "status": "draining" if self._draining else "ok",
            "uptime_s": round(time.monotonic() - self.started_at, 3),
            "queue_depth": self.queue.depth,
            "inflight": self._inflight,
            "degraded": self.engine.degraded,
        }

    def _metrics_payload(self) -> Dict[str, Any]:
        cache_stats = cache.stats()
        uptime_s, rss = self._observe_process_gauges()
        return {
            "status": "draining" if self._draining else "ok",
            "uptime_s": round(uptime_s, 3),
            "uptime_seconds": round(uptime_s, 3),
            "process_rss_bytes": rss,
            "queue": {
                "depth": self.queue.depth,
                "max_depth": self.queue.max_depth,
                "inflight": self._inflight,
            },
            "batching": {
                "batch_max": self.batch_max,
                "batch_wait_ms": self.queue.batch_wait_s * 1000,
                "batches": int(METRICS.counter("service.batches")),
                "batch_size": (METRICS.snapshot()["histograms"]
                               .get("service.batch_size")),
            },
            "latency": self.latency.summary(),
            "requests": dict(sorted(self._request_counts.items())),
            "rejected": int(METRICS.counter("service.rejected")),
            "timeouts": int(METRICS.counter("service.timeouts")),
            "degraded": self.engine.degraded,
            "cache": {
                "entries": cache_stats.entries,
                "bytes": cache_stats.bytes,
                "evictions": cache_stats.evictions,
            },
            "registry": METRICS.snapshot(),
        }

    # -- debug plane ---------------------------------------------------------

    def _debug_requests_payload(self, query: str) -> Dict[str, Any]:
        try:
            limit = int((parse_qs(query).get("limit") or ["50"])[0])
        except ValueError:
            raise ServiceError("invalid_argument", "limit must be an integer")
        snap = FLIGHT.snapshot(limit=max(1, min(limit, 1000)))
        snap["pid"] = os.getpid()
        snap["draining"] = self._draining
        return snap

    def _debug_trace_payload(self, trace_id: str) -> Dict[str, Any]:
        trace_id = trace_id.strip().lower()
        if not trace_id:
            raise ServiceError("invalid_argument",
                               "usage: GET /debug/trace/<trace_id>")
        records = FLIGHT.records_for_trace(trace_id)
        tree = assemble_tree(records, trace_id)
        # Raw records ride along so a cluster supervisor can pool every
        # worker's records and re-assemble one fleet-wide tree.
        tree["records"] = records
        return tree

    def _debug_flightrec_payload(
        self, body: Optional[bytes],
    ) -> Dict[str, Any]:
        """GET: recorder state.  POST ``{"capacity": N}``: live resize.

        ``capacity: 0`` switches recording off without a restart (and a
        later POST re-enables it) — what an operator reaches for when a
        ring of span dicts is unwelcome on a squeezed heap, and what the
        bench overhead stage uses to A/B one process against itself.
        """
        if body is not None:
            try:
                payload = json.loads(body.decode("utf-8")) if body else {}
                capacity = int(payload["capacity"])
            except (UnicodeDecodeError, json.JSONDecodeError,
                    KeyError, TypeError, ValueError):
                raise ServiceError(
                    "invalid_argument",
                    'usage: POST /debug/flightrec {"capacity": <int >= 0>}')
            if capacity < 0:
                raise ServiceError("invalid_argument",
                                   "capacity must be >= 0")
            FLIGHT.resize(capacity)
        return {
            "capacity": FLIGHT.capacity,
            "enabled": FLIGHT.enabled,
            "recorded": FLIGHT.snapshot(limit=1)["recorded"],
            "pid": os.getpid(),
        }

    async def _handle_debug_profile(self, query: str) -> Tuple[bytes, str]:
        params = parse_qs(query)
        try:
            seconds = float((params.get("seconds") or ["1"])[0])
            hz = int((params.get("hz") or ["0"])[0])
        except ValueError:
            raise ServiceError("invalid_argument",
                               "seconds and hz must be numeric")
        seconds = min(max(seconds, 0.05), 30.0)
        loop = asyncio.get_event_loop()
        # The *default* executor, never self._executor: a burst must not
        # occupy a dispatcher thread for `seconds` of batch capacity.
        folded = await loop.run_in_executor(
            None, self._profile_burst, seconds, hz or None)
        body = "\n".join(folded) + ("\n" if folded else "")
        return body.encode("utf-8"), "text/plain; charset=utf-8"

    def _profile_burst(self, seconds: float, hz: Optional[int]) -> List[str]:
        """Run a private sampling-profiler burst and return folded stacks.

        Private instance (the global :data:`PROFILER` may be serving the
        pipeline); the lock serializes concurrent bursts — the second
        caller gets 429 with a Retry-After instead of doubled samplers.
        """
        if not self._profile_lock.acquire(blocking=False):
            raise ServiceError("queue_full",
                               "another profile burst is running",
                               retry_after_s=seconds)
        try:
            profiler = SamplingProfiler(hz=hz)
            profiler.start()
            time.sleep(seconds)
            profiler.stop()
            return profiler.data.folded_lines()
        finally:
            self._profile_lock.release()


class ThreadedServer:
    """Run a :class:`DiagnosisServer` on a background thread (tests, embedding).

    The server gets its own event loop; :meth:`start` blocks until the
    socket is listening and returns the bound port (pass ``port=0`` for an
    ephemeral one).  :meth:`stop` drains and joins.
    """

    def __init__(self, **kwargs: Any):
        self._kwargs = kwargs
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None
        self.server: Optional[DiagnosisServer] = None

    def start(self, timeout: float = 30.0) -> int:
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-serve-thread")
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("service thread failed to start in time")
        if self._error is not None:
            raise RuntimeError(f"service failed to start: {self._error!r}")
        assert self.server is not None
        return self.server.port

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        self.server = DiagnosisServer(**self._kwargs)
        try:
            self._loop.run_until_complete(self.server.start())
        except BaseException as exc:  # noqa: BLE001 - surfaced to start()
            self._error = exc
            self._ready.set()
            return
        self._ready.set()
        try:
            self._loop.run_until_complete(self.server.serve_forever())
        finally:
            self._loop.close()

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        if self._loop is None or self.server is None or not self._thread:
            return
        if not self._loop.is_closed():
            future = asyncio.run_coroutine_threadsafe(
                self.server.shutdown(drain=drain), self._loop)
            try:
                future.result(timeout)
            except Exception:  # noqa: BLE001 - loop may already be gone
                pass
        self._thread.join(timeout)


async def _serve(args: argparse.Namespace) -> int:
    engine = DiagnosisEngine(
        workers=args.pool_workers,
        max_cache_bytes=args.max_cache_bytes,
    )
    server = DiagnosisServer(
        host=args.host,
        port=args.port,
        engine=engine,
        batch_max=args.batch_max,
        batch_wait_ms=args.batch_wait_ms,
        queue_depth=args.queue_depth,
        dispatchers=args.dispatchers,
        drain_grace_s=args.drain_grace_s,
    )
    loop = asyncio.get_event_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(
            signum, lambda: asyncio.ensure_future(server.shutdown(drain=True))
        )
    await server.start()
    print(f"serving on http://{server.host}:{server.port}", file=sys.stderr,
          flush=True)
    if not args.no_disk_warm:
        # Pull everything a previous process compiled out of the
        # REPRO_DISK_CACHE tier before traffic lands (no-op when unset).
        await loop.run_in_executor(None, engine.warm_from_disk)
    for circuit in args.prewarm or []:
        request = DiagnoseRequest.from_payload(
            {"circuit": circuit, "fault_index": 0})
        await loop.run_in_executor(None, engine.prewarm, request)
        log(f"service: prewarmed {circuit}")
    await server.serve_forever()
    return 0


def serve_main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro serve`` / ``repro-serve``."""
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Long-lived batching diagnosis server "
        "(POST /diagnose, GET /healthz, GET /metrics).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int,
                        default=_env_int("REPRO_SERVE_PORT", DEFAULT_PORT),
                        help="0 = ephemeral (default REPRO_SERVE_PORT or "
                        f"{DEFAULT_PORT})")
    parser.add_argument("--batch-max", type=int, default=None,
                        help="max requests coalesced per batch "
                        "(default REPRO_BATCH_MAX or 32)")
    parser.add_argument("--batch-wait-ms", type=float, default=None,
                        help="max time a batch is held open for coalescing "
                        "(default REPRO_BATCH_WAIT_MS or 5)")
    parser.add_argument("--queue-depth", type=int, default=None,
                        help="admission-control bound on queued requests "
                        "(default REPRO_QUEUE_DEPTH or 256)")
    parser.add_argument("--dispatchers", type=int, default=1,
                        help="concurrent batch executors (default 1)")
    parser.add_argument("--workers", type=int,
                        default=_env_int("REPRO_CLUSTER_WORKERS", 1),
                        help="server processes to run; >1 starts the prefork "
                        "cluster supervisor (default REPRO_CLUSTER_WORKERS "
                        "or 1)")
    parser.add_argument("--pool-workers", type=int, default=None,
                        help="fork-pool size per batch (default REPRO_WORKERS)")
    parser.add_argument("--max-cache-bytes", type=int, default=None,
                        help="LRU budget for resident compiled workloads")
    parser.add_argument("--drain-grace-s", type=float, default=10.0,
                        help="max seconds to drain on SIGTERM (default 10)")
    parser.add_argument("--prewarm", action="append", metavar="CIRCUIT",
                        help="compile this circuit's default workload at "
                        "startup (repeatable)")
    parser.add_argument("--no-disk-warm", action="store_true",
                        help="skip loading the REPRO_DISK_CACHE tier into "
                        "memory at startup")
    cluster = parser.add_argument_group(
        "cluster", "options that only apply with --workers > 1")
    cluster.add_argument("--control-port", type=int,
                         default=_env_int("REPRO_CLUSTER_CONTROL_PORT", 0) or None,
                         help="supervisor /healthz + aggregated /metrics port "
                         "(default REPRO_CLUSTER_CONTROL_PORT, or service "
                         "port + 1)")
    cluster.add_argument("--sharing", choices=("auto", "reuseport", "inherit"),
                         default="auto",
                         help="listen-socket sharing: SO_REUSEPORT per worker "
                         "or one inherited FD (default auto)")
    cluster.add_argument("--heartbeat-s", type=float, default=1.0,
                         help="worker heartbeat interval (default 1.0)")
    args = parser.parse_args(argv)
    if args.workers > 1:
        return _serve_cluster(args)
    try:
        return asyncio.run(_serve(args))
    except KeyboardInterrupt:  # pragma: no cover - direct ^C race
        return 0


def _serve_cluster(args: argparse.Namespace) -> int:
    """Dispatch ``repro serve --workers N`` to the prefork supervisor."""
    from ..cluster.supervisor import run_cluster

    return run_cluster(
        host=args.host,
        port=args.port,
        workers=args.workers,
        control_port=args.control_port,
        sharing=args.sharing,
        heartbeat_s=args.heartbeat_s,
        drain_grace_s=max(args.drain_grace_s + 5.0, 15.0),
        server_kwargs=dict(
            batch_max=args.batch_max,
            batch_wait_ms=args.batch_wait_ms,
            queue_depth=args.queue_depth,
            dispatchers=args.dispatchers,
            drain_grace_s=args.drain_grace_s,
        ),
        engine_kwargs=dict(
            workers=args.pool_workers,
            max_cache_bytes=args.max_cache_bytes,
        ),
        prewarm=tuple(args.prewarm or ()),
        disk_warm=not args.no_disk_warm,
    )
