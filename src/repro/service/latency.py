"""Log-bucketed latency histograms with quantile estimates.

The PR 2 :class:`repro.telemetry.metrics.Histogram` keeps count/sum/min/
max — enough for manifests, useless for tail latency.  The serving layer
needs p50/p95/p99 under sustained load, so this module adds a fixed-size
log-spaced bucket histogram: O(1) observe, O(buckets) quantile, no sample
retention, deterministic results for a given observation multiset.

Buckets span 0.1 ms .. ~107 s with ~9.6% relative width (8 buckets per
octave), so a quantile estimate is within one bucket (<10%) of the true
value — plenty for dashboards and regression gates.  Observations are also
forwarded to a ``METRICS`` histogram by the server, so manifests and
``repro stats`` keep seeing the count/sum/min/max view.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional, Sequence, Tuple

#: Smallest resolvable latency (seconds); anything below lands in bucket 0.
_FLOOR_S = 1e-4
#: Buckets per factor-of-two; 8 -> 2**(1/8) ≈ 1.09 relative resolution.
_PER_OCTAVE = 8
#: Total buckets: 20 octaves above the floor (~107 s ceiling).
_NUM_BUCKETS = 20 * _PER_OCTAVE


def _bucket_index(seconds: float) -> int:
    if seconds <= _FLOOR_S:
        return 0
    index = int(math.log2(seconds / _FLOOR_S) * _PER_OCTAVE) + 1
    return min(index, _NUM_BUCKETS - 1)


def _bucket_upper_s(index: int) -> float:
    """Upper bound of a bucket (the value a quantile in it reports)."""
    if index == 0:
        return _FLOOR_S
    return _FLOOR_S * 2.0 ** (index / _PER_OCTAVE)


class LatencyHistogram:
    """Thread-safe log-bucket histogram over seconds."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._buckets = [0] * _NUM_BUCKETS
        self._count = 0
        self._sum = 0.0
        self._max = 0.0

    def observe(self, seconds: float) -> None:
        seconds = max(0.0, float(seconds))
        with self._lock:
            self._buckets[_bucket_index(seconds)] += 1
            self._count += 1
            self._sum += seconds
            self._max = max(self._max, seconds)

    @property
    def count(self) -> int:
        return self._count

    def quantile(self, q: float) -> Optional[float]:
        """Upper bound of the bucket holding the q-quantile (None if empty)."""
        if not 0 < q <= 1:
            raise ValueError("quantile must be in (0, 1]")
        with self._lock:
            if not self._count:
                return None
            rank = math.ceil(q * self._count)
            seen = 0
            for index, n in enumerate(self._buckets):
                seen += n
                if seen >= rank:
                    return min(_bucket_upper_s(index), self._max)
        return self._max  # pragma: no cover - rank <= count always hits

    def summary(self, quantiles: Sequence[float] = (0.5, 0.95, 0.99)) -> Dict[str, float]:
        """JSON-ready snapshot: count, sum, mean, max and pXX in **ms**."""
        with self._lock:
            count, total, peak = self._count, self._sum, self._max
        out: Dict[str, float] = {
            "count": count,
            "sum_ms": round(total * 1000, 3),
            "mean_ms": round(total / count * 1000, 3) if count else 0.0,
            "max_ms": round(peak * 1000, 3),
        }
        for q in quantiles:
            value = self.quantile(q)
            out[f"p{int(q * 100)}_ms"] = round(value * 1000, 3) if value else 0.0
        return out

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(upper_bound_seconds, cumulative_count)`` for every occupied
        bucket, in ascending bound order — the exact shape the Prometheus
        histogram exposition (``_bucket{le=...}``) consumes.  Empty
        buckets are elided; the renderer closes the series with ``+Inf``
        at the total count."""
        with self._lock:
            counts = list(self._buckets)
        out: List[Tuple[float, int]] = []
        cum = 0
        for index, n in enumerate(counts):
            if n:
                cum += n
                out.append((_bucket_upper_s(index), cum))
        return out

    def totals(self) -> Tuple[float, int]:
        """``(sum_seconds, count)`` under one lock acquisition."""
        with self._lock:
            return self._sum, self._count

    def state(self) -> Dict[str, object]:
        """JSON-ready raw state for cross-process merging.

        Unlike :meth:`summary` (quantiles) and :meth:`cumulative_buckets`
        (cumulative counts), this keeps the **sparse per-bucket counts**,
        which is the only shape that merges losslessly: cluster workers
        ship it over the control channel and the supervisor adds the
        buckets index-wise (see :func:`merge_states`).
        """
        with self._lock:
            return {
                "buckets": {
                    str(i): n for i, n in enumerate(self._buckets) if n
                },
                "count": self._count,
                "sum": self._sum,
                "max": self._max,
            }

    def reset(self) -> None:
        with self._lock:
            self._buckets = [0] * _NUM_BUCKETS
            self._count = 0
            self._sum = 0.0
            self._max = 0.0


class LatencyBoard:
    """A named family of :class:`LatencyHistogram` (total / queue / execute)."""

    def __init__(self, names: Sequence[str] = ("total", "queue_wait", "execute")):
        self._hists: Dict[str, LatencyHistogram] = {
            name: LatencyHistogram() for name in names
        }

    def __getitem__(self, name: str) -> LatencyHistogram:
        return self._hists[name]

    def names(self) -> List[str]:
        return sorted(self._hists)

    def summary(self) -> Dict[str, Dict[str, float]]:
        return {name: hist.summary() for name, hist in sorted(self._hists.items())}

    def prometheus_series(self) -> Tuple[
        Dict[str, List[Tuple[float, int]]], Dict[str, Tuple[float, int]]
    ]:
        """Bucket and total series per stage, ready for
        :func:`repro.telemetry.promexp.render_prometheus`."""
        buckets = {name: hist.cumulative_buckets()
                   for name, hist in self._hists.items()}
        totals = {name: hist.totals() for name, hist in self._hists.items()}
        return buckets, totals

    def state(self) -> Dict[str, Dict[str, object]]:
        """Raw mergeable state per stage (see :meth:`LatencyHistogram.state`)."""
        return {name: hist.state() for name, hist in sorted(self._hists.items())}

    def reset(self) -> None:
        for hist in self._hists.values():
            hist.reset()


# -- mergeable-state algebra (cluster fleet aggregation) ----------------------


def empty_state() -> Dict[str, object]:
    return {"buckets": {}, "count": 0, "sum": 0.0, "max": 0.0}


def merge_states(states: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """Bucket-wise sum of :meth:`LatencyHistogram.state` dicts.

    Because every process uses the identical log-bucket layout, adding the
    sparse counts index-wise reproduces exactly the histogram one process
    observing the union of all samples would hold — fleet quantiles come
    out as accurate as single-process ones.
    """
    merged = empty_state()
    buckets: Dict[str, int] = merged["buckets"]  # type: ignore[assignment]
    for state in states:
        if not state:
            continue
        for index, n in (state.get("buckets") or {}).items():
            buckets[str(index)] = buckets.get(str(index), 0) + int(n)
        merged["count"] += int(state.get("count", 0))
        merged["sum"] += float(state.get("sum", 0.0))
        merged["max"] = max(merged["max"], float(state.get("max", 0.0)))
    return merged


def state_cumulative(state: Dict[str, object]) -> List[Tuple[float, int]]:
    """``(upper_bound_s, cumulative_count)`` series from a merged state —
    the shape :func:`repro.telemetry.promexp.render_prometheus` consumes."""
    out: List[Tuple[float, int]] = []
    cum = 0
    counts = state.get("buckets") or {}
    for index in sorted(counts, key=int):
        cum += int(counts[index])
        out.append((_bucket_upper_s(int(index)), cum))
    return out


def state_totals(state: Dict[str, object]) -> Tuple[float, int]:
    return float(state.get("sum", 0.0)), int(state.get("count", 0))


def state_quantile(state: Dict[str, object], q: float) -> Optional[float]:
    """Quantile estimate over a (merged) state, matching
    :meth:`LatencyHistogram.quantile` semantics."""
    if not 0 < q <= 1:
        raise ValueError("quantile must be in (0, 1]")
    count = int(state.get("count", 0))
    if not count:
        return None
    rank = math.ceil(q * count)
    seen = 0
    counts = state.get("buckets") or {}
    peak = float(state.get("max", 0.0))
    for index in sorted(counts, key=int):
        seen += int(counts[index])
        if seen >= rank:
            return min(_bucket_upper_s(int(index)), peak)
    return peak


def state_summary(
    state: Dict[str, object], quantiles: Sequence[float] = (0.5, 0.95, 0.99)
) -> Dict[str, float]:
    """The :meth:`LatencyHistogram.summary` shape over a merged state."""
    count = int(state.get("count", 0))
    total = float(state.get("sum", 0.0))
    out: Dict[str, float] = {
        "count": count,
        "sum_ms": round(total * 1000, 3),
        "mean_ms": round(total / count * 1000, 3) if count else 0.0,
        "max_ms": round(float(state.get("max", 0.0)) * 1000, 3),
    }
    for q in quantiles:
        value = state_quantile(state, q)
        out[f"p{int(q * 100)}_ms"] = round(value * 1000, 3) if value else 0.0
    return out
