"""Async batch-serving layer for partition-based scan-cell diagnosis.

The one-shot CLI pays netlist compile, golden simulation and cache warm-up
on **every** invocation; this package keeps that state resident in a
long-lived process and serves diagnosis queries over HTTP with dynamic
batching (requests sharing a workload coalesce into one vectorized call),
admission control (bounded queue, 429 + ``Retry-After``), per-request
deadlines, graceful degradation (serial fallback when the fork pool dies)
and drain-on-SIGTERM.  See docs/architecture.md, "Serving".

Layering (each module only imports the ones above it):

* :mod:`~repro.service.protocol` — wire format, error taxonomy
* :mod:`~repro.service.latency` — log-bucket p50/p95/p99 histograms
* :mod:`~repro.service.engine` — cache-pinned batch execution
* :mod:`~repro.service.batching` — bounded queue, dynamic batching
* :mod:`~repro.service.server` — asyncio HTTP server, drain, ``repro serve``
* :mod:`~repro.service.client` — stdlib client library
"""

from .batching import BatchQueue, PendingRequest
from .client import ServiceClient, TransportError
from .engine import DiagnosisEngine, WorkloadContext
from .latency import LatencyBoard, LatencyHistogram
from .protocol import (
    ERROR_STATUS,
    SCHEMES,
    DiagnoseReply,
    DiagnoseRequest,
    ServiceError,
)
from .server import DEFAULT_PORT, DiagnosisServer, ThreadedServer, serve_main

__all__ = [
    "BatchQueue",
    "DEFAULT_PORT",
    "DiagnoseReply",
    "DiagnoseRequest",
    "DiagnosisEngine",
    "DiagnosisServer",
    "ERROR_STATUS",
    "LatencyBoard",
    "LatencyHistogram",
    "PendingRequest",
    "SCHEMES",
    "ServiceClient",
    "ServiceError",
    "ThreadedServer",
    "TransportError",
    "WorkloadContext",
    "serve_main",
]
