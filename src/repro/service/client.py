"""Small stdlib client for the diagnosis service.

One :class:`ServiceClient` wraps one keep-alive ``http.client`` connection
— cheap per-request, **not** thread-safe; give each thread its own client
(that is what ``scripts/loadgen.py`` does).  Server-reported failures come
back as :class:`repro.service.protocol.ServiceError` with the stable code,
so callers branch on ``exc.code`` exactly as they would on the wire.

Usage::

    with ServiceClient(port=8953) as client:
        client.wait_ready()
        reply = client.diagnose(DiagnoseRequest(circuit="s953", fault_index=0))
        print(reply.candidate_cells)
"""

from __future__ import annotations

import http.client
import json
import socket
import time
import urllib.parse
from typing import Any, Dict, Optional, Union

from ..telemetry import format_traceparent, new_span_id
from .protocol import DiagnoseReply, DiagnoseRequest, ServiceError


class TransportError(Exception):
    """The server could not be reached (connection refused, reset, EOF)."""


class ServiceClient:
    """JSON-over-HTTP client for one diagnosis server."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8953,
                 timeout_s: float = 60.0):
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self._conn: Optional[http.client.HTTPConnection] = None

    # -- plumbing ------------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout_s
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None,
                 extra_headers: Optional[Dict[str, str]] = None,
                 raw: bool = False) -> tuple:
        """(status, decoded JSON payload); retries once on a stale socket.

        ``raw=True`` skips JSON decoding and returns the body bytes
        (``/debug/profile`` answers ``text/plain``).
        """
        payload = json.dumps(body).encode("utf-8") if body is not None else None
        headers = {"Content-Type": "application/json"} if payload else {}
        if extra_headers:
            headers.update(extra_headers)
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=payload, headers=headers)
                response = conn.getresponse()
                data = response.read()
                break
            except (http.client.HTTPException, ConnectionError,
                    socket.timeout, OSError) as exc:
                # A keep-alive socket the server closed looks like a broken
                # pipe on the *next* request — reconnect once, then give up.
                self.close()
                if attempt:
                    raise TransportError(f"{method} {path}: {exc}") from exc
        if raw:
            return response.status, data
        try:
            decoded = json.loads(data.decode("utf-8")) if data else {}
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise TransportError(
                f"{method} {path}: undecodable response body") from exc
        return response.status, decoded

    @staticmethod
    def _raise_for_error(status: int, payload: Dict[str, Any]) -> None:
        error = payload.get("error")
        if status < 400 and not error:
            return
        if isinstance(error, dict) and error.get("code"):
            raise ServiceError(
                error["code"],
                error.get("message", ""),
                retry_after_s=error.get("retry_after_s"),
            )
        raise TransportError(f"HTTP {status} without an error payload")

    # -- API -----------------------------------------------------------------

    def diagnose(
        self, request: Union[DiagnoseRequest, Dict[str, Any]],
        trace_id: Optional[str] = None,
    ) -> DiagnoseReply:
        """POST one diagnosis request.

        ``trace_id`` (32 lowercase hex chars; mint one with
        ``repro.telemetry.new_trace_id()``) rides the ``traceparent``
        header so the server threads it through coalescing, the engine,
        and fork workers; the reply's ``trace_id`` always names the trace
        (client-supplied or server-minted) — feed it to
        :meth:`debug_trace` for the assembled span tree.
        """
        body = request.to_payload() if isinstance(request, DiagnoseRequest) \
            else dict(request)
        extra = None
        if trace_id:
            extra = {"traceparent": format_traceparent(trace_id, new_span_id())}
        status, payload = self._request("POST", "/diagnose", body,
                                        extra_headers=extra)
        self._raise_for_error(status, payload)
        return DiagnoseReply.from_payload(payload)

    def health(self) -> Dict[str, Any]:
        """The /healthz payload (raises nothing on 'draining' — check
        ``payload['status']``)."""
        _, payload = self._request("GET", "/healthz")
        return payload

    def metrics(self) -> Dict[str, Any]:
        status, payload = self._request("GET", "/metrics")
        self._raise_for_error(status, payload)
        return payload

    def debug_requests(self, limit: int = 50) -> Dict[str, Any]:
        """Flight-recorder snapshot: recent/slow/error request exemplars."""
        status, payload = self._request("GET", f"/debug/requests?limit={limit}")
        self._raise_for_error(status, payload)
        return payload

    def debug_trace(self, trace_id: str) -> Dict[str, Any]:
        """The assembled span tree (plus raw records) for one trace id."""
        quoted = urllib.parse.quote(trace_id, safe="")
        status, payload = self._request("GET", f"/debug/trace/{quoted}")
        self._raise_for_error(status, payload)
        return payload

    def debug_flightrec(self, capacity: Optional[int] = None) -> Dict[str, Any]:
        """Flight-recorder state; pass ``capacity`` to resize it live
        (``0`` disables recording until a later resize)."""
        if capacity is None:
            status, payload = self._request("GET", "/debug/flightrec")
        else:
            status, payload = self._request("POST", "/debug/flightrec",
                                            {"capacity": capacity})
        self._raise_for_error(status, payload)
        return payload

    def debug_profile(self, seconds: float = 1.0,
                      hz: Optional[int] = None) -> str:
        """On-demand profiler burst; returns collapsed-stack text."""
        path = f"/debug/profile?seconds={seconds:g}"
        if hz:
            path += f"&hz={hz}"
        status, data = self._request("GET", path, raw=True)
        if status >= 400:
            try:
                payload = json.loads(data.decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError):
                payload = {}
            self._raise_for_error(status, payload)
        return data.decode("utf-8")

    def wait_ready(self, timeout_s: float = 30.0, interval_s: float = 0.05) -> None:
        """Poll /healthz until the server answers (readiness gate)."""
        give_up = time.monotonic() + timeout_s
        last: Optional[Exception] = None
        while time.monotonic() < give_up:
            try:
                self.health()
                return
            except (TransportError, ServiceError) as exc:
                last = exc
                time.sleep(interval_s)
        raise TransportError(
            f"server at {self.host}:{self.port} not ready after "
            f"{timeout_s:.0f}s ({last!r})")
