"""Adaptive binary-search diagnosis (Ghosh-Dastidar & Touba [6]) — baseline.

The scheme repeatedly halves failing regions: one BIST session observes one
contiguous region; if its signature mismatches, the region splits in two and
both halves are scheduled.  It reaches single-cell resolution but needs the
test flow to stop and compute between sessions ("test application must be
frequently interrupted", paper Section 2.2) — the two-step scheme's
advantage is running an entire pre-planned session schedule uninterrupted.

Included for the session-cost ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

import numpy as np

from ..bist.misr import LinearCompactor
from ..bist.scan import ScanConfig
from ..bist.session import collect_error_event_arrays, event_contributions
from ..sim.faultsim import FaultResponse


@dataclass
class BinarySearchResult:
    """Cells isolated by the adaptive search and the sessions it took."""

    actual_cells: Set[int]
    candidate_cells: Set[int]
    sessions_used: int

    @property
    def sound(self) -> bool:
        return self.actual_cells <= self.candidate_cells


def binary_search_diagnose(
    response: FaultResponse,
    scan_config: ScanConfig,
    compactor: Optional[LinearCompactor] = None,
    min_region: int = 1,
    session_budget: Optional[int] = None,
) -> BinarySearchResult:
    """Diagnose one fault by adaptive region halving.

    ``min_region`` stops the recursion at that region size (1 = single-cell
    resolution).  ``session_budget`` optionally caps the number of sessions;
    regions still open when the budget runs out stay in the candidate set.
    """
    events = collect_error_event_arrays(response, scan_config)
    total_cycles = scan_config.total_cycles(response.num_patterns)
    length = scan_config.max_length
    # Contributions are region-independent: one batch evaluation serves
    # every session of the adaptive search.
    if compactor is not None and hasattr(compactor, "batch_impulse_responses"):
        contributions = event_contributions(events, compactor, total_cycles)
    else:
        contributions = None

    def region_fails(start: int, end: int) -> bool:
        in_region = (events.positions >= start) & (events.positions < end)
        if compactor is None:
            return bool(in_region.any())
        if contributions is not None:
            if not in_region.any():
                return False
            signature = int(np.bitwise_xor.reduce(contributions[in_region]))
            return signature != 0
        signature = 0
        for channel, cycle in zip(
            events.channels[in_region], events.cycles[in_region]
        ):
            signature ^= compactor.impulse_response(
                int(channel), total_cycles - 1 - int(cycle)
            )
        return signature != 0

    sessions = 0
    candidates: List[Tuple[int, int]] = []
    queue: List[Tuple[int, int]] = [(0, length)]
    while queue:
        start, end = queue.pop(0)
        if session_budget is not None and sessions >= session_budget:
            candidates.append((start, end))
            continue
        sessions += 1
        if not region_fails(start, end):
            continue
        if end - start <= min_region:
            candidates.append((start, end))
            continue
        mid = (start + end) // 2
        queue.append((start, mid))
        queue.append((mid, end))

    candidate_cells: Set[int] = set()
    for start, end in candidates:
        for position in range(start, end):
            candidate_cells.update(scan_config.cells_at_position(position))
    return BinarySearchResult(
        actual_cells=set(response.failing_cells),
        candidate_cells=candidate_cells,
        sessions_used=sessions,
    )
