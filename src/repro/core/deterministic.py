"""Deterministic fixed-length interval partitioning (baseline, [8]).

All groups hold the same number of consecutive scan cells (boundary groups
excepted).  The paper rejects this scheme for its "expensive control logic"
but it is the natural upper-bound comparator for the randomized interval
scheme, so it is provided for the ablation benchmarks.  Successive
partitions are rotations of the first, which is how a deterministic scheme
obtains independent coverage without randomness.
"""

from __future__ import annotations

from typing import List

import numpy as np

from .partitions import Partition, PartitionError


def fixed_interval_partition(
    length: int, num_groups: int, offset: int = 0
) -> Partition:
    """Equal intervals of ``ceil(length / num_groups)`` cells, rotated by
    ``offset`` positions."""
    if length < 1 or num_groups < 1:
        raise PartitionError("length and num_groups must be positive")
    interval = -(-length // num_groups)  # ceil
    positions = (np.arange(length) + offset) % length
    group_of = np.minimum(positions // interval, num_groups - 1).astype(np.int32)
    return Partition(group_of, num_groups, scheme="deterministic")


class DeterministicPartitioner:
    """Fixed-length intervals; partition ``k`` is rotated by
    ``k * interval // 2`` so group boundaries move between partitions."""

    def __init__(self, length: int, num_groups: int):
        self.length = length
        self.num_groups = num_groups
        self._interval = -(-length // num_groups)
        self._count = 0

    def next_partition(self) -> Partition:
        offset = (self._count * max(1, self._interval // 2)) % self.length
        self._count += 1
        return fixed_interval_partition(self.length, self.num_groups, offset)

    def partitions(self, count: int) -> List[Partition]:
        return [self.next_partition() for _ in range(count)]
