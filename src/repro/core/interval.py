"""Interval-based partitioning with LFSR-drawn interval lengths (Section 2.2).

Groups are runs of consecutive shift positions.  Interval lengths come from
``r`` selected stages of the selection LFSR: the seed (held in the IVR)
gives the first length; at the end of each interval a carry from Shift
Counter 2 shifts the LFSR once and the next length is latched.  The seed is
chosen so that the predefined number of groups covers the whole chain — the
module includes the seed search, since "usually there exist a number of such
seeds for a given circuit" (paper, Section 2.2).

An all-zero length field is interpreted as ``2**r`` (the down-counter wraps
through its full range), avoiding zero-length intervals.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..bist.lfsr import LFSR
from .partitions import Partition, PartitionError


def default_length_bits(length: int, num_groups: int) -> int:
    """Number of LFSR stages to tap for the interval length.

    Chosen so the *expected* sum of ``num_groups`` drawn lengths is at least
    the chain length (mean drawn length is about ``2**(bits-1)``), which
    makes roughly half of all seeds valid and keeps the seed search short.
    """
    if length < 1 or num_groups < 1:
        raise PartitionError("length and num_groups must be positive")
    need = max(2, -(-2 * length // num_groups))  # ceil(2*length/num_groups)
    return max(1, (need - 1).bit_length())


def draw_interval_lengths(
    lfsr: LFSR, num_groups: int, length_bits: int
) -> List[int]:
    """The interval-length sequence produced from the LFSR's current state.

    The LFSR shifts exactly once between consecutive intervals, matching the
    carry-driven hardware of Fig. 1.  The length field is read from stages
    spread across the register ("the seed is associated with a number of
    bits from the LFSR"): adjacent low bits would make consecutive lengths
    overlapping windows of one bit stream, which cannot even express the
    paper's worked example (lengths 5, 6, 3, 2).  An all-zero field reads
    as the maximum length ``2**length_bits``.
    """
    positions = lfsr.spread_stage_positions(length_bits)
    lengths = []
    for _ in range(num_groups):
        value = lfsr.peek_stages(positions)
        lengths.append(value if value else 1 << length_bits)
        lfsr.step()
    return lengths


def lengths_cover(lengths: Sequence[int], chain_length: int) -> bool:
    return sum(lengths) >= chain_length


def lengths_cover_exactly(lengths: Sequence[int], chain_length: int) -> bool:
    """True iff all ``len(lengths)`` groups are needed to cover the chain —
    the paper's "a pre-defined number of groups ... can cover the entire
    scan chain" (no trailing empty groups, last interval truncated)."""
    total = sum(lengths)
    return total >= chain_length > total - lengths[-1]


def find_seed(
    chain_length: int,
    num_groups: int,
    lfsr_degree: int = 16,
    length_bits: Optional[int] = None,
    start_seed: int = 1,
    max_tries: int = 1 << 16,
    exact: bool = True,
) -> int:
    """First LFSR seed (scanning from ``start_seed``) whose drawn interval
    lengths cover the chain in ``num_groups`` groups.

    ``exact`` additionally requires every group to be used (the paper's
    covering condition); with it off — or when no exact seed exists, e.g.
    more groups than cells — any covering seed qualifies.
    """
    bits = length_bits or default_length_bits(chain_length, num_groups)
    # Exact coverage needs the first num_groups-1 intervals (each >= 1 cell)
    # to leave part of the chain uncovered; skip the exact scan outright
    # when that is impossible.
    exact = exact and num_groups - 1 < chain_length
    predicates = [lengths_cover_exactly, lengths_cover] if exact else [lengths_cover]
    state_mask = (1 << lfsr_degree) - 1
    for covers in predicates:
        seed = start_seed & state_mask or 1
        for _ in range(max_tries):
            lfsr = LFSR(lfsr_degree, seed)
            if covers(draw_interval_lengths(lfsr, num_groups, bits), chain_length):
                return seed
            seed = (seed + 1) & state_mask or 1
    raise PartitionError(
        f"no covering seed found for chain={chain_length}, groups={num_groups}, "
        f"bits={bits} within {max_tries} tries"
    )


def intervals_to_partition(
    lengths: Sequence[int], chain_length: int, num_groups: int
) -> Partition:
    """Lay the drawn intervals along the chain, truncating the last one at
    the scan-output end; groups past the end stay empty."""
    group_of = np.empty(chain_length, dtype=np.int32)
    position = 0
    for group, length in enumerate(lengths):
        if position >= chain_length:
            break
        end = min(position + length, chain_length)
        group_of[position:end] = group
        position = end
    if position < chain_length:
        raise PartitionError("interval lengths do not cover the chain")
    return Partition(group_of, num_groups, scheme="interval")


class IntervalPartitioner:
    """Generates interval-based partitions; each partition uses a fresh
    covering seed found by :func:`find_seed`."""

    def __init__(
        self,
        length: int,
        num_groups: int,
        lfsr_degree: int = 16,
        length_bits: Optional[int] = None,
        seed: int = 1,
    ):
        self.length = length
        self.num_groups = num_groups
        self.lfsr_degree = lfsr_degree
        self.length_bits = length_bits or default_length_bits(length, num_groups)
        self._next_seed = seed
        self.used_seeds: List[int] = []

    def next_partition(self) -> Partition:
        seed = find_seed(
            self.length,
            self.num_groups,
            self.lfsr_degree,
            self.length_bits,
            start_seed=self._next_seed,
        )
        self.used_seeds.append(seed)
        self._next_seed = seed + 1
        lfsr = LFSR(self.lfsr_degree, seed)
        lengths = draw_interval_lengths(lfsr, self.num_groups, self.length_bits)
        return intervals_to_partition(lengths, self.length, self.num_groups)

    def partitions(self, count: int) -> List[Partition]:
        return [self.next_partition() for _ in range(count)]
