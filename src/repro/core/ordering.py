"""Scan-chain ordering studies.

Section 3 of the paper: "The locations of these error-capturing scan cells
in the scan chain depend on the scan chain ordering, but there is
nevertheless a clear dependence between the circuit structure and the
distribution of failing scan cells."

Interval-based partitioning only helps if structurally related cells sit
*near each other* in the chain.  This module provides reorderings of a
:class:`repro.bist.scan.ScanConfig` so experiments can quantify that
dependence: the structural order (the generator's locality order — what a
placement-aware stitching tool produces) versus a random permutation (what
an ordering-oblivious stitcher produces).  Under a random order the
clusters are destroyed and the interval step loses its advantage — the
ablation that validates the paper's premise rather than assuming it.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..bist.scan import ScanConfig
from ..sim.faultsim import FaultResponse


def permuted_scan_config(
    scan_config: ScanConfig, permutation: np.ndarray
) -> ScanConfig:
    """A new configuration with cell ids re-seated by ``permutation``:
    the cell at old position ``i`` (flattened chain-major order) moves to
    the slot previously holding ``permutation[i]``.

    Cell *identities* are preserved — only their chain positions move — so
    fault responses keep their meaning.
    """
    flat = [cell for chain in scan_config.chains for cell in chain]
    if sorted(permutation.tolist()) != list(range(len(flat))):
        raise ValueError("permutation must be a bijection over the cells")
    reordered = [flat[permutation[i]] for i in range(len(flat))]
    chains = []
    start = 0
    for chain in scan_config.chains:
        chains.append(reordered[start : start + len(chain)])
        start += len(chain)
    return ScanConfig(chains)


def random_scan_order(
    scan_config: ScanConfig, rng: np.random.Generator
) -> ScanConfig:
    """Randomly permute the cells over the chain slots (cluster-destroying
    order)."""
    permutation = rng.permutation(scan_config.num_cells)
    return permuted_scan_config(scan_config, permutation)


def reversed_scan_order(scan_config: ScanConfig) -> ScanConfig:
    """Reverse each chain (cluster-preserving: spans are invariant)."""
    return ScanConfig([list(reversed(chain)) for chain in scan_config.chains])


def interleaved_scan_order(scan_config: ScanConfig, stride: int) -> ScanConfig:
    """Deal cells round-robin with the given stride (what a naive
    multi-segment stitcher produces); partially destroys clusters."""
    if stride < 1:
        raise ValueError("stride must be positive")
    chains = []
    for chain in scan_config.chains:
        order = [
            chain[i]
            for start in range(stride)
            for i in range(start, len(chain), stride)
        ]
        chains.append(order)
    return ScanConfig(chains)


def response_span(response: FaultResponse, scan_config: ScanConfig) -> int:
    """Span of the fault's failing cells in shift positions (cluster size
    as the partitioner sees it)."""
    positions = [
        scan_config.location(cell).position for cell in response.failing_cells
    ]
    if not positions:
        return 0
    return max(positions) - min(positions) + 1
