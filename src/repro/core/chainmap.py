"""Text visualization of diagnosis outcomes along the scan chain.

Renders, for each chain, one character per shift position:

* ``#`` — truly failing cell correctly kept as a candidate,
* ``!`` — truly failing cell *pruned* (soundness violation — aliasing),
* ``+`` — non-failing candidate (the resolution cost),
* ``.`` — correctly exonerated cell,
* `` `` — no cell at that position (ragged chains).

What failure analysis sees at a glance: the candidate cluster around the
defect, and how tightly the scheme confined it.
"""

from __future__ import annotations

from typing import List

from ..bist.scan import ScanConfig
from .diagnosis import DiagnosisResult

GLYPH_HIT = "#"
GLYPH_MISSED = "!"
GLYPH_FALSE_CANDIDATE = "+"
GLYPH_CLEAR = "."
GLYPH_EMPTY = " "


def chain_map(
    result: DiagnosisResult,
    scan_config: ScanConfig,
    width: int = 64,
) -> str:
    """Render a diagnosis outcome as a per-chain position map.

    Chains longer than ``width`` wrap onto continuation lines.
    """
    lines: List[str] = []
    actual = result.actual_cells
    candidates = result.candidate_cells
    for w, chain in enumerate(scan_config.chains):
        glyphs = []
        for cell in chain:
            failing = cell in actual
            candidate = cell in candidates
            if failing and candidate:
                glyphs.append(GLYPH_HIT)
            elif failing:
                glyphs.append(GLYPH_MISSED)
            elif candidate:
                glyphs.append(GLYPH_FALSE_CANDIDATE)
            else:
                glyphs.append(GLYPH_CLEAR)
        text = "".join(glyphs)
        for offset in range(0, max(1, len(text)), width):
            prefix = f"chain {w}" if offset == 0 else " " * 7
            lines.append(f"{prefix} |{text[offset:offset + width]}|")
    summary = (
        f"failing={len(actual)} candidates={len(candidates)} "
        f"{'sound' if result.sound else 'UNSOUND'}"
    )
    lines.append(summary)
    return "\n".join(lines)


def legend() -> str:
    return (
        f"{GLYPH_HIT}=failing&candidate  {GLYPH_MISSED}=failing pruned  "
        f"{GLYPH_FALSE_CANDIDATE}=false candidate  {GLYPH_CLEAR}=exonerated"
    )
