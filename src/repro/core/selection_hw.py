"""Cycle-accurate model of the scan-cell selection hardware (paper Fig. 1).

Components: LFSR, Initial Value Register (IVR), Pattern Counter, Shift
Counter 1 (shift cycles within a pattern), Test Counter 1 (current session /
group number), and — for two-step partitioning, the shaded blocks — Shift
Counter 2 and Test Counter 2.

* **Random-selection mode**: on every shift cycle the low ``r`` label bits
  of the LFSR are compared with Test Counter 1; a match passes the current
  response bit to the compactor.  The LFSR is reloaded from the IVR at the
  start of every pattern's unload (so the labelling repeats for each
  pattern of the session) and at the start of every session; at the end of
  a partition the IVR captures the LFSR's running state, producing a fresh
  labelling for the next partition.

* **Interval mode**: at the start of an unload, Shift Counter 2 is loaded
  with the interval length taken from the LFSR's tapped stages and Test
  Counter 2 with the session number from Test Counter 1.  Each shift cycle
  decrements Shift Counter 2; on its carry the LFSR shifts once, the next
  length is latched, and Test Counter 2 decrements.  Responses pass while
  Test Counter 2 holds zero — i.e. session ``g`` observes the ``g``-th
  drawn interval.

The model emits one boolean mask per session over the shift cycles of a
pattern; equivalence with the functional partitioners in
:mod:`repro.core.random_selection` / :mod:`repro.core.interval` is enforced
by tests (and by the ablation benchmark).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..bist.lfsr import IVR, LFSR
from .interval import default_length_bits, find_seed
from .partitions import Partition, PartitionError


class SelectionHardware:
    """The Fig. 1 selection logic, one instance shared by all scan chains."""

    def __init__(
        self,
        chain_length: int,
        num_groups: int,
        mode: str = "random",
        lfsr_degree: int = 16,
        seed: Optional[int] = None,
        length_bits: Optional[int] = None,
    ):
        if mode not in ("random", "interval"):
            raise ValueError(f"mode must be 'random' or 'interval', got {mode!r}")
        if chain_length < 1:
            raise PartitionError("chain length must be positive")
        self.chain_length = chain_length
        self.num_groups = num_groups
        self.mode = mode
        self.lfsr_degree = lfsr_degree
        if mode == "random":
            bits = (num_groups - 1).bit_length()
            if 1 << bits != num_groups:
                raise PartitionError("random mode needs a power-of-two group count")
            self.label_bits = bits
            self.length_bits = 0
            initial = seed if seed is not None else 0x5EED
        else:
            self.label_bits = 0
            self.length_bits = length_bits or default_length_bits(
                chain_length, num_groups
            )
            initial = seed if seed is not None else find_seed(
                chain_length, num_groups, lfsr_degree, self.length_bits
            )
        self.lfsr = LFSR(lfsr_degree, initial)
        self.ivr = IVR(self.lfsr.state)
        self._stage_positions = self.lfsr.spread_stage_positions(
            self.label_bits if mode == "random" else self.length_bits
        )
        # Registers of Fig. 1.
        self.test_counter_1 = 0
        self.shift_counter_1 = 0
        self.pattern_counter = 0
        self.shift_counter_2 = 0
        self.test_counter_2 = 0

    # -- one pattern's unload -------------------------------------------------

    def unload_mask(self, session: int) -> np.ndarray:
        """Select bits for every shift cycle of one pattern in ``session``.

        Deterministic per (IVR value, session): the hardware reloads the
        LFSR from the IVR at the start of the unload.
        """
        self.test_counter_1 = session
        self.ivr.reload(self.lfsr)
        mask = np.zeros(self.chain_length, dtype=bool)
        if self.mode == "random":
            for cycle in range(self.chain_length):
                self.shift_counter_1 = cycle
                label = self.lfsr.peek_stages(self._stage_positions)
                mask[cycle] = label == self.test_counter_1
                self.lfsr.step()
        else:
            self.test_counter_2 = self.test_counter_1
            self.shift_counter_2 = self._latch_length()
            for cycle in range(self.chain_length):
                self.shift_counter_1 = cycle
                mask[cycle] = self.test_counter_2 == 0
                self.shift_counter_2 -= 1
                if self.shift_counter_2 == 0:  # carry out
                    self.lfsr.step()
                    self.shift_counter_2 = self._latch_length()
                    self.test_counter_2 -= 1
        return mask

    def _latch_length(self) -> int:
        value = self.lfsr.peek_stages(self._stage_positions)
        return value if value else 1 << self.length_bits

    # -- partitions -------------------------------------------------------------

    def run_partition(self) -> List[np.ndarray]:
        """Masks of all ``num_groups`` sessions of the current partition,
        then update the IVR so the next partition differs.

        In interval mode successive partitions need fresh covering seeds
        (the IVR is reloaded with the next one), mirroring the off-line seed
        computation the paper describes.
        """
        masks = [self.unload_mask(g) for g in range(self.num_groups)]
        if self.mode == "random":
            # IVR takes the LFSR state left by the last session's run.
            self.ivr.update_from(self.lfsr)
        else:
            next_seed = find_seed(
                self.chain_length,
                self.num_groups,
                self.lfsr_degree,
                self.length_bits,
                start_seed=self.ivr.value + 1,
            )
            self.ivr.value = next_seed
        return masks

    def partition_from_masks(self, masks: List[np.ndarray]) -> Partition:
        """Reassemble a :class:`Partition` from per-session masks; raises if
        the masks are not a disjoint cover (hardware self-check)."""
        group_of = np.full(self.chain_length, -1, dtype=np.int32)
        for g, mask in enumerate(masks):
            if np.any(group_of[mask] != -1):
                raise PartitionError("session masks overlap")
            group_of[mask] = g
        if np.any(group_of < 0):
            raise PartitionError("session masks do not cover the chain")
        scheme = "random-selection" if self.mode == "random" else "interval"
        return Partition(group_of, self.num_groups, scheme=scheme)
