"""Two-step partitioning — the paper's contribution (Sections 2.2 and 3).

Step 1: a small number of *interval-based* partitions give rapid
coarse-grained resolution (clustered failing cells land in few intervals).
Step 2: the remaining partitions use *random selection* for fine-grained
pruning.  The paper's experiments use a single interval partition
("For the sake of simplicity, we use only one interval-based partition ...
even though we have observed that in some cases, the use of more
interval-based partitions leads to higher diagnostic resolution"); the
``num_interval_partitions`` knob exposes that design choice for the
ablation study.
"""

from __future__ import annotations

from typing import List, Optional

from .interval import IntervalPartitioner
from .partitions import Partition, PartitionError
from .random_selection import RandomSelectionPartitioner


class TwoStepPartitioner:
    """Emits interval partitions first, then random-selection partitions."""

    def __init__(
        self,
        length: int,
        num_groups: int,
        num_interval_partitions: int = 1,
        lfsr_degree: int = 16,
        length_bits: Optional[int] = None,
        interval_seed: int = 1,
        random_seed: int = 0x5EED,
    ):
        if num_interval_partitions < 0:
            raise PartitionError("num_interval_partitions must be non-negative")
        self.length = length
        self.num_groups = num_groups
        self.num_interval_partitions = num_interval_partitions
        self._interval = IntervalPartitioner(
            length, num_groups, lfsr_degree, length_bits, seed=interval_seed
        )
        self._random = RandomSelectionPartitioner(
            length, num_groups, lfsr_degree, seed=random_seed
        )
        self._emitted = 0

    def next_partition(self) -> Partition:
        if self._emitted < self.num_interval_partitions:
            partition = self._interval.next_partition()
        else:
            partition = self._random.next_partition()
        self._emitted += 1
        return partition

    def partitions(self, count: int) -> List[Partition]:
        return [self.next_partition() for _ in range(count)]


def make_partitioner(
    scheme: str,
    length: int,
    num_groups: int,
    lfsr_degree: int = 16,
    seed: Optional[int] = None,
    num_interval_partitions: int = 1,
):
    """Factory over the paper's schemes: ``"interval"``, ``"random"``,
    ``"two-step"``, ``"deterministic"``.

    ``seed=None`` picks each scheme's default: the interval seed search
    starts at 1, the random-selection IVR starts at ``0x5EED`` (an arbitrary
    dense state — near-degenerate states like 1 give the first partition a
    long run of equal labels before the register fills up).
    """
    if scheme == "interval":
        return IntervalPartitioner(length, num_groups, lfsr_degree, seed=seed or 1)
    if scheme == "random":
        return RandomSelectionPartitioner(
            length, num_groups, lfsr_degree, seed=seed if seed is not None else 0x5EED
        )
    if scheme == "two-step":
        return TwoStepPartitioner(
            length,
            num_groups,
            num_interval_partitions=num_interval_partitions,
            lfsr_degree=lfsr_degree,
            interval_seed=seed or 1,
        )
    if scheme == "deterministic":
        from .deterministic import DeterministicPartitioner

        return DeterministicPartitioner(length, num_groups)
    raise ValueError(f"unknown scheme {scheme!r}")
