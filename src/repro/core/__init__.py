"""The paper's contribution: partitioning schemes (random-selection,
interval-based, two-step, plus baselines), the Fig. 1 selection hardware,
the diagnosis engine and superposition pruning."""

from .binary_search import BinarySearchResult, binary_search_diagnose
from .chainmap import chain_map
from .ordering import (
    interleaved_scan_order,
    permuted_scan_config,
    random_scan_order,
    response_span,
    reversed_scan_order,
)
from .vector_diagnosis import (
    VectorDiagnosisResult,
    diagnose_vectors,
    diagnose_vectors_population,
    failing_vectors,
    vector_diagnostic_resolution,
)
from .deterministic import DeterministicPartitioner, fixed_interval_partition
from .diagnosis import (
    DiagnosisResult,
    diagnose,
    diagnostic_resolution,
    dr_by_partition_count,
    partitions_to_reach_dr,
)
from .diagnosis_batch import (
    diagnose_population,
    resolve_diagnosis_chunk,
    scatter_population_signatures,
)
from .interval import (
    IntervalPartitioner,
    default_length_bits,
    draw_interval_lengths,
    find_seed,
    intervals_to_partition,
    lengths_cover,
    lengths_cover_exactly,
)
from .partitions import (
    Partition,
    PartitionError,
    candidate_positions,
    validate_partition_set,
)
from .planner import (
    CampaignPlan,
    expected_dr,
    group_failure_probability,
    expected_population_dr,
    partitions_needed,
    plan_campaign,
    plan_campaign_for_population,
)
from .random_selection import RandomSelectionPartitioner
from .selection_hw import SelectionHardware
from .superposition import apply_superposition, superposition_prune
from .time_model import (
    TimeEstimate,
    adaptive_cycles,
    campaign_cycles,
    cycles_to_reach_dr,
    session_cycles,
)
from .two_step import TwoStepPartitioner, make_partitioner

__all__ = [
    "BinarySearchResult",
    "DeterministicPartitioner",
    "DiagnosisResult",
    "IntervalPartitioner",
    "Partition",
    "PartitionError",
    "RandomSelectionPartitioner",
    "SelectionHardware",
    "TwoStepPartitioner",
    "VectorDiagnosisResult",
    "apply_superposition",
    "diagnose_population",
    "diagnose_vectors",
    "diagnose_vectors_population",
    "failing_vectors",
    "resolve_diagnosis_chunk",
    "scatter_population_signatures",
    "interleaved_scan_order",
    "permuted_scan_config",
    "random_scan_order",
    "response_span",
    "reversed_scan_order",
    "vector_diagnostic_resolution",
    "binary_search_diagnose",
    "CampaignPlan",
    "chain_map",
    "expected_dr",
    "group_failure_probability",
    "partitions_needed",
    "expected_population_dr",
    "plan_campaign",
    "plan_campaign_for_population",
    "candidate_positions",
    "default_length_bits",
    "diagnose",
    "diagnostic_resolution",
    "dr_by_partition_count",
    "draw_interval_lengths",
    "find_seed",
    "fixed_interval_partition",
    "intervals_to_partition",
    "lengths_cover",
    "lengths_cover_exactly",
    "make_partitioner",
    "partitions_to_reach_dr",
    "TimeEstimate",
    "adaptive_cycles",
    "campaign_cycles",
    "cycles_to_reach_dr",
    "session_cycles",
    "superposition_prune",
    "validate_partition_set",
]
