"""Partition abstraction: a disjoint grouping of the scan (shift) positions.

A partition assigns every shift position ``0 .. length-1`` to exactly one of
``num_groups`` groups.  One BIST session is spent per group; group sizes may
be uneven (both the random-selection and the interval-based schemes of the
paper produce uneven groups), and groups may be empty (an interval partition
whose drawn lengths cover the chain early leaves trailing groups empty —
their sessions trivially pass).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np


class PartitionError(ValueError):
    """Raised on malformed partitions."""


@dataclass(frozen=True)
class Partition:
    """``group_of[p]`` is the group index of shift position ``p``."""

    group_of: np.ndarray
    num_groups: int
    scheme: str = "unspecified"

    def __post_init__(self) -> None:
        groups = np.asarray(self.group_of)
        if groups.ndim != 1 or groups.size == 0:
            raise PartitionError("group_of must be a non-empty 1-D array")
        if self.num_groups < 1:
            raise PartitionError("num_groups must be positive")
        if groups.min() < 0 or groups.max() >= self.num_groups:
            raise PartitionError("group indices out of range")
        object.__setattr__(self, "group_of", groups.astype(np.int32))

    @property
    def length(self) -> int:
        return int(self.group_of.size)

    def members(self, group: int) -> np.ndarray:
        """Shift positions belonging to ``group`` (sorted)."""
        return np.flatnonzero(self.group_of == group)

    def group_sizes(self) -> List[int]:
        counts = np.bincount(self.group_of, minlength=self.num_groups)
        return [int(c) for c in counts]

    def is_interval_partition(self) -> bool:
        """True iff every group is a single run of consecutive positions."""
        changes = int(np.count_nonzero(np.diff(self.group_of)))
        nonempty = sum(1 for s in self.group_sizes() if s)
        return changes == nonempty - 1

    def as_intervals(self) -> List[tuple]:
        """``(group, start, end_exclusive)`` runs in position order."""
        runs = []
        start = 0
        groups = self.group_of
        for p in range(1, self.length + 1):
            if p == self.length or groups[p] != groups[start]:
                runs.append((int(groups[start]), start, p))
                start = p
        return runs


def validate_partition_set(partitions: Sequence[Partition]) -> None:
    """Check a diagnosis partition set is self-consistent (equal lengths)."""
    if not partitions:
        raise PartitionError("empty partition set")
    length = partitions[0].length
    for part in partitions:
        if part.length != length:
            raise PartitionError("partitions cover different chain lengths")


def candidate_positions(
    partitions: Sequence[Partition], failing_groups: Sequence[Sequence[int]]
) -> np.ndarray:
    """Intersection pruning (inclusion/exclusion over sessions).

    A position survives iff, in *every* partition, its group is among that
    partition's failing groups.  Returns a boolean mask over positions.
    """
    validate_partition_set(partitions)
    if len(failing_groups) != len(partitions):
        raise PartitionError("failing_groups must align with partitions")
    mask = np.ones(partitions[0].length, dtype=bool)
    for part, failing in zip(partitions, failing_groups):
        failing_set = np.zeros(part.num_groups, dtype=bool)
        for g in failing:
            failing_set[g] = True
        mask &= failing_set[part.group_of]
    return mask
