"""Superposition-based candidate pruning (Bayraktaroglu & Orailoglu [7]).

The MISR is linear, so the XOR of two sessions' *error signatures* on the
same response channel equals the error signature of the error stream
restricted to the **symmetric difference** of the two sessions' observed
cell sets (errors in the common cells cancel).  No extra test sessions are
needed: the derived signatures come for free from the ones already
collected.

If a derived signature is zero, the symmetric-difference region (with
aliasing probability ``2**-width``) contains no error-capturing cells, and
every candidate inside it can be pruned.  This recovers additional
resolution exactly where plain intersection pruning is weakest: a cell that
shares a failing group with a true failing cell in *every* partition
survives intersection, but usually sits in some failing group pair whose
symmetric difference is error-free.

The procedure iterates to a fixed point because pruning one region can make
another pair's difference decisive.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..bist.scan import ScanConfig
from ..bist.session import SessionOutcome
from .diagnosis import DiagnosisResult, _cells_from_mask
from .partitions import Partition


def superposition_prune(
    partitions: Sequence[Partition],
    outcomes: Sequence[SessionOutcome],
    candidate_mask: np.ndarray,
    max_rounds: int = 4,
) -> np.ndarray:
    """Refine a candidate mask ``[chain, position]`` using derived
    (superposed) signatures.

    ``outcomes`` must carry real MISR error signatures — the exact
    (alias-free) session mode collapses all failing signatures to 1 and
    would erase the information this pruning relies on.
    """
    _require_real_signatures(outcomes)
    mask = candidate_mask.copy()
    # Failing sessions grouped by channel: only same-channel signatures are
    # comparable (different channels inject at different MISR stages, and
    # their error streams have disjoint support — equal nonzero signatures
    # across channels could only be aliasing).
    by_channel: Dict[int, List[Tuple[int, np.ndarray, int]]] = {}
    for part_idx, (part, outcome) in enumerate(zip(partitions, outcomes)):
        for group, channel in outcome.failing_pairs:
            members = part.group_of == group
            by_channel.setdefault(channel, []).append(
                (part_idx, members, outcome.signatures[group][channel])
            )
    for _round in range(max_rounds):
        changed = False
        for channel, sessions in by_channel.items():
            for i in range(len(sessions)):
                part_i, members_i, sig_i = sessions[i]
                for j in range(i + 1, len(sessions)):
                    part_j, members_j, sig_j = sessions[j]
                    if part_i == part_j:
                        # Groups of one partition are disjoint; their XOR
                        # covers the union and can only be zero through
                        # aliasing.
                        continue
                    if sig_i != sig_j:
                        continue
                    difference = np.logical_xor(members_i, members_j)
                    if (mask[channel] & difference).any():
                        mask[channel] &= ~difference
                        changed = True
        if not changed:
            break
    return mask


def apply_superposition(
    result: DiagnosisResult, scan_config: ScanConfig, max_rounds: int = 4
) -> DiagnosisResult:
    """Return a new :class:`DiagnosisResult` with superposition pruning
    applied on top of the intersection-pruned candidates."""
    if result.position_mask is None:
        raise ValueError("result carries no position mask")
    mask = superposition_prune(
        result.partitions, result.outcomes, result.position_mask, max_rounds
    )
    return DiagnosisResult(
        actual_cells=set(result.actual_cells),
        candidate_cells=_cells_from_mask(scan_config, mask),
        outcomes=list(result.outcomes),
        partitions=list(result.partitions),
        candidate_history=list(result.candidate_history),
        position_mask=mask,
    )


def _require_real_signatures(outcomes: Sequence[SessionOutcome]) -> None:
    # Exact-mode outcomes use the placeholder signature 1 for every failing
    # (group, channel); two or more distinct nonzero signatures cannot occur
    # then.
    nonzero = {
        sig
        for outcome in outcomes
        for per_channel in outcome.signatures
        for sig in per_channel
        if sig != 0
    }
    if nonzero and nonzero == {1}:
        raise ValueError(
            "superposition pruning needs MISR signatures; run diagnosis with "
            "a LinearCompactor instead of exact mode"
        )
