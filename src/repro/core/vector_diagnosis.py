"""Failing test-vector identification (companion scheme, Liu, Chakrabarty &
Goessel, DATE 2002 [4]).

The paper's reference [4] applies the same interval idea on the *time*
axis: instead of masking scan cells, the BIST flow is split into sessions
that each compact the responses of one group of *patterns*, so a signature
mismatch localizes the failing test vectors.  Knowing the failing vectors
is the other half of failure analysis (it selects the patterns to replay on
an ATE for effect-cause analysis), and the paper positions the failing-cell
scheme as the space-axis complement of this known-time scheme.

The implementation mirrors :mod:`repro.core.diagnosis`, with partitions
over pattern indices and signatures collected per (pattern-group, channel)
session.  All four partitioning schemes apply unchanged — a
:class:`repro.core.partitions.Partition` over patterns instead of shift
positions — because errors cluster in time too (a fault is detected by
correlated pattern subsets).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set

import numpy as np

from ..bist.misr import LinearCompactor
from ..bist.scan import ScanConfig
from ..bist.session import (
    collect_error_event_arrays,
    collect_population_events,
    event_contributions,
)
from ..sim.faultsim import FaultResponse
from ..telemetry import METRICS, span
from .partitions import Partition, validate_partition_set


@dataclass
class VectorDiagnosisResult:
    """Outcome of failing-vector diagnosis for one fault."""

    actual_vectors: Set[int]
    candidate_vectors: Set[int]
    candidate_history: List[int] = field(default_factory=list)

    @property
    def detected(self) -> bool:
        return bool(self.actual_vectors)

    @property
    def sound(self) -> bool:
        return self.actual_vectors <= self.candidate_vectors


def failing_vectors(response: FaultResponse) -> Set[int]:
    """Patterns under which at least one scan cell captured an error."""
    if not response.cell_errors:
        return set()
    combined = np.bitwise_or.reduce(
        np.stack(list(response.cell_errors.values())), axis=0
    )
    bits = np.unpackbits(combined.view(np.uint8), bitorder="little")
    return {int(p) for p in np.flatnonzero(bits)}


def diagnose_vectors(
    response: FaultResponse,
    scan_config: ScanConfig,
    partitions: Sequence[Partition],
    compactor: Optional[LinearCompactor] = None,
) -> VectorDiagnosisResult:
    """Identify failing test vectors via pattern-group sessions.

    ``partitions`` must cover ``response.num_patterns`` positions (pattern
    indices).  Session ``(partition, group)`` compacts the responses of the
    patterns in that group only; a signature mismatch marks the group
    failing, and candidates are intersected across partitions exactly as in
    the failing-cell scheme.
    """
    partitions = list(partitions)
    validate_partition_set(partitions)
    if partitions[0].length != response.num_patterns:
        raise ValueError(
            f"partition length {partitions[0].length} != number of patterns "
            f"{response.num_patterns}"
        )
    events = collect_error_event_arrays(response, scan_config)
    chain_cycles = scan_config.max_length
    total_cycles = scan_config.total_cycles(response.num_patterns)

    # Within a session, only the selected patterns' unload windows drive the
    # compactor; the per-pattern window keeps its global timing so
    # signatures stay comparable.  Contributions are partition-independent,
    # so one batch evaluation serves all partitions.
    batched = compactor is None or hasattr(compactor, "batch_impulse_responses")
    if batched:
        contributions = event_contributions(events, compactor, total_cycles)
    event_patterns = events.cycles // chain_cycles

    mask = np.ones(response.num_patterns, dtype=bool)
    history: List[int] = []
    for part in partitions:
        groups = part.group_of[event_patterns]
        if compactor is None:
            failing = np.zeros(part.num_groups, dtype=bool)
            failing[groups] = True
        elif batched:
            signatures = np.zeros(part.num_groups, dtype=np.uint64)
            np.bitwise_xor.at(signatures, groups, contributions)
            failing = signatures != 0
        else:
            scalar = [0] * part.num_groups
            for group, channel, cycle in zip(groups, events.channels, events.cycles):
                scalar[int(group)] ^= compactor.impulse_response(
                    int(channel), total_cycles - 1 - int(cycle)
                )
            failing = np.array([sig != 0 for sig in scalar])
        mask &= failing[part.group_of]
        history.append(int(mask.sum()))

    return VectorDiagnosisResult(
        actual_vectors=failing_vectors(response),
        candidate_vectors={int(p) for p in np.flatnonzero(mask)},
        candidate_history=history,
    )


def diagnose_vectors_population(
    responses: Sequence[FaultResponse],
    scan_config: ScanConfig,
    partitions: Sequence[Partition],
    compactor: Optional[LinearCompactor] = None,
    chunk: Optional[int] = None,
) -> List[VectorDiagnosisResult]:
    """Identify failing vectors for a whole fault population in one scatter.

    The pattern-axis twin of
    :func:`repro.core.diagnosis_batch.diagnose_population`: every fault's
    events are extracted in one pass, one ``batch_impulse_responses`` call
    covers the population, and one scatter into a single-channel
    ``(fault, partition, group, 1)`` tensor (shared
    :func:`~repro.core.diagnosis_batch.scatter_population_signatures`)
    yields every session verdict.  Bit-identical to calling
    :func:`diagnose_vectors` per response; gated by the same
    ``REPRO_DIAGNOSIS_BATCH`` knob (``0`` falls back to the per-fault
    loop, as do scalar-only compactors and mixed pattern counts).
    """
    from .diagnosis_batch import resolve_diagnosis_chunk

    responses = list(responses)
    partitions = list(partitions)
    if not responses:
        return []
    chunk = resolve_diagnosis_chunk(chunk)
    batched = compactor is None or hasattr(compactor, "batch_impulse_responses")
    uniform = len({r.num_patterns for r in responses}) <= 1
    if chunk == 0 or not batched or not uniform:
        METRICS.incr("diagnosis.perfault_faults", len(responses))
        return [
            diagnose_vectors(response, scan_config, partitions, compactor)
            for response in responses
        ]
    validate_partition_set(partitions)
    if partitions[0].length != responses[0].num_patterns:
        raise ValueError(
            f"partition length {partitions[0].length} != number of patterns "
            f"{responses[0].num_patterns}"
        )
    results: List[VectorDiagnosisResult] = []
    for lo in range(0, len(responses), chunk):
        results.extend(
            _diagnose_vectors_chunk(
                responses[lo:lo + chunk], scan_config, partitions, compactor
            )
        )
    return results


def _diagnose_vectors_chunk(
    responses: Sequence[FaultResponse],
    scan_config: ScanConfig,
    partitions: Sequence[Partition],
    compactor: Optional[LinearCompactor],
) -> List[VectorDiagnosisResult]:
    from .diagnosis_batch import scatter_population_signatures

    num_faults = len(responses)
    num_parts = len(partitions)
    max_groups = max(part.num_groups for part in partitions)
    num_patterns = responses[0].num_patterns
    total_cycles = scan_config.total_cycles(num_patterns)

    with span("diagnose.vector_batch_kernel", faults=num_faults,
              partitions=num_parts) as sp:
        population = collect_population_events(responses, scan_config)
        events = population.events
        METRICS.incr("diagnosis.batch_kernel_calls")
        METRICS.incr("diagnosis.batch_faults", num_faults)
        METRICS.observe("diagnosis.chunk_faults", num_faults)
        METRICS.observe("diagnosis.events_per_launch", len(events))
        METRICS.gauge("diagnosis.last_events_per_launch", len(events))
        sp.add("events", len(events))

        if compactor is None:
            contributions = None
        else:
            contributions = compactor.batch_impulse_responses(
                events.channels, total_cycles - 1 - events.cycles
            )
        event_patterns = events.cycles // scan_config.max_length

        tensor = np.zeros(
            (num_faults, num_parts, max_groups, 1), dtype=np.uint64
        )
        if len(events):
            group_stack = np.stack(
                [np.asarray(part.group_of) for part in partitions]
            )
            scatter_population_signatures(
                tensor, population.fault_of,
                group_stack[:, event_patterns], None, contributions,
            )

        failing = tensor[..., 0] != 0  # [fault, partition, group]
        prefix = np.empty((num_parts, num_faults, num_patterns), dtype=bool)
        for p, part in enumerate(partitions):
            prefix[p] = failing[:, p][:, part.group_of]
        np.logical_and.accumulate(prefix, axis=0, out=prefix)
        history = prefix.sum(axis=2)  # [partition, fault]

        cand_fault, cand_pattern = np.nonzero(prefix[-1])
        cand_bounds = np.searchsorted(cand_fault, np.arange(num_faults + 1))
        # Actual failing vectors = the unique (fault, pattern) event pairs.
        pairs = np.unique(
            population.fault_of * np.int64(num_patterns) + event_patterns
        )
        actual_fault, actual_pattern = pairs // num_patterns, pairs % num_patterns
        actual_bounds = np.searchsorted(actual_fault, np.arange(num_faults + 1))

    return [
        VectorDiagnosisResult(
            actual_vectors={
                int(p)
                for p in actual_pattern[actual_bounds[f]:actual_bounds[f + 1]]
            },
            candidate_vectors={
                int(p) for p in cand_pattern[cand_bounds[f]:cand_bounds[f + 1]]
            },
            candidate_history=[int(h) for h in history[:, f]],
        )
        for f in range(num_faults)
    ]


def vector_diagnostic_resolution(
    results: Sequence[VectorDiagnosisResult],
) -> float:
    """DR over failing vectors, mirroring the failing-cell metric."""
    total_candidates = 0
    total_actual = 0
    for result in results:
        if not result.detected:
            continue
        total_candidates += len(result.candidate_vectors)
        total_actual += len(result.actual_vectors)
    if total_actual == 0:
        raise ValueError("no detected faults in the result set")
    return (total_candidates - total_actual) / total_actual
