"""Population-fused diagnosis: diagnose every fault in one scatter.

:func:`repro.core.diagnosis.diagnose` already collapses all sessions of all
partitions of *one* fault into a single signature scatter, but callers
still loop it over the fault population — hundreds of tiny numpy launches
whose Python dispatch dominates once fault simulation itself is batched.
This module fuses the population axis too:

1. every fault's :class:`~repro.bist.session.ErrorEvents` are extracted in
   one ``np.nonzero`` (:func:`~repro.bist.session.collect_population_events`),
2. one ``batch_impulse_responses`` call covers every event of every fault,
3. one ``np.bitwise_xor.at`` scatter fills the whole
   ``(fault, partition, group, channel)`` signature tensor (exact mode is a
   boolean scatter),
4. one cumulative AND over the partition axis yields every fault's
   candidate mask *and* its full ``candidate_history`` prefix sweep.

The results are bit-identical :class:`~repro.core.diagnosis.DiagnosisResult`
objects whose :class:`~repro.bist.session.SessionOutcome` views alias
slices of the signature tensor, so Table 1 / Figure 5 / superposition
consumers are untouched.

``REPRO_DIAGNOSIS_BATCH`` gates the kernel: unset/empty runs fused with the
default chunk, ``0`` falls back to the per-fault oracle, any other integer
is the number of faults fused per chunk (bounding the event tensor).  With
``workers > 1`` chunks fan out over the fork pool through
:func:`repro.parallel.parallel_map`, with a packed transport codec that
ships each chunk's results as a handful of flat arrays instead of
thousands of pickled Python objects.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..bist.misr import LinearCompactor
from ..bist.scan import ScanConfig
from ..bist.session import SessionOutcome, collect_population_events
from ..parallel import Codec, parallel_map, resolve_workers
from ..sim.faultsim import FaultResponse
from ..telemetry import METRICS, span, warn_env_once
from .diagnosis import DiagnosisResult, diagnose
from .partitions import Partition, validate_partition_set

#: Default faults fused per kernel launch.  The transient arrays scale with
#: ``faults x partitions x events-per-fault``; 256 keeps the largest
#: benchmark's event tensor in the tens of megabytes while amortizing the
#: Python dispatch over hundreds of faults.
DEFAULT_CHUNK = 256


def resolve_diagnosis_chunk(chunk: Optional[int] = None) -> int:
    """Normalize a fused-diagnosis chunk request.

    ``None`` reads ``REPRO_DIAGNOSIS_BATCH``: unset/empty means the default
    chunk, ``0`` disables fusion (per-fault oracle), any other integer is
    the faults-per-chunk bound.  Unparseable values warn once
    (``REPRO_LOG``) and fall back to the default.  Returns 0 (disabled) or
    a chunk size >= 1.
    """
    if chunk is None:
        raw = os.environ.get("REPRO_DIAGNOSIS_BATCH", "").strip()
        if not raw:
            return DEFAULT_CHUNK
        try:
            chunk = int(raw)
        except ValueError:
            warn_env_once(
                "REPRO_DIAGNOSIS_BATCH", raw,
                f"using the default chunk of {DEFAULT_CHUNK}",
            )
            return DEFAULT_CHUNK
    if chunk <= 0:
        return 0
    return chunk


def fused_enabled() -> bool:
    """True when the environment selects the fused kernel."""
    return resolve_diagnosis_chunk() > 0


def diagnose_population(
    responses: Sequence[FaultResponse],
    scan_config: ScanConfig,
    partitions: Sequence[Partition],
    compactor: Optional[LinearCompactor] = None,
    channel_resolution: bool = True,
    chunk: Optional[int] = None,
    workers: Optional[int] = None,
) -> List[DiagnosisResult]:
    """Diagnose a whole fault population, fused (default) or per fault.

    Bit-identical to ``[diagnose(r, ...) for r in responses]`` for any
    chunk size and worker count.  Falls back to the per-fault path when
    fusion is disabled, the compactor only implements the scalar
    ``impulse_response`` protocol, or the responses disagree on the
    pattern count (the stacked extraction needs uniform word vectors).
    """
    responses = list(responses)
    partitions = list(partitions)
    chunk = resolve_diagnosis_chunk(chunk)
    batched_compactor = compactor is None or hasattr(
        compactor, "batch_impulse_responses"
    )
    uniform = len({r.num_patterns for r in responses}) <= 1
    if not responses:
        return []
    if chunk == 0 or not batched_compactor or not uniform:
        METRICS.incr("diagnosis.perfault_faults", len(responses))
        return parallel_map(
            lambda i: diagnose(
                responses[i], scan_config, partitions, compactor,
                channel_resolution=channel_resolution,
            ),
            len(responses),
            workers,
        )
    validate_partition_set(partitions)
    if partitions[0].length != scan_config.max_length:
        raise ValueError(
            f"partition length {partitions[0].length} != scan configuration "
            f"length {scan_config.max_length}"
        )
    chunks = [
        (start, min(start + chunk, len(responses)))
        for start in range(0, len(responses), chunk)
    ]
    if len(chunks) > 1 and resolve_workers(workers) > 1:
        codec = _make_chunk_codec(partitions, scan_config, channel_resolution)
        chunk_results = parallel_map(
            lambda c: _diagnose_chunk(
                responses[chunks[c][0]:chunks[c][1]], scan_config, partitions,
                compactor, channel_resolution,
            ),
            len(chunks),
            workers,
            min_items=2,
            codec=codec,
        )
    else:
        chunk_results = [
            _diagnose_chunk(
                responses[lo:hi], scan_config, partitions, compactor,
                channel_resolution,
            )
            for lo, hi in chunks
        ]
    return [result for group in chunk_results for result in group]


def scatter_population_signatures(
    tensor: np.ndarray,
    fault_of: np.ndarray,
    event_groups: np.ndarray,
    event_channels: Optional[np.ndarray],
    contributions: Optional[np.ndarray],
) -> np.ndarray:
    """One scatter for every event of every fault of every partition.

    ``tensor`` is the ``(fault, partition, group, channel)`` ``uint64``
    signature accumulator (modified in place); ``event_groups[p, e]`` is
    event ``e``'s group under partition ``p``; ``fault_of`` maps events to
    population indices.  ``event_channels=None`` means a single-channel
    layout (the failing-vector scheme).  ``contributions=None`` selects the
    exact (alias-free) boolean scatter; otherwise the per-event impulse
    responses XOR-accumulate.  Shared by the failing-cell and
    failing-vector fused kernels.
    """
    num_faults, num_parts, max_groups, num_channels = tensor.shape
    if event_groups.size == 0:
        return tensor
    flat = tensor.reshape(-1)
    index = (
        (fault_of[np.newaxis, :] * num_parts
         + np.arange(num_parts)[:, np.newaxis]) * (max_groups * num_channels)
        + event_groups * num_channels
    )
    if event_channels is not None:
        index = index + event_channels[np.newaxis, :]
    index = index.ravel()
    if contributions is None:
        flat[index] = np.uint64(1)
    else:
        np.bitwise_xor.at(flat, index, np.tile(contributions, num_parts))
    return tensor


def _diagnose_chunk(
    responses: Sequence[FaultResponse],
    scan_config: ScanConfig,
    partitions: Sequence[Partition],
    compactor: Optional[LinearCompactor],
    channel_resolution: bool,
) -> List[DiagnosisResult]:
    """The fused kernel proper: one chunk of faults in a handful of ops."""
    num_faults = len(responses)
    num_parts = len(partitions)
    num_channels = scan_config.num_chains
    max_groups = max(part.num_groups for part in partitions)
    total_cycles = scan_config.total_cycles(responses[0].num_patterns)

    with span("diagnose.batch_kernel", faults=num_faults,
              partitions=num_parts) as sp:
        population = collect_population_events(responses, scan_config)
        events = population.events
        METRICS.incr("diagnosis.batch_kernel_calls")
        METRICS.incr("diagnosis.batch_faults", num_faults)
        METRICS.observe("diagnosis.chunk_faults", num_faults)
        METRICS.observe("diagnosis.events_per_launch", len(events))
        METRICS.gauge("diagnosis.last_events_per_launch", len(events))
        sp.add("events", len(events))

        exact = compactor is None
        if exact:
            contributions = None
        else:
            steps = total_cycles - 1 - events.cycles
            if np.any(steps < 0) or np.any(events.cycles < 0):
                raise ValueError(
                    f"event cycle outside session of {total_cycles}"
                )
            contributions = compactor.batch_impulse_responses(
                events.channels, steps
            )

        tensor = np.zeros(
            (num_faults, num_parts, max_groups, num_channels), dtype=np.uint64
        )
        if len(events):
            group_stack = np.stack(
                [np.asarray(part.group_of) for part in partitions]
            )
            scatter_population_signatures(
                tensor, population.fault_of,
                group_stack[:, events.positions], events.channels,
                contributions,
            )
        METRICS.incr(
            "session.sessions_compacted",
            num_faults * sum(part.num_groups for part in partitions),
        )

        # Per-partition failing verdicts -> per-position masks, stacked as
        # [partition, fault, chain, position] so one cumulative AND along
        # the partition axis yields every prefix of the intersection sweep.
        collapsed = None
        if channel_resolution:
            failing = tensor != 0  # [fault, partition, group, channel]
        else:
            if exact:
                collapsed = (tensor != 0).any(axis=3).astype(np.uint64)
            elif num_channels:
                collapsed = np.bitwise_xor.reduce(tensor, axis=3)
            else:
                collapsed = np.zeros(
                    (num_faults, num_parts, max_groups), dtype=np.uint64
                )
            failing = collapsed != 0  # [fault, partition, group]

        presence = scan_config.presence_mask()  # [chain, position]
        length = scan_config.max_length
        prefix = np.empty(
            (num_parts, num_faults, scan_config.num_chains, length), dtype=bool
        )
        for p, part in enumerate(partitions):
            if channel_resolution:
                # [fault, position, channel] -> [fault, chain, position]
                prefix[p] = failing[:, p][:, part.group_of, :].transpose(0, 2, 1)
            else:
                prefix[p] = failing[:, p][:, part.group_of][:, np.newaxis, :]
        np.logical_and.accumulate(prefix, axis=0, out=prefix)
        prefix &= presence[np.newaxis, np.newaxis]
        history = prefix.sum(axis=(2, 3))  # [partition, fault]

        final_mask = prefix[-1]  # [fault, chain, position]
        grid = scan_config.cell_id_grid()
        valid = final_mask & (grid >= 0)[np.newaxis]
        fault_idx, chain_idx, pos_idx = np.nonzero(valid)
        candidate_cells = grid[chain_idx, pos_idx]
        bounds = np.searchsorted(fault_idx, np.arange(num_faults + 1))

    results: List[DiagnosisResult] = []
    for f, response in enumerate(responses):
        if channel_resolution:
            outcomes = [
                SessionOutcome(
                    signature_matrix=tensor[f, p, : part.num_groups, :]
                )
                for p, part in enumerate(partitions)
            ]
        else:
            outcomes = [
                SessionOutcome(
                    signature_matrix=collapsed[f, p, : part.num_groups]
                    .reshape(-1, 1)
                )
                for p, part in enumerate(partitions)
            ]
        candidates = {
            int(c) for c in candidate_cells[bounds[f]:bounds[f + 1]]
        }
        results.append(
            DiagnosisResult(
                actual_cells=set(response.failing_cells),
                candidate_cells=candidates,
                outcomes=outcomes,
                partitions=partitions,
                candidate_history=[int(h) for h in history[:, f]],
                position_mask=final_mask[f].copy(),
            )
        )
    return results


# -- packed chunk transport ----------------------------------------------------


def _make_chunk_codec(
    partitions: Sequence[Partition],
    scan_config: ScanConfig,
    channel_resolution: bool,
) -> Codec:
    """Transport codec for forked chunk results.

    A chunk's :class:`DiagnosisResult` list is mostly numpy state sliced
    out of shared tensors; pickling the objects directly would ship
    thousands of small arrays and Python sets.  The codec re-packs each
    pool chunk into a handful of flat arrays (signature tensor, packed
    candidate masks, concatenated cell lists with offsets) and rebuilds
    bit-identical results in the parent.  The partition list never crosses
    the pipe — both sides already hold it (fork inheritance in the child,
    the closure here in the parent).
    """
    group_counts = [part.num_groups for part in partitions]
    max_groups = max(group_counts)
    num_parts = len(partitions)
    mask_shape = (scan_config.num_chains, scan_config.max_length)
    sig_channels = scan_config.num_chains if channel_resolution else 1

    def encode(chunk_lists: List[List[DiagnosisResult]]) -> Dict[str, Any]:
        flat = [result for group in chunk_lists for result in group]
        num_faults = len(flat)
        signatures = np.zeros(
            (num_faults, num_parts, max_groups, sig_channels), dtype=np.uint64
        )
        masks = np.zeros((num_faults,) + mask_shape, dtype=bool)
        history = np.zeros((num_faults, num_parts), dtype=np.int64)
        actual = [np.asarray(sorted(r.actual_cells), dtype=np.int64)
                  for r in flat]
        cand = [np.asarray(sorted(r.candidate_cells), dtype=np.int64)
                for r in flat]
        for f, result in enumerate(flat):
            masks[f] = result.position_mask
            history[f] = result.candidate_history
            for p, outcome in enumerate(result.outcomes):
                matrix = outcome.signature_matrix
                signatures[f, p, : matrix.shape[0], : matrix.shape[1]] = matrix
        return {
            "chunk_lens": np.asarray(
                [len(group) for group in chunk_lists], dtype=np.int64
            ),
            "signatures": signatures,
            "mask_bits": np.packbits(masks),
            "history": history,
            "actual": np.concatenate(actual) if actual
            else np.zeros(0, dtype=np.int64),
            "actual_offsets": np.cumsum(
                [0] + [a.size for a in actual], dtype=np.int64
            ),
            "cand": np.concatenate(cand) if cand
            else np.zeros(0, dtype=np.int64),
            "cand_offsets": np.cumsum(
                [0] + [c.size for c in cand], dtype=np.int64
            ),
        }

    def decode(wire: Dict[str, Any]) -> List[List[DiagnosisResult]]:
        chunk_lens = wire["chunk_lens"]
        num_faults = int(chunk_lens.sum())
        masks = np.unpackbits(
            wire["mask_bits"],
            count=num_faults * mask_shape[0] * mask_shape[1],
        ).astype(bool).reshape((num_faults,) + mask_shape)
        signatures = wire["signatures"]
        history = wire["history"]
        results: List[DiagnosisResult] = []
        partitions_list = list(partitions)
        for f in range(num_faults):
            outcomes = [
                SessionOutcome(
                    signature_matrix=signatures[f, p, : group_counts[p], :]
                )
                for p in range(num_parts)
            ]
            a_lo, a_hi = wire["actual_offsets"][f], wire["actual_offsets"][f + 1]
            c_lo, c_hi = wire["cand_offsets"][f], wire["cand_offsets"][f + 1]
            results.append(
                DiagnosisResult(
                    actual_cells={int(c) for c in wire["actual"][a_lo:a_hi]},
                    candidate_cells={int(c) for c in wire["cand"][c_lo:c_hi]},
                    outcomes=outcomes,
                    partitions=partitions_list,
                    candidate_history=[int(h) for h in history[f]],
                    position_mask=masks[f],
                )
            )
        regrouped: List[List[DiagnosisResult]] = []
        start = 0
        for size in chunk_lens:
            regrouped.append(results[start:start + int(size)])
            start += int(size)
        return regrouped

    def nbytes(wire: Dict[str, Any]) -> int:
        return sum(v.nbytes for v in wire.values())

    return Codec(encode=encode, decode=decode, nbytes=nbytes)
