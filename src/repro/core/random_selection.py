"""Random-selection partitioning (Rajski & Tyszer [5]).

Each scan cell's group label within a partition is read from ``r`` stages of
the selection LFSR as it steps once per shift cycle; ``b = 2**r`` groups.
Session ``g`` selects the cells whose label equals the content of Test
Counter 1.  At the end of a partition the IVR is updated with the current
LFSR state, so the next partition draws an unrelated labelling.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..bist.lfsr import IVR, LFSR
from .partitions import Partition, PartitionError


def _label_bits(num_groups: int) -> int:
    bits = (num_groups - 1).bit_length()
    if 1 << bits != num_groups:
        raise PartitionError(
            f"random-selection needs a power-of-two group count, got {num_groups}"
        )
    return bits


class RandomSelectionPartitioner:
    """Generates successive random-selection partitions, mirroring the
    LFSR + IVR behaviour of the Fig. 1 architecture."""

    def __init__(
        self,
        length: int,
        num_groups: int,
        lfsr_degree: int = 16,
        seed: int = 0x5EED,
    ):
        if length < 1:
            raise PartitionError("chain length must be positive")
        self.length = length
        self.num_groups = num_groups
        self._label_bits = _label_bits(num_groups)
        if self._label_bits > lfsr_degree:
            raise PartitionError("more label bits than LFSR stages")
        self.lfsr = LFSR(lfsr_degree, seed)
        self.ivr = IVR(self.lfsr.state)
        self._stage_positions = self.lfsr.spread_stage_positions(self._label_bits)

    def next_partition(self) -> Partition:
        """Labels for one partition; advances the IVR for the next."""
        self.ivr.reload(self.lfsr)
        group_of = np.empty(self.length, dtype=np.int32)
        for position in range(self.length):
            group_of[position] = self.lfsr.peek_stages(self._stage_positions)
            self.lfsr.step()
        self.ivr.update_from(self.lfsr)
        return Partition(group_of, self.num_groups, scheme="random-selection")

    def partitions(self, count: int) -> List[Partition]:
        return [self.next_partition() for _ in range(count)]
