"""Diagnosis engine: multi-session, multi-partition failing-cell identification.

Ties together the fault response (which cells captured errors, under which
patterns), the scan configuration (where each cell sits in the shift
sequence), the partition set (which cells each session observes) and the
compactor (whether a session's signature reveals the errors).

Candidate pruning is the classical inclusion/exclusion: a cell remains a
candidate iff its ``(group, chain)`` signature failed in *every* partition.
The optional superposition post-processing of [7] is in
:mod:`repro.core.superposition`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from ..bist.misr import LinearCompactor
from ..bist.scan import ScanConfig
from ..bist.session import (
    SessionOutcome,
    collect_error_event_arrays,
    event_contributions,
    run_partition_sessions,
    sessions_for_partitions,
)
from ..sim.faultsim import FaultResponse
from .partitions import Partition, validate_partition_set


@dataclass
class DiagnosisResult:
    """Outcome of diagnosing one fault with a partition set."""

    actual_cells: Set[int]
    candidate_cells: Set[int]
    outcomes: List[SessionOutcome]
    partitions: List[Partition]
    candidate_history: List[int] = field(default_factory=list)
    #: Candidate mask ``[chain, position]`` after intersection pruning
    #: (pre-superposition); None-presence positions are always False.
    position_mask: Optional[np.ndarray] = None

    @property
    def detected(self) -> bool:
        return bool(self.actual_cells)

    @property
    def sound(self) -> bool:
        """True if no truly failing cell was pruned (soundness can only be
        violated by MISR aliasing)."""
        return self.actual_cells <= self.candidate_cells

    @property
    def num_sessions(self) -> int:
        return sum(p.num_groups for p in self.partitions)


def diagnose(
    response: FaultResponse,
    scan_config: ScanConfig,
    partitions: Sequence[Partition],
    compactor: Optional[LinearCompactor] = None,
    channel_resolution: bool = True,
) -> DiagnosisResult:
    """Run all sessions of all partitions and intersect failing groups.

    ``compactor=None`` uses exact (alias-free) group pass/fail decisions;
    passing a :class:`LinearCompactor` models the real MISR comparison.

    ``channel_resolution=False`` collapses each session's per-chain
    signatures into one (a single shared MISR readout): cells sharing a
    shift position across chains then always stay together — the ablation
    quantifies what that costs.

    The result's ``candidate_history[k]`` is the candidate-cell count after
    the first ``k+1`` partitions — the data behind the paper's Table 1 and
    Figure 5 sweeps, at no extra simulation cost.
    """
    partitions = list(partitions)
    validate_partition_set(partitions)
    length = partitions[0].length
    if length != scan_config.max_length:
        raise ValueError(
            f"partition length {length} != scan configuration length "
            f"{scan_config.max_length}"
        )
    events = collect_error_event_arrays(response, scan_config)
    total_cycles = scan_config.total_cycles(response.num_patterns)
    num_channels = scan_config.num_chains

    # Impulse responses depend only on (channel, cycle), never on the
    # partition, so one batch evaluation and one signature scatter serve
    # every session of every partition.
    batched = compactor is None or hasattr(compactor, "batch_impulse_responses")
    if batched:
        contributions = event_contributions(events, compactor, total_cycles)
        session_outcomes = sessions_for_partitions(
            events, contributions, partitions, num_channels
        )
    else:
        session_outcomes = [
            run_partition_sessions(
                events,
                part.group_of,
                part.num_groups,
                total_cycles,
                compactor,
                num_channels=num_channels,
            )
            for part in partitions
        ]

    outcomes: List[SessionOutcome] = []
    mask = scan_config.presence_mask()  # [chain, position]
    history: List[int] = []
    for part, outcome in zip(partitions, session_outcomes):
        if not channel_resolution:
            collapsed = outcome.combined(exact=compactor is None)
            failing = collapsed.failing_matrix(1)[:, 0]  # [group]
            mask &= failing[part.group_of][np.newaxis, :]
            outcomes.append(collapsed)
        else:
            failing = outcome.failing_matrix(num_channels)  # [group, channel]
            mask &= failing[part.group_of, :].T  # -> [chain, position]
            outcomes.append(outcome)
        history.append(int(mask.sum()))

    candidates = _cells_from_mask(scan_config, mask)
    return DiagnosisResult(
        actual_cells=set(response.failing_cells),
        candidate_cells=candidates,
        outcomes=outcomes,
        partitions=partitions,
        candidate_history=history,
        position_mask=mask,
    )


def _cells_from_mask(scan_config: ScanConfig, mask: np.ndarray) -> Set[int]:
    grid = scan_config.cell_id_grid()
    return set(int(c) for c in grid[mask & (grid >= 0)])


def _detected_totals(
    results: Sequence[DiagnosisResult],
) -> Tuple[List[DiagnosisResult], int]:
    """The detected subset of a result population and its actual-cell total.

    Both DR metrics score only detected faults against the same
    denominator, so the filter and the sum are computed once and shared
    (``dr_by_partition_count`` used to redo both — and re-raise — inside
    its per-``k`` loop).
    """
    detected = [result for result in results if result.detected]
    total_actual = sum(len(result.actual_cells) for result in detected)
    if total_actual == 0:
        raise ValueError("no detected faults in the result set")
    return detected, total_actual


def diagnostic_resolution(results: Sequence[DiagnosisResult]) -> float:
    """The paper's DR metric over a fault population:

    ``DR = (Σ_f |candidates| − Σ_f |actual|) / Σ_f |actual|``

    computed over *detected* faults (undetected faults produce no failing
    cells and no failing sessions).  DR = 0 is ideal.
    """
    detected, total_actual = _detected_totals(results)
    total_candidates = sum(len(result.candidate_cells) for result in detected)
    return (total_candidates - total_actual) / total_actual


def dr_by_partition_count(
    results: Sequence[DiagnosisResult], max_partitions: int
) -> List[float]:
    """DR after 1, 2, ..., ``max_partitions`` partitions (prefix sweep)."""
    detected, total_actual = _detected_totals(results)
    values = []
    for k in range(max_partitions):
        total_candidates = sum(
            result.candidate_history[min(k, len(result.candidate_history) - 1)]
            for result in detected
        )
        values.append((total_candidates - total_actual) / total_actual)
    return values


def partitions_to_reach_dr(
    results: Sequence[DiagnosisResult],
    target_dr: float,
    max_partitions: int,
) -> Optional[int]:
    """Smallest partition count whose prefix DR is at most ``target_dr``
    (paper Figure 5); ``None`` if the target is never reached."""
    sweep = dr_by_partition_count(results, max_partitions)
    for count, dr in enumerate(sweep, start=1):
        if dr <= target_dr:
            return count
    return None
