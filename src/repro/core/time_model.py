"""Diagnosis-time accounting.

The paper's Figure 5 argues in partition counts; what the test floor pays
for is *tester cycles*.  This module converts a diagnosis campaign into
cycles under the standard test-per-scan cost model:

* one pattern costs ``max_chain_length`` shift cycles (scan-in of the next
  pattern overlaps scan-out of the previous response) plus one capture
  cycle;
* one BIST session replays the whole pattern set, plus one extra unload to
  flush the final response — ``(patterns + 1) * L + patterns`` cycles;
* a partition of ``b`` groups costs ``b`` sessions; a scheme with ``P``
  partitions costs ``P * b`` sessions, all pre-planned (no tester
  interruption);
* the adaptive binary-search baseline [6] additionally pays a
  ``resync_cycles`` penalty per session for stopping the flow, computing
  the next region and restarting — the overhead the paper's scheme avoids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..bist.scan import ScanConfig
from .diagnosis import DiagnosisResult, partitions_to_reach_dr


def session_cycles(scan_config: ScanConfig, num_patterns: int) -> int:
    """Tester cycles for one BIST session (one masked signature)."""
    length = scan_config.max_length
    return (num_patterns + 1) * length + num_patterns


def campaign_cycles(
    num_partitions: int,
    num_groups: int,
    scan_config: ScanConfig,
    num_patterns: int,
) -> int:
    """Cycles for a full pre-planned partition campaign."""
    return num_partitions * num_groups * session_cycles(scan_config, num_patterns)


def adaptive_cycles(
    num_sessions: int,
    scan_config: ScanConfig,
    num_patterns: int,
    resync_cycles: int = 10_000,
) -> int:
    """Cycles for an adaptive (binary-search) campaign, including the
    per-session stop-compute-restart penalty."""
    return num_sessions * (session_cycles(scan_config, num_patterns) + resync_cycles)


@dataclass(frozen=True)
class TimeEstimate:
    """A cycle count with a wall-clock view at a given test clock."""

    cycles: int
    clock_hz: float = 50e6

    @property
    def seconds(self) -> float:
        return self.cycles / self.clock_hz

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.cycles} cycles ({self.seconds * 1e3:.2f} ms @ {self.clock_hz / 1e6:.0f} MHz)"


def cycles_to_reach_dr(
    results: Sequence[DiagnosisResult],
    target_dr: float,
    num_groups: int,
    scan_config: ScanConfig,
    num_patterns: int,
    max_partitions: int,
) -> Optional[int]:
    """Tester cycles needed until the prefix DR drops to ``target_dr``
    (the cycle-domain version of the paper's Figure 5); ``None`` if the
    target is never reached within ``max_partitions``."""
    needed = partitions_to_reach_dr(results, target_dr, max_partitions)
    if needed is None:
        return None
    return campaign_cycles(needed, num_groups, scan_config, num_patterns)
