"""Analytic diagnosis planning: how many groups and partitions do I need?

The paper chooses group counts by rule of thumb ("our strategy is to use
more groups on the longer meta scan chains") and sweeps partition counts
empirically (Table 1, Figure 5).  For the *random-selection* stage the
expected behaviour has a clean closed form, which this module provides so
a user can size a diagnosis campaign before running anything:

With ``N`` cells, ``b`` groups per partition and a fault producing ``a``
failing cells placed uniformly (the random-label assumption):

* a given group fails with probability ``1 − (1 − 1/b)**a``;
* a non-failing cell survives one partition iff its group fails, so after
  ``k`` independent partitions it survives with probability
  ``q = (1 − (1 − 1/b)**a)**k``;
* expected candidates ``= a + (N − a)·q`` and expected DR ``= (N − a)·q/a``.

Interval partitions violate the uniformity assumption on purpose — that is
their advantage — so the planner treats the paper's two-step scheme by
pricing only its random stage (a conservative plan: the interval stage
only helps).  The model-vs-simulation agreement is pinned by tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence


def group_failure_probability(num_groups: int, failing_cells: int) -> float:
    """Probability that one particular group of a random partition contains
    at least one of ``failing_cells`` uniformly placed failing cells."""
    if num_groups < 1:
        raise ValueError("num_groups must be positive")
    if failing_cells < 0:
        raise ValueError("failing_cells must be non-negative")
    return 1.0 - (1.0 - 1.0 / num_groups) ** failing_cells


def expected_dr(
    num_cells: int, failing_cells: int, num_groups: int, num_partitions: int
) -> float:
    """Expected diagnostic resolution of random-selection partitioning."""
    if num_cells < 1 or failing_cells < 1:
        raise ValueError("need at least one cell and one failing cell")
    if failing_cells > num_cells:
        raise ValueError("more failing cells than cells")
    survive = group_failure_probability(num_groups, failing_cells) ** num_partitions
    return (num_cells - failing_cells) * survive / failing_cells


def partitions_needed(
    num_cells: int,
    failing_cells: int,
    num_groups: int,
    target_dr: float,
    max_partitions: int = 64,
) -> Optional[int]:
    """Smallest partition count whose expected DR meets ``target_dr``."""
    if target_dr < 0:
        raise ValueError("target_dr must be non-negative")
    p_fail = group_failure_probability(num_groups, failing_cells)
    if p_fail >= 1.0:
        return None  # every group always fails: no pruning at all
    threshold = target_dr * failing_cells / max(1, num_cells - failing_cells)
    if threshold >= 1.0:
        return 1
    if threshold <= 0.0:
        return None
    k = math.ceil(math.log(threshold) / math.log(p_fail))
    k = max(1, k)
    return k if k <= max_partitions else None


def expected_population_dr(
    num_cells: int,
    multiplicities: Sequence[int],
    num_groups: int,
    num_partitions: int,
) -> float:
    """Expected DR over a heterogeneous fault population.

    DR is a ratio of population sums, so heavy faults dominate: a single
    30-cell fault contributes far more surviving candidates than ten
    2-cell faults.  Planning on a single "typical" multiplicity is
    therefore optimistic; this form evaluates the exact mixture
    ``DR = Σ_f (N − a_f)·q_f / Σ_f a_f`` over the observed multiplicities
    (e.g. from :func:`repro.sim.coverage.coverage_report`).
    """
    if not multiplicities:
        raise ValueError("multiplicities must be non-empty")
    total_candidates_excess = 0.0
    total_actual = 0
    for a in multiplicities:
        if a < 1:
            continue
        a = min(a, num_cells)
        survive = group_failure_probability(num_groups, a) ** num_partitions
        total_candidates_excess += (num_cells - a) * survive
        total_actual += a
    if total_actual == 0:
        raise ValueError("no detected faults in the multiplicity list")
    return total_candidates_excess / total_actual


def plan_campaign_for_population(
    num_cells: int,
    multiplicities: Sequence[int],
    target_dr: float,
    group_choices: Sequence[int] = (4, 8, 16, 32, 64, 128),
    max_partitions: int = 64,
) -> Optional["CampaignPlan"]:
    """Cheapest campaign meeting ``target_dr`` for a measured population
    of fault multiplicities (mixture model)."""
    best: Optional[CampaignPlan] = None
    for num_groups in group_choices:
        if num_groups > num_cells:
            continue
        for k in range(1, max_partitions + 1):
            dr = expected_population_dr(num_cells, multiplicities, num_groups, k)
            if dr <= target_dr:
                plan = CampaignPlan(num_groups, k, dr)
                if best is None or plan.num_sessions < best.num_sessions:
                    best = plan
                break
    return best


@dataclass(frozen=True)
class CampaignPlan:
    """A recommended diagnosis campaign."""

    num_groups: int
    num_partitions: int
    expected_dr: float

    @property
    def num_sessions(self) -> int:
        return self.num_groups * self.num_partitions


def plan_campaign(
    num_cells: int,
    failing_cells: int,
    target_dr: float,
    group_choices: Sequence[int] = (4, 8, 16, 32, 64, 128),
    max_partitions: int = 64,
) -> Optional[CampaignPlan]:
    """The cheapest (fewest total sessions) random-selection campaign that
    meets ``target_dr`` in expectation; ``None`` if no choice does.

    ``failing_cells`` should be the *typical* (e.g. 90th-percentile) error
    multiplicity of the fault population — see
    :meth:`repro.sim.coverage.CoverageReport.multiplicity_percentiles`.
    """
    best: Optional[CampaignPlan] = None
    for num_groups in group_choices:
        if num_groups > num_cells:
            continue
        k = partitions_needed(
            num_cells, failing_cells, num_groups, target_dr, max_partitions
        )
        if k is None:
            continue
        plan = CampaignPlan(
            num_groups=num_groups,
            num_partitions=k,
            expected_dr=expected_dr(num_cells, failing_cells, num_groups, k),
        )
        if best is None or plan.num_sessions < best.num_sessions:
            best = plan
    return best
