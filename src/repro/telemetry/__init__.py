"""Zero-dependency observability for the diagnosis pipeline.

Three cooperating pieces (see docs/architecture.md, "Observability"):

* :mod:`repro.telemetry.tracer` — nested spans (wall/CPU time, attributes,
  counters) over the pipeline stages; opt-in via ``REPRO_TRACE=1`` or
  :func:`enable_tracing`, free when disabled.
* :mod:`repro.telemetry.metrics` — the process-wide
  :class:`MetricsRegistry` that cache, fault simulator, session kernels
  and the worker pool report into; forked workers ship deltas back.
* :mod:`repro.telemetry.export` — stderr span tree, JSONL trace log, and
  the per-run ``manifest.json`` (git SHA, config hash, seed, env knobs,
  metric totals, span rollup).

Plus :func:`log`, the ``REPRO_LOG``-gated progress logger that keeps
stdout clean for actual experiment output.
"""

from .export import (
    ENV_KNOBS,
    MANIFEST_SCHEMA,
    MANIFEST_SCHEMA_NAME,
    MANIFEST_SCHEMA_VERSION,
    build_manifest,
    config_hash,
    git_sha,
    kernel_selection,
    print_span_tree,
    read_trace_jsonl,
    render_span_tree,
    span_rollup,
    validate_manifest,
    write_manifest,
    write_trace_jsonl,
)
from .log import debug, log, log_level, set_log_level
from .metrics import METRICS, Histogram, MetricsRegistry, metric_key, split_metric_key
from .tracer import (
    NULL_SPAN,
    Span,
    TRACER,
    Tracer,
    disable_tracing,
    enable_tracing,
    span,
    trace_enabled,
    traced,
)

__all__ = [
    "ENV_KNOBS",
    "MANIFEST_SCHEMA",
    "MANIFEST_SCHEMA_NAME",
    "MANIFEST_SCHEMA_VERSION",
    "METRICS",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "Span",
    "TRACER",
    "Tracer",
    "build_manifest",
    "config_hash",
    "debug",
    "disable_tracing",
    "enable_tracing",
    "git_sha",
    "kernel_selection",
    "log",
    "log_level",
    "metric_key",
    "print_span_tree",
    "read_trace_jsonl",
    "render_span_tree",
    "set_log_level",
    "span",
    "span_rollup",
    "split_metric_key",
    "trace_enabled",
    "traced",
    "validate_manifest",
    "write_manifest",
    "write_trace_jsonl",
]
