"""Zero-dependency observability for the diagnosis pipeline.

Three cooperating pieces (see docs/architecture.md, "Observability"):

* :mod:`repro.telemetry.tracer` — nested spans (wall/CPU time, attributes,
  counters) over the pipeline stages; opt-in via ``REPRO_TRACE=1`` or
  :func:`enable_tracing`, free when disabled.
* :mod:`repro.telemetry.metrics` — the process-wide
  :class:`MetricsRegistry` that cache, fault simulator, session kernels
  and the worker pool report into; forked workers ship deltas back.
* :mod:`repro.telemetry.export` — stderr span tree, JSONL trace log, and
  the per-run ``manifest.json`` (git SHA, config hash, seed, env knobs,
  metric totals, span rollup).

Plus :func:`log`, the ``REPRO_LOG``-gated progress logger that keeps
stdout clean for actual experiment output.
"""

from .export import (
    ENV_KNOBS,
    MANIFEST_SCHEMA,
    MANIFEST_SCHEMA_NAME,
    MANIFEST_SCHEMA_VERSION,
    build_manifest,
    config_hash,
    git_sha,
    kernel_selection,
    print_span_tree,
    read_trace_jsonl,
    render_span_tree,
    span_rollup,
    validate_manifest,
    write_manifest,
    write_trace_jsonl,
)
from .flightrec import (
    FLIGHT,
    FlightRecorder,
    assemble_tree,
    current_trace,
    current_trace_id,
    format_traceparent,
    make_record,
    new_span_id,
    new_trace_id,
    parse_traceparent,
    trace_scope,
)
from .log import debug, log, log_level, set_log_level, warn_env_once
from .metrics import (
    METRICS,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
    metric_key,
    split_metric_key,
)
from .profiler import (
    PROFILER,
    ProfileData,
    SamplingProfiler,
    disable_profiling,
    enable_profiling,
    profile_enabled,
    resolve_profile_hz,
    write_profile_folded,
)
from .promexp import CONTENT_TYPE as PROMETHEUS_CONTENT_TYPE
from .promexp import render_prometheus, sanitize_metric_name
from .tracer import (
    NULL_SPAN,
    Span,
    TRACER,
    Tracer,
    active_span_name,
    disable_tracing,
    enable_tracing,
    span,
    trace_enabled,
    traced,
)

__all__ = [
    "ENV_KNOBS",
    "FLIGHT",
    "FlightRecorder",
    "MANIFEST_SCHEMA",
    "MANIFEST_SCHEMA_NAME",
    "MANIFEST_SCHEMA_VERSION",
    "METRICS",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "PROFILER",
    "PROMETHEUS_CONTENT_TYPE",
    "ProfileData",
    "SamplingProfiler",
    "Span",
    "TRACER",
    "Tracer",
    "active_span_name",
    "assemble_tree",
    "build_manifest",
    "config_hash",
    "current_trace",
    "current_trace_id",
    "debug",
    "disable_profiling",
    "disable_tracing",
    "enable_profiling",
    "enable_tracing",
    "format_traceparent",
    "git_sha",
    "kernel_selection",
    "log",
    "log_level",
    "make_record",
    "merge_snapshots",
    "metric_key",
    "new_span_id",
    "new_trace_id",
    "parse_traceparent",
    "print_span_tree",
    "profile_enabled",
    "read_trace_jsonl",
    "render_prometheus",
    "render_span_tree",
    "resolve_profile_hz",
    "sanitize_metric_name",
    "set_log_level",
    "span",
    "span_rollup",
    "split_metric_key",
    "trace_enabled",
    "trace_scope",
    "traced",
    "validate_manifest",
    "warn_env_once",
    "write_manifest",
    "write_profile_folded",
    "write_trace_jsonl",
]
