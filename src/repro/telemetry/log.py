"""Level-gated progress logging for the CLI and scripts.

Progress/status chatter ("benchmarking s953 ...") goes through
:func:`log` instead of bare ``print`` so it can be silenced wholesale:
``REPRO_LOG=quiet|info|debug`` (default ``info``) sets the verbosity, and
everything writes to **stderr** — stdout stays reserved for the actual
deliverables (rendered tables, DR numbers) that tests and shell pipelines
consume.  The test suite runs with ``REPRO_LOG=quiet``.
"""

from __future__ import annotations

import os
import sys
from typing import Any, Optional, Set, TextIO, Tuple

LEVELS = {"quiet": 0, "info": 1, "debug": 2}

#: Env values already warned about, so a misconfigured knob logs once per
#: process instead of once per call into the hot path.
_WARNED_ENV: Set[Tuple[str, str]] = set()

#: Programmatic override (the CLI may set this); None defers to the env.
_FORCED_LEVEL: Optional[str] = None

#: Callable returning the active request trace id (or None); installed by
#: :mod:`repro.telemetry.flightrec`, which sits above us in the import
#: graph.  When a trace context is active every log line is prefixed
#: ``[trace_id]`` so fleet stderr can be grepped per request.
_TRACE_ID_PROVIDER = None


def set_trace_id_provider(provider) -> None:
    global _TRACE_ID_PROVIDER
    _TRACE_ID_PROVIDER = provider


def log_level() -> str:
    """Active verbosity name (``quiet`` / ``info`` / ``debug``)."""
    if _FORCED_LEVEL is not None:
        return _FORCED_LEVEL
    raw = os.environ.get("REPRO_LOG", "info").strip().lower()
    return raw if raw in LEVELS else "info"


def set_log_level(level: Optional[str]) -> None:
    """Force a verbosity regardless of ``REPRO_LOG`` (``None`` to defer)."""
    global _FORCED_LEVEL
    if level is not None and level not in LEVELS:
        raise ValueError(f"unknown log level {level!r}; use {sorted(LEVELS)}")
    _FORCED_LEVEL = level


def log(message: Any, level: str = "info", stream: Optional[TextIO] = None) -> None:
    """Emit one progress line if the active verbosity admits ``level``."""
    if LEVELS.get(level, 1) > LEVELS[log_level()]:
        return
    if _TRACE_ID_PROVIDER is not None:
        trace_id = _TRACE_ID_PROVIDER()
        if trace_id:
            message = f"[{trace_id}] {message}"
    print(message, file=stream if stream is not None else sys.stderr, flush=True)


def debug(message: Any) -> None:
    log(message, level="debug")


def warn_env_once(knob: str, raw: str, fallback: str) -> None:
    """One-time ``REPRO_LOG`` warning for an unparseable env knob.

    Silent fallbacks hide typos (``REPRO_SOA=of``, ``REPRO_PROFILE_HZ=fast``)
    until someone audits a benchmark; naming the bad value once per process
    surfaces them without spamming hot loops.  Shared by every knob reader
    (:mod:`repro.sim.soa`, :mod:`repro.sim.faultsim_batch`,
    :mod:`repro.telemetry.tracer`, :mod:`repro.telemetry.profiler`).
    """
    token = (knob, raw)
    if token in _WARNED_ENV:
        return
    _WARNED_ENV.add(token)
    log(f"warning: {knob}={raw!r} is not a valid setting; {fallback}")
