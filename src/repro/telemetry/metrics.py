"""Process-wide metrics: counters, gauges and histograms.

Pipeline components report into the shared :data:`METRICS` registry —
cache hits and misses per memo store, faults simulated, error events
extracted, sessions compacted, worker-pool chunk sizes — and exporters
snapshot it into the run manifest.  Metric names are dotted
(``cache.hits``); low-cardinality dimensions ride in ``labels`` and are
canonicalized into the key (``cache.hits{kind=workload}``), so snapshots
are plain string-keyed dicts that serialize and merge trivially.

The registry is always on: increments happen at per-fault / per-chunk
granularity (never per event or per bit — callers batch with ``value=``),
so the cost is one dict update under a lock, invisible next to the numpy
work between increments.  :meth:`MetricsRegistry.diff` /
:meth:`MetricsRegistry.merge` implement the fork-merge protocol: a worker
snapshots before and after its chunk and ships the delta back to the
parent (see :mod:`repro.parallel`).
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional


def metric_key(name: str, labels: Optional[Dict[str, Any]] = None) -> str:
    """Canonical storage key: ``name{k1=v1,k2=v2}`` with sorted labels."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def split_metric_key(key: str) -> tuple:
    """Inverse of :func:`metric_key`: ``(name, labels_dict)``."""
    if not key.endswith("}") or "{" not in key:
        return key, {}
    name, _, inner = key.partition("{")
    labels: Dict[str, str] = {}
    for part in inner[:-1].split(","):
        if "=" in part:
            k, _, v = part.partition("=")
            labels[k] = v
    return name, labels


class Histogram:
    """Streaming summary: count / sum / min / max (no buckets — the
    manifest wants totals and means, not quantiles)."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }

    def merge(self, other: Dict[str, Any]) -> None:
        count = int(other.get("count", 0))
        if not count:
            return
        self.count += count
        self.total += float(other.get("sum", 0.0))
        for bound, pick in (("min", min), ("max", max)):
            value = other.get(bound)
            if value is None:
                continue
            mine = getattr(self, bound)
            setattr(self, bound, value if mine is None else pick(mine, value))


class MetricsRegistry:
    """Thread-safe counter/gauge/histogram store with snapshot algebra."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- recording ----------------------------------------------------------

    def incr(self, name: str, value: float = 1,
             labels: Optional[Dict[str, Any]] = None) -> None:
        key = metric_key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + value

    def gauge(self, name: str, value: float,
              labels: Optional[Dict[str, Any]] = None) -> None:
        key = metric_key(name, labels)
        with self._lock:
            self._gauges[key] = float(value)

    def observe(self, name: str, value: float,
                labels: Optional[Dict[str, Any]] = None) -> None:
        key = metric_key(name, labels)
        with self._lock:
            hist = self._histograms.get(key)
            if hist is None:
                hist = self._histograms[key] = Histogram()
            hist.observe(value)

    # -- reading ------------------------------------------------------------

    def counter(self, name: str, labels: Optional[Dict[str, Any]] = None) -> float:
        with self._lock:
            return self._counters.get(metric_key(name, labels), 0)

    def counter_total(self, name: str) -> float:
        """Sum of a counter over all label combinations."""
        with self._lock:
            return sum(
                v for k, v in self._counters.items()
                if k == name or k.startswith(name + "{")
            )

    def snapshot(self) -> Dict[str, Any]:
        """A deep, JSON-ready copy of the whole registry."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    k: h.to_dict() for k, h in self._histograms.items()
                },
            }

    def diff(self, before: Dict[str, Any]) -> Dict[str, Any]:
        """Registry activity since ``before`` (an earlier :meth:`snapshot`).

        Counters and histogram count/sum subtract; histogram min/max and
        gauges keep their latest values (monotone merges stay correct, and
        gauges are last-writer-wins by definition).
        """
        now = self.snapshot()
        counters = {}
        for key, value in now["counters"].items():
            delta = value - before.get("counters", {}).get(key, 0)
            if delta:
                counters[key] = delta
        histograms = {}
        for key, hist in now["histograms"].items():
            prior = before.get("histograms", {}).get(key)
            if prior is None:
                if hist["count"]:
                    histograms[key] = hist
                continue
            count = hist["count"] - prior.get("count", 0)
            if count:
                histograms[key] = {
                    "count": count,
                    "sum": hist["sum"] - prior.get("sum", 0.0),
                    "min": hist["min"],
                    "max": hist["max"],
                    "mean": None,
                }
        return {"counters": counters, "gauges": now["gauges"], "histograms": histograms}

    def merge(self, delta: Dict[str, Any]) -> None:
        """Fold a :meth:`diff` (or full snapshot) from another process in."""
        if not delta:
            return
        with self._lock:
            for key, value in delta.get("counters", {}).items():
                self._counters[key] = self._counters.get(key, 0) + value
            for key, value in delta.get("gauges", {}).items():
                self._gauges[key] = value
            for key, data in delta.get("histograms", {}).items():
                hist = self._histograms.get(key)
                if hist is None:
                    hist = self._histograms[key] = Histogram()
                hist.merge(data)

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


def merge_snapshots(
    snapshots: Dict[str, Dict[str, Any]],
    base: Optional[Dict[str, Any]] = None,
    gauge_label: Optional[str] = "worker",
) -> Dict[str, Any]:
    """Merge registry **snapshots** from several processes into one.

    This is the fleet-aggregation counterpart of
    :meth:`MetricsRegistry.merge`, operating on plain snapshot dicts so
    the supervisor never has to instantiate a registry per worker:

    * counters sum across sources;
    * histograms merge count/sum and take the min/max envelope;
    * gauges are **relabeled** with ``gauge_label=<source>`` (a gauge like
      ``process.rss_bytes`` from two workers must not last-writer-wins —
      per-source series are the only honest aggregate).  Pass
      ``gauge_label=None`` to fall back to last-writer-wins.

    ``base`` (e.g. the supervisor's own snapshot) seeds the result and is
    never relabeled.  Inputs are not mutated.
    """
    merged: Dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}
    if base:
        merged["counters"].update(base.get("counters", {}))
        merged["gauges"].update(base.get("gauges", {}))
        merged["histograms"].update(
            {k: dict(v) for k, v in base.get("histograms", {}).items()}
        )
    for source in sorted(snapshots):
        snap = snapshots[source] or {}
        for key, value in snap.get("counters", {}).items():
            merged["counters"][key] = merged["counters"].get(key, 0) + value
        for key, value in snap.get("gauges", {}).items():
            if gauge_label is None:
                merged["gauges"][key] = value
            else:
                name, labels = split_metric_key(key)
                labels[gauge_label] = source
                merged["gauges"][metric_key(name, labels)] = value
        for key, data in snap.get("histograms", {}).items():
            into = merged["histograms"].get(key)
            if into is None:
                merged["histograms"][key] = dict(data)
                continue
            hist = Histogram()
            hist.merge(into)
            hist.merge(data)
            merged["histograms"][key] = hist.to_dict()
    return merged


#: Process-wide registry used by all pipeline instrumentation.
METRICS = MetricsRegistry()
